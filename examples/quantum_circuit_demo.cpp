// Pure quantum-simulator walkthrough: state preparation, entanglement,
// expectation values, and the three gradient methods (adjoint,
// parameter-shift, finite differences) agreeing on the same circuit.
#include <cmath>
#include <cstdio>

#include "quantum/adjoint_diff.hpp"
#include "quantum/parameter_shift.hpp"

int main() {
  using namespace qhdl::quantum;

  // --- Bell state ---------------------------------------------------------
  StateVector bell{2};
  bell.apply_single_qubit(gates::hadamard(), 0);
  bell.apply_cnot(0, 1);
  std::printf("Bell state: %s\n", bell.to_string().c_str());
  std::printf("  P(00)=%.3f P(11)=%.3f  <Z0>=%.3f  <Z0 Z1> correlated\n\n",
              bell.probability(0b00), bell.probability(0b11),
              bell.expval_pauli_z(0));

  // --- Parameterized circuit ----------------------------------------------
  Circuit circuit{3};
  circuit.parameterized_gate(GateType::RY, 0, 0);
  circuit.parameterized_gate(GateType::RX, 1, 1);
  circuit.gate(GateType::CNOT, 0, 1);
  circuit.parameterized_gate(GateType::CRZ, 2, 1, 2);
  circuit.gate(GateType::CNOT, 1, 2);
  std::printf("circuit: %s\n", circuit.to_string().c_str());

  const std::vector<double> params{0.6, -1.1, 0.8};
  const Observable obs = Observable::pauli_z(2);

  // Adjoint differentiation (simulator-native, O(ops) sweeps).
  const AdjointResult adjoint = adjoint_gradient(circuit, params, obs);
  std::printf("\n<Z2> = %.6f\n", adjoint.expectation);
  std::printf("%-18s", "adjoint grad:");
  for (double g : adjoint.gradient) std::printf(" % .6f", g);

  // Parameter-shift (hardware-executable rule).
  const auto shift = parameter_shift_gradient(circuit, params, obs);
  std::printf("\n%-18s", "parameter-shift:");
  for (double g : shift) std::printf(" % .6f", g);
  std::printf("\n(shift rules need %zu circuit evaluations; adjoint needs "
              "one sweep)\n",
              parameter_shift_evaluation_count(circuit));

  // Finite differences for reference.
  std::printf("%-18s", "finite diff:");
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params;
    const double eps = 1e-6;
    p[i] += eps;
    const double plus = obs.expectation(circuit.execute(p));
    p[i] -= 2 * eps;
    const double minus = obs.expectation(circuit.execute(p));
    std::printf(" % .6f", (plus - minus) / (2 * eps));
  }
  std::printf("\n\n");

  // --- Weighted observable (the VJP path the hybrid layer uses) -----------
  const std::vector<Observable> observables{
      Observable::pauli_z(0), Observable::pauli_z(1), Observable::pauli_z(2)};
  const std::vector<double> upstream{0.25, -0.50, 1.00};
  const AdjointVjpResult vjp =
      adjoint_vjp(circuit, params, observables, upstream);
  std::printf("expectations: ");
  for (double e : vjp.expectations) std::printf("% .4f ", e);
  std::printf("\nVJP gradient (single sweep, all 3 observables fused): ");
  for (double g : vjp.gradient) std::printf("% .4f ", g);
  std::printf("\n");
  return 0;
}
