// Head-to-head: a classical MLP against BEL/SEL hybrids of comparable
// accuracy on the same complexity level — accuracy, parameters, analytic
// FLOPs, and wall-clock per epoch side by side. This is the paper's core
// comparison (Section IV-E) at a single complexity level.
//
//   ./classical_vs_hybrid [--features 40] [--epochs 40]
#include <chrono>
#include <cstdio>

#include "data/preprocess.hpp"
#include "data/spiral.hpp"
#include "flops/profiler.hpp"
#include "nn/trainer.hpp"
#include "search/candidate.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"classical_vs_hybrid",
                "Compare classical and hybrid models at one complexity "
                "level"};
  cli.add_int("features", 40, "Problem complexity (feature count)");
  cli.add_int("epochs", 40, "Training epochs");
  cli.add_int("seed", 11, "RNG seed");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto features = static_cast<std::size_t>(cli.get_int("features"));
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    data::SpiralConfig spiral;
    const data::Dataset dataset =
        data::make_complexity_dataset(features, spiral, seed);
    util::Rng rng{seed};
    data::TrainValSplit split = data::stratified_split(dataset, 0.2, rng);
    data::standardize_split(split);

    const std::vector<search::ModelSpec> contenders{
        search::ModelSpec::make_classical({8}),
        search::ModelSpec::make_classical({10, 10}),
        search::ModelSpec::make_hybrid(3, 2,
                                       qnn::AnsatzKind::BasicEntangler),
        search::ModelSpec::make_hybrid(3, 2,
                                       qnn::AnsatzKind::StronglyEntangling),
    };

    std::printf("features=%zu, %zu train / %zu val samples, %zu epochs\n\n",
                features, split.train.size(), split.val.size(), epochs);
    util::Table table({"model", "params", "FLOPs/sample", "best train",
                       "best val", "ms/epoch"});
    for (const auto& spec : contenders) {
      util::Rng model_rng = rng.split();
      auto model = search::build_from_spec(spec, features, dataset.classes,
                                           qnn::Activation::Tanh, model_rng);
      const auto report = flops::profile_model(*model);

      nn::Adam optimizer{1e-3};
      nn::TrainConfig config;
      config.epochs = epochs;
      config.batch_size = 8;
      const auto start = std::chrono::steady_clock::now();
      const auto history = nn::train_classifier(
          *model, optimizer, split.train.x, split.train.y, split.val.x,
          split.val.y, config, model_rng);
      const auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();

      table.add_row(
          {spec.to_string(), std::to_string(report.parameter_count),
           util::format_double(report.total(), 0),
           util::format_double(history.best_train_accuracy, 3),
           util::format_double(history.best_val_accuracy, 3),
           util::format_double(static_cast<double>(elapsed_ms) /
                                   static_cast<double>(history.epochs_run),
                               1)});
    }
    table.print();
    std::printf(
        "\nNote the hybrid rows: fewer parameters, competitive accuracy, "
        "but higher\nanalytic FLOPs AND wall-clock — the classical "
        "simulation overhead the paper\ndiscusses (Section I-A).\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
