// NISQ-style noisy training: the same hybrid architecture trained (a) on the
// ideal state-vector simulator with adjoint gradients and (b) on the
// density-matrix simulator with per-gate depolarizing noise and
// parameter-shift gradients — the gradient protocol real hardware would use.
//
// Demonstrates the noise substrate (quantum/density_matrix, quantum/channels)
// and quantifies how channel strength degrades trainability, the concern the
// paper's NISQ framing raises (Section I).
//
//   ./noisy_training [--noise 0.02] [--epochs 12] [--samples 90]
#include <cstdio>

#include "data/preprocess.hpp"
#include "data/spiral.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"
#include "qnn/hybrid_model.hpp"
#include "qnn/quantum_layer.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace qhdl;

std::unique_ptr<nn::Sequential> build_model(std::size_t features,
                                            const quantum::NoiseModel& noise,
                                            util::Rng& rng) {
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Dense>(features, 2, rng);
  model->emplace<nn::Tanh>(2);
  qnn::QuantumLayerConfig config;
  config.qubits = 2;
  config.depth = 1;
  config.ansatz = qnn::AnsatzKind::StronglyEntangling;
  config.noise = noise;
  model->emplace<qnn::QuantumLayer>(config, rng);
  model->emplace<nn::Dense>(2, 3, rng);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{"noisy_training",
                "Train a hybrid model under depolarizing gate noise"};
  cli.add_double("noise", 0.02, "Depolarizing probability per gate");
  cli.add_int("epochs", 40, "Training epochs");
  cli.add_int("samples", 120, "Dataset size (kept small: density-matrix "
                             "training is expensive)");
  cli.add_int("seed", 9, "RNG seed");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const double noise_p = cli.get_double("noise");

    data::SpiralConfig spiral;
    spiral.points = static_cast<std::size_t>(cli.get_int("samples"));
    const data::Dataset dataset =
        data::make_complexity_dataset(4, spiral, seed);
    util::Rng rng{seed};
    data::TrainValSplit split = data::stratified_split(dataset, 0.25, rng);
    data::standardize_split(split);
    std::printf("dataset: %zu train / %zu val, 4 features, 3 classes\n\n",
                split.train.size(), split.val.size());

    util::Table table({"execution", "gradients", "best train", "best val"});
    struct Setup {
      const char* label;
      const char* gradients;
      quantum::NoiseModel noise;
    };
    const std::vector<Setup> setups{
        {"ideal (statevector)", "adjoint", quantum::NoiseModel::noiseless()},
        {"depolarizing", "parameter-shift (density matrix)",
         quantum::NoiseModel::depolarizing(noise_p)},
        {"depolarizing x5", "parameter-shift (density matrix)",
         quantum::NoiseModel::depolarizing(5.0 * noise_p)},
    };
    for (const Setup& setup : setups) {
      util::Rng model_rng{seed + 1};  // identical initialization everywhere
      auto model = build_model(4, setup.noise, model_rng);
      nn::Adam optimizer{5e-3};
      nn::TrainConfig config;
      config.epochs = epochs;
      config.batch_size = 8;
      util::Rng train_rng{seed + 2};
      const auto history = nn::train_classifier(
          *model, optimizer, split.train.x, split.train.y, split.val.x,
          split.val.y, config, train_rng);
      table.add_row({setup.label, setup.gradients,
                     util::format_double(history.best_train_accuracy, 3),
                     util::format_double(history.best_val_accuracy, 3)});
    }
    table.print();
    std::printf("\nModerate depolarizing noise damps the quantum layer's "
                "outputs toward zero\nbut gradients stay exact "
                "(parameter-shift holds for CPTP maps), so training\n"
                "usually survives small noise and degrades as channels "
                "strengthen.\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
