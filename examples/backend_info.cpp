// Prints the active SIMD kernel backend, how it was selected, the full
// descriptor table, and the CPU feature summary. CI uses `--check <name>`
// as a capability probe: exit 0 iff <name> is registered AND supported on
// this machine, so workflow legs can skip-with-notice instead of failing on
// runners without the required ISA.
#include <cstdio>
#include <cstring>
#include <exception>

#include "util/backend_registry.hpp"
#include "util/cpuid.hpp"

int main(int argc, char** argv) {
  namespace simd = qhdl::util::simd;

  if (argc == 3 && std::strcmp(argv[1], "--check") == 0) {
    const simd::Backend* backend = simd::find_backend(argv[2]);
    if (backend == nullptr) {
      std::fprintf(stderr, "backend '%s' is not registered\n", argv[2]);
      return 1;
    }
    if (!backend->supported()) {
      std::fprintf(stderr, "backend '%s' is not supported on this CPU\n",
                   argv[2]);
      return 1;
    }
    std::printf("%s: registered and supported\n", argv[2]);
    return 0;
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--check <backend-name>]\n", argv[0]);
    return 2;
  }

  std::printf("cpu features: %s\n", qhdl::util::cpuid::summary().c_str());
  try {
    const simd::Backend& active = simd::active_backend();
    std::printf("active backend: %s (source: %s)\n", active.name,
                simd::active_source());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "backend selection failed: %s\n", e.what());
    return 1;
  }

  std::printf("registered backends (auto-detect priority order):\n");
  for (const simd::Backend* backend : simd::backends()) {
    std::printf("  %-10s priority=%-4d supported=%s%s\n", backend->name,
                backend->priority, backend->supported() ? "yes" : "no",
                backend->reference ? "  [reference paths]" : "");
  }
  return 0;
}
