// Quickstart: generate the paper's spiral dataset, build a hybrid
// quantum-classical classifier (SEL ansatz), train it, and report accuracy
// next to its analytic FLOPs/parameter profile.
//
//   ./quickstart [--features 10] [--qubits 3] [--depth 2] [--epochs 40]
#include <cstdio>

#include "core/config.hpp"
#include "data/preprocess.hpp"
#include "data/spiral.hpp"
#include "flops/profiler.hpp"
#include "nn/trainer.hpp"
#include "qnn/hybrid_model.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"quickstart",
                "Train a hybrid quantum neural network on the spiral task"};
  cli.add_int("features", 10, "Problem complexity (feature count)");
  cli.add_int("qubits", 3, "Quantum layer width");
  cli.add_int("depth", 2, "Quantum layer depth (ansatz repetitions)");
  cli.add_int("epochs", 40, "Training epochs");
  cli.add_int("seed", 7, "RNG seed");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto features = static_cast<std::size_t>(cli.get_int("features"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    // 1. Data: 3-class spiral with the paper's noise schedule.
    data::SpiralConfig spiral;
    const data::Dataset dataset =
        data::make_complexity_dataset(features, spiral, seed);
    util::Rng rng{seed};
    data::TrainValSplit split = data::stratified_split(dataset, 0.2, rng);
    data::standardize_split(split);
    std::printf("dataset: %zu samples, %zu features, %zu classes "
                "(noise %.3f)\n",
                dataset.size(), dataset.features(), dataset.classes,
                data::noise_for_features(features));

    // 2. Model: Dense(F -> q) + Tanh -> SEL quantum layer -> Dense(q -> 3).
    qnn::HybridConfig config;
    config.features = features;
    config.qubits = static_cast<std::size_t>(cli.get_int("qubits"));
    config.depth = static_cast<std::size_t>(cli.get_int("depth"));
    config.ansatz = qnn::AnsatzKind::StronglyEntangling;
    auto model = qnn::build_hybrid_model(config, rng);
    std::printf("model:   %s\n", model->name().c_str());

    // 3. FLOPs profile (per sample, forward+backward).
    const auto report = flops::profile_model(*model);
    std::printf("\n%s\n", flops::report_to_string(report).c_str());

    // 4. Train with the paper's hyperparameters (Adam 1e-3, batch 8).
    nn::Adam optimizer{1e-3};
    nn::TrainConfig train_config;
    train_config.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    train_config.batch_size = 8;
    const auto history = nn::train_classifier(
        *model, optimizer, split.train.x, split.train.y, split.val.x,
        split.val.y, train_config, rng);

    std::printf("training: %zu epochs | best train acc %.3f | "
                "best val acc %.3f\n",
                history.epochs_run, history.best_train_accuracy,
                history.best_val_accuracy);
    std::printf("final:    train acc %.3f | val acc %.3f\n",
                history.epochs.back().train_accuracy,
                history.epochs.back().val_accuracy);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
