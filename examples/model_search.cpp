// Runs the paper's FLOPs-sorted grid search at one complexity level for a
// chosen family, printing every candidate trained along the way — a
// single-level view of the engine behind Figs. 6-8.
//
//   ./model_search --family classical --features 10
//   ./model_search --family sel --features 60 --runs 2
//
// Pass --checkpoint <path> for durable execution: completed candidates are
// checkpointed (atomic rename) and a re-run resumes from them, bit-identical
// to an uninterrupted search. Ctrl-C exits cleanly with progress saved.
// Pass --workers N to train candidates on crash-isolated worker processes
// (supervised: heartbeats, deadlines, retries, quarantine) with results
// identical to in-process execution — see DESIGN.md §11.
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/config.hpp"
#include "search/checkpoint.hpp"
#include "search/experiment.hpp"
#include "search/results.hpp"
#include "search/worker_pool.hpp"
#include "util/cli.hpp"
#include "util/interrupt.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  // Worker processes re-exec this binary; dispatch before CLI parsing.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-mode") == 0) {
      return search::worker_main();
    }
  }
  util::Cli cli{"model_search",
                "FLOPs-sorted grid search at one complexity level"};
  cli.add_string("family", "classical",
                 "Search family: classical | bel | sel");
  cli.add_int("features", 10, "Problem complexity (feature count)");
  cli.add_int("runs", 2, "Independent runs per candidate");
  cli.add_int("epochs", 60, "Training epochs per run");
  cli.add_double("threshold", 0.90, "Accuracy threshold (train AND val)");
  cli.add_int("points", 900, "Dataset size");
  cli.add_int("seed", 42, "Search seed");
  cli.add_int("max-candidates", 0,
              "Examine at most this many FLOPs-ordered candidates "
              "(0 = unlimited)");
  cli.add_int("workers", 0,
              "Crash-isolated worker processes for candidate evaluation "
              "(0 = in-process); results are identical either way");
  cli.add_double("unit-timeout", 0.0,
                 "Wall-clock budget per candidate evaluation in seconds "
                 "when using --workers (0 = no deadline)");
  cli.add_int("worker-retries", 2,
              "Failed attempts allowed per unit beyond the first before it "
              "is quarantined (with --workers)");
  cli.add_string("listen", "",
                 "Listen address host:port (port 0 = ephemeral, printed at "
                 "startup) for remote qhdl_worker daemons; requires "
                 "--workers-remote");
  cli.add_int("workers-remote", 0,
              "Expected remote worker registrations; falls back to local "
              "--workers if none arrive within --handshake-timeout");
  cli.add_double("handshake-timeout", 5.0,
                 "Registration deadline in seconds (per connection, and for "
                 "the remote fleet before local fallback)");
  cli.add_double("steal-after", 0.0,
                 "Duplicate a unit onto an idle worker once it has been in "
                 "flight this many seconds (0 = off); first result wins, "
                 "results unchanged");
  cli.add_string("checkpoint", "",
                 "Checkpoint manifest path for crash-safe resume "
                 "(empty = no checkpointing)");
  cli.add_string("out", "",
                 "Write the full sweep result JSON here (byte-identical "
                 "across worker modes; used by CI to pin distributed runs)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    util::install_interrupt_handler();

    const std::string family_arg = util::to_lower(cli.get_string("family"));
    search::Family family = search::Family::Classical;
    if (family_arg == "bel") family = search::Family::HybridBel;
    else if (family_arg == "sel") family = search::Family::HybridSel;
    else if (family_arg != "classical") {
      throw std::invalid_argument("unknown family: " + family_arg);
    }

    search::SweepConfig config = core::bench_scale();
    config.feature_sizes = {
        static_cast<std::size_t>(cli.get_int("features"))};
    config.spiral.points = static_cast<std::size_t>(cli.get_int("points"));
    config.search.runs_per_model =
        static_cast<std::size_t>(cli.get_int("runs"));
    config.search.repetitions = 1;
    config.search.train.epochs =
        static_cast<std::size_t>(cli.get_int("epochs"));
    config.search.accuracy_threshold = cli.get_double("threshold");
    config.search.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    if (cli.get_int("max-candidates") > 0) {
      config.search.max_candidates =
          static_cast<std::size_t>(cli.get_int("max-candidates"));
    }

    std::printf("grid search: family=%s features=%zu (space: %zu "
                "candidates, FLOPs-sorted)\n\n",
                search::family_name(family).c_str(),
                config.feature_sizes[0],
                search::family_search_space(family).size());

    std::unique_ptr<search::StudyCheckpoint> checkpoint;
    const std::string checkpoint_path = cli.get_string("checkpoint");
    if (!checkpoint_path.empty()) {
      checkpoint = std::make_unique<search::StudyCheckpoint>(
          checkpoint_path, search::sweep_config_hash(config));
      const std::size_t restored = checkpoint->load();
      if (restored > 0) {
        std::printf("resuming: %zu completed candidate(s) restored\n",
                    restored);
      }
    }

    std::unique_ptr<search::WorkerPool> pool;
    if (cli.get_int("workers") > 0 || cli.get_int("workers-remote") > 0) {
      search::WorkerPoolConfig pool_config;
      if (cli.get_int("workers") > 0) {
        pool_config.workers =
            static_cast<std::size_t>(cli.get_int("workers"));
      }
      pool_config.unit_timeout_ms = static_cast<std::uint64_t>(
          cli.get_double("unit-timeout") * 1000.0);
      pool_config.unit_retries =
          static_cast<std::size_t>(cli.get_int("worker-retries"));
      if (cli.get_int("workers-remote") > 0) {
        pool_config.remote_workers =
            static_cast<std::size_t>(cli.get_int("workers-remote"));
        pool_config.handshake_timeout_ms = static_cast<std::uint64_t>(
            cli.get_double("handshake-timeout") * 1000.0);
        if (!cli.get_string("listen").empty() &&
            !search::parse_host_port(cli.get_string("listen"),
                                     &pool_config.listen_host,
                                     &pool_config.listen_port)) {
          throw std::invalid_argument(
              "--listen requires host:port (e.g. --listen 0.0.0.0:7200)");
        }
      }
      pool_config.steal_after_ms = static_cast<std::uint64_t>(
          cli.get_double("steal-after") * 1000.0);
      pool = std::make_unique<search::WorkerPool>(config, pool_config);
      if (pool->listen_port() != 0) {
        std::printf("listening for qhdl_worker daemons on %s:%u\n",
                    pool_config.listen_host.c_str(), pool->listen_port());
      }
      if (pool->degraded()) {
        std::fprintf(stderr,
                     "warning: worker pool degraded to in-process "
                     "execution: %s\n",
                     pool->degraded_reason().c_str());
      }
    }

    const search::SweepResult sweep = search::run_complexity_sweep(
        family, config, checkpoint.get(), pool.get());
    const auto& outcome = sweep.levels[0].search.repetitions[0];

    if (!cli.get_string("out").empty()) {
      search::sweep_to_json(sweep).write_file(cli.get_string("out"));
    }
    if (pool) {
      const search::WorkerPoolStats stats = pool->stats();
      if (stats.restarts + stats.retried_units + stats.quarantined_units +
              stats.steals + stats.remote_lost + stats.handshake_rejects >
          0) {
        std::printf("worker pool: %zu restart(s), %zu retried unit(s), %zu "
                    "quarantined unit(s), %zu stolen unit(s)\n",
                    stats.restarts, stats.retried_units,
                    stats.quarantined_units, stats.steals);
      }
    }

    util::Table table({"#", "candidate", "FLOPs", "params", "train acc",
                       "val acc", "verdict"});
    for (std::size_t i = 0; i < outcome.evaluated.size(); ++i) {
      const auto& r = outcome.evaluated[i];
      table.add_row({std::to_string(i + 1), r.spec.to_string(),
                     util::format_double(r.flops, 0),
                     std::to_string(r.parameter_count),
                     util::format_double(r.avg_best_train_accuracy, 3),
                     util::format_double(r.avg_best_val_accuracy, 3),
                     r.meets_threshold ? "WINNER" : "below threshold"});
    }
    table.print();
    if (outcome.winner.has_value()) {
      std::printf("\nleast-FLOPs model meeting the %.0f%% bar: %s "
                  "(%s FLOPs, %zu params)\n",
                  100.0 * config.search.accuracy_threshold,
                  outcome.winner->spec.to_string().c_str(),
                  util::format_double(outcome.winner->flops, 0).c_str(),
                  outcome.winner->parameter_count);
    } else {
      std::printf("\nno candidate met the threshold "
                  "(try --epochs or --threshold)\n");
    }
  } catch (const util::Interrupted&) {
    std::fprintf(stderr,
                 "\ninterrupted: progress saved; re-run the same command to "
                 "resume\n");
    return 130;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
