// Profiles any classical or hybrid configuration with the analytic FLOPs
// cost model, printing the per-layer table and the Table-I-style stage
// breakdown — without training anything.
//
//   ./flops_profiler --hidden 10,10 --features 80
//   ./flops_profiler --ansatz sel --qubits 3 --depth 2 --features 110
#include <cstdio>

#include "core/ablation.hpp"
#include "flops/profiler.hpp"
#include "search/candidate.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"flops_profiler",
                "Analytic FLOPs profile of a model configuration"};
  cli.add_int("features", 10, "Input feature count");
  cli.add_int("classes", 3, "Output class count");
  cli.add_string("hidden", "",
                 "Classical hidden widths, e.g. 10,10 (classical mode)");
  cli.add_string("ansatz", "", "bel or sel (hybrid mode)");
  cli.add_int("qubits", 3, "Hybrid: quantum layer width");
  cli.add_int("depth", 2, "Hybrid: ansatz repetitions");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto features = static_cast<std::size_t>(cli.get_int("features"));
    const auto classes = static_cast<std::size_t>(cli.get_int("classes"));

    search::ModelSpec spec;
    const std::string hidden_arg = cli.get_string("hidden");
    const std::string ansatz_arg = cli.get_string("ansatz");
    if (!ansatz_arg.empty()) {
      spec = search::ModelSpec::make_hybrid(
          static_cast<std::size_t>(cli.get_int("qubits")),
          static_cast<std::size_t>(cli.get_int("depth")),
          qnn::ansatz_from_name(ansatz_arg));
    } else {
      std::vector<std::size_t> hidden;
      if (!hidden_arg.empty()) {
        for (const auto& part : util::split(hidden_arg, ',')) {
          hidden.push_back(
              static_cast<std::size_t>(std::stoul(util::trim(part))));
        }
      } else {
        hidden = {8};
      }
      spec = search::ModelSpec::make_classical(std::move(hidden));
    }

    std::printf("model: %s, features=%zu, classes=%zu\n\n",
                spec.to_string().c_str(), features, classes);
    const auto infos =
        search::spec_layer_infos(spec, features, classes,
                                 qnn::Activation::Tanh);
    const flops::FlopsReport report = flops::profile_layers(infos);
    std::fputs(flops::report_to_string(report).c_str(), stdout);

    if (spec.family == search::ModelSpec::Family::Hybrid) {
      std::printf("\nTable-I style row:\n");
      const auto row = core::ablate_hybrid(spec.hybrid, features, classes,
                                           flops::CostModel{});
      std::fputs(core::ablation_to_string({row}).c_str(), stdout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
