// One-command reproduction entry point: runs the paper's complete pipeline
// (classical + BEL + SEL complexity sweeps, Fig. 10 growth comparison,
// Table I ablation from the discovered winners) and writes every artifact
// to --out.
//
//   ./run_study                 # reduced protocol (~minutes)
//   ./run_study --paper         # full paper protocol (hours)
//   ./run_study --threads 4     # parallelize the search (same results)
//
// Execution is durable: completed candidate evaluations are checkpointed to
// <out>/study.checkpoint.json (atomic rename at every unit boundary), so a
// crashed or Ctrl-C'd study resumes where it left off — bit-identical to an
// uninterrupted run — simply by re-running the same command. --fresh
// discards an existing checkpoint; --no-checkpoint disables durability.
//
// --workers N runs candidate evaluations on N crash-isolated worker
// processes (re-exec'd instances of this binary in --worker-mode) with
// supervision: heartbeats, per-unit deadlines (--unit-timeout), bounded
// retries (--worker-retries), quarantine for units that keep failing, and
// graceful in-process degradation when workers cannot be spawned. Results
// stay bit-identical to --workers 0. See DESIGN.md §11.
//
// --listen host:port --workers-remote N shards the same units across
// qhdl_worker daemons on other hosts instead (README "Multi-host sweeps",
// DESIGN.md §16) — still byte-identical.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "search/checkpoint.hpp"
#include "search/worker_pool.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/interrupt.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  // Worker processes re-exec this binary; dispatch before any CLI parsing
  // so the protocol loop owns stdin/stdout exclusively.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-mode") == 0) {
      return search::worker_main();
    }
  }
  util::Cli cli{"run_study",
                "Run the full HQNN complexity-scaling study (paper Fig. 3)"};
  cli.add_flag("paper", "Full paper protocol (5x5 runs, 100 epochs, "
                        "features 10..110) instead of the reduced one");
  cli.add_flag("quiet", "Suppress progress logging");
  cli.add_flag("fresh", "Discard any existing checkpoint and start over");
  cli.add_flag("no-checkpoint", "Disable durable execution (no resume)");
  cli.add_int("threads", 1,
              "Search concurrency (families, levels, candidate lookahead, "
              "runs, quantum batches); results are thread-count independent");
  cli.add_int("workers", 0,
              "Crash-isolated worker processes for candidate evaluation "
              "(0 = in-process); results are identical either way");
  cli.add_double("unit-timeout", 0.0,
                 "Wall-clock budget per candidate evaluation in seconds "
                 "when using --workers (0 = no deadline)");
  cli.add_int("worker-retries", 2,
              "Failed attempts allowed per unit beyond the first before it "
              "is quarantined (with --workers)");
  cli.add_string("listen", "",
                 "Listen address host:port (port 0 = ephemeral, printed at "
                 "startup) for remote qhdl_worker daemons; requires "
                 "--workers-remote");
  cli.add_int("workers-remote", 0,
              "Expected remote worker registrations; falls back to local "
              "--workers if none arrive within --handshake-timeout");
  cli.add_double("handshake-timeout", 5.0,
                 "Registration deadline in seconds (per connection, and for "
                 "the remote fleet before local fallback)");
  cli.add_double("steal-after", 0.0,
                 "Duplicate a unit onto an idle worker once it has been in "
                 "flight this many seconds (0 = off); first result wins, "
                 "results unchanged");
  cli.add_int("seed", 42, "Search seed");
  cli.add_string("out", "qhdl_results/study", "Output directory");
  try {
    if (!cli.parse(argc, argv)) return 0;
    if (!cli.flag("quiet")) util::set_log_level(util::LogLevel::Info);
    util::install_interrupt_handler();

    search::SweepConfig config =
        cli.flag("paper") ? core::paper_scale() : core::bench_scale();
    config.search.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    config.search.threads =
        static_cast<std::size_t>(cli.get_int("threads"));

    const std::string out = cli.get_string("out");
    std::filesystem::create_directories(out);

    // Durable execution: the checkpoint is keyed to the exact protocol via
    // sweep_config_hash, so a stale manifest (different seeds/scale) is
    // rejected instead of silently mixing results.
    const std::string checkpoint_path = out + "/study.checkpoint.json";
    std::unique_ptr<search::StudyCheckpoint> checkpoint;
    if (!cli.flag("no-checkpoint")) {
      if (cli.flag("fresh")) std::filesystem::remove(checkpoint_path);
      checkpoint = std::make_unique<search::StudyCheckpoint>(
          checkpoint_path, search::sweep_config_hash(config));
      const std::size_t restored = checkpoint->load();
      if (restored > 0) {
        std::printf("Resuming: %zu completed unit(s) restored from %s\n",
                    restored, checkpoint_path.c_str());
      }
    }

    // Supervised multi-process execution. The pool degrades to in-process
    // evaluation (same results, no isolation) if workers cannot spawn.
    std::unique_ptr<search::WorkerPool> pool;
    if (cli.get_int("workers") > 0 || cli.get_int("workers-remote") > 0) {
      search::WorkerPoolConfig pool_config;
      if (cli.get_int("workers") > 0) {
        pool_config.workers =
            static_cast<std::size_t>(cli.get_int("workers"));
      }
      pool_config.unit_timeout_ms = static_cast<std::uint64_t>(
          cli.get_double("unit-timeout") * 1000.0);
      pool_config.unit_retries =
          static_cast<std::size_t>(cli.get_int("worker-retries"));
      if (cli.get_int("workers-remote") > 0) {
        pool_config.remote_workers =
            static_cast<std::size_t>(cli.get_int("workers-remote"));
        pool_config.handshake_timeout_ms = static_cast<std::uint64_t>(
            cli.get_double("handshake-timeout") * 1000.0);
        if (!cli.get_string("listen").empty() &&
            !search::parse_host_port(cli.get_string("listen"),
                                     &pool_config.listen_host,
                                     &pool_config.listen_port)) {
          throw std::runtime_error(
              "--listen requires host:port (e.g. --listen 0.0.0.0:7200)");
        }
      }
      pool_config.steal_after_ms = static_cast<std::uint64_t>(
          cli.get_double("steal-after") * 1000.0);
      pool = std::make_unique<search::WorkerPool>(config, pool_config);
      if (pool->listen_port() != 0) {
        std::printf("listening for qhdl_worker daemons on %s:%u\n",
                    pool_config.listen_host.c_str(), pool->listen_port());
      }
      if (pool->degraded()) {
        std::fprintf(stderr,
                     "warning: worker pool degraded to in-process "
                     "execution: %s\n",
                     pool->degraded_reason().c_str());
      }
    }

    std::printf("Running the %s protocol; artifacts -> %s/\n\n",
                cli.flag("paper") ? "PAPER" : "reduced bench", out.c_str());
    const core::ComplexityStudy study{config};
    const core::StudyResult result = study.run(checkpoint.get(), pool.get());

    if (pool) {
      const search::WorkerPoolStats stats = pool->stats();
      if (stats.restarts + stats.retried_units + stats.quarantined_units +
              stats.steals + stats.remote_lost + stats.handshake_rejects >
          0) {
        std::printf("worker pool: %zu restart(s), %zu retried unit(s), %zu "
                    "quarantined unit(s), %zu stolen unit(s)\n",
                    stats.restarts, stats.retried_units,
                    stats.quarantined_units, stats.steals);
      }
      if (stats.remote_registered + stats.remote_lost +
              stats.handshake_rejects >
          0) {
        std::printf("worker pool: %zu remote registration(s), %zu remote "
                    "connection(s) lost, %zu handshake reject(s)\n",
                    stats.remote_registered, stats.remote_lost,
                    stats.handshake_rejects);
      }
    }

    // Per-family winner tables (Figs. 6-9 data).
    for (const auto* sweep :
         {&result.classical, &result.hybrid_bel, &result.hybrid_sel}) {
      const std::string stem = search::family_name(sweep->family);
      search::sweep_to_csv(*sweep).write_file(out + "/" + stem +
                                              "_winners.csv");
      search::sweep_means_to_csv(*sweep).write_file(out + "/" + stem +
                                                    "_means.csv");
    }

    // Fig. 10 growth comparison.
    std::printf("\n=== Growth comparison (paper Fig. 10) ===\n");
    std::fputs(core::growth_comparison_to_string(result.growth).c_str(),
               stdout);
    core::growth_comparison_to_csv(result.growth)
        .write_file(out + "/fig10_growth.csv");

    // Table I ablation from the winners this study actually found.
    std::printf("\n=== Hybrid FLOPs ablation from discovered winners "
                "(paper Table I) ===\n");
    std::fputs(core::ablation_to_string(result.ablation).c_str(), stdout);
    core::ablation_to_csv(result.ablation)
        .write_file(out + "/table1_ablation.csv");

    // Full manifest + human-readable report.
    result.to_json().write_file(out + "/study.json");
    util::atomic_write_file(out + "/report.md",
                            core::study_report_markdown(result, config));
    std::printf("\nmanifest: %s/study.json\nreport:   %s/report.md\n",
                out.c_str(), out.c_str());

    // The study completed: the checkpoint has served its purpose and would
    // otherwise resume-skip the whole study on the next run.
    if (checkpoint) std::filesystem::remove(checkpoint_path);
  } catch (const util::Interrupted&) {
    // Completed units were flushed at every unit boundary; nothing to save.
    std::fprintf(stderr,
                 "\ninterrupted: progress saved; re-run the same command to "
                 "resume\n");
    return 130;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
