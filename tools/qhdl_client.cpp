// qhdl_client: one-shot client for qhdl_serve.
//
//   ./qhdl_client --port 7117 --type ping
//   ./qhdl_client --port 7117 --type study --family classical --scale test
//   ./qhdl_client --port-file /tmp/serve.port --type stats
//
// Sends one request, prints the reply JSON to stdout, and exits 0 on a
// successful reply (result/pong/stats), 2 when the server shed the request
// (rejected: overloaded/draining), and 1 on errors, cancellations, or
// transport failures — so shell scripts and the CI smoke leg can branch on
// the admission outcome.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/config.hpp"
#include "search/worker_protocol.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

std::uint16_t resolve_port(const qhdl::util::Cli& cli) {
  const std::string port_file = cli.get_string("port-file");
  if (!port_file.empty()) {
    std::ifstream in(port_file);
    int port = 0;
    if (!(in >> port) || port <= 0 || port > 65535) {
      throw std::runtime_error("cannot read a port from " + port_file);
    }
    return static_cast<std::uint16_t>(port);
  }
  return static_cast<std::uint16_t>(cli.get_int("port"));
}

qhdl::search::SweepConfig scale_config(const std::string& scale) {
  if (scale == "paper") return qhdl::core::paper_scale();
  if (scale == "bench") return qhdl::core::bench_scale();
  if (scale == "test") return qhdl::core::test_scale();
  throw std::runtime_error("unknown --scale '" + scale +
                           "' (expected test, bench, or paper)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"qhdl_client", "Send one request to a qhdl_serve instance"};
  cli.add_string("host", "127.0.0.1", "Server address");
  cli.add_int("port", 7117, "Server port");
  cli.add_string("port-file", "",
                 "Read the port from this file (as written by "
                 "qhdl_serve --port-file) instead of --port");
  cli.add_string("type", "ping",
                 "Request type: ping | stats | study | sleep");
  cli.add_string("family", "classical",
                 "Study family: classical | hybrid-bel | hybrid-sel");
  cli.add_string("scale", "test",
                 "Study protocol preset: test | bench | paper");
  cli.add_int("features", 0,
              "Restrict the study to one complexity level (0 = preset's)");
  cli.add_int("max-candidates", 0,
              "Override the preset's per-repetition candidate cap (0 = "
              "keep preset)");
  cli.add_int("epochs", 0, "Override training epochs (0 = keep preset)");
  cli.add_int("runs", 0, "Override runs per model (0 = keep preset)");
  cli.add_int("repetitions", 0, "Override repetitions (0 = keep preset)");
  cli.add_int("seed", 0, "Override the search seed (0 = keep preset)");
  cli.add_int("threads", 0,
              "Override the study's thread width (0 = keep preset)");
  cli.add_int("ms", 100, "Sleep duration for --type sleep");
  cli.add_double("timeout", 0.0,
                 "Reply timeout in seconds (0 = wait forever; with "
                 "--progress it re-arms per received frame)");
  cli.add_flag("progress",
               "Stream per-unit-window progress frames for --type study "
               "(printed to stderr, one line each)");
  cli.add_flag("quiet", "Suppress progress logging");
  try {
    if (!cli.parse(argc, argv)) return 0;
    if (!cli.flag("quiet")) util::set_log_level(util::LogLevel::Warn);

    const std::string type = cli.get_string("type");
    util::Json request = util::Json::object();
    if (type == "ping" || type == "stats") {
      request["type"] = type;
    } else if (type == "sleep") {
      request["type"] = "sleep";
      request["ms"] = cli.get_int("ms");
    } else if (type == "study") {
      search::SweepConfig config = scale_config(cli.get_string("scale"));
      if (cli.get_int("features") > 0) {
        config.feature_sizes = {
            static_cast<std::size_t>(cli.get_int("features"))};
      }
      if (cli.get_int("max-candidates") > 0) {
        config.search.max_candidates =
            static_cast<std::size_t>(cli.get_int("max-candidates"));
      }
      if (cli.get_int("epochs") > 0) {
        config.search.train.epochs =
            static_cast<std::size_t>(cli.get_int("epochs"));
      }
      if (cli.get_int("runs") > 0) {
        config.search.runs_per_model =
            static_cast<std::size_t>(cli.get_int("runs"));
      }
      if (cli.get_int("repetitions") > 0) {
        config.search.repetitions =
            static_cast<std::size_t>(cli.get_int("repetitions"));
      }
      if (cli.get_int("seed") > 0) {
        config.search.seed =
            static_cast<std::uint64_t>(cli.get_int("seed"));
      }
      if (cli.get_int("threads") > 0) {
        config.search.threads =
            static_cast<std::size_t>(cli.get_int("threads"));
      }
      request = serve::make_study_request(
          serve::family_from_name(cli.get_string("family")), config);
    } else {
      throw std::runtime_error("unknown --type '" + type + "'");
    }

    const auto timeout_ms =
        static_cast<std::uint64_t>(cli.get_double("timeout") * 1000.0);
    util::Json reply;
    if (cli.flag("progress") && type == "study") {
      request["progress"] = true;
      reply = serve::round_trip(
          cli.get_string("host"), resolve_port(cli), request,
          [](const util::Json& frame) {
            std::fprintf(
                stderr, "progress: %s features=%d rep=%d unit %d/%d%s\n",
                frame.at("family").as_string().c_str(),
                static_cast<int>(frame.at("features").as_number()),
                static_cast<int>(frame.at("repetition").as_number()),
                static_cast<int>(frame.at("units_done").as_number()),
                static_cast<int>(frame.at("total_units").as_number()),
                frame.at("winner_found").as_bool() ? " (winner found)" : "");
          },
          timeout_ms);
    } else {
      reply = serve::round_trip(cli.get_string("host"), resolve_port(cli),
                                request, timeout_ms);
    }
    std::printf("%s\n", reply.dump(2).c_str());

    const std::string reply_type = reply.at("type").as_string();
    if (reply_type == "rejected") return 2;
    if (reply_type == "error" || reply_type == "cancelled") return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qhdl_client: error: %s\n", e.what());
    return 1;
  }
}
