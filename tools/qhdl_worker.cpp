// qhdl_worker: remote worker daemon for distributed sweeps (DESIGN.md §16).
//
//   ./qhdl_worker --connect 10.0.0.5:7200 --slots 4
//
// Dials the supervisor (a WorkerPool listening via --listen / remote
// workers), registers each slot with a handshake frame, and then runs the
// standard worker loop — init, units, heartbeats, results — over the
// connection. A lost connection is retried forever (or until --max-retries)
// with seeded, jittered exponential backoff; every reconnect is a fresh
// registration, so the supervisor sees the slot come back on its own.
//
// Exit codes: 0 on a clean shutdown (supervisor sent a shutdown frame, or
// the connection closed after a served session without --persist... the
// daemon simply reconnects in that case), 1 when --max-retries ran out.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "search/worker_protocol.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace qhdl;
  util::Cli cli{"qhdl_worker",
                "Worker daemon: connect to a supervisor and evaluate units"};
  cli.add_string("connect", "",
                 "Supervisor address as host:port (required; the port a "
                 "driver printed for --listen)");
  cli.add_int("slots", 1,
              "Parallel worker slots — independent connections, each "
              "registered separately and dispatched one unit at a time");
  cli.add_double("connect-timeout", 5.0,
                 "Per-attempt connect timeout in seconds");
  cli.add_double("reconnect-initial", 0.2,
                 "Initial reconnect backoff in seconds (jittered "
                 "exponential, doubling up to --reconnect-max)");
  cli.add_double("reconnect-max", 10.0, "Reconnect backoff cap in seconds");
  cli.add_int("jitter-seed", 0,
              "Seed for the backoff jitter (0 = fixed default; any value "
              "makes the retry schedule reproducible)");
  cli.add_int("max-retries", 0,
              "Consecutive connection failures per slot before giving up "
              "(0 = retry forever)");
  cli.add_flag("persist",
               "Stay connected across shutdown frames: after a supervisor "
               "finishes (or qhdl_serve tears down a per-job pool), "
               "reconnect and wait for the next one instead of exiting");
  cli.add_flag("quiet", "Suppress progress logging");
  try {
    if (!cli.parse(argc, argv)) return 0;
    if (cli.flag("quiet")) util::set_log_level(util::LogLevel::Warn);

    search::RemoteWorkerOptions options;
    if (!search::parse_host_port(cli.get_string("connect"), &options.host,
                                 &options.port)) {
      throw std::runtime_error(
          "--connect requires host:port (e.g. --connect 127.0.0.1:7200)");
    }
    options.slots =
        static_cast<std::size_t>(std::max<long>(1, cli.get_int("slots")));
    options.connect_timeout_ms = static_cast<std::uint64_t>(
        cli.get_double("connect-timeout") * 1000.0);
    options.reconnect_initial_ms = static_cast<std::uint64_t>(
        cli.get_double("reconnect-initial") * 1000.0);
    options.reconnect_max_ms =
        static_cast<std::uint64_t>(cli.get_double("reconnect-max") * 1000.0);
    if (cli.get_int("jitter-seed") != 0) {
      options.jitter_seed =
          static_cast<std::uint64_t>(cli.get_int("jitter-seed"));
    }
    options.max_reconnect_failures = static_cast<std::size_t>(
        std::max<long>(0, cli.get_int("max-retries")));
    options.persist = cli.flag("persist");
    return search::remote_worker_main(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qhdl_worker: error: %s\n", e.what());
    return 1;
  }
}
