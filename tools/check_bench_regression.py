#!/usr/bin/env python3
"""Compare a fresh BENCH_micro.json against the committed baseline.

Fails (exit 1) when any shared benchmark is slower than baseline by more
than the tolerance; reports (exit 0) improvements beyond the tolerance so
CI can surface them. `--calibrate` divides every ratio by the median ratio
first, so a uniformly slower/faster CI machine does not mask or fake a
relative regression. Stdlib only.

Usage:
  tools/check_bench_regression.py --baseline BENCH_micro.json \
      --current fresh.json [--tolerance 0.25] [--calibrate] [--report out.md]
"""
import argparse
import json
import statistics
import sys


def load_benchmarks(path):
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    return {b["name"]: b["ns_per_op"] for b in data.get("benchmarks", [])
            if b.get("ns_per_op", 0) > 0}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument("--calibrate", action="store_true",
                        help="normalize ratios by their median (absorbs "
                             "uniform machine-speed differences)")
    parser.add_argument("--report", default="",
                        help="write a markdown summary here")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: no overlapping benchmark names", file=sys.stderr)
        return 1

    ratios = {name: current[name] / baseline[name] for name in shared}
    scale = statistics.median(ratios.values()) if args.calibrate else 1.0
    if scale <= 0:
        print("error: non-positive calibration scale", file=sys.stderr)
        return 1

    regressions, improvements = [], []
    rows = []
    for name in shared:
        ratio = ratios[name] / scale
        rows.append((name, baseline[name], current[name], ratio))
        if ratio > 1.0 + args.tolerance:
            regressions.append((name, ratio))
        elif ratio < 1.0 - args.tolerance:
            improvements.append((name, ratio))

    lines = [
        "## Benchmark comparison",
        "",
        f"{len(shared)} shared benchmarks, tolerance ±{args.tolerance:.0%}"
        + (f", calibration scale {scale:.3f}" if args.calibrate else ""),
        "",
        "| benchmark | baseline ns/op | current ns/op | ratio |",
        "|---|---:|---:|---:|",
    ]
    for name, base, cur, ratio in rows:
        marker = " ⚠️" if ratio > 1.0 + args.tolerance else (
            " 🚀" if ratio < 1.0 - args.tolerance else "")
        lines.append(f"| {name} | {base:.0f} | {cur:.0f} | "
                     f"{ratio:.2f}{marker} |")
    if regressions:
        lines += ["", f"**{len(regressions)} regression(s):** "
                  + ", ".join(f"{n} ({r:.2f}x)" for n, r in regressions)]
    if improvements:
        lines += ["", f"**{len(improvements)} improvement(s):** "
                  + ", ".join(f"{n} ({r:.2f}x)" for n, r in improvements)]
    report = "\n".join(lines) + "\n"
    print(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report)

    if regressions:
        print(f"FAIL: {len(regressions)} benchmark(s) regressed beyond "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 1
    print("OK: no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
