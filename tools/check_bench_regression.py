#!/usr/bin/env python3
"""Compare a fresh BENCH_micro.json against the committed baseline.

Fails (exit 1) when any comparable benchmark is slower than baseline by
more than the tolerance; reports (exit 0) improvements beyond the tolerance
so CI can surface them. `--calibrate` divides every ratio by the median
ratio first, so a uniformly slower/faster CI machine does not mask or fake
a relative regression. Stdlib only.

Benchmark names may carry a kernel-backend suffix, e.g.
`bench_micro_quantum/BM_SingleQubitGate@avx2/10` — the `@<backend>` names a
SIMD backend from the registry (DESIGN.md §13), and which ones exist
depends on the machine's CPU. Comparison is like-for-like:

  * `X@b` vs `X@b` when the baseline has the same backend variant;
  * `X@generic` falls back to the baseline's plain `X` — the pre-registry
    scalar kernels are the generic backend's lineage;
  * a backend variant the baseline runner could not measure (e.g. the
    baseline machine lacked AVX-512) is reported as skipped, never an
    error, and never silently dropped.

Committed BENCH JSONs also carry a `trajectory` array of
{git_sha, ns_per_op} entries (tools/bench_report.py). `--baseline-sha`
selects one of those entries (full SHA or unique prefix) as the baseline
instead of the file's top-level benchmark list, so a regression can be
pinned against any recorded commit.

Usage:
  tools/check_bench_regression.py --baseline BENCH_micro.json \
      --current fresh.json [--tolerance 0.25] [--calibrate] \
      [--baseline-sha SHA] [--report out.md]
"""
import argparse
import json
import re
import statistics
import sys

# `<binary>/<BM_Name>@<backend>/<args...>` — the backend tag sits between
# the benchmark name and its slash-separated argument suffix.
BACKEND_RE = re.compile(r"^(?P<head>[^@]*)@(?P<backend>[^/]+)(?P<args>/.*)?$")


def split_backend(name):
    """Returns (base_name_without_tag, backend_or_None)."""
    match = BACKEND_RE.match(name)
    if not match:
        return name, None
    return match.group("head") + (match.group("args") or ""), \
        match.group("backend")


def load_document(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def benchmarks_from(doc, baseline_sha=None, path=""):
    """Name → ns/op map, from the top level or a trajectory entry."""
    if baseline_sha:
        matches = [point for point in doc.get("trajectory", [])
                   if point.get("git_sha", "").startswith(baseline_sha)]
        if not matches:
            raise SystemExit(
                f"error: no trajectory entry matching sha "
                f"'{baseline_sha}' in {path}")
        if len(matches) > 1:
            shas = ", ".join(p["git_sha"][:12] for p in matches)
            raise SystemExit(
                f"error: sha prefix '{baseline_sha}' is ambiguous in "
                f"{path}: {shas}")
        return {name: ns for name, ns in matches[0]["ns_per_op"].items()
                if ns > 0}
    return {b["name"]: b["ns_per_op"] for b in doc.get("benchmarks", [])
            if b.get("ns_per_op", 0) > 0}


def pair_benchmarks(baseline, current):
    """Matches current names to baseline names like-for-like.

    Returns (pairs, skipped): pairs is a list of
    (current_name, baseline_name) and skipped a list of
    (current_name, reason) for benchmarks with no comparable baseline.
    """
    pairs, skipped = [], []
    for name in sorted(current):
        if name in baseline:
            pairs.append((name, name))
            continue
        base_name, backend = split_backend(name)
        if backend is None:
            skipped.append((name, "not in baseline (new benchmark)"))
        elif backend == "generic" and base_name in baseline:
            # The generic backend inherits the pre-registry scalar kernels,
            # so the untagged baseline entry is the honest ancestor.
            pairs.append((name, base_name))
        elif not any(split_backend(other)[0] == base_name
                     for other in baseline):
            # No baseline entry for this benchmark under ANY backend (nor
            # untagged): the benchmark itself is new — e.g. the batched SoA
            # kernels of DESIGN.md §14 — not a runner-capability gap. Pairs
            # exactly once a regenerated baseline records it.
            skipped.append(
                (name, "new benchmark (no baseline entry for any backend)"))
        else:
            skipped.append(
                (name,
                 f"backend '{backend}' not measured in baseline "
                 f"(runner CPU or older revision)"))
    return pairs, skipped


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument("--calibrate", action="store_true",
                        help="normalize ratios by their median (absorbs "
                             "uniform machine-speed differences)")
    parser.add_argument("--baseline-sha", default="",
                        help="compare against this trajectory entry of the "
                             "baseline file (SHA prefix) instead of its "
                             "top-level benchmark list")
    parser.add_argument("--report", default="",
                        help="write a markdown summary here")
    args = parser.parse_args()

    baseline = benchmarks_from(load_document(args.baseline),
                               args.baseline_sha, args.baseline)
    current = benchmarks_from(load_document(args.current))
    pairs, skipped = pair_benchmarks(baseline, current)
    if not pairs:
        print("error: no comparable benchmark names", file=sys.stderr)
        return 1
    missing = sorted(set(baseline)
                     - {base for _, base in pairs})

    ratios = {cur: current[cur] / baseline[base] for cur, base in pairs}
    scale = statistics.median(ratios.values()) if args.calibrate else 1.0
    if scale <= 0:
        print("error: non-positive calibration scale", file=sys.stderr)
        return 1

    regressions, improvements = [], []
    rows = []
    for cur, base in pairs:
        ratio = ratios[cur] / scale
        rows.append((cur, base, baseline[base], current[cur], ratio))
        if ratio > 1.0 + args.tolerance:
            regressions.append((cur, ratio))
        elif ratio < 1.0 - args.tolerance:
            improvements.append((cur, ratio))

    lines = [
        "## Benchmark comparison",
        "",
        f"{len(pairs)} comparable benchmarks, "
        f"tolerance ±{args.tolerance:.0%}"
        + (f", calibration scale {scale:.3f}" if args.calibrate else "")
        + (f", baseline sha {args.baseline_sha}" if args.baseline_sha
           else ""),
        "",
        "| benchmark | baseline ns/op | current ns/op | ratio |",
        "|---|---:|---:|---:|",
    ]
    for cur, base, base_ns, cur_ns, ratio in rows:
        marker = " ⚠️" if ratio > 1.0 + args.tolerance else (
            " 🚀" if ratio < 1.0 - args.tolerance else "")
        label = cur if cur == base else f"{cur} (vs {base})"
        lines.append(f"| {label} | {base_ns:.0f} | {cur_ns:.0f} | "
                     f"{ratio:.2f}{marker} |")
    if skipped:
        lines += ["", f"**{len(skipped)} skipped (no comparable "
                  "baseline):**"]
        lines += [f"- {name}: {reason}" for name, reason in skipped]
    if missing:
        lines += ["", f"**{len(missing)} baseline-only (not in current "
                  "run):** " + ", ".join(missing)]
    if regressions:
        lines += ["", f"**{len(regressions)} regression(s):** "
                  + ", ".join(f"{n} ({r:.2f}x)" for n, r in regressions)]
    if improvements:
        lines += ["", f"**{len(improvements)} improvement(s):** "
                  + ", ".join(f"{n} ({r:.2f}x)" for n, r in improvements)]
    report = "\n".join(lines) + "\n"
    print(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report)

    if regressions:
        print(f"FAIL: {len(regressions)} benchmark(s) regressed beyond "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 1
    print("OK: no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
