// qhdl_serve: the long-running study/train service (DESIGN.md §15).
//
//   ./qhdl_serve --port 7117 --executors 2 --workers 2 --cache-dir /tmp/qc
//
// Serves study/train jobs over TCP (length-prefixed JSON frames, one
// request per connection — see src/serve/protocol.hpp) with bounded
// admission, per-job deadlines, client-disconnect cancellation, and a
// content-addressed result cache. SIGTERM (or the first SIGINT) starts a
// graceful drain: in-flight jobs finish, queued and new work is rejected,
// the cache is flushed, and the process exits 0. A second SIGINT escalates
// to immediate exit 130, mirroring the study drivers.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "search/worker_protocol.hpp"
#include "serve/server.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

// NOTE: deliberately NOT util::install_interrupt_handler() — that flag is
// process-global and the worker-pool dispatcher aborts in-flight units when
// it is set, which would contradict "finish in-flight jobs" drain
// semantics. The server gets its own flag; only the signal watcher in
// main() reads it.
volatile std::sig_atomic_t g_drain = 0;
volatile std::sig_atomic_t g_sigint_count = 0;

void handle_signal(int sig) {
  if (sig == SIGINT) {
    g_sigint_count = g_sigint_count + 1;
    if (g_sigint_count >= 2) {
      std::_Exit(130);  // second Ctrl-C: the user means now
    }
  }
  g_drain = 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qhdl;
  // Per-job worker pools re-exec this binary; dispatch before CLI parsing.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-mode") == 0) {
      return search::worker_main();
    }
  }
  util::Cli cli{"qhdl_serve",
                "Serve study/train jobs over TCP with admission control, "
                "deadlines, and a content-addressed result cache"};
  cli.add_string("host", "127.0.0.1", "Bind address (numeric IPv4)");
  cli.add_int("port", 7117, "TCP port (0 = ephemeral; see --port-file)");
  cli.add_string("port-file", "",
                 "Write the bound port to this file once listening "
                 "(atomic; lets scripts use --port 0)");
  cli.add_int("executors", 1, "Concurrent job executor threads");
  cli.add_int("max-queue", 8,
              "Jobs allowed to wait beyond the executing ones; excess is "
              "rejected with reason 'overloaded'");
  cli.add_int("max-connections", 64, "Concurrent client connections");
  cli.add_double("job-timeout", 0.0,
                 "Per-job wall-clock budget in seconds (0 = none); an "
                 "expired job replies 'cancelled: deadline exceeded'");
  cli.add_double("read-timeout", 5.0,
                 "Budget for reading one request frame in seconds");
  cli.add_string("cache-dir", "",
                 "Result-cache spill directory (empty = memory-only)");
  cli.add_int("cache-capacity", 8, "In-memory result-cache entries (LRU)");
  cli.add_int("workers", 0,
              "Crash-isolated worker processes per study job "
              "(0 = in-process execution)");
  cli.add_double("unit-timeout", 0.0,
                 "Wall-clock budget per candidate evaluation in seconds "
                 "when using --workers (0 = no deadline)");
  cli.add_int("worker-retries", 2,
              "Failed attempts allowed per unit beyond the first before "
              "quarantine (with --workers)");
  cli.add_int("workers-listen", 0,
              "Fixed port for remote qhdl_worker daemons (requires "
              "--workers-remote; daemons should use --persist since each "
              "study job runs its own pool). With --executors > 1 only one "
              "job can bind the port at a time; the others fall back to "
              "local workers");
  cli.add_int("workers-remote", 0,
              "Expected remote worker registrations per study job; falls "
              "back to local --workers (or 2) if none arrive within "
              "--handshake-timeout");
  cli.add_double("handshake-timeout", 5.0,
                 "Remote registration deadline in seconds");
  cli.add_double("steal-after", 0.0,
                 "Duplicate a straggling unit onto an idle worker after "
                 "this many seconds in flight (0 = off)");
  cli.add_flag("quiet", "Suppress progress logging");
  try {
    if (!cli.parse(argc, argv)) return 0;
    if (!cli.flag("quiet")) util::set_log_level(util::LogLevel::Info);

    serve::ServerConfig config;
    config.host = cli.get_string("host");
    config.port = static_cast<std::uint16_t>(cli.get_int("port"));
    config.executors = static_cast<std::size_t>(cli.get_int("executors"));
    config.max_queue = static_cast<std::size_t>(cli.get_int("max-queue"));
    config.max_connections =
        static_cast<std::size_t>(cli.get_int("max-connections"));
    config.job_timeout_ms =
        static_cast<std::uint64_t>(cli.get_double("job-timeout") * 1000.0);
    config.read_timeout_ms =
        static_cast<std::uint64_t>(cli.get_double("read-timeout") * 1000.0);
    config.cache_dir = cli.get_string("cache-dir");
    config.cache_capacity =
        static_cast<std::size_t>(cli.get_int("cache-capacity"));
    config.pool_workers = static_cast<std::size_t>(cli.get_int("workers"));
    config.pool.unit_timeout_ms =
        static_cast<std::uint64_t>(cli.get_double("unit-timeout") * 1000.0);
    config.pool.unit_retries =
        static_cast<std::size_t>(cli.get_int("worker-retries"));
    if (cli.get_int("workers-remote") > 0) {
      if (cli.get_int("workers-listen") <= 0 ||
          cli.get_int("workers-listen") > 65535) {
        throw std::runtime_error(
            "--workers-remote needs --workers-listen <port>: per-job pools "
            "must rebind a port the daemons know");
      }
      config.pool.remote_workers =
          static_cast<std::size_t>(cli.get_int("workers-remote"));
      config.pool.listen_port =
          static_cast<std::uint16_t>(cli.get_int("workers-listen"));
      config.pool.handshake_timeout_ms = static_cast<std::uint64_t>(
          cli.get_double("handshake-timeout") * 1000.0);
    }
    config.pool.steal_after_ms =
        static_cast<std::uint64_t>(cli.get_double("steal-after") * 1000.0);

    serve::Server server{std::move(config)};
    server.start();
    std::printf("qhdl_serve: listening on %s:%u\n",
                cli.get_string("host").c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    const std::string port_file = cli.get_string("port-file");
    if (!port_file.empty()) {
      util::atomic_write_file(port_file,
                              std::to_string(server.port()) + "\n");
    }

    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    while (g_drain == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    util::log_info("qhdl_serve: drain requested, finishing in-flight jobs");
    server.stop();

    const serve::ServerStats stats = server.stats();
    std::printf(
        "qhdl_serve: done — %zu completed, %zu failed, %zu cancelled, "
        "%zu shed; cache %zu hits / %zu misses\n",
        stats.jobs_completed, stats.jobs_failed, stats.jobs_cancelled,
        stats.rejected_overloaded, stats.cache.unit_hits,
        stats.cache.unit_misses);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qhdl_serve: error: %s\n", e.what());
    return 1;
  }
}
