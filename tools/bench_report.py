#!/usr/bin/env python3
"""Run the google-benchmark micro benches and merge their JSON into one
BENCH_micro.json with repo metadata (git SHA, build flags) and ns/op plus
derived amps/sec per benchmark — the shape check_bench_regression.py
consumes. Stdlib only.

Usage:
  tools/bench_report.py [--build-dir build] [--out BENCH_micro.json]
                        [--filter REGEX] [--min-time SECONDS]
"""
import argparse
import json
import os
import subprocess
import sys

MICRO_BENCHES = ["bench/bench_micro_quantum", "bench/bench_micro_nn"]

TIME_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def git_sha(repo_root):
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_root, check=True,
            capture_output=True, text=True).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def run_bench(binary, filter_regex, min_time, out_path):
    cmd = [
        binary,
        "--benchmark_format=json",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if filter_regex:
        cmd.append(f"--benchmark_filter={filter_regex}")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path, encoding="utf-8") as handle:
        return json.load(handle)


def entries_from(report, binary_name):
    entries = []
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = TIME_UNIT_TO_NS.get(bench.get("time_unit", "ns"), 1.0)
        entry = {
            "name": f"{binary_name}/{bench['name']}",
            "ns_per_op": bench["cpu_time"] * scale,
            "real_ns_per_op": bench["real_time"] * scale,
            "iterations": bench.get("iterations", 0),
        }
        if "amps_per_sec" in bench:
            entry["amps_per_sec"] = bench["amps_per_sec"]
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        entries.append(entry)
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_micro.json")
    parser.add_argument("--filter", default="")
    parser.add_argument("--min-time", default="0.1")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    entries = []
    context = {}
    for rel in MICRO_BENCHES:
        binary = os.path.join(args.build_dir, rel)
        if not os.path.exists(binary):
            print(f"error: {binary} not built", file=sys.stderr)
            return 1
        name = os.path.basename(rel)
        raw_path = os.path.join(args.build_dir, f"{name}.raw.json")
        report = run_bench(binary, args.filter, args.min_time, raw_path)
        context = report.get("context", context)
        entries.extend(entries_from(report, name))

    merged = {
        "metadata": {
            "git_sha": git_sha(repo_root),
            "build_flags": " ".join(
                f"{k}={v}" for k, v in sorted(context.items())
                if k in ("library_build_type", "num_cpus", "mhz_per_cpu")),
            "force_generic_kernels": bool(
                os.environ.get("QHDL_FORCE_GENERIC_KERNELS", "")
                not in ("", "0")),
        },
        "benchmarks": entries,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out} ({len(entries)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
