#!/usr/bin/env python3
"""Run the google-benchmark micro benches and merge their JSON into one
BENCH_micro.json with repo metadata (git SHA, build flags) and ns/op plus
derived amps/sec per benchmark — the shape check_bench_regression.py
consumes. Stdlib only.

Committed BENCH JSONs also carry a "trajectory" array: one compact
{git_sha, ns_per_op-by-name} entry per recorded run, so the perf history of
the repo accumulates across commits instead of being overwritten. This tool
preserves the existing trajectory of --out, appends the fresh run, and with
--figs does the same for an already-regenerated BENCH_figs.json.

Usage:
  tools/bench_report.py [--build-dir build] [--out BENCH_micro.json]
                        [--filter REGEX] [--min-time SECONDS]
                        [--figs BENCH_figs.json]
"""
import argparse
import json
import os
import subprocess
import sys

MICRO_BENCHES = ["bench/bench_micro_quantum", "bench/bench_micro_nn"]

TIME_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def git_sha(repo_root):
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_root, check=True,
            capture_output=True, text=True).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def run_bench(binary, filter_regex, min_time, out_path):
    cmd = [
        binary,
        "--benchmark_format=json",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if filter_regex:
        cmd.append(f"--benchmark_filter={filter_regex}")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path, encoding="utf-8") as handle:
        return json.load(handle)


def entries_from(report, binary_name):
    entries = []
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = TIME_UNIT_TO_NS.get(bench.get("time_unit", "ns"), 1.0)
        entry = {
            "name": f"{binary_name}/{bench['name']}",
            "ns_per_op": bench["cpu_time"] * scale,
            "real_ns_per_op": bench["real_time"] * scale,
            "iterations": bench.get("iterations", 0),
        }
        if "amps_per_sec" in bench:
            entry["amps_per_sec"] = bench["amps_per_sec"]
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        entries.append(entry)
    return entries


TRAJECTORY_LIMIT = 50


def load_existing(path):
    """Parses the committed JSON at `path`, or {} when absent/corrupt."""
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {}


def appended_trajectory(existing, sha, entries):
    """Existing trajectory plus one entry for this run (newest last).

    Re-running on the same SHA replaces that SHA's entry instead of
    duplicating it; history is capped at TRAJECTORY_LIMIT entries.
    """
    trajectory = [
        point for point in existing.get("trajectory", [])
        if point.get("git_sha") != sha
    ]
    trajectory.append({
        "git_sha": sha,
        "ns_per_op": {
            e["name"]: e["ns_per_op"] for e in entries if "ns_per_op" in e
        },
    })
    return trajectory[-TRAJECTORY_LIMIT:]


def committed_trajectory(path, repo_root):
    """Trajectory array from the committed (HEAD) version of `path`."""
    try:
        rel = os.path.relpath(os.path.abspath(path), repo_root)
        blob = subprocess.run(
            ["git", "show", f"HEAD:{rel}"], cwd=repo_root, check=True,
            capture_output=True, text=True).stdout
        return json.loads(blob).get("trajectory", [])
    except (subprocess.CalledProcessError, FileNotFoundError,
            json.JSONDecodeError):
        return []


def stamp_figs_trajectory(path, sha, repo_root):
    """Folds a freshly regenerated BENCH_figs.json run into its trajectory.

    bench_figs_report (C++) overwrites the file wholesale — including any
    trajectory the working copy carried — so the accumulated history is
    recovered from the committed (HEAD) version of the file before the new
    run's numbers are appended.
    """
    doc = load_existing(path)
    if not doc.get("benchmarks"):
        print(f"warning: {path} missing or empty, trajectory not stamped",
              file=sys.stderr)
        return
    history = doc.get("trajectory") or committed_trajectory(path, repo_root)
    doc["trajectory"] = appended_trajectory(
        {"trajectory": history}, sha, doc["benchmarks"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"stamped trajectory entry in {path} "
          f"({len(doc['trajectory'])} points)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_micro.json")
    parser.add_argument("--filter", default="")
    parser.add_argument("--min-time", default="0.1")
    parser.add_argument(
        "--figs", default="",
        help="also append a trajectory entry to this (already regenerated) "
             "BENCH_figs.json")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    entries = []
    context = {}
    for rel in MICRO_BENCHES:
        binary = os.path.join(args.build_dir, rel)
        if not os.path.exists(binary):
            print(f"error: {binary} not built", file=sys.stderr)
            return 1
        name = os.path.basename(rel)
        raw_path = os.path.join(args.build_dir, f"{name}.raw.json")
        report = run_bench(binary, args.filter, args.min_time, raw_path)
        context = report.get("context", context)
        entries.extend(entries_from(report, name))

    sha = git_sha(repo_root)
    merged = {
        "metadata": {
            "git_sha": sha,
            "build_flags": " ".join(
                f"{k}={v}" for k, v in sorted(context.items())
                if k in ("library_build_type", "num_cpus", "mhz_per_cpu")),
            "force_generic_kernels": bool(
                os.environ.get("QHDL_FORCE_GENERIC_KERNELS", "")
                not in ("", "0")),
            "force_uncompiled": bool(
                os.environ.get("QHDL_FORCE_UNCOMPILED", "")
                not in ("", "0")),
        },
        "benchmarks": entries,
        "trajectory": appended_trajectory(
            load_existing(args.out), sha, entries),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out} ({len(entries)} benchmarks, "
          f"{len(merged['trajectory'])} trajectory points)")
    if args.figs:
        stamp_figs_trajectory(args.figs, sha, repo_root)
    return 0


if __name__ == "__main__":
    sys.exit(main())
