// Human-readable model summaries (Keras `model.summary()` style) combining
// the structural descriptors with the analytic FLOPs profile.
#pragma once

#include <string>

#include "nn/sequential.hpp"

namespace qhdl::nn {

/// Renders a per-layer table: name, output width, parameter count, plus
/// totals. (FLOPs live in flops::report_to_string, which has the cost
/// model; this summary is dependency-free.)
std::string summarize(const Sequential& model);

}  // namespace qhdl::nn
