#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace qhdl::nn {

using tensor::Tensor;

namespace {

LayerInfo elementwise_info(const char* kind, std::size_t declared_width,
                           const Tensor& cached) {
  LayerInfo li;
  li.kind = kind;
  const std::size_t width =
      declared_width > 0 ? declared_width
                         : (cached.rank() == 2 ? cached.cols() : 0);
  li.inputs = width;
  li.outputs = width;
  return li;
}

void require_cache(bool has_cache, const char* who) {
  if (!has_cache) {
    throw std::logic_error(std::string{who} + "::backward before forward");
  }
}

}  // namespace

Tensor Tanh::forward(const Tensor& input) {
  cached_output_ = input;
  for (std::size_t i = 0; i < cached_output_.size(); ++i) {
    cached_output_[i] = std::tanh(cached_output_[i]);
  }
  has_cache_ = true;
  return cached_output_;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  require_cache(has_cache_, "Tanh");
  tensor::check_same_shape(grad_output.shape(), cached_output_.shape(),
                           "Tanh::backward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double y = cached_output_[i];
    grad[i] *= 1.0 - y * y;
  }
  return grad;
}

LayerInfo Tanh::info() const { return elementwise_info("tanh", declared_width_, cached_output_); }

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  has_cache_ = true;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0) out[i] = 0.0;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  require_cache(has_cache_, "ReLU");
  tensor::check_same_shape(grad_output.shape(), cached_input_.shape(),
                           "ReLU::backward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (cached_input_[i] <= 0.0) grad[i] = 0.0;
  }
  return grad;
}

LayerInfo ReLU::info() const { return elementwise_info("relu", declared_width_, cached_input_); }

Tensor Sigmoid::forward(const Tensor& input) {
  cached_output_ = input;
  for (std::size_t i = 0; i < cached_output_.size(); ++i) {
    cached_output_[i] = 1.0 / (1.0 + std::exp(-cached_output_[i]));
  }
  has_cache_ = true;
  return cached_output_;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  require_cache(has_cache_, "Sigmoid");
  tensor::check_same_shape(grad_output.shape(), cached_output_.shape(),
                           "Sigmoid::backward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double y = cached_output_[i];
    grad[i] *= y * (1.0 - y);
  }
  return grad;
}

LayerInfo Sigmoid::info() const {
  return elementwise_info("sigmoid", declared_width_, cached_output_);
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_rows: expected rank-2 logits");
  }
  Tensor out = logits;
  const std::size_t rows = logits.rows(), cols = logits.cols();
  for (std::size_t i = 0; i < rows; ++i) {
    double row_max = out.at(i, 0);
    for (std::size_t j = 1; j < cols; ++j) {
      row_max = std::max(row_max, out.at(i, j));
    }
    double denom = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      const double e = std::exp(out.at(i, j) - row_max);
      out.at(i, j) = e;
      denom += e;
    }
    for (std::size_t j = 0; j < cols; ++j) out.at(i, j) /= denom;
  }
  return out;
}

Tensor Softmax::forward(const Tensor& input) {
  cached_output_ = softmax_rows(input);
  has_cache_ = true;
  return cached_output_;
}

Tensor Softmax::backward(const Tensor& grad_output) {
  require_cache(has_cache_, "Softmax");
  tensor::check_same_shape(grad_output.shape(), cached_output_.shape(),
                           "Softmax::backward");
  // Row-wise Jacobian-vector product: dx_j = y_j * (g_j - sum_k g_k y_k).
  Tensor grad = grad_output;
  const std::size_t rows = grad.rows(), cols = grad.cols();
  for (std::size_t i = 0; i < rows; ++i) {
    double dot = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      dot += grad_output.at(i, j) * cached_output_.at(i, j);
    }
    for (std::size_t j = 0; j < cols; ++j) {
      grad.at(i, j) =
          cached_output_.at(i, j) * (grad_output.at(i, j) - dot);
    }
  }
  return grad;
}

LayerInfo Softmax::info() const {
  return elementwise_info("softmax", declared_width_, cached_output_);
}

}  // namespace qhdl::nn
