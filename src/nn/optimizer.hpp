// Gradient-descent optimizers over a flat parameter list. The paper trains
// everything with Adam(lr=1e-3); SGD/Momentum are provided for baselines and
// tests.
#pragma once

#include <map>
#include <vector>

#include "nn/module.hpp"

namespace qhdl::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using each parameter's accumulated gradient.
  virtual void step(const std::vector<Parameter*>& parameters) = 0;

  /// Clears optimizer slots (moments); call when re-using an optimizer for a
  /// fresh model.
  virtual void reset() {}
};

/// Plain SGD: w -= lr * g.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate);
  void step(const std::vector<Parameter*>& parameters) override;

 private:
  double learning_rate_;
};

/// Classical momentum: v = mu*v + g; w -= lr*v.
class Momentum : public Optimizer {
 public:
  Momentum(double learning_rate, double momentum);
  void step(const std::vector<Parameter*>& parameters) override;
  void reset() override;

 private:
  double learning_rate_;
  double momentum_;
  std::map<Parameter*, tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction; Keras-default
/// beta1=0.9, beta2=0.999, eps=1e-7.
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-7);
  void step(const std::vector<Parameter*>& parameters) override;
  void reset() override;

 private:
  struct Slots {
    tensor::Tensor m;
    tensor::Tensor v;
  };
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  long step_count_ = 0;
  std::map<Parameter*, Slots> slots_;
};

}  // namespace qhdl::nn
