#include "nn/fastpath.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "util/backend_registry.hpp"

namespace qhdl::nn::fastpath {

std::string FastpathStatsSnapshot::to_string() const {
  std::ostringstream oss;
  oss << "nn fastpath: workspace_runs=" << workspace_runs
      << " reference_runs=" << reference_runs
      << " workspace_steps=" << workspace_steps;
  return oss.str();
}

namespace {

bool env_default() {
  // Env var wins when set ("0" = workspace fast path, anything else =
  // reference); otherwise the build-time default applies.
  const char* value = std::getenv("QHDL_FORCE_REFERENCE_NN");
  if (value != nullptr && value[0] != '\0') {
    return !(value[0] == '0' && value[1] == '\0');
  }
#ifdef QHDL_FORCE_REFERENCE_NN_DEFAULT
  return true;
#else
  return false;
#endif
}

// -1 = follow env/build default, 0 = workspace, 1 = reference.
std::atomic<int> g_force_override{-1};

struct Counters {
  std::atomic<std::uint64_t> workspace_runs{0};
  std::atomic<std::uint64_t> reference_runs{0};
  std::atomic<std::uint64_t> workspace_steps{0};
};

Counters& counters() {
  static Counters instance;
  return instance;
}

}  // namespace

bool force_reference() {
  const int override_value = g_force_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return override_value == 1;
  static const bool from_env = env_default();
  // The reference kernel backend (QHDL_BACKEND=reference) implies the
  // historical QHDL_FORCE_REFERENCE_NN escape hatch. Queried live (not
  // cached) so runtime backend switches in tests take effect.
  return from_env || util::simd::active_backend().reference;
}

void set_force_reference(std::optional<bool> forced) {
  g_force_override.store(forced.has_value() ? (*forced ? 1 : 0) : -1,
                         std::memory_order_relaxed);
}

void count_workspace_run() {
  counters().workspace_runs.fetch_add(1, std::memory_order_relaxed);
}

void count_reference_run() {
  counters().reference_runs.fetch_add(1, std::memory_order_relaxed);
}

void count_workspace_steps(std::uint64_t steps) {
  counters().workspace_steps.fetch_add(steps, std::memory_order_relaxed);
}

FastpathStatsSnapshot stats() {
  const Counters& c = counters();
  FastpathStatsSnapshot snapshot;
  snapshot.workspace_runs = c.workspace_runs.load(std::memory_order_relaxed);
  snapshot.reference_runs = c.reference_runs.load(std::memory_order_relaxed);
  snapshot.workspace_steps =
      c.workspace_steps.load(std::memory_order_relaxed);
  return snapshot;
}

void reset_stats() {
  Counters& c = counters();
  c.workspace_runs.store(0, std::memory_order_relaxed);
  c.reference_runs.store(0, std::memory_order_relaxed);
  c.workspace_steps.store(0, std::memory_order_relaxed);
}

}  // namespace qhdl::nn::fastpath
