// Fisher information of softmax classifiers.
//
// For model p_θ(y|x) = softmax(f_θ(x)) the Fisher information matrix is
//   F(θ) = E_x E_{y~p_θ(·|x)} [ ∇_θ log p_θ(y|x) ∇_θ log p_θ(y|x)ᵀ ],
// estimated here over a data batch with the exact inner expectation (all
// classes weighted by the model's own predictive probabilities). F drives
// the effective-dimension capacity measure (core/effective_dimension) that
// Abbas et al. (Nature Comput. Sci. 2021) used to argue quantum models have
// higher capacity — the measure the paper's conclusion (A3) calls for.
#pragma once

#include "nn/module.hpp"

namespace qhdl::nn {

/// Concatenates all parameter gradients into one flat vector (layer order).
tensor::Tensor flatten_parameter_gradients(Module& model);

/// Total number of trainable scalars (length of the flat gradient).
std::size_t flat_parameter_count(Module& model);

/// Empirical Fisher information matrix [P, P] over the rows of `x`.
/// Exact class expectation: for every sample, every class's score gradient
/// ∇ log p(y|x) = J_θᵀ(onehot_y − softmax) is weighted by p_θ(y|x).
/// Cost: rows(x) · classes forward+backward passes.
tensor::Tensor fisher_information(Module& model, const tensor::Tensor& x,
                                  std::size_t classes);

}  // namespace qhdl::nn
