#include "nn/serialize.hpp"

#include <stdexcept>

namespace qhdl::nn {

util::Json parameters_to_json(Module& model) {
  util::Json root = util::Json::object();
  root["format"] = util::Json{"qhdl-parameters-v1"};
  util::Json params = util::Json::array();
  for (const Parameter* p : model.parameters()) {
    util::Json entry = util::Json::object();
    entry["name"] = util::Json{p->name};
    entry["shape"] =
        util::Json::array_of(std::vector<double>(p->value.shape().dims().begin(),
                                                 p->value.shape().dims().end()));
    util::Json values = util::Json::array();
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      values.push_back(util::Json{p->value[i]});
    }
    entry["values"] = std::move(values);
    params.push_back(std::move(entry));
  }
  root["parameters"] = std::move(params);
  return root;
}

void parameters_from_json(Module& model, const util::Json& snapshot) {
  if (!snapshot.contains("format") ||
      snapshot.at("format").as_string() != "qhdl-parameters-v1") {
    throw std::invalid_argument("parameters_from_json: unknown format");
  }
  const util::Json& params = snapshot.at("parameters");
  const auto model_params = model.parameters();
  if (params.size() != model_params.size()) {
    throw std::invalid_argument(
        "parameters_from_json: parameter count mismatch (" +
        std::to_string(params.size()) + " stored vs " +
        std::to_string(model_params.size()) + " in model)");
  }
  for (std::size_t i = 0; i < model_params.size(); ++i) {
    const util::Json& entry = params.at(i);
    Parameter* target = model_params[i];
    if (entry.at("name").as_string() != target->name) {
      throw std::invalid_argument("parameters_from_json: name mismatch at #" +
                                  std::to_string(i));
    }
    const util::Json& shape = entry.at("shape");
    const auto& dims = target->value.shape().dims();
    if (shape.size() != dims.size()) {
      throw std::invalid_argument(
          "parameters_from_json: rank mismatch at #" + std::to_string(i));
    }
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (static_cast<std::size_t>(shape.at(d).as_number()) != dims[d]) {
        throw std::invalid_argument(
            "parameters_from_json: shape mismatch at #" + std::to_string(i));
      }
    }
    const util::Json& values = entry.at("values");
    if (values.size() != target->value.size()) {
      throw std::invalid_argument(
          "parameters_from_json: value count mismatch at #" +
          std::to_string(i));
    }
    for (std::size_t v = 0; v < target->value.size(); ++v) {
      target->value[v] = values.at(v).as_number();
    }
  }
}

void save_parameters(Module& model, const std::string& path) {
  parameters_to_json(model).write_file(path, /*indent=*/0);
}

void load_parameters(Module& model, const std::string& path) {
  parameters_from_json(model, util::Json::parse_file(path));
}

}  // namespace qhdl::nn
