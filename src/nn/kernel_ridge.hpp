// Kernel ridge classification (one-vs-rest least squares in kernel space).
//
// Given a precomputed kernel Gram matrix K [n, n] and labels, fits
//   α = (K + λ I)⁻¹ Y     (Y = ±1 one-vs-rest targets, one column per class)
// via Cholesky, and predicts argmax over class scores K_cross · α.
// Kernel-agnostic: pair with qnn::kernel_matrix (quantum fidelity kernel) or
// qnn::rbf_kernel_matrix (classical baseline).
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace qhdl::nn {

class KernelRidgeClassifier {
 public:
  /// `ridge` is the λ regularizer (> 0 keeps the solve well-posed).
  explicit KernelRidgeClassifier(double ridge = 1e-3);

  /// Fits from a precomputed symmetric Gram matrix over the training set.
  void fit(const tensor::Tensor& gram, std::span<const std::size_t> labels,
           std::size_t classes);

  /// Predicts scores from a cross-kernel matrix [m, n_train] -> [m, classes].
  tensor::Tensor decision_function(const tensor::Tensor& cross_kernel) const;

  /// Predicted class per row of the cross-kernel matrix.
  std::vector<std::size_t> predict(const tensor::Tensor& cross_kernel) const;

  /// Accuracy against ground truth.
  double score(const tensor::Tensor& cross_kernel,
               std::span<const std::size_t> labels) const;

  bool is_fitted() const { return fitted_; }
  std::size_t classes() const { return classes_; }
  std::size_t training_size() const { return training_size_; }

 private:
  double ridge_;
  bool fitted_ = false;
  std::size_t classes_ = 0;
  std::size_t training_size_ = 0;
  tensor::Tensor alpha_;  ///< [n_train, classes]
};

}  // namespace qhdl::nn
