// Preallocated training workspace for classical MLPs — the zero-allocation
// hot path of the grid searches.
//
// TrainWorkspace::compile inspects a Sequential and, when it is a pure
// classical stack (Dense layers with optional Tanh/ReLU/Sigmoid between
// them), builds a fused execution plan over preallocated buffers:
//
//   * forward:  blocked GEMM (tensor/gemm.hpp) straight into a preallocated
//     activation buffer, then one fused bias-add + activation pass;
//   * loss:     fused softmax-cross-entropy forward/gradient
//     (nn::detail::softmax_xent_forward_grad) into a preallocated gradient
//     buffer;
//   * backward: activation derivative in place, dW/db accumulated directly
//     into the layers' Parameter::grad tensors (GEMM accumulate mode, no
//     temporaries), dX into the previous stage's gradient buffer — and the
//     dX of the first layer, which nothing consumes, is skipped entirely;
//   * step:     Optimizer::step over a cached parameter list (Adam's slot
//     map allocates on the first step only).
//
// After the first step (warm-up: optimizer slots, GEMM packing scratch) a
// train_step performs ZERO heap allocations — enforced by the allocation-
// counting test in tests/nn/test_workspace_alloc.cpp.
//
// Arithmetic is bit-identical to the reference Module::forward/backward
// path: both route every matrix product through the same GEMM kernel, share
// the loss and accuracy cores, and order every floating-point accumulation
// identically (see DESIGN.md §9). The QHDL_FORCE_REFERENCE_NN escape hatch
// (nn/fastpath.hpp) forces train_classifier back onto the reference path so
// the equivalence is testable end to end.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace qhdl::nn {

class TrainWorkspace {
 public:
  /// True when `model` is a supported classical stack: a sequence of Dense
  /// layers, each optionally followed by one Tanh/ReLU/Sigmoid.
  static bool supports(const Sequential& model);

  /// Builds the workspace, preallocating every buffer for batches of up to
  /// `max_batch_rows` rows and eval passes of up to `max_eval_rows` rows.
  /// Returns nullptr when the model is unsupported (hybrid models fall back
  /// to the reference path).
  static std::unique_ptr<TrainWorkspace> compile(Sequential& model,
                                                 std::size_t max_batch_rows,
                                                 std::size_t max_eval_rows);

  /// One fused forward/backward/optimizer step on rows `rows` of
  /// (x, labels). Returns the batch mean loss. Zero heap allocations after
  /// warm-up.
  double train_step(const tensor::Tensor& x,
                    std::span<const std::size_t> labels,
                    std::span<const std::size_t> rows, Optimizer& optimizer);

  /// Full-dataset accuracy through the preallocated eval buffers (single
  /// forward pass, no gradient work, no allocation after warm-up).
  double evaluate_accuracy(const tensor::Tensor& x,
                           std::span<const std::size_t> labels);

  std::size_t features() const { return features_; }
  std::size_t classes() const { return classes_; }
  std::size_t max_batch_rows() const { return max_batch_rows_; }
  std::size_t max_eval_rows() const { return max_eval_rows_; }

 private:
  /// Activation fused into a dense stage (None for the logits layer).
  enum class FusedActivation { None, Tanh, ReLU, Sigmoid };

  struct Stage {
    Dense* dense = nullptr;
    FusedActivation activation = FusedActivation::None;
    std::size_t inputs = 0;
    std::size_t outputs = 0;
  };

  TrainWorkspace() = default;

  /// Forward for `m` rows of `input` through stage `s` into `out`.
  void stage_forward(const Stage& stage, const double* input, std::size_t m,
                     double* out) const;

  std::vector<Stage> stages_;
  std::vector<Parameter*> parameters_;
  std::size_t features_ = 0;
  std::size_t classes_ = 0;
  std::size_t max_batch_rows_ = 0;
  std::size_t max_eval_rows_ = 0;

  // Training buffers: gathered batch input, per-stage post-activation
  // outputs, and per-stage output gradients (all max_batch_rows x width).
  std::vector<double> x_batch_;
  std::vector<std::size_t> y_batch_;
  std::vector<std::vector<double>> activations_;
  std::vector<std::vector<double>> gradients_;

  // Eval scratch: two ping-pong buffers of max_eval_rows x max width.
  std::vector<double> eval_front_;
  std::vector<double> eval_back_;
};

}  // namespace qhdl::nn
