// Mini-batch training loop reproducing the paper's protocol:
// Adam(lr=1e-3), batch size 8, 100 epochs, record the highest train and
// validation accuracy reached across epochs (Section III-F).
#pragma once

#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace qhdl::nn {

struct EpochStats {
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
};

/// Raised by train_classifier when the non-finite guard trips: a NaN/Inf
/// batch loss, or non-finite parameters at the end of an epoch (the
/// footprint a NaN gradient leaves after the optimizer step). Carries enough
/// identity for the search layer to quarantine the run as a structured
/// RunFailure instead of aborting the sweep or poisoning the accuracy mean.
class NonFiniteError : public std::runtime_error {
 public:
  NonFiniteError(std::string what_kind, std::size_t epoch_index);

  /// "loss" or "parameters".
  const std::string& kind() const { return kind_; }
  /// 0-based epoch in which the guard tripped.
  std::size_t epoch() const { return epoch_; }

 private:
  std::string kind_;
  std::size_t epoch_;
};

struct TrainConfig {
  std::size_t epochs = 100;
  std::size_t batch_size = 8;
  double learning_rate = 1e-3;
  /// Non-finite guard: check every batch loss and, at each epoch end, every
  /// parameter for NaN/Inf; throw NonFiniteError instead of training on.
  /// Pure reads — never changes results of healthy runs on either path.
  bool finite_guard = true;
  /// Stops early once both best train and best val accuracy reach this
  /// value (0 disables). The paper's threshold is 0.90; stopping early is
  /// sound because only the best-so-far accuracies are recorded.
  double early_stop_accuracy = 0.0;
  bool shuffle = true;
  /// Early-stopping patience: stop when val accuracy has not improved for
  /// this many consecutive epochs (0 disables). Independent of
  /// early_stop_accuracy.
  std::size_t patience = 0;
  /// Optional per-epoch observer (epoch index, stats). Called after each
  /// epoch's evaluation; exceptions propagate and abort training.
  std::function<void(std::size_t, const EpochStats&)> on_epoch{};
};

struct TrainHistory {
  std::vector<EpochStats> epochs;
  double best_train_accuracy = 0.0;
  double best_val_accuracy = 0.0;
  std::size_t epochs_run = 0;
};

/// Trains `model` with softmax cross-entropy on (x_train, y_train),
/// evaluating on (x_val, y_val) each epoch. `rng` drives batch shuffling.
///
/// Classical Sequential models (Dense + Tanh/ReLU/Sigmoid stacks) train on
/// the zero-allocation workspace fast path (nn/workspace.hpp); anything else
/// — and everything when QHDL_FORCE_REFERENCE_NN is set (nn/fastpath.hpp) —
/// uses the reference Module::forward/backward path. Both paths produce
/// bit-identical TrainHistory values and consume the RNG identically.
TrainHistory train_classifier(Module& model, Optimizer& optimizer,
                              const tensor::Tensor& x_train,
                              std::span<const std::size_t> y_train,
                              const tensor::Tensor& x_val,
                              std::span<const std::size_t> y_val,
                              const TrainConfig& config, util::Rng& rng);

/// Evaluates accuracy of `model` on (x, y) without touching gradients.
double evaluate_accuracy(Module& model, const tensor::Tensor& x,
                         std::span<const std::size_t> y);

/// Extracts rows [begin, end) of a [N,F] matrix into a new tensor.
tensor::Tensor slice_rows(const tensor::Tensor& matrix,
                          std::span<const std::size_t> row_indices);

/// Gathers `row_indices` of a [N,F] matrix into a preallocated
/// [row_indices.size(), F] tensor (row-wise std::copy, no allocation).
void slice_rows_into(const tensor::Tensor& matrix,
                     std::span<const std::size_t> row_indices,
                     tensor::Tensor& out);

/// Learning-curve export: one CSV row per epoch
/// (epoch, train_loss, train_accuracy, val_accuracy).
std::string history_to_csv(const TrainHistory& history);

}  // namespace qhdl::nn
