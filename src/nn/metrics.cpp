#include "nn/metrics.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace qhdl::nn {

namespace detail {

double accuracy_rows(const double* logits, std::size_t rows,
                     std::size_t cols, const std::size_t* labels) {
  if (rows == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = logits + i * cols;
    std::size_t best = 0;
    double best_value = row[0];
    for (std::size_t j = 1; j < cols; ++j) {
      if (row[j] > best_value) {
        best_value = row[j];
        best = j;
      }
    }
    if (best == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows);
}

}  // namespace detail

double accuracy(const tensor::Tensor& logits,
                std::span<const std::size_t> labels) {
  if (logits.rank() != 2 || logits.rows() != labels.size()) {
    throw std::invalid_argument("accuracy: logits/labels mismatch");
  }
  return detail::accuracy_rows(logits.data().data(), logits.rows(),
                               logits.cols(), labels.data());
}

std::vector<std::size_t> predict_classes(const tensor::Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("predict_classes: rank-2 logits expected");
  }
  std::vector<std::size_t> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    out[i] = tensor::argmax_row(logits, i);
  }
  return out;
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    const tensor::Tensor& logits, std::span<const std::size_t> labels,
    std::size_t classes) {
  if (logits.rank() != 2 || logits.rows() != labels.size()) {
    throw std::invalid_argument("confusion_matrix: logits/labels mismatch");
  }
  std::vector<std::vector<std::size_t>> counts(
      classes, std::vector<std::size_t>(classes, 0));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::size_t actual = labels[i];
    const std::size_t predicted = tensor::argmax_row(logits, i);
    if (actual >= classes || predicted >= classes) {
      throw std::out_of_range("confusion_matrix: class index out of range");
    }
    ++counts[actual][predicted];
  }
  return counts;
}

}  // namespace qhdl::nn
