#include "nn/fisher.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "tensor/linalg.hpp"

namespace qhdl::nn {

using tensor::Shape;
using tensor::Tensor;

std::size_t flat_parameter_count(Module& model) {
  std::size_t total = 0;
  for (const Parameter* p : model.parameters()) total += p->value.size();
  return total;
}

Tensor flatten_parameter_gradients(Module& model) {
  Tensor flat{Shape{flat_parameter_count(model)}};
  std::size_t offset = 0;
  for (const Parameter* p : model.parameters()) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      flat[offset + i] = p->grad[i];
    }
    offset += p->grad.size();
  }
  return flat;
}

Tensor fisher_information(Module& model, const Tensor& x,
                          std::size_t classes) {
  if (x.rank() != 2 || x.rows() == 0) {
    throw std::invalid_argument("fisher_information: non-empty [N,F] input");
  }
  if (classes < 2) {
    throw std::invalid_argument("fisher_information: need >= 2 classes");
  }

  const std::size_t parameter_count = flat_parameter_count(model);
  Tensor fisher{Shape{parameter_count, parameter_count}};
  const double inv_samples = 1.0 / static_cast<double>(x.rows());

  Tensor sample{Shape{1, x.cols()}};
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) sample.at(0, j) = x.at(i, j);

    // Predictive distribution for this sample.
    const Tensor logits = model.forward(sample);
    if (logits.cols() != classes) {
      throw std::invalid_argument("fisher_information: model outputs " +
                                  std::to_string(logits.cols()) +
                                  " classes, expected " +
                                  std::to_string(classes));
    }
    const Tensor probs = softmax_rows(logits);

    for (std::size_t y = 0; y < classes; ++y) {
      const double p_y = probs.at(0, y);
      if (p_y < 1e-12) continue;  // negligible weight

      // ∇_logits log p(y|x) = onehot_y − softmax.
      Tensor upstream{Shape{1, classes}};
      for (std::size_t c = 0; c < classes; ++c) {
        upstream.at(0, c) = (c == y ? 1.0 : 0.0) - probs.at(0, c);
      }
      model.zero_grad();
      model.forward(sample);  // refresh caches for this backward
      model.backward(upstream);
      const Tensor grad = flatten_parameter_gradients(model);
      tensor::add_outer_product(fisher, grad, inv_samples * p_y);
    }
  }
  return fisher;
}

}  // namespace qhdl::nn
