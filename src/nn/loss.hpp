// Losses. Training uses the fused softmax + cross-entropy (numerically
// stable, gradient = softmax - onehot), matching Keras's
// SparseCategoricalCrossentropy(from_logits=True).
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace qhdl::nn {

/// Result of a loss evaluation: scalar mean loss and dL/d(logits).
struct LossResult {
  double value = 0.0;
  tensor::Tensor grad;  ///< same shape as the logits, already mean-reduced
};

/// Mean softmax cross-entropy over the batch from raw logits.
/// labels[i] in [0, classes).
class SoftmaxCrossEntropy {
 public:
  LossResult evaluate(const tensor::Tensor& logits,
                      std::span<const std::size_t> labels) const;
};

/// Mean squared error against a dense target of the same shape.
class MeanSquaredError {
 public:
  LossResult evaluate(const tensor::Tensor& predictions,
                      const tensor::Tensor& targets) const;
};

}  // namespace qhdl::nn
