// Losses. Training uses the fused softmax + cross-entropy (numerically
// stable, gradient = softmax - onehot), matching Keras's
// SparseCategoricalCrossentropy(from_logits=True).
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace qhdl::nn {

/// Result of a loss evaluation: scalar mean loss and dL/d(logits).
struct LossResult {
  double value = 0.0;
  tensor::Tensor grad;  ///< same shape as the logits, already mean-reduced
};

/// Mean softmax cross-entropy over the batch from raw logits.
/// labels[i] in [0, classes).
class SoftmaxCrossEntropy {
 public:
  LossResult evaluate(const tensor::Tensor& logits,
                      std::span<const std::size_t> labels) const;
};

/// Mean squared error against a dense target of the same shape.
class MeanSquaredError {
 public:
  LossResult evaluate(const tensor::Tensor& predictions,
                      const tensor::Tensor& targets) const;
};

namespace detail {

/// Fused softmax + cross-entropy forward/gradient on raw row-major buffers:
/// writes d(mean CE)/d(logits) into grad[batch*classes] and returns the mean
/// loss. The single core shared by SoftmaxCrossEntropy::evaluate and the
/// workspace trainer, so both training paths perform bit-identical
/// arithmetic. Throws std::out_of_range on a label >= classes.
double softmax_xent_forward_grad(const double* logits, std::size_t batch,
                                 std::size_t classes,
                                 const std::size_t* labels, double* grad);

}  // namespace detail

}  // namespace qhdl::nn
