#include "nn/summary.hpp"

#include <sstream>

#include "util/table.hpp"

namespace qhdl::nn {

std::string summarize(const Sequential& model) {
  util::Table table({"#", "layer", "kind", "in", "out", "params", "extra"});
  std::size_t total_params = 0;
  const auto infos = model.layer_infos();
  for (std::size_t i = 0; i < infos.size(); ++i) {
    const LayerInfo& info = infos[i];
    total_params += info.parameter_count;
    std::string extra;
    if (info.kind == "quantum") {
      extra = info.ansatz + " q=" + std::to_string(info.qubits) + " d=" +
              std::to_string(info.depth) + " gates=" +
              std::to_string(info.gate_count);
    }
    table.add_row({std::to_string(i), model.layer(i).name(), info.kind,
                   std::to_string(info.inputs), std::to_string(info.outputs),
                   std::to_string(info.parameter_count), extra});
  }
  std::ostringstream oss;
  oss << table.to_string();
  oss << "total trainable parameters: " << total_params << "\n";
  return oss.str();
}

}  // namespace qhdl::nn
