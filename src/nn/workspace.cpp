#include "nn/workspace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/fastpath.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "tensor/gemm.hpp"

namespace qhdl::nn {

namespace {

// Fused bias-add + activation epilogue over a GEMM result. Matches the
// reference path's arithmetic exactly: (z + b) first, then the activation
// on that double — the same two steps add_row_broadcast and the activation
// modules perform, just without a trip through intermediate tensors.
template <typename Act>
void bias_act_rows(double* out, std::size_t rows, std::size_t cols,
                   const double* bias, Act&& act) {
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = out + i * cols;
    for (std::size_t j = 0; j < cols; ++j) {
      row[j] = act(row[j] + bias[j]);
    }
  }
}

}  // namespace

bool TrainWorkspace::supports(const Sequential& model) {
  bool expect_dense = true;  // activations only allowed right after a Dense
  std::size_t dense_count = 0;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    const Module& layer = model.layer(i);
    if (dynamic_cast<const Dense*>(&layer) != nullptr) {
      expect_dense = false;
      ++dense_count;
      continue;
    }
    const bool is_activation = dynamic_cast<const Tanh*>(&layer) != nullptr ||
                               dynamic_cast<const ReLU*>(&layer) != nullptr ||
                               dynamic_cast<const Sigmoid*>(&layer) != nullptr;
    if (!is_activation || expect_dense) return false;
    expect_dense = true;  // at most one activation per Dense
  }
  return dense_count > 0;
}

std::unique_ptr<TrainWorkspace> TrainWorkspace::compile(
    Sequential& model, std::size_t max_batch_rows, std::size_t max_eval_rows) {
  if (!supports(model) || max_batch_rows == 0) return nullptr;

  std::unique_ptr<TrainWorkspace> ws{new TrainWorkspace()};
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    Module& layer = model.layer(i);
    if (auto* dense = dynamic_cast<Dense*>(&layer)) {
      Stage stage;
      stage.dense = dense;
      stage.inputs = dense->inputs();
      stage.outputs = dense->outputs();
      ws->stages_.push_back(stage);
    } else if (dynamic_cast<Tanh*>(&layer) != nullptr) {
      ws->stages_.back().activation = FusedActivation::Tanh;
    } else if (dynamic_cast<ReLU*>(&layer) != nullptr) {
      ws->stages_.back().activation = FusedActivation::ReLU;
    } else {
      ws->stages_.back().activation = FusedActivation::Sigmoid;
    }
  }
  // Widths must chain, otherwise the model would throw on forward anyway;
  // refuse to compile so the reference path reports the error.
  for (std::size_t s = 1; s < ws->stages_.size(); ++s) {
    if (ws->stages_[s].inputs != ws->stages_[s - 1].outputs) return nullptr;
  }

  ws->features_ = ws->stages_.front().inputs;
  ws->classes_ = ws->stages_.back().outputs;
  ws->max_batch_rows_ = max_batch_rows;
  ws->max_eval_rows_ = max_eval_rows;

  ws->parameters_ = model.parameters();
  ws->x_batch_.resize(max_batch_rows * ws->features_);
  ws->y_batch_.resize(max_batch_rows);
  ws->activations_.resize(ws->stages_.size());
  ws->gradients_.resize(ws->stages_.size());
  std::size_t max_width = ws->features_;
  for (std::size_t s = 0; s < ws->stages_.size(); ++s) {
    ws->activations_[s].resize(max_batch_rows * ws->stages_[s].outputs);
    ws->gradients_[s].resize(max_batch_rows * ws->stages_[s].outputs);
    max_width = std::max(max_width, ws->stages_[s].outputs);
  }
  ws->eval_front_.resize(max_eval_rows * max_width);
  ws->eval_back_.resize(max_eval_rows * max_width);
  return ws;
}

void TrainWorkspace::stage_forward(const Stage& stage, const double* input,
                                   std::size_t m, double* out) const {
  tensor::gemm::dgemm(m, stage.outputs, stage.inputs, input, stage.inputs,
                      /*a_transposed=*/false, stage.dense->weight().value.data().data(),
                      stage.outputs, /*b_transposed=*/false, out, stage.outputs,
                      /*accumulate=*/false);
  const double* bias = stage.dense->bias().value.data().data();
  switch (stage.activation) {
    case FusedActivation::None:
      bias_act_rows(out, m, stage.outputs, bias, [](double v) { return v; });
      break;
    case FusedActivation::Tanh:
      bias_act_rows(out, m, stage.outputs, bias,
                    [](double v) { return std::tanh(v); });
      break;
    case FusedActivation::ReLU:
      bias_act_rows(out, m, stage.outputs, bias,
                    [](double v) { return v < 0.0 ? 0.0 : v; });
      break;
    case FusedActivation::Sigmoid:
      bias_act_rows(out, m, stage.outputs, bias,
                    [](double v) { return 1.0 / (1.0 + std::exp(-v)); });
      break;
  }
}

double TrainWorkspace::train_step(const tensor::Tensor& x,
                                  std::span<const std::size_t> labels,
                                  std::span<const std::size_t> rows,
                                  Optimizer& optimizer) {
  const std::size_t m = rows.size();
  if (m == 0 || m > max_batch_rows_) {
    throw std::invalid_argument("TrainWorkspace::train_step: bad batch size");
  }
  if (x.rank() != 2 || x.cols() != features_ || x.rows() != labels.size()) {
    throw std::invalid_argument("TrainWorkspace::train_step: data mismatch");
  }

  // Gather the batch rows/labels into the preallocated buffers.
  const std::size_t n = x.rows();
  const double* xdata = x.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t r = rows[i];
    if (r >= n) {
      throw std::out_of_range("TrainWorkspace::train_step: row out of range");
    }
    std::copy(xdata + r * features_, xdata + (r + 1) * features_,
              x_batch_.data() + i * features_);
    y_batch_[i] = labels[r];
  }

  for (Parameter* p : parameters_) p->zero_grad();

  // Forward through every stage.
  const double* input = x_batch_.data();
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    stage_forward(stages_[s], input, m, activations_[s].data());
    input = activations_[s].data();
  }

  // Fused loss forward + gradient straight into the last gradient buffer.
  const double loss = detail::softmax_xent_forward_grad(
      activations_.back().data(), m, classes_, y_batch_.data(),
      gradients_.back().data());

  // Backward. Same per-layer arithmetic as the reference modules: activation
  // derivative in place, then dW += Xᵀ·dY, db += colsum(dY), dX = dY·Wᵀ.
  for (std::size_t s = stages_.size(); s-- > 0;) {
    const Stage& stage = stages_[s];
    double* grad = gradients_[s].data();
    const double* out = activations_[s].data();
    const std::size_t count = m * stage.outputs;
    switch (stage.activation) {
      case FusedActivation::None:
        break;
      case FusedActivation::Tanh:
        for (std::size_t i = 0; i < count; ++i) {
          const double y = out[i];
          grad[i] *= 1.0 - y * y;
        }
        break;
      case FusedActivation::ReLU:
        // output <= 0 exactly when the pre-activation input was <= 0, so the
        // reference mask (on the cached input) is reproduced from outputs.
        for (std::size_t i = 0; i < count; ++i) {
          if (out[i] <= 0.0) grad[i] = 0.0;
        }
        break;
      case FusedActivation::Sigmoid:
        for (std::size_t i = 0; i < count; ++i) {
          const double y = out[i];
          grad[i] *= y * (1.0 - y);
        }
        break;
    }

    const double* stage_input =
        s == 0 ? x_batch_.data() : activations_[s - 1].data();
    // dW += Xᵀ·dY, accumulated directly into the parameter gradient.
    tensor::gemm::dgemm(stage.inputs, stage.outputs, m, stage_input,
                        stage.inputs, /*a_transposed=*/true, grad,
                        stage.outputs, /*b_transposed=*/false,
                        stage.dense->weight().grad.data().data(),
                        stage.outputs, /*accumulate=*/true);
    // db += column sums of dY, in the same row-ascending order as sum_rows.
    double* bias_grad = stage.dense->bias().grad.data().data();
    for (std::size_t i = 0; i < m; ++i) {
      const double* grow = grad + i * stage.outputs;
      for (std::size_t j = 0; j < stage.outputs; ++j) bias_grad[j] += grow[j];
    }
    // dX = dY·Wᵀ into the previous stage's gradient buffer. The first
    // layer's input gradient is consumed by nothing — skip it.
    if (s > 0) {
      tensor::gemm::dgemm(m, stage.inputs, stage.outputs, grad, stage.outputs,
                          /*a_transposed=*/false,
                          stage.dense->weight().value.data().data(),
                          stage.outputs, /*b_transposed=*/true,
                          gradients_[s - 1].data(), stage.inputs,
                          /*accumulate=*/false);
    }
  }

  optimizer.step(parameters_);
  fastpath::count_workspace_steps(1);
  return loss;
}

double TrainWorkspace::evaluate_accuracy(const tensor::Tensor& x,
                                         std::span<const std::size_t> labels) {
  const std::size_t rows = x.rows();
  if (x.rank() != 2 || x.cols() != features_ || rows != labels.size()) {
    throw std::invalid_argument(
        "TrainWorkspace::evaluate_accuracy: data mismatch");
  }
  if (rows > max_eval_rows_) {
    throw std::invalid_argument(
        "TrainWorkspace::evaluate_accuracy: more rows than compiled for");
  }
  if (rows == 0) return 0.0;

  // Ping-pong forward through the two eval buffers.
  const double* input = x.data().data();
  double* front = eval_front_.data();
  double* back = eval_back_.data();
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    stage_forward(stages_[s], input, rows, front);
    input = front;
    std::swap(front, back);
  }
  return detail::accuracy_rows(input, rows, classes_, labels.data());
}

}  // namespace qhdl::nn
