#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "nn/fastpath.hpp"
#include "nn/metrics.hpp"
#include "nn/sequential.hpp"
#include "nn/workspace.hpp"
#include "util/csv.hpp"
#include "util/fault_injection.hpp"
#include "util/string_util.hpp"
#include "util/logging.hpp"

namespace qhdl::nn {

using tensor::Shape;
using tensor::Tensor;

NonFiniteError::NonFiniteError(std::string what_kind,
                               std::size_t epoch_index)
    : std::runtime_error("train_classifier: non-finite " + what_kind +
                         " at epoch " + std::to_string(epoch_index + 1)),
      kind_(std::move(what_kind)),
      epoch_(epoch_index) {}

namespace {

/// Epoch-end sweep over every trainable value. A NaN/Inf gradient that
/// slipped past the loss check leaves its footprint in the parameters after
/// the optimizer step, so this catches "gradient exploded but the loss still
/// looked finite" one epoch boundary later at O(P) cost.
bool parameters_all_finite(Module& model) {
  for (const Parameter* parameter : model.parameters()) {
    for (double v : parameter->value.data()) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

}  // namespace

void slice_rows_into(const Tensor& matrix,
                     std::span<const std::size_t> row_indices, Tensor& out) {
  if (matrix.rank() != 2) {
    throw std::invalid_argument("slice_rows: rank-2 input expected");
  }
  const std::size_t rows = matrix.rows(), cols = matrix.cols();
  if (out.rank() != 2 || out.rows() != row_indices.size() ||
      out.cols() != cols) {
    throw std::invalid_argument("slice_rows_into: bad output shape");
  }
  const double* src = matrix.data().data();
  double* dst = out.data().data();
  for (std::size_t i = 0; i < row_indices.size(); ++i) {
    const std::size_t r = row_indices[i];
    if (r >= rows) {
      throw std::out_of_range("slice_rows: row index out of range");
    }
    std::copy(src + r * cols, src + (r + 1) * cols, dst + i * cols);
  }
}

Tensor slice_rows(const Tensor& matrix,
                  std::span<const std::size_t> row_indices) {
  if (matrix.rank() != 2) {
    throw std::invalid_argument("slice_rows: rank-2 input expected");
  }
  Tensor out{Shape{row_indices.size(), matrix.cols()}};
  slice_rows_into(matrix, row_indices, out);
  return out;
}

double evaluate_accuracy(Module& model, const Tensor& x,
                         std::span<const std::size_t> y) {
  const Tensor logits = model.forward(x);
  return accuracy(logits, y);
}

TrainHistory train_classifier(Module& model, Optimizer& optimizer,
                              const Tensor& x_train,
                              std::span<const std::size_t> y_train,
                              const Tensor& x_val,
                              std::span<const std::size_t> y_val,
                              const TrainConfig& config, util::Rng& rng) {
  if (x_train.rank() != 2 || x_train.rows() != y_train.size()) {
    throw std::invalid_argument("train_classifier: train data mismatch");
  }
  if (x_val.rank() != 2 || x_val.rows() != y_val.size()) {
    throw std::invalid_argument("train_classifier: val data mismatch");
  }
  if (config.batch_size == 0) {
    throw std::invalid_argument("train_classifier: batch_size must be > 0");
  }

  const std::size_t n = x_train.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Workspace fast path: pure classical Sequential stacks train through a
  // preallocated, fused, zero-steady-state-allocation pipeline. Hybrid and
  // custom models — or QHDL_FORCE_REFERENCE_NN — use the reference Module
  // path below. Both produce bit-identical histories.
  std::unique_ptr<TrainWorkspace> workspace;
  if (!fastpath::force_reference()) {
    if (auto* sequential = dynamic_cast<Sequential*>(&model)) {
      workspace = TrainWorkspace::compile(
          *sequential, std::min(config.batch_size, n),
          std::max(n, x_val.rows()));
    }
  }
  if (workspace) {
    fastpath::count_workspace_run();
  } else {
    fastpath::count_reference_run();
  }

  // Reference-path batch buffers, reused across batches: one tensor for
  // full batches and (when n % batch_size != 0) one for the tail batch.
  const std::size_t full_rows = std::min(config.batch_size, n);
  const std::size_t tail_rows = n % config.batch_size;
  Tensor x_batch_full, x_batch_tail;
  std::vector<std::size_t> y_batch;
  if (!workspace && n > 0) {
    x_batch_full = Tensor{Shape{full_rows, x_train.cols()}};
    if (tail_rows != 0 && tail_rows != full_rows) {
      x_batch_tail = Tensor{Shape{tail_rows, x_train.cols()}};
    }
    y_batch.reserve(full_rows);
  }

  SoftmaxCrossEntropy loss_fn;
  TrainHistory history;
  history.epochs.reserve(config.epochs);
  double best_val_for_patience = -1.0;
  std::size_t epochs_without_improvement = 0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) rng.shuffle(order);

    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < n; begin += config.batch_size) {
      const std::size_t end = std::min(begin + config.batch_size, n);
      const std::span<const std::size_t> batch_rows{order.data() + begin,
                                                    end - begin};
      double batch_loss = 0.0;
      if (workspace) {
        batch_loss =
            workspace->train_step(x_train, y_train, batch_rows, optimizer);
      } else {
        Tensor& x_batch =
            batch_rows.size() == full_rows ? x_batch_full : x_batch_tail;
        slice_rows_into(x_train, batch_rows, x_batch);
        y_batch.resize(batch_rows.size());
        for (std::size_t i = 0; i < batch_rows.size(); ++i) {
          y_batch[i] = y_train[batch_rows[i]];
        }

        model.zero_grad();
        const Tensor logits = model.forward(x_batch);
        const LossResult loss = loss_fn.evaluate(logits, y_batch);
        model.backward(loss.grad);
        optimizer.step(model.parameters());

        batch_loss = loss.value;
      }
      if (util::FaultInjector::instance().poison_loss()) {
        batch_loss = std::numeric_limits<double>::quiet_NaN();
      }
      if (config.finite_guard && !std::isfinite(batch_loss)) {
        throw NonFiniteError("loss", epoch);
      }
      epoch_loss += batch_loss;
      ++batches;
    }
    if (config.finite_guard && !parameters_all_finite(model)) {
      throw NonFiniteError("parameters", epoch);
    }

    EpochStats stats;
    stats.train_loss = batches > 0 ? epoch_loss / static_cast<double>(batches)
                                   : 0.0;
    if (workspace) {
      stats.train_accuracy = workspace->evaluate_accuracy(x_train, y_train);
      stats.val_accuracy = workspace->evaluate_accuracy(x_val, y_val);
    } else {
      stats.train_accuracy = evaluate_accuracy(model, x_train, y_train);
      stats.val_accuracy = evaluate_accuracy(model, x_val, y_val);
    }
    history.epochs.push_back(stats);
    history.best_train_accuracy =
        std::max(history.best_train_accuracy, stats.train_accuracy);
    history.best_val_accuracy =
        std::max(history.best_val_accuracy, stats.val_accuracy);
    history.epochs_run = epoch + 1;

    util::log_debug("epoch " + std::to_string(epoch + 1) + "/" +
                    std::to_string(config.epochs) + " loss=" +
                    std::to_string(stats.train_loss) + " train_acc=" +
                    std::to_string(stats.train_accuracy) + " val_acc=" +
                    std::to_string(stats.val_accuracy));
    if (config.on_epoch) config.on_epoch(epoch, stats);

    if (config.early_stop_accuracy > 0.0 &&
        history.best_train_accuracy >= config.early_stop_accuracy &&
        history.best_val_accuracy >= config.early_stop_accuracy) {
      break;
    }
    if (config.patience > 0) {
      // Standard patience semantics: only a STRICT improvement resets the
      // counter, so saturated validation accuracy also triggers the stop.
      if (stats.val_accuracy > best_val_for_patience) {
        best_val_for_patience = stats.val_accuracy;
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >= config.patience) {
        break;
      }
    }
  }
  return history;
}

std::string history_to_csv(const TrainHistory& history) {
  util::CsvWriter csv({"epoch", "train_loss", "train_accuracy",
                       "val_accuracy"});
  for (std::size_t e = 0; e < history.epochs.size(); ++e) {
    const EpochStats& stats = history.epochs[e];
    csv.add_row({std::to_string(e + 1),
                 util::format_double(stats.train_loss, 6),
                 util::format_double(stats.train_accuracy, 6),
                 util::format_double(stats.val_accuracy, 6)});
  }
  return csv.to_string();
}

}  // namespace qhdl::nn
