// Ordered container of Modules with chained forward/backward.
#pragma once

#include <memory>

#include "nn/module.hpp"

namespace qhdl::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for fluent building.
  Sequential& add(std::unique_ptr<Module> layer);

  /// Emplace-style append.
  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto layer = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  LayerInfo info() const override;
  std::string name() const override;

  std::size_t layer_count() const { return layers_.size(); }
  Module& layer(std::size_t index) { return *layers_.at(index); }
  const Module& layer(std::size_t index) const { return *layers_.at(index); }

  /// Per-layer descriptors in order (for profiling/reports).
  std::vector<LayerInfo> layer_infos() const;

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace qhdl::nn
