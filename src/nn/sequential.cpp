#include "nn/sequential.hpp"

#include <stdexcept>

namespace qhdl::nn {

using tensor::Tensor;

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> all;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) all.push_back(p);
  }
  return all;
}

LayerInfo Sequential::info() const {
  LayerInfo li;
  li.kind = "sequential";
  if (!layers_.empty()) {
    li.inputs = layers_.front()->info().inputs;
    li.outputs = layers_.back()->info().outputs;
  }
  for (const auto& layer : layers_) {
    li.parameter_count += layer->info().parameter_count;
  }
  return li;
}

std::string Sequential::name() const {
  std::string out = "Sequential[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) out += ", ";
    out += layers_[i]->name();
  }
  return out + "]";
}

std::vector<LayerInfo> Sequential::layer_infos() const {
  std::vector<LayerInfo> infos;
  infos.reserve(layers_.size());
  for (const auto& layer : layers_) infos.push_back(layer->info());
  return infos;
}

}  // namespace qhdl::nn
