// Elementwise activations and Softmax. Each caches what its backward needs.
#pragma once

#include "nn/module.hpp"

namespace qhdl::nn {

/// tanh(x); backward uses dL/dx = dL/dy * (1 - y^2).
/// `width` (optional) declares the per-sample element count so the FLOPs
/// profiler can describe the layer before any forward pass runs.
class Tanh : public Module {
 public:
  explicit Tanh(std::size_t width = 0) : declared_width_(width) {}
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  LayerInfo info() const override;
  std::string name() const override { return "Tanh"; }

 private:
  std::size_t declared_width_;
  tensor::Tensor cached_output_;
  bool has_cache_ = false;
};

/// max(0, x); backward masks by the sign of the input.
class ReLU : public Module {
 public:
  explicit ReLU(std::size_t width = 0) : declared_width_(width) {}
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  LayerInfo info() const override;
  std::string name() const override { return "ReLU"; }

 private:
  std::size_t declared_width_;
  tensor::Tensor cached_input_;
  bool has_cache_ = false;
};

/// 1 / (1 + exp(-x)); backward uses y(1-y).
class Sigmoid : public Module {
 public:
  explicit Sigmoid(std::size_t width = 0) : declared_width_(width) {}
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  LayerInfo info() const override;
  std::string name() const override { return "Sigmoid"; }

 private:
  std::size_t declared_width_;
  tensor::Tensor cached_output_;
  bool has_cache_ = false;
};

/// Row-wise softmax with the max-subtraction trick. For training prefer the
/// fused SoftmaxCrossEntropy loss; this module exists for inference pipelines
/// and for testing the standalone Jacobian.
class Softmax : public Module {
 public:
  explicit Softmax(std::size_t width = 0) : declared_width_(width) {}
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  LayerInfo info() const override;
  std::string name() const override { return "Softmax"; }

 private:
  std::size_t declared_width_;
  tensor::Tensor cached_output_;
  bool has_cache_ = false;
};

/// Row-wise softmax as a free function (used by losses and metrics).
tensor::Tensor softmax_rows(const tensor::Tensor& logits);

}  // namespace qhdl::nn
