// Classification metrics over logits.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace qhdl::nn {

/// Fraction of rows where argmax(logits) == label.
double accuracy(const tensor::Tensor& logits,
                std::span<const std::size_t> labels);

/// Predicted class per row.
std::vector<std::size_t> predict_classes(const tensor::Tensor& logits);

/// classes x classes confusion matrix; [actual][predicted] counts.
std::vector<std::vector<std::size_t>> confusion_matrix(
    const tensor::Tensor& logits, std::span<const std::size_t> labels,
    std::size_t classes);

namespace detail {

/// Raw-buffer accuracy core (argmax per row, strict >, first max wins) —
/// shared by nn::accuracy and the workspace trainer's eval pass so both
/// paths agree exactly.
double accuracy_rows(const double* logits, std::size_t rows,
                     std::size_t cols, const std::size_t* labels);

}  // namespace detail

}  // namespace qhdl::nn
