// Classical-training fast-path configuration and observability.
//
// train_classifier routes classical Sequential models through the
// preallocated workspace trainer (nn/workspace.hpp): fused GEMM + bias +
// activation forward, fused softmax-cross-entropy loss, in-place backward
// and Adam step with zero steady-state heap allocations. This header owns
//   * the QHDL_FORCE_REFERENCE_NN escape hatch (env var, CMake option, or
//     runtime override, mirroring QHDL_FORCE_GENERIC_KERNELS in
//     quantum/kernels.hpp) that forces every training run back onto the
//     reference Module::forward/backward path for equivalence testing, and
//   * per-path run/step counters so tests and benchmarks can assert which
//     path actually executed.
//
// Counters are process-global relaxed atomics: diagnostics, never control
// flow.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace qhdl::nn::fastpath {

/// Point-in-time copy of the dispatch counters.
struct FastpathStatsSnapshot {
  std::uint64_t workspace_runs = 0;   ///< train_classifier calls on the
                                      ///< workspace path
  std::uint64_t reference_runs = 0;   ///< calls on the Module reference path
  std::uint64_t workspace_steps = 0;  ///< fused train steps executed
  std::string to_string() const;
};

/// True when the escape hatch is active: the QHDL_FORCE_REFERENCE_NN
/// environment variable is set to anything but "0"/"" at first use, the
/// CMake option of the same name was ON at build time, or a test override
/// is in place.
bool force_reference();

/// Test override: true/false forces the mode, nullopt restores the
/// env/build-time default. Not thread-safe against concurrently running
/// training (flip it only between runs).
void set_force_reference(std::optional<bool> forced);

// Counter bumps (relaxed; called once per run / per step).
void count_workspace_run();
void count_reference_run();
void count_workspace_steps(std::uint64_t steps);

/// Copies the current counters.
FastpathStatsSnapshot stats();

/// Zeroes all counters (tests / bench epochs).
void reset_stats();

}  // namespace qhdl::nn::fastpath
