#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace qhdl::nn {

using tensor::Tensor;

namespace detail {

double softmax_xent_forward_grad(const double* logits, std::size_t batch,
                                 std::size_t classes,
                                 const std::size_t* labels, double* grad) {
  double total = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    if (labels[i] >= classes) {
      throw std::out_of_range("SoftmaxCrossEntropy: label out of range");
    }
    const double* lrow = logits + i * classes;
    double* grow = grad + i * classes;
    // Row softmax with the max-subtraction trick (same arithmetic as
    // softmax_rows in activations.cpp).
    double row_max = lrow[0];
    for (std::size_t j = 1; j < classes; ++j) {
      row_max = std::max(row_max, lrow[j]);
    }
    double denom = 0.0;
    for (std::size_t j = 0; j < classes; ++j) {
      const double e = std::exp(lrow[j] - row_max);
      grow[j] = e;
      denom += e;
    }
    for (std::size_t j = 0; j < classes; ++j) grow[j] /= denom;
    // Clamp to avoid log(0) when a probability underflows.
    const double p = std::max(grow[labels[i]], 1e-300);
    total -= std::log(p);
  }
  // d(mean CE)/d(logit) = (softmax - onehot) / batch.
  const double inv_batch = 1.0 / static_cast<double>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    double* grow = grad + i * classes;
    grow[labels[i]] -= 1.0;
    for (std::size_t j = 0; j < classes; ++j) grow[j] *= inv_batch;
  }
  return total / static_cast<double>(batch);
}

}  // namespace detail

LossResult SoftmaxCrossEntropy::evaluate(
    const Tensor& logits, std::span<const std::size_t> labels) const {
  if (logits.rank() != 2) {
    throw std::invalid_argument("SoftmaxCrossEntropy: rank-2 logits expected");
  }
  const std::size_t batch = logits.rows(), classes = logits.cols();
  if (labels.size() != batch) {
    throw std::invalid_argument("SoftmaxCrossEntropy: batch " +
                                std::to_string(batch) + " vs labels " +
                                std::to_string(labels.size()));
  }
  LossResult result;
  result.grad = Tensor{tensor::Shape{batch, classes}};
  result.value = detail::softmax_xent_forward_grad(
      logits.data().data(), batch, classes, labels.data(),
      result.grad.data().data());
  return result;
}

LossResult MeanSquaredError::evaluate(const Tensor& predictions,
                                      const Tensor& targets) const {
  tensor::check_same_shape(predictions.shape(), targets.shape(),
                           "MeanSquaredError");
  LossResult result;
  result.grad = tensor::subtract(predictions, targets);
  double total = 0.0;
  for (std::size_t i = 0; i < result.grad.size(); ++i) {
    total += result.grad[i] * result.grad[i];
  }
  const double n = static_cast<double>(result.grad.size());
  result.value = total / n;
  tensor::scale_inplace(result.grad, 2.0 / n);
  return result;
}

}  // namespace qhdl::nn
