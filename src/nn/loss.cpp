#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "tensor/ops.hpp"

namespace qhdl::nn {

using tensor::Tensor;

LossResult SoftmaxCrossEntropy::evaluate(
    const Tensor& logits, std::span<const std::size_t> labels) const {
  if (logits.rank() != 2) {
    throw std::invalid_argument("SoftmaxCrossEntropy: rank-2 logits expected");
  }
  const std::size_t batch = logits.rows(), classes = logits.cols();
  if (labels.size() != batch) {
    throw std::invalid_argument("SoftmaxCrossEntropy: batch " +
                                std::to_string(batch) + " vs labels " +
                                std::to_string(labels.size()));
  }
  Tensor probs = softmax_rows(logits);
  double total = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    if (labels[i] >= classes) {
      throw std::out_of_range("SoftmaxCrossEntropy: label out of range");
    }
    // Clamp to avoid log(0) when a probability underflows.
    const double p = std::max(probs.at(i, labels[i]), 1e-300);
    total -= std::log(p);
  }

  LossResult result;
  result.value = total / static_cast<double>(batch);
  // d(mean CE)/d(logit) = (softmax - onehot) / batch.
  result.grad = std::move(probs);
  const double inv_batch = 1.0 / static_cast<double>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    result.grad.at(i, labels[i]) -= 1.0;
    for (std::size_t j = 0; j < classes; ++j) {
      result.grad.at(i, j) *= inv_batch;
    }
  }
  return result;
}

LossResult MeanSquaredError::evaluate(const Tensor& predictions,
                                      const Tensor& targets) const {
  tensor::check_same_shape(predictions.shape(), targets.shape(),
                           "MeanSquaredError");
  LossResult result;
  result.grad = tensor::subtract(predictions, targets);
  double total = 0.0;
  for (std::size_t i = 0; i < result.grad.size(); ++i) {
    total += result.grad[i] * result.grad[i];
  }
  const double n = static_cast<double>(result.grad.size());
  result.value = total / n;
  tensor::scale_inplace(result.grad, 2.0 / n);
  return result;
}

}  // namespace qhdl::nn
