// Fully-connected layer: Y = X·W + b, Keras-default Glorot-uniform kernel
// and zero bias (matching the paper's TensorFlow models).
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace qhdl::nn {

class Dense : public Module {
 public:
  /// Initializes W ~ GlorotUniform(in,out), b = 0.
  Dense(std::size_t inputs, std::size_t outputs, util::Rng& rng);

  /// Takes explicit weights (tests / serialization). W: [in,out], b: [1,out].
  Dense(tensor::Tensor weight, tensor::Tensor bias);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  LayerInfo info() const override;
  std::string name() const override;

  std::size_t inputs() const { return inputs_; }
  std::size_t outputs() const { return outputs_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::size_t inputs_;
  std::size_t outputs_;
  Parameter weight_;
  Parameter bias_;
  tensor::Tensor cached_input_;  ///< saved by forward for dW computation
  bool has_cached_input_ = false;
};

}  // namespace qhdl::nn
