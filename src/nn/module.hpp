// Layer-based reverse-mode differentiation.
//
// Each Module implements forward(batch) and backward(grad_output); backward
// both returns the gradient w.r.t. the module input (propagated upstream) and
// accumulates gradients into its Parameters. This mirrors the paper's
// Keras-style training loop while keeping the gradient path fully inspectable
// and testable (see tests/test_nn_gradcheck.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace qhdl::nn {

/// A trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;

  Parameter(std::string parameter_name, tensor::Tensor initial)
      : name(std::move(parameter_name)),
        value(std::move(initial)),
        grad(tensor::Tensor::zeros(value.shape())) {}

  void zero_grad() { grad.fill(0.0); }
  std::size_t size() const { return value.size(); }
};

/// Structural description of a layer, consumed by the FLOPs profiler
/// (flops::CostModel) without coupling nn to the flops module.
struct LayerInfo {
  std::string kind;              ///< "dense", "tanh", "relu", "sigmoid",
                                 ///< "softmax", "quantum"
  std::size_t inputs = 0;        ///< per-sample input width
  std::size_t outputs = 0;       ///< per-sample output width
  std::size_t parameter_count = 0;

  // Quantum-layer extras (zero / empty for classical layers).
  std::size_t qubits = 0;
  std::size_t depth = 0;
  std::string ansatz;            ///< "bel" or "sel"
  std::size_t gate_count = 0;        ///< total circuit ops incl. encoding
  std::size_t param_gate_count = 0;  ///< parameterized (rotation) ops
  std::size_t encoding_gate_count = 0;
};

/// Base class for differentiable layers.
class Module {
 public:
  virtual ~Module() = default;

  /// Forward pass on a batch [B, inputs] -> [B, outputs]. May cache
  /// activations needed by backward.
  virtual tensor::Tensor forward(const tensor::Tensor& input) = 0;

  /// Backward pass: given dL/d(output) [B, outputs], accumulates parameter
  /// gradients and returns dL/d(input) [B, inputs]. Must be called after a
  /// matching forward().
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Structural descriptor for profiling/reporting.
  virtual LayerInfo info() const = 0;

  /// Human-readable one-liner, e.g. "Dense(10 -> 6)".
  virtual std::string name() const = 0;

  void zero_grad();

  /// Total trainable scalar count.
  std::size_t parameter_count();
};

}  // namespace qhdl::nn
