// Weight serialization: persist a trained model's parameters as JSON and
// restore them into a freshly built model of the same architecture
// (architecture itself is reconstructed from its ModelSpec / config — this
// module only moves the numbers).
#pragma once

#include <string>

#include "nn/module.hpp"
#include "util/json.hpp"

namespace qhdl::nn {

/// Snapshot of all parameters: names, shapes, and flat values, in layer
/// order.
util::Json parameters_to_json(Module& model);

/// Restores parameters captured by parameters_to_json. Throws
/// std::invalid_argument if the count, order, names, or shapes don't match
/// the model's current parameters.
void parameters_from_json(Module& model, const util::Json& snapshot);

/// Convenience file round-trip.
void save_parameters(Module& model, const std::string& path);
void load_parameters(Module& model, const std::string& path);

}  // namespace qhdl::nn
