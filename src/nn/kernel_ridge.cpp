#include "nn/kernel_ridge.hpp"

#include <stdexcept>

#include "tensor/linalg.hpp"
#include "tensor/ops.hpp"

namespace qhdl::nn {

using tensor::Shape;
using tensor::Tensor;

KernelRidgeClassifier::KernelRidgeClassifier(double ridge) : ridge_(ridge) {
  if (ridge <= 0.0) {
    throw std::invalid_argument("KernelRidgeClassifier: ridge must be > 0");
  }
}

void KernelRidgeClassifier::fit(const Tensor& gram,
                                std::span<const std::size_t> labels,
                                std::size_t classes) {
  if (gram.rank() != 2 || gram.rows() != gram.cols()) {
    throw std::invalid_argument("KernelRidgeClassifier::fit: square Gram");
  }
  if (labels.size() != gram.rows()) {
    throw std::invalid_argument(
        "KernelRidgeClassifier::fit: label count mismatch");
  }
  if (classes < 2) {
    throw std::invalid_argument(
        "KernelRidgeClassifier::fit: need >= 2 classes");
  }
  const std::size_t n = gram.rows();
  Tensor targets{Shape{n, classes}};
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] >= classes) {
      throw std::out_of_range("KernelRidgeClassifier::fit: label range");
    }
    for (std::size_t c = 0; c < classes; ++c) {
      targets.at(i, c) = labels[i] == c ? 1.0 : -1.0;
    }
  }
  alpha_ = tensor::solve_spd(gram, targets, ridge_);
  classes_ = classes;
  training_size_ = n;
  fitted_ = true;
}

Tensor KernelRidgeClassifier::decision_function(
    const Tensor& cross_kernel) const {
  if (!fitted_) {
    throw std::logic_error("KernelRidgeClassifier: not fitted");
  }
  if (cross_kernel.rank() != 2 || cross_kernel.cols() != training_size_) {
    throw std::invalid_argument(
        "KernelRidgeClassifier: cross-kernel must be [m, n_train]");
  }
  return tensor::matmul(cross_kernel, alpha_);
}

std::vector<std::size_t> KernelRidgeClassifier::predict(
    const Tensor& cross_kernel) const {
  const Tensor scores = decision_function(cross_kernel);
  std::vector<std::size_t> predictions(scores.rows());
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    predictions[i] = tensor::argmax_row(scores, i);
  }
  return predictions;
}

double KernelRidgeClassifier::score(
    const Tensor& cross_kernel, std::span<const std::size_t> labels) const {
  const auto predictions = predict(cross_kernel);
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("KernelRidgeClassifier::score: size");
  }
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace qhdl::nn
