#include "nn/dense.hpp"

#include <stdexcept>

#include "tensor/init.hpp"
#include "tensor/ops.hpp"

namespace qhdl::nn {

using tensor::Shape;
using tensor::Tensor;

Dense::Dense(std::size_t inputs, std::size_t outputs, util::Rng& rng)
    : inputs_(inputs),
      outputs_(outputs),
      weight_("W", tensor::glorot_uniform(inputs, outputs, rng)),
      bias_("b", Tensor::zeros(Shape{1, outputs})) {
  if (inputs == 0 || outputs == 0) {
    throw std::invalid_argument("Dense: zero-sized layer");
  }
}

Dense::Dense(Tensor weight, Tensor bias)
    : inputs_(weight.rows()),
      outputs_(weight.cols()),
      weight_("W", std::move(weight)),
      bias_("b", std::move(bias)) {
  if (bias_.value.size() != outputs_) {
    throw std::invalid_argument("Dense: bias size != outputs");
  }
}

Tensor Dense::forward(const Tensor& input) {
  if (input.rank() != 2 || input.cols() != inputs_) {
    throw std::invalid_argument("Dense::forward: expected [B, " +
                                std::to_string(inputs_) + "], got " +
                                input.shape().to_string());
  }
  cached_input_ = input;
  has_cached_input_ = true;
  return tensor::add_row_broadcast(tensor::matmul(input, weight_.value),
                                   bias_.value);
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (!has_cached_input_) {
    throw std::logic_error("Dense::backward called before forward");
  }
  if (grad_output.rank() != 2 || grad_output.cols() != outputs_ ||
      grad_output.rows() != cached_input_.rows()) {
    throw std::invalid_argument("Dense::backward: grad shape " +
                                grad_output.shape().to_string() +
                                " mismatches forward batch");
  }
  // dW = Xᵀ·dY, db = column-sum(dY), dX = dY·Wᵀ.
  tensor::add_inplace(weight_.grad,
                      tensor::matmul_transpose_a(cached_input_, grad_output));
  tensor::add_inplace(bias_.grad, tensor::sum_rows(grad_output));
  return tensor::matmul_transpose_b(grad_output, weight_.value);
}

std::vector<Parameter*> Dense::parameters() { return {&weight_, &bias_}; }

LayerInfo Dense::info() const {
  LayerInfo li;
  li.kind = "dense";
  li.inputs = inputs_;
  li.outputs = outputs_;
  li.parameter_count = weight_.value.size() + bias_.value.size();
  return li;
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(inputs_) + " -> " +
         std::to_string(outputs_) + ")";
}

}  // namespace qhdl::nn
