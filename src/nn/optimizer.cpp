#include "nn/optimizer.hpp"

#include <cmath>

namespace qhdl::nn {

using tensor::Tensor;

Sgd::Sgd(double learning_rate) : learning_rate_(learning_rate) {}

void Sgd::step(const std::vector<Parameter*>& parameters) {
  for (Parameter* p : parameters) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->value[i] -= learning_rate_ * p->grad[i];
    }
  }
}

Momentum::Momentum(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {}

void Momentum::step(const std::vector<Parameter*>& parameters) {
  for (Parameter* p : parameters) {
    auto [it, inserted] =
        velocity_.try_emplace(p, Tensor::zeros(p->value.shape()));
    Tensor& v = it->second;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      v[i] = momentum_ * v[i] + p->grad[i];
      p->value[i] -= learning_rate_ * v[i];
    }
  }
}

void Momentum::reset() { velocity_.clear(); }

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

void Adam::step(const std::vector<Parameter*>& parameters) {
  ++step_count_;
  const double t = static_cast<double>(step_count_);
  const double bias1 = 1.0 - std::pow(beta1_, t);
  const double bias2 = 1.0 - std::pow(beta2_, t);
  for (Parameter* p : parameters) {
    auto [it, inserted] = slots_.try_emplace(
        p, Slots{Tensor::zeros(p->value.shape()),
                 Tensor::zeros(p->value.shape())});
    Slots& s = it->second;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double g = p->grad[i];
      s.m[i] = beta1_ * s.m[i] + (1.0 - beta1_) * g;
      s.v[i] = beta2_ * s.v[i] + (1.0 - beta2_) * g * g;
      const double m_hat = s.m[i] / bias1;
      const double v_hat = s.v[i] / bias2;
      p->value[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

void Adam::reset() {
  slots_.clear();
  step_count_ = 0;
}

}  // namespace qhdl::nn
