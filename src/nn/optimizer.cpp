#include "nn/optimizer.hpp"

#include <cmath>

namespace qhdl::nn {

using tensor::Tensor;

Sgd::Sgd(double learning_rate) : learning_rate_(learning_rate) {}

void Sgd::step(const std::vector<Parameter*>& parameters) {
  const double lr = learning_rate_;
  for (Parameter* p : parameters) {
    double* __restrict value = p->value.data().data();
    const double* __restrict grad = p->grad.data().data();
    const std::size_t size = p->value.size();
    for (std::size_t i = 0; i < size; ++i) {
      value[i] -= lr * grad[i];
    }
  }
}

Momentum::Momentum(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {}

void Momentum::step(const std::vector<Parameter*>& parameters) {
  for (Parameter* p : parameters) {
    // find-then-insert: the zero tensor must only be built on first sight of
    // a parameter, so steady-state steps stay allocation-free.
    auto it = velocity_.find(p);
    if (it == velocity_.end()) {
      it = velocity_.emplace(p, Tensor::zeros(p->value.shape())).first;
    }
    double* __restrict v = it->second.data().data();
    double* __restrict value = p->value.data().data();
    const double* __restrict grad = p->grad.data().data();
    const std::size_t size = p->value.size();
    const double lr = learning_rate_;
    const double mu = momentum_;
    for (std::size_t i = 0; i < size; ++i) {
      v[i] = mu * v[i] + grad[i];
      value[i] -= lr * v[i];
    }
  }
}

void Momentum::reset() { velocity_.clear(); }

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

void Adam::step(const std::vector<Parameter*>& parameters) {
  ++step_count_;
  const double t = static_cast<double>(step_count_);
  const double bias1 = 1.0 - std::pow(beta1_, t);
  const double bias2 = 1.0 - std::pow(beta2_, t);
  for (Parameter* p : parameters) {
    // find-then-insert: slot tensors are built once per parameter, keeping
    // steady-state steps allocation-free (the workspace trainer relies on
    // this; tests/nn/test_workspace_alloc.cpp enforces it).
    auto it = slots_.find(p);
    if (it == slots_.end()) {
      it = slots_
               .emplace(p, Slots{Tensor::zeros(p->value.shape()),
                                 Tensor::zeros(p->value.shape())})
               .first;
    }
    Slots& s = it->second;
    // Restrict-qualified raw pointers plus hoisted scalars let the compiler
    // vectorize the divide/sqrt chain (correctly-rounded SIMD lanes, so the
    // update is bit-identical to the scalar loop).
    double* __restrict m = s.m.data().data();
    double* __restrict v = s.v.data().data();
    double* __restrict value = p->value.data().data();
    const double* __restrict grad = p->grad.data().data();
    const std::size_t size = p->value.size();
    const double b1 = beta1_;
    const double b2 = beta2_;
    const double one_minus_b1 = 1.0 - beta1_;
    const double one_minus_b2 = 1.0 - beta2_;
    const double lr = learning_rate_;
    const double eps = epsilon_;
    for (std::size_t i = 0; i < size; ++i) {
      const double g = grad[i];
      m[i] = b1 * m[i] + one_minus_b1 * g;
      v[i] = b2 * v[i] + one_minus_b2 * g * g;
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
  }
}

void Adam::reset() {
  slots_.clear();
  step_count_ = 0;
}

}  // namespace qhdl::nn
