#include "nn/module.hpp"

namespace qhdl::nn {

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

std::size_t Module::parameter_count() {
  std::size_t total = 0;
  for (Parameter* p : parameters()) total += p->size();
  return total;
}

}  // namespace qhdl::nn
