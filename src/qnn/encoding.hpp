// Data encoding: classical values -> quantum state.
//
// The paper uses angle encoding (one qubit per encoded value, Section III-C):
// feature x_i becomes RX(scale · x_i) on wire i. `scale` defaults to π so
// that the tanh-bounded activations of the preceding classical layer span a
// half rotation, which keeps the encoding expressive (LaRose & Coyle,
// PRA 102, 032420).
#pragma once

#include <cstddef>

#include "quantum/circuit.hpp"

namespace qhdl::qnn {

struct AngleEncoding {
  /// Rotation axis for the encoding gates (paper uses RX).
  quantum::GateType gate = quantum::GateType::RX;
  /// Multiplier applied to inputs before rotation. NOTE: with parameterized
  /// circuit angles the scale is folded into the *input* at the layer level,
  /// not into the circuit (circuit params are raw angles).
  double scale = 1.0;

  /// Appends encoding gates to `circuit`: gate(params[i]) on wire i for
  /// i in [0, qubits). Returns the number of parameters consumed (= qubits).
  std::size_t append(quantum::Circuit& circuit, std::size_t qubits,
                     std::size_t param_offset = 0) const;
};

}  // namespace qhdl::qnn
