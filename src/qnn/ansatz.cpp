#include "qnn/ansatz.hpp"

#include <stdexcept>

#include "util/string_util.hpp"

namespace qhdl::qnn {

using quantum::Circuit;
using quantum::GateType;

std::string ansatz_name(AnsatzKind kind) {
  switch (kind) {
    case AnsatzKind::BasicEntangler: return "BEL";
    case AnsatzKind::StronglyEntangling: return "SEL";
    case AnsatzKind::HardwareEfficient: return "HEA";
  }
  return "?";
}

AnsatzKind ansatz_from_name(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "bel" || lower == "basic" || lower == "basicentangler") {
    return AnsatzKind::BasicEntangler;
  }
  if (lower == "sel" || lower == "strong" || lower == "stronglyentangling") {
    return AnsatzKind::StronglyEntangling;
  }
  if (lower == "hea" || lower == "hardware" || lower == "hardwareefficient") {
    return AnsatzKind::HardwareEfficient;
  }
  throw std::invalid_argument("ansatz_from_name: unknown ansatz '" + name +
                              "'");
}

std::size_t ansatz_weights_per_layer(AnsatzKind kind, std::size_t qubits) {
  switch (kind) {
    case AnsatzKind::BasicEntangler: return qubits;
    case AnsatzKind::StronglyEntangling: return 3 * qubits;
    case AnsatzKind::HardwareEfficient: return qubits;
  }
  return 0;
}

std::size_t ansatz_weight_count(AnsatzKind kind, std::size_t qubits,
                                std::size_t depth) {
  return depth * ansatz_weights_per_layer(kind, qubits);
}

namespace {

/// CNOTs per entangling ring (PennyLane: q>=3 -> q CNOTs; q==2 -> 1; q==1 -> 0).
std::size_t ring_cnot_count(std::size_t qubits) {
  if (qubits >= 3) return qubits;
  if (qubits == 2) return 1;
  return 0;
}

}  // namespace

AnsatzOpCounts ansatz_op_counts(AnsatzKind kind, std::size_t qubits,
                                std::size_t depth) {
  AnsatzOpCounts counts;
  switch (kind) {
    case AnsatzKind::BasicEntangler:
      counts.rotation_ops = depth * qubits;
      break;
    case AnsatzKind::StronglyEntangling:
      // Rot decomposes into RZ·RY·RZ -> 3 rotation ops per qubit per layer.
      counts.rotation_ops = depth * qubits * 3;
      break;
    case AnsatzKind::HardwareEfficient:
      counts.rotation_ops = depth * qubits;
      counts.entangling_ops = depth * (qubits > 0 ? qubits - 1 : 0);
      return counts;
  }
  counts.entangling_ops = depth * ring_cnot_count(qubits);
  return counts;
}

std::size_t append_ansatz(Circuit& circuit, AnsatzKind kind,
                          std::size_t qubits, std::size_t depth,
                          std::size_t param_offset) {
  if (qubits == 0 || qubits > circuit.num_qubits()) {
    throw std::invalid_argument("append_ansatz: bad qubit count");
  }
  if (depth == 0) {
    throw std::invalid_argument("append_ansatz: depth must be >= 1");
  }

  std::size_t p = param_offset;
  for (std::size_t layer = 0; layer < depth; ++layer) {
    switch (kind) {
      case AnsatzKind::BasicEntangler: {
        for (std::size_t w = 0; w < qubits; ++w) {
          circuit.parameterized_gate(GateType::RX, p++, w);
        }
        if (qubits == 2) {
          circuit.gate(GateType::CNOT, 0, 1);
        } else if (qubits >= 3) {
          for (std::size_t w = 0; w < qubits; ++w) {
            circuit.gate(GateType::CNOT, w, (w + 1) % qubits);
          }
        }
        break;
      }
      case AnsatzKind::HardwareEfficient: {
        for (std::size_t w = 0; w < qubits; ++w) {
          circuit.parameterized_gate(GateType::RY, p++, w);
        }
        for (std::size_t w = 0; w + 1 < qubits; ++w) {
          circuit.gate(GateType::CZ, w, w + 1);
        }
        break;
      }
      case AnsatzKind::StronglyEntangling: {
        for (std::size_t w = 0; w < qubits; ++w) {
          circuit.rot(p, w);
          p += 3;
        }
        if (qubits >= 2) {
          // PennyLane default ranges: r = (layer mod (q-1)) + 1.
          const std::size_t range =
              qubits == 2 ? 1 : (layer % (qubits - 1)) + 1;
          if (qubits == 2) {
            circuit.gate(GateType::CNOT, 0, 1);
          } else {
            for (std::size_t w = 0; w < qubits; ++w) {
              circuit.gate(GateType::CNOT, w, (w + range) % qubits);
            }
          }
        }
        break;
      }
    }
  }
  return p - param_offset;
}

}  // namespace qhdl::qnn
