// Amplitude-encoded quantum layer.
//
// The paper's Table-I discussion notes that "the availability of quantum-
// native datasets would eliminate the need for data encoding". Amplitude
// encoding is the closest classical stand-in: 2^q features become the 2^q
// amplitudes of a q-qubit register directly (after L2 normalization), so
// the hybrid model no longer needs the Dense(F→q) compressor that dominates
// the classical-stage FLOPs in Figs. 6-10.
//
//   inputs x ∈ R^{2^q}  →  |φ(x)⟩ = x / ‖x‖  →  ansatz U(θ)  →  ⟨Z_w⟩.
//
// Gradients are exact everywhere:
//   * weights — one adjoint sweep starting from |φ(x)⟩;
//   * inputs — dE/dφ_i = 2 Re[(U†O_eff U φ)_i] (real amplitudes), pushed
//     through the normalization Jacobian (δ_ij − φ_i φ_j)/‖x‖.
#pragma once

#include "nn/module.hpp"
#include "qnn/ansatz.hpp"
#include "quantum/adjoint_diff.hpp"
#include "util/rng.hpp"

namespace qhdl::qnn {

struct AmplitudeLayerConfig {
  std::size_t qubits = 3;  ///< encodes 2^qubits features
  std::size_t depth = 2;
  AnsatzKind ansatz = AnsatzKind::StronglyEntangling;
};

class AmplitudeQuantumLayer : public nn::Module {
 public:
  AmplitudeQuantumLayer(const AmplitudeLayerConfig& config, util::Rng& rng);

  /// Input width is 2^qubits; rows with (near-)zero norm are rejected.
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  nn::LayerInfo info() const override;
  std::string name() const override;

  std::size_t qubits() const { return config_.qubits; }
  std::size_t input_width() const { return std::size_t{1} << config_.qubits; }

 private:
  /// Normalized amplitude state for one row, plus its norm.
  quantum::StateVector encode_row(const tensor::Tensor& input,
                                  std::size_t row, double& norm) const;

  AmplitudeLayerConfig config_;
  quantum::Circuit circuit_;
  std::vector<quantum::Observable> observables_;
  nn::Parameter weights_;
  tensor::Tensor cached_input_;
  bool has_cached_input_ = false;
};

}  // namespace qhdl::qnn
