#include "qnn/hybrid_model.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/dense.hpp"

namespace qhdl::qnn {

namespace {

void append_activation(nn::Sequential& model, Activation activation,
                       std::size_t width) {
  switch (activation) {
    case Activation::Tanh:
      model.emplace<nn::Tanh>(width);
      return;
    case Activation::ReLU:
      model.emplace<nn::ReLU>(width);
      return;
  }
  throw std::logic_error("append_activation: unknown activation");
}

}  // namespace

std::unique_ptr<nn::Sequential> build_hybrid_model(const HybridConfig& config,
                                                   util::Rng& rng) {
  if (config.features == 0 || config.qubits == 0 || config.classes == 0) {
    throw std::invalid_argument("build_hybrid_model: zero-sized dimension");
  }
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Dense>(config.features, config.qubits, rng);
  // Tanh bounds the activations to [-1, 1]; the encoding scale (default π)
  // then maps them onto a half rotation.
  model->emplace<nn::Tanh>(config.qubits);

  QuantumLayerConfig qcfg;
  qcfg.qubits = config.qubits;
  qcfg.depth = config.depth;
  qcfg.ansatz = config.ansatz;
  qcfg.diff_method = config.diff_method;
  qcfg.encoding.scale = config.encoding_scale;
  model->emplace<QuantumLayer>(qcfg, rng);

  model->emplace<nn::Dense>(config.qubits, config.classes, rng);
  return model;
}

std::unique_ptr<nn::Sequential> build_classical_model(
    const ClassicalConfig& config, util::Rng& rng) {
  if (config.features == 0 || config.classes == 0) {
    throw std::invalid_argument("build_classical_model: zero-sized dimension");
  }
  auto model = std::make_unique<nn::Sequential>();
  std::size_t width = config.features;
  for (std::size_t hidden : config.hidden) {
    if (hidden == 0) {
      throw std::invalid_argument("build_classical_model: zero-width layer");
    }
    model->emplace<nn::Dense>(width, hidden, rng);
    append_activation(*model, config.activation, hidden);
    width = hidden;
  }
  model->emplace<nn::Dense>(width, config.classes, rng);
  return model;
}

std::size_t hybrid_parameter_count(const HybridConfig& config) {
  const std::size_t input_layer =
      config.features * config.qubits + config.qubits;
  const std::size_t quantum =
      ansatz_weight_count(config.ansatz, config.qubits, config.depth);
  const std::size_t output_layer =
      config.qubits * config.classes + config.classes;
  return input_layer + quantum + output_layer;
}

std::size_t classical_parameter_count(const ClassicalConfig& config) {
  std::size_t total = 0;
  std::size_t width = config.features;
  for (std::size_t hidden : config.hidden) {
    total += width * hidden + hidden;
    width = hidden;
  }
  total += width * config.classes + config.classes;
  return total;
}

}  // namespace qhdl::qnn
