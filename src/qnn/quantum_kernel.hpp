// Quantum fidelity kernels.
//
// An alternative lens on the paper's question Q2 ("does the quantum part
// add anything qualitatively different?"): instead of a trainable quantum
// LAYER, use a fixed quantum FEATURE MAP φ(x) and the fidelity kernel
// k(x, x') = |⟨φ(x)|φ(x')⟩|², the construction scrutinized by the paper's
// reference [30] (Schnabel & Roth, quantum kernel benchmarking).
//
// Feature maps:
// * Angle — RX(x_i) per qubit: a PRODUCT state map; its kernel factorizes
//   into Π_i cos²((x_i − x'_i)/2) and is classically trivial (useful as a
//   control).
// * ZZ — the entangling map (Havlíček et al., Nature 2019 style): per
//   repetition, H on every qubit, RZ(x_i) per qubit, then RZZ(x_i·x_j) on a
//   linear chain. Entanglement makes the kernel non-factorizable.
#pragma once

#include "quantum/statevector.hpp"
#include "tensor/tensor.hpp"

namespace qhdl::qnn {

enum class FeatureMapKind { Angle, ZZ };

struct QuantumKernelConfig {
  FeatureMapKind map = FeatureMapKind::ZZ;
  std::size_t repetitions = 2;  ///< feature-map repetitions (ZZ map depth)
  double scale = 1.0;           ///< multiplier applied to features
};

/// |φ(x)⟩ for a feature vector (one qubit per feature; size in [1, 20]).
quantum::StateVector feature_state(const QuantumKernelConfig& config,
                                   std::span<const double> x);

/// k(x1, x2) = |⟨φ(x1)|φ(x2)⟩|². Inputs must have equal size.
double kernel_value(const QuantumKernelConfig& config,
                    std::span<const double> x1, std::span<const double> x2);

/// Symmetric Gram matrix of the rows of X [n, F] -> [n, n].
/// States are prepared once per row (n state preparations, n² inner
/// products).
tensor::Tensor kernel_matrix(const QuantumKernelConfig& config,
                             const tensor::Tensor& x);

/// Cross-kernel of rows(A) vs rows(B): [na, nb].
tensor::Tensor cross_kernel_matrix(const QuantumKernelConfig& config,
                                   const tensor::Tensor& a,
                                   const tensor::Tensor& b);

/// Classical RBF baseline: k(x,x') = exp(-gamma‖x−x'‖²).
tensor::Tensor rbf_kernel_matrix(const tensor::Tensor& x, double gamma);
tensor::Tensor rbf_cross_kernel_matrix(const tensor::Tensor& a,
                                       const tensor::Tensor& b,
                                       double gamma);

}  // namespace qhdl::qnn
