#include "qnn/quantum_layer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>
#include <stdexcept>

#include "quantum/sampling.hpp"
#include "tensor/init.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace qhdl::qnn {

using quantum::Circuit;
using quantum::Executor;
using quantum::Observable;
using tensor::Shape;
using tensor::Tensor;

Executor make_quantum_executor(const QuantumLayerConfig& config) {
  Circuit circuit{config.qubits};
  std::size_t offset =
      config.encoding.append(circuit, config.qubits, /*param_offset=*/0);
  append_ansatz(circuit, config.ansatz, config.qubits, config.depth, offset);

  std::vector<Observable> observables;
  observables.reserve(config.qubits);
  for (std::size_t w = 0; w < config.qubits; ++w) {
    observables.push_back(Observable::pauli_z(w));
  }
  return Executor{std::move(circuit), std::move(observables),
                  config.diff_method};
}

QuantumLayer::QuantumLayer(const QuantumLayerConfig& config, util::Rng& rng)
    : config_(config),
      executor_(make_quantum_executor(config)),
      weights_("theta",
               tensor::uniform(
                   Shape{ansatz_weight_count(config.ansatz, config.qubits,
                                             config.depth)},
                   0.0, 2.0 * std::numbers::pi, rng)),
      sample_rng_(rng.split()) {
  if (config.qubits == 0) {
    throw std::invalid_argument("QuantumLayer: qubits must be >= 1");
  }
  if (config.shots > 0 && !config.noise.empty()) {
    throw std::invalid_argument(
        "QuantumLayer: shots with noise channels is not supported");
  }
}

std::vector<double> QuantumLayer::pack_params(const Tensor& input,
                                              std::size_t row) const {
  const std::size_t q = config_.qubits;
  std::vector<double> params(q + weights_.value.size());
  for (std::size_t i = 0; i < q; ++i) {
    params[i] = config_.encoding.scale * input.at(row, i);
  }
  for (std::size_t i = 0; i < weights_.value.size(); ++i) {
    params[q + i] = weights_.value[i];
  }
  return params;
}

Tensor QuantumLayer::forward(const Tensor& input) {
  const std::size_t q = config_.qubits;
  if (input.rank() != 2 || input.cols() != q) {
    throw std::invalid_argument("QuantumLayer::forward: expected [B, " +
                                std::to_string(q) + "], got " +
                                input.shape().to_string());
  }
  cached_input_ = input;
  has_cached_input_ = true;

  Tensor output{Shape{input.rows(), q}};

  // Batched SoA fast path: all rows march through the gate kernels
  // together, hitting contiguous memory (see StateVectorBatch). Chunked
  // over the thread pool; per-row arithmetic is independent of the chunk
  // boundaries, so results stay bit-identical across thread counts.
  if (config_.noise.empty() && config_.shots == 0 &&
      executor_.batch_path_available()) {
    const std::size_t batch = input.rows();
    const std::size_t stride = q + weights_.value.size();
    std::vector<double> params(batch * stride);
    for (std::size_t b = 0; b < batch; ++b) {
      const auto row = pack_params(input, b);
      std::copy(row.begin(), row.end(), params.begin() + b * stride);
    }
    const std::size_t threads = config_.threads > 0 ? config_.threads : 1;
    const std::size_t chunks = std::min(threads, batch);
    const auto run_chunk = [&](std::size_t c) {
      const std::size_t begin = c * batch / chunks;
      const std::size_t end = (c + 1) * batch / chunks;
      if (begin == end) return;
      const std::size_t rows = end - begin;
      const auto expectations = executor_.run_batch(
          std::span<const double>{params}.subspan(begin * stride,
                                                  rows * stride),
          stride, rows);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t w = 0; w < q; ++w) {
          output.at(begin + r, w) = expectations[r * q + w];
        }
      }
    };
    if (chunks > 1) {
      run_batch_parallel(chunks, run_chunk);
    } else {
      run_chunk(0);
    }
    return output;
  }

  std::vector<std::size_t> wires(q);
  for (std::size_t w = 0; w < q; ++w) wires[w] = w;

  const auto compute_row = [&](std::size_t b) {
    const auto params = pack_params(input, b);
    std::vector<double> expectations;
    if (!config_.noise.empty()) {
      expectations = quantum::noisy_expvals(executor_.circuit(), params,
                                            config_.noise, wires);
    } else if (config_.shots > 0) {
      const quantum::StateVector psi = executor_.circuit().execute(params);
      expectations = quantum::estimate_expvals_z(psi, wires, config_.shots,
                                                 sample_rng_);
    } else {
      expectations = executor_.run(params);
    }
    for (std::size_t w = 0; w < q; ++w) output.at(b, w) = expectations[w];
  };

  // Thread over the batch only on the exact path (sampling shares an RNG).
  if (config_.threads > 1 && config_.noise.empty() && config_.shots == 0 &&
      input.rows() > 1) {
    run_batch_parallel(input.rows(), compute_row);
  } else {
    for (std::size_t b = 0; b < input.rows(); ++b) compute_row(b);
  }
  return output;
}

Tensor QuantumLayer::backward(const Tensor& grad_output) {
  if (!has_cached_input_) {
    throw std::logic_error("QuantumLayer::backward before forward");
  }
  const std::size_t q = config_.qubits;
  if (grad_output.rank() != 2 || grad_output.cols() != q ||
      grad_output.rows() != cached_input_.rows()) {
    // Invalidate the cache before throwing: a mismatched upstream means the
    // caller's forward/backward pairing is broken, and letting the next
    // backward silently reuse this stale batch would hide the bug.
    has_cached_input_ = false;
    throw std::invalid_argument("QuantumLayer::backward: grad shape " +
                                grad_output.shape().to_string());
  }

  const std::size_t batch = cached_input_.rows();
  Tensor grad_input{Shape{batch, q}};

  // Batched SoA fast path mirroring forward(): one adjoint sweep per chunk
  // covers every row in it.
  if (config_.noise.empty() && executor_.batch_path_available()) {
    const std::size_t stride = q + weights_.value.size();
    std::vector<double> params(batch * stride);
    std::vector<double> upstream(batch * q);
    for (std::size_t b = 0; b < batch; ++b) {
      const auto row = pack_params(cached_input_, b);
      std::copy(row.begin(), row.end(), params.begin() + b * stride);
      for (std::size_t w = 0; w < q; ++w) {
        upstream[b * q + w] = grad_output.at(b, w);
      }
    }
    std::vector<double> all_grads(batch * stride);
    const std::size_t threads = config_.threads > 0 ? config_.threads : 1;
    const std::size_t chunks = std::min(threads, batch);
    const auto run_chunk = [&](std::size_t c) {
      const std::size_t begin = c * batch / chunks;
      const std::size_t end = (c + 1) * batch / chunks;
      if (begin == end) return;
      const std::size_t rows = end - begin;
      const auto vjp = executor_.run_with_vjp_batch(
          std::span<const double>{params}.subspan(begin * stride,
                                                  rows * stride),
          stride, rows,
          std::span<const double>{upstream}.subspan(begin * q, rows * q));
      std::copy(vjp.gradient.begin(), vjp.gradient.end(),
                all_grads.begin() + begin * stride);
    };
    if (chunks > 1) {
      run_batch_parallel(chunks, run_chunk);
    } else {
      run_chunk(0);
    }
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t w = 0; w < q; ++w) {
        grad_input.at(b, w) =
            config_.encoding.scale * all_grads[b * stride + w];
      }
      for (std::size_t i = 0; i < weights_.value.size(); ++i) {
        weights_.grad[i] += all_grads[b * stride + q + i];
      }
    }
    return grad_input;
  }

  std::vector<std::size_t> wires(q);
  for (std::size_t w = 0; w < q; ++w) wires[w] = w;

  // Per-sample gradients land in per-row buffers; the weight gradient is
  // reduced afterwards so the parallel path needs no synchronization.
  std::vector<std::vector<double>> weight_grads(
      batch, std::vector<double>(weights_.value.size(), 0.0));

  const auto compute_row = [&](std::size_t b) {
    const auto params = pack_params(cached_input_, b);
    std::vector<double> upstream(q);
    for (std::size_t w = 0; w < q; ++w) upstream[w] = grad_output.at(b, w);

    std::vector<double> gradient;
    if (config_.noise.empty()) {
      gradient = executor_.run_with_vjp(params, upstream).gradient;
    } else {
      gradient = quantum::noisy_parameter_shift_vjp(
                     executor_.circuit(), params, config_.noise, wires,
                     upstream)
                     .gradient;
    }
    // First q entries are encoding-angle gradients; the chain rule through
    // angle = scale * input multiplies by the encoding scale.
    for (std::size_t w = 0; w < q; ++w) {
      grad_input.at(b, w) = config_.encoding.scale * gradient[w];
    }
    for (std::size_t i = 0; i < weights_.value.size(); ++i) {
      weight_grads[b][i] = gradient[q + i];
    }
  };

  if (config_.threads > 1 && config_.noise.empty() && batch > 1) {
    run_batch_parallel(batch, compute_row);
  } else {
    for (std::size_t b = 0; b < batch; ++b) compute_row(b);
  }
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < weights_.value.size(); ++i) {
      weights_.grad[i] += weight_grads[b][i];
    }
  }
  return grad_input;
}

void QuantumLayer::run_batch_parallel(
    std::size_t batch, const std::function<void(std::size_t)>& work) const {
  // Shared persistent pool: forward/backward run once per training batch,
  // so spawning threads here (the old design) dominated small-circuit cost.
  util::parallel_for(0, batch, config_.threads, work);
}

std::vector<nn::Parameter*> QuantumLayer::parameters() { return {&weights_}; }

nn::LayerInfo QuantumLayer::info() const {
  nn::LayerInfo li;
  li.kind = "quantum";
  li.inputs = config_.qubits;
  li.outputs = config_.qubits;
  li.parameter_count = weights_.value.size();
  li.qubits = config_.qubits;
  li.depth = config_.depth;
  li.ansatz = util::to_lower(ansatz_name(config_.ansatz));
  const auto counts =
      ansatz_op_counts(config_.ansatz, config_.qubits, config_.depth);
  li.encoding_gate_count = config_.qubits;
  li.gate_count =
      li.encoding_gate_count + counts.rotation_ops + counts.entangling_ops;
  li.param_gate_count = li.encoding_gate_count + counts.rotation_ops;
  return li;
}

std::string QuantumLayer::name() const {
  return "Quantum" + ansatz_name(config_.ansatz) + "(q=" +
         std::to_string(config_.qubits) + ", d=" +
         std::to_string(config_.depth) + ")";
}

std::vector<double> QuantumLayer::run_single(
    std::span<const double> angles) const {
  if (angles.size() != config_.qubits) {
    throw std::invalid_argument("QuantumLayer::run_single: angle count");
  }
  std::vector<double> params(config_.qubits + weights_.value.size());
  for (std::size_t i = 0; i < angles.size(); ++i) params[i] = angles[i];
  for (std::size_t i = 0; i < weights_.value.size(); ++i) {
    params[config_.qubits + i] = weights_.value[i];
  }
  return executor_.run(params);
}

}  // namespace qhdl::qnn
