#include "qnn/encoding.hpp"

#include <stdexcept>

namespace qhdl::qnn {

std::size_t AngleEncoding::append(quantum::Circuit& circuit,
                                  std::size_t qubits,
                                  std::size_t param_offset) const {
  if (qubits == 0 || qubits > circuit.num_qubits()) {
    throw std::invalid_argument("AngleEncoding: bad qubit count");
  }
  if (!quantum::gate_is_parameterized(gate) ||
      quantum::gate_arity(gate) != 1) {
    throw std::invalid_argument(
        "AngleEncoding: encoding gate must be a 1-qubit rotation");
  }
  for (std::size_t w = 0; w < qubits; ++w) {
    circuit.parameterized_gate(gate, param_offset + w, w);
  }
  return qubits;
}

}  // namespace qhdl::qnn
