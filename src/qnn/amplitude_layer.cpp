#include "qnn/amplitude_layer.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "tensor/init.hpp"
#include "util/string_util.hpp"

namespace qhdl::qnn {

using quantum::Complex;
using quantum::StateVector;
using tensor::Shape;
using tensor::Tensor;

namespace {

quantum::Circuit build_ansatz_circuit(const AmplitudeLayerConfig& config) {
  quantum::Circuit circuit{config.qubits};
  append_ansatz(circuit, config.ansatz, config.qubits, config.depth, 0);
  return circuit;
}

std::vector<quantum::Observable> z_observables(std::size_t qubits) {
  std::vector<quantum::Observable> observables;
  observables.reserve(qubits);
  for (std::size_t w = 0; w < qubits; ++w) {
    observables.push_back(quantum::Observable::pauli_z(w));
  }
  return observables;
}

}  // namespace

AmplitudeQuantumLayer::AmplitudeQuantumLayer(
    const AmplitudeLayerConfig& config, util::Rng& rng)
    : config_(config),
      circuit_(build_ansatz_circuit(config)),
      observables_(z_observables(config.qubits)),
      weights_("theta",
               tensor::uniform(
                   Shape{ansatz_weight_count(config.ansatz, config.qubits,
                                             config.depth)},
                   0.0, 2.0 * std::numbers::pi, rng)) {
  if (config.qubits == 0 || config.qubits > 16) {
    throw std::invalid_argument(
        "AmplitudeQuantumLayer: qubits must be in [1, 16]");
  }
}

StateVector AmplitudeQuantumLayer::encode_row(const Tensor& input,
                                              std::size_t row,
                                              double& norm) const {
  const std::size_t width = input_width();
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < width; ++j) {
    sum_sq += input.at(row, j) * input.at(row, j);
  }
  norm = std::sqrt(sum_sq);
  if (norm < 1e-12) {
    throw std::invalid_argument(
        "AmplitudeQuantumLayer: input row has (near-)zero norm; amplitude "
        "encoding requires a nonzero vector");
  }
  std::vector<Complex> amplitudes(width);
  for (std::size_t j = 0; j < width; ++j) {
    amplitudes[j] = Complex{input.at(row, j) / norm, 0.0};
  }
  return StateVector{std::move(amplitudes)};
}

Tensor AmplitudeQuantumLayer::forward(const Tensor& input) {
  const std::size_t width = input_width();
  if (input.rank() != 2 || input.cols() != width) {
    throw std::invalid_argument(
        "AmplitudeQuantumLayer::forward: expected [B, " +
        std::to_string(width) + "], got " + input.shape().to_string());
  }
  cached_input_ = input;
  has_cached_input_ = true;

  const std::vector<double> params(weights_.value.data().begin(),
                                   weights_.value.data().end());
  Tensor output{Shape{input.rows(), config_.qubits}};
  for (std::size_t b = 0; b < input.rows(); ++b) {
    double norm = 0.0;
    StateVector psi = encode_row(input, b, norm);
    circuit_.run(psi, params);
    for (std::size_t w = 0; w < config_.qubits; ++w) {
      output.at(b, w) = observables_[w].expectation(psi);
    }
  }
  return output;
}

Tensor AmplitudeQuantumLayer::backward(const Tensor& grad_output) {
  if (!has_cached_input_) {
    throw std::logic_error("AmplitudeQuantumLayer::backward before forward");
  }
  const std::size_t width = input_width();
  const std::size_t q = config_.qubits;
  if (grad_output.rank() != 2 || grad_output.cols() != q ||
      grad_output.rows() != cached_input_.rows()) {
    throw std::invalid_argument(
        "AmplitudeQuantumLayer::backward: grad shape " +
        grad_output.shape().to_string());
  }

  const std::vector<double> params(weights_.value.data().begin(),
                                   weights_.value.data().end());
  Tensor grad_input{Shape{cached_input_.rows(), width}};
  std::vector<double> upstream(q);

  for (std::size_t b = 0; b < cached_input_.rows(); ++b) {
    double norm = 0.0;
    const StateVector phi = encode_row(cached_input_, b, norm);
    for (std::size_t w = 0; w < q; ++w) upstream[w] = grad_output.at(b, w);

    // Weight gradients: adjoint sweep starting from |φ⟩.
    const auto vjp = quantum::adjoint_vjp_from_state(
        circuit_, params, phi, observables_, upstream);
    for (std::size_t i = 0; i < weights_.value.size(); ++i) {
      weights_.grad[i] += vjp.gradient[i];
    }

    // Input gradients: dE/dφ, then the normalization Jacobian
    // dφ_j/dx_i = (δ_ij − φ_i φ_j) / ‖x‖.
    const auto dphi = quantum::initial_state_cogradient(
        circuit_, params, phi, observables_, upstream);
    const auto amps = phi.amplitudes();
    double phi_dot_dphi = 0.0;
    for (std::size_t j = 0; j < width; ++j) {
      phi_dot_dphi += amps[j].real() * dphi[j];
    }
    for (std::size_t i = 0; i < width; ++i) {
      grad_input.at(b, i) =
          (dphi[i] - amps[i].real() * phi_dot_dphi) / norm;
    }
  }
  return grad_input;
}

std::vector<nn::Parameter*> AmplitudeQuantumLayer::parameters() {
  return {&weights_};
}

nn::LayerInfo AmplitudeQuantumLayer::info() const {
  nn::LayerInfo li;
  li.kind = "quantum";
  li.inputs = input_width();
  li.outputs = config_.qubits;
  li.parameter_count = weights_.value.size();
  li.qubits = config_.qubits;
  li.depth = config_.depth;
  li.ansatz = util::to_lower(ansatz_name(config_.ansatz));
  const auto counts =
      ansatz_op_counts(config_.ansatz, config_.qubits, config_.depth);
  li.encoding_gate_count = 0;  // state preparation is data, not gates
  li.gate_count = counts.rotation_ops + counts.entangling_ops;
  li.param_gate_count = counts.rotation_ops;
  return li;
}

std::string AmplitudeQuantumLayer::name() const {
  return "AmplitudeQuantum" + ansatz_name(config_.ansatz) + "(q=" +
         std::to_string(config_.qubits) + ", d=" +
         std::to_string(config_.depth) + ")";
}

}  // namespace qhdl::qnn
