#include "qnn/quantum_kernel.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "quantum/gates.hpp"

namespace qhdl::qnn {

using quantum::StateVector;
using tensor::Shape;
using tensor::Tensor;

StateVector feature_state(const QuantumKernelConfig& config,
                          std::span<const double> x) {
  const std::size_t qubits = x.size();
  if (qubits == 0 || qubits > 20) {
    throw std::invalid_argument(
        "feature_state: feature count must be in [1, 20]");
  }
  StateVector state{qubits};
  switch (config.map) {
    case FeatureMapKind::Angle: {
      for (std::size_t w = 0; w < qubits; ++w) {
        state.apply_single_qubit(
            quantum::gates::rx(config.scale * x[w]), w);
      }
      break;
    }
    case FeatureMapKind::ZZ: {
      for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        for (std::size_t w = 0; w < qubits; ++w) {
          state.apply_single_qubit(quantum::gates::hadamard(), w);
          state.apply_single_qubit(
              quantum::gates::rz(config.scale * x[w]), w);
        }
        if (qubits >= 2) {
          for (std::size_t w = 0; w + 1 < qubits; ++w) {
            const quantum::gates::IsingPair pair = quantum::gates::ising_pair(
                quantum::GateType::RZZ,
                config.scale * x[w] * x[w + 1]);
            state.apply_double_flip_pairs(pair.even, pair.odd, w, w + 1);
          }
        }
      }
      break;
    }
  }
  return state;
}

double kernel_value(const QuantumKernelConfig& config,
                    std::span<const double> x1,
                    std::span<const double> x2) {
  if (x1.size() != x2.size()) {
    throw std::invalid_argument("kernel_value: feature size mismatch");
  }
  const StateVector phi1 = feature_state(config, x1);
  const StateVector phi2 = feature_state(config, x2);
  return std::norm(phi1.inner_product(phi2));
}

namespace {

std::vector<StateVector> feature_states_for_rows(
    const QuantumKernelConfig& config, const Tensor& x) {
  if (x.rank() != 2 || x.rows() == 0) {
    throw std::invalid_argument("kernel: non-empty [n, F] input required");
  }
  std::vector<StateVector> states;
  states.reserve(x.rows());
  std::vector<double> row(x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) row[j] = x.at(i, j);
    states.push_back(feature_state(config, row));
  }
  return states;
}

}  // namespace

Tensor kernel_matrix(const QuantumKernelConfig& config, const Tensor& x) {
  const auto states = feature_states_for_rows(config, x);
  const std::size_t n = states.size();
  Tensor k{Shape{n, n}};
  for (std::size_t i = 0; i < n; ++i) {
    k.at(i, i) = 1.0;  // |⟨φ|φ⟩|² for normalized states
    for (std::size_t j = 0; j < i; ++j) {
      const double value = std::norm(states[i].inner_product(states[j]));
      k.at(i, j) = value;
      k.at(j, i) = value;
    }
  }
  return k;
}

Tensor cross_kernel_matrix(const QuantumKernelConfig& config,
                           const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.cols() != b.cols()) {
    throw std::invalid_argument("cross_kernel_matrix: feature mismatch");
  }
  const auto states_a = feature_states_for_rows(config, a);
  const auto states_b = feature_states_for_rows(config, b);
  Tensor k{Shape{states_a.size(), states_b.size()}};
  for (std::size_t i = 0; i < states_a.size(); ++i) {
    for (std::size_t j = 0; j < states_b.size(); ++j) {
      k.at(i, j) = std::norm(states_a[i].inner_product(states_b[j]));
    }
  }
  return k;
}

namespace {

double squared_distance(const Tensor& a, std::size_t i, const Tensor& b,
                        std::size_t j) {
  double total = 0.0;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const double d = a.at(i, c) - b.at(j, c);
    total += d * d;
  }
  return total;
}

}  // namespace

Tensor rbf_kernel_matrix(const Tensor& x, double gamma) {
  if (x.rank() != 2 || x.rows() == 0) {
    throw std::invalid_argument("rbf_kernel_matrix: non-empty [n, F] input");
  }
  const std::size_t n = x.rows();
  Tensor k{Shape{n, n}};
  for (std::size_t i = 0; i < n; ++i) {
    k.at(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      const double value = std::exp(-gamma * squared_distance(x, i, x, j));
      k.at(i, j) = value;
      k.at(j, i) = value;
    }
  }
  return k;
}

Tensor rbf_cross_kernel_matrix(const Tensor& a, const Tensor& b,
                               double gamma) {
  if (a.rank() != 2 || b.rank() != 2 || a.cols() != b.cols()) {
    throw std::invalid_argument("rbf_cross_kernel_matrix: feature mismatch");
  }
  Tensor k{Shape{a.rows(), b.rows()}};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      k.at(i, j) = std::exp(-gamma * squared_distance(a, i, b, j));
    }
  }
  return k;
}

}  // namespace qhdl::qnn
