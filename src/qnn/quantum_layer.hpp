// QuantumLayer: an nn::Module wrapping a parameterized quantum circuit,
// equivalent to the paper's PennyLane KerasLayer (footnote 2).
//
// Per sample: the q input activations are scaled by the encoding scale and
// bound as encoding-gate angles; the trainable weights fill the ansatz
// angles; the outputs are ⟨Z_w⟩ for each wire. Backward runs a single
// adjoint-differentiation sweep per sample that yields BOTH dL/d(input) and
// dL/d(weights), so the hybrid network trains end-to-end exactly like the
// paper's TensorFlow+PennyLane models.
//
// Circuit parameter layout: [inputs (q) | ansatz weights (weight_count)].
#pragma once

#include <functional>

#include "nn/module.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "quantum/channels.hpp"
#include "quantum/executor.hpp"
#include "util/rng.hpp"

namespace qhdl::qnn {

struct QuantumLayerConfig {
  std::size_t qubits = 3;
  std::size_t depth = 2;
  AnsatzKind ansatz = AnsatzKind::StronglyEntangling;
  AngleEncoding encoding{};
  quantum::DiffMethod diff_method = quantum::DiffMethod::Adjoint;
  /// Non-empty = NISQ-style noisy execution: forward runs on a density
  /// matrix with the model's channels applied after every gate, and backward
  /// uses parameter-shift rules (adjoint differentiation needs pure states).
  quantum::NoiseModel noise{};
  /// Finite-shot forward inference: > 0 estimates each ⟨Z⟩ from this many
  /// basis-state samples (std dev ~ 1/√shots) instead of the exact value.
  /// Gradients remain exact (the layer models shot noise at inference time;
  /// combine with `noise` for channels + shots together is not supported).
  std::size_t shots = 0;
  /// Concurrency over the batch dimension for the exact (noiseless,
  /// shot-free) forward/backward paths, dispatched on the shared
  /// util::ThreadPool. 1 = sequential. Results are bit-identical
  /// regardless of the thread count.
  std::size_t threads = 1;
};

class QuantumLayer : public nn::Module {
 public:
  /// Weights initialized U(0, 2π) per PennyLane template convention.
  QuantumLayer(const QuantumLayerConfig& config, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  nn::LayerInfo info() const override;
  std::string name() const override;

  std::size_t qubits() const { return config_.qubits; }
  std::size_t depth() const { return config_.depth; }
  AnsatzKind ansatz() const { return config_.ansatz; }
  std::size_t weight_count() const { return weights_.value.size(); }
  const quantum::Executor& executor() const { return executor_; }

  /// Expectations for one pre-scaled angle vector (size = qubits). Used by
  /// tests and the pure-quantum examples.
  std::vector<double> run_single(std::span<const double> angles) const;

 private:
  /// Builds [angles | weights] for one sample row.
  std::vector<double> pack_params(const tensor::Tensor& input,
                                  std::size_t row) const;

  /// Dispatches `work(row)` over [0, batch) on the shared pool, at most
  /// config_.threads rows in flight.
  void run_batch_parallel(std::size_t batch,
                          const std::function<void(std::size_t)>& work) const;

  QuantumLayerConfig config_;
  quantum::Executor executor_;
  nn::Parameter weights_;
  util::Rng sample_rng_;  ///< drives finite-shot sampling when shots > 0
  tensor::Tensor cached_input_;
  bool has_cached_input_ = false;
};

/// Builds the executor (circuit + Z observables) for a config; exposed so
/// the FLOPs model and tests can inspect the exact circuit structure.
quantum::Executor make_quantum_executor(const QuantumLayerConfig& config);

}  // namespace qhdl::qnn
