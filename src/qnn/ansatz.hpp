// Trainable circuit ansätze, following PennyLane template semantics:
//
// BasicEntanglerLayers (BEL, paper Fig. 5(b)): per layer, one RX rotation per
// qubit followed by a ring of CNOTs (CNOT(i, (i+1) mod q); a single CNOT for
// q = 2, none for q = 1). Weights shape: (depth, qubits).
//
// StronglyEntanglingLayers (SEL, paper Fig. 5(a)): per layer, one Rot(φ,θ,ω)
// per qubit (decomposed RZ·RY·RZ) followed by a ring of CNOTs with layer-
// dependent range r = (l mod (q-1)) + 1: CNOT(i, (i+r) mod q). Weights
// shape: (depth, qubits, 3).
//
// HardwareEfficient (HEA, extension): the ubiquitous NISQ ansatz — per
// layer, one RY per qubit followed by a linear chain of CZs
// (CZ(i, i+1), i < q−1). Weights shape: (depth, qubits). Included so the
// study can probe a third point on the expressiveness/cost curve.
#pragma once

#include <cstddef>
#include <string>

#include "quantum/circuit.hpp"

namespace qhdl::qnn {

enum class AnsatzKind { BasicEntangler, StronglyEntangling, HardwareEfficient };

std::string ansatz_name(AnsatzKind kind);
AnsatzKind ansatz_from_name(const std::string& name);

/// Trainable angles per layer block.
std::size_t ansatz_weights_per_layer(AnsatzKind kind, std::size_t qubits);

/// Total trainable angles for `depth` layers.
std::size_t ansatz_weight_count(AnsatzKind kind, std::size_t qubits,
                                std::size_t depth);

/// Structural op counts (per full ansatz, excluding encoding/measurement).
struct AnsatzOpCounts {
  std::size_t rotation_ops = 0;  ///< parameterized 1-qubit rotations
  std::size_t entangling_ops = 0;  ///< CNOTs
};
AnsatzOpCounts ansatz_op_counts(AnsatzKind kind, std::size_t qubits,
                                std::size_t depth);

/// Appends `depth` ansatz layers to `circuit`, consuming weights from
/// params[param_offset ...]. Returns the number of parameters consumed.
std::size_t append_ansatz(quantum::Circuit& circuit, AnsatzKind kind,
                          std::size_t qubits, std::size_t depth,
                          std::size_t param_offset);

}  // namespace qhdl::qnn
