// Model factories for the two network families the paper compares
// (Fig. 1(b) vs Fig. 1(a)):
//
// Hybrid:    Dense(F -> q) + Tanh -> QuantumLayer(q, d, ansatz) ->
//            Dense(q -> classes)            [logits; CE loss adds softmax]
// Classical: Dense(F -> h1) + act -> ... -> Dense(h_n -> classes)
//
// Per Section III-C the hybrid input layer width equals the qubit count
// (one qubit per encoded value under angle encoding) and the output layer
// width equals the class count.
#pragma once

#include <memory>
#include <vector>

#include "nn/sequential.hpp"
#include "qnn/quantum_layer.hpp"

namespace qhdl::qnn {

enum class Activation { Tanh, ReLU };

struct HybridConfig {
  std::size_t features = 10;
  std::size_t qubits = 3;
  std::size_t depth = 2;
  AnsatzKind ansatz = AnsatzKind::StronglyEntangling;
  std::size_t classes = 3;
  quantum::DiffMethod diff_method = quantum::DiffMethod::Adjoint;
  double encoding_scale = 1.0;
};

struct ClassicalConfig {
  std::size_t features = 10;
  std::vector<std::size_t> hidden = {8};
  std::size_t classes = 3;
  Activation activation = Activation::Tanh;
};

/// Builds the paper's HQNN topology. Output is raw logits.
std::unique_ptr<nn::Sequential> build_hybrid_model(const HybridConfig& config,
                                                   util::Rng& rng);

/// Builds a classical MLP baseline. Output is raw logits.
std::unique_ptr<nn::Sequential> build_classical_model(
    const ClassicalConfig& config, util::Rng& rng);

/// Trainable-parameter count of the hybrid topology without building it
/// (used to pre-sort search candidates).
std::size_t hybrid_parameter_count(const HybridConfig& config);

/// Trainable-parameter count of the classical topology without building it.
std::size_t classical_parameter_count(const ClassicalConfig& config);

}  // namespace qhdl::qnn
