// Quantitative ansatz analysis backing the paper's qualitative claim that
// "the SEL quantum layer has a more intricate entanglement design than the
// BEL, enhancing its expressiveness" (Section III-C):
//
// * Expressibility (Sim, Johnson & Aspuru-Guzik, Adv. Quantum Technol. 2019):
//   the KL divergence between the ansatz's state-fidelity distribution under
//   random parameters and the Haar-random distribution
//   P_Haar(F) = (N−1)(1−F)^(N−2). LOWER KL = more expressive.
//
// * Entangling capability: the Meyer-Wallach measure
//   Q(ψ) = 2(1 − (1/n)Σ_k Tr ρ_k²) averaged over random parameters;
//   0 for product states, →1 for highly entangled states.
//
// * Gradient statistics: variance of ∂⟨Z_0⟩/∂θ over random parameters — the
//   barren-plateau diagnostic (McClean et al., Nat. Commun. 2018) relevant
//   to why deep/wide quantum layers may stop paying off.
#pragma once

#include "qnn/ansatz.hpp"
#include "util/rng.hpp"

namespace qhdl::qnn {

struct ExpressibilityConfig {
  std::size_t sample_pairs = 1000;  ///< random (θ1, θ2) fidelity samples
  std::size_t bins = 50;            ///< fidelity histogram resolution
};

/// KL(P_ansatz || P_Haar) of the fidelity distribution; lower = more
/// expressive. Deterministic given `rng`.
double ansatz_expressibility(AnsatzKind kind, std::size_t qubits,
                             std::size_t depth,
                             const ExpressibilityConfig& config,
                             util::Rng& rng);

/// Mean Meyer-Wallach entanglement over `samples` random parameter vectors.
double ansatz_entangling_capability(AnsatzKind kind, std::size_t qubits,
                                    std::size_t depth, std::size_t samples,
                                    util::Rng& rng);

/// Meyer-Wallach Q of one state.
double meyer_wallach(const quantum::StateVector& state);

struct GradientStats {
  double mean = 0.0;
  double variance = 0.0;
  double mean_abs = 0.0;
};

/// Statistics of ∂⟨Z_0⟩/∂θ_j over random parameter draws, pooled across all
/// parameters (adjoint differentiation; `samples` draws).
GradientStats ansatz_gradient_stats(AnsatzKind kind, std::size_t qubits,
                                    std::size_t depth, std::size_t samples,
                                    util::Rng& rng);

/// Binned Haar fidelity probability for N-dimensional states:
/// ∫_a^b (N−1)(1−F)^(N−2) dF = (1−a)^(N−1) − (1−b)^(N−1).
double haar_bin_probability(std::size_t dimension, double bin_low,
                            double bin_high);

}  // namespace qhdl::qnn
