#include "qnn/ansatz_metrics.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "quantum/adjoint_diff.hpp"
#include "quantum/density_matrix.hpp"

namespace qhdl::qnn {

namespace {

quantum::Circuit ansatz_only_circuit(AnsatzKind kind, std::size_t qubits,
                                     std::size_t depth) {
  quantum::Circuit circuit{qubits};
  append_ansatz(circuit, kind, qubits, depth, 0);
  return circuit;
}

std::vector<double> random_angles(std::size_t count, util::Rng& rng) {
  return rng.uniform_vector(count, 0.0, 2.0 * std::numbers::pi);
}

}  // namespace

double haar_bin_probability(std::size_t dimension, double bin_low,
                            double bin_high) {
  if (dimension < 2) {
    throw std::invalid_argument("haar_bin_probability: dimension >= 2");
  }
  const double exponent = static_cast<double>(dimension - 1);
  return std::pow(1.0 - bin_low, exponent) -
         std::pow(1.0 - bin_high, exponent);
}

double ansatz_expressibility(AnsatzKind kind, std::size_t qubits,
                             std::size_t depth,
                             const ExpressibilityConfig& config,
                             util::Rng& rng) {
  if (config.sample_pairs == 0 || config.bins == 0) {
    throw std::invalid_argument("ansatz_expressibility: empty config");
  }
  const quantum::Circuit circuit = ansatz_only_circuit(kind, qubits, depth);
  const std::size_t params = circuit.parameter_count();
  const std::size_t dimension = std::size_t{1} << qubits;

  std::vector<std::size_t> histogram(config.bins, 0);
  for (std::size_t s = 0; s < config.sample_pairs; ++s) {
    const auto theta1 = random_angles(params, rng);
    const auto theta2 = random_angles(params, rng);
    const quantum::StateVector psi1 = circuit.execute(theta1);
    const quantum::StateVector psi2 = circuit.execute(theta2);
    const double fidelity = std::norm(psi1.inner_product(psi2));
    auto bin = static_cast<std::size_t>(
        fidelity * static_cast<double>(config.bins));
    if (bin >= config.bins) bin = config.bins - 1;  // F == 1 edge case
    ++histogram[bin];
  }

  // KL(P_hist || P_Haar) over the bins; zero-count bins contribute 0.
  double kl = 0.0;
  const double total = static_cast<double>(config.sample_pairs);
  for (std::size_t b = 0; b < config.bins; ++b) {
    if (histogram[b] == 0) continue;
    const double p = static_cast<double>(histogram[b]) / total;
    const double low =
        static_cast<double>(b) / static_cast<double>(config.bins);
    const double high =
        static_cast<double>(b + 1) / static_cast<double>(config.bins);
    const double q =
        std::max(haar_bin_probability(dimension, low, high), 1e-12);
    kl += p * std::log(p / q);
  }
  return kl;
}

double meyer_wallach(const quantum::StateVector& state) {
  const std::size_t n = state.num_qubits();
  double purity_sum = 0.0;
  for (std::size_t wire = 0; wire < n; ++wire) {
    const quantum::Mat2 rho = quantum::reduced_single_qubit(state, wire);
    purity_sum += std::norm(rho.m00) + std::norm(rho.m01) +
                  std::norm(rho.m10) + std::norm(rho.m11);
  }
  return 2.0 * (1.0 - purity_sum / static_cast<double>(n));
}

double ansatz_entangling_capability(AnsatzKind kind, std::size_t qubits,
                                    std::size_t depth, std::size_t samples,
                                    util::Rng& rng) {
  if (samples == 0) {
    throw std::invalid_argument("ansatz_entangling_capability: samples == 0");
  }
  const quantum::Circuit circuit = ansatz_only_circuit(kind, qubits, depth);
  double total = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto theta = random_angles(circuit.parameter_count(), rng);
    total += meyer_wallach(circuit.execute(theta));
  }
  return total / static_cast<double>(samples);
}

GradientStats ansatz_gradient_stats(AnsatzKind kind, std::size_t qubits,
                                    std::size_t depth, std::size_t samples,
                                    util::Rng& rng) {
  if (samples == 0) {
    throw std::invalid_argument("ansatz_gradient_stats: samples == 0");
  }
  const quantum::Circuit circuit = ansatz_only_circuit(kind, qubits, depth);
  const quantum::Observable obs = quantum::Observable::pauli_z(0);

  double sum = 0.0, sum_sq = 0.0, sum_abs = 0.0;
  std::size_t count = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto theta = random_angles(circuit.parameter_count(), rng);
    const auto result = quantum::adjoint_gradient(circuit, theta, obs);
    for (double g : result.gradient) {
      sum += g;
      sum_sq += g * g;
      sum_abs += std::abs(g);
      ++count;
    }
  }
  GradientStats stats;
  const double n = static_cast<double>(count);
  stats.mean = sum / n;
  stats.variance = sum_sq / n - stats.mean * stats.mean;
  stats.mean_abs = sum_abs / n;
  return stats;
}

}  // namespace qhdl::qnn
