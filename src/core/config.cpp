#include "core/config.hpp"

namespace qhdl::core {

search::SweepConfig paper_scale() {
  search::SweepConfig config;
  config.feature_sizes = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110};
  config.spiral.points = 1500;
  config.spiral.classes = 3;
  config.search.accuracy_threshold = 0.90;
  config.search.runs_per_model = 5;
  config.search.repetitions = 5;
  config.search.train.epochs = 100;
  config.search.train.batch_size = 8;
  config.search.train.learning_rate = 1e-3;
  config.search.prune_margin = 0.0;
  return config;
}

search::SweepConfig bench_scale() {
  search::SweepConfig config = paper_scale();
  config.feature_sizes = {10, 60, 110};
  config.search.runs_per_model = 2;
  config.search.repetitions = 2;
  config.search.train.epochs = 80;
  config.search.prune_margin = 0.10;
  config.search.max_candidates = 40;
  return config;
}

search::SweepConfig test_scale() {
  search::SweepConfig config = paper_scale();
  config.feature_sizes = {6};
  config.spiral.points = 150;
  config.search.runs_per_model = 1;
  config.search.repetitions = 1;
  config.search.train.epochs = 10;
  config.search.prune_margin = 0.5;
  config.search.max_candidates = 4;
  return config;
}

}  // namespace qhdl::core
