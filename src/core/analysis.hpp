// Rate-of-increase analysis (paper Fig. 10 and the headline percentages):
// absolute and percentage growth of mean winner FLOPs / parameters from the
// lowest to the highest complexity level, per family.
#pragma once

#include <string>

#include "search/experiment.hpp"
#include "util/csv.hpp"

namespace qhdl::core {

/// Growth of one metric from the first to the last complexity level.
struct GrowthSummary {
  double low_value = 0.0;      ///< mean at the lowest feature size
  double high_value = 0.0;     ///< mean at the highest feature size
  double absolute_increase = 0.0;
  double percent_increase = 0.0;
};

/// Per-family growth of both paper metrics.
struct FamilyGrowth {
  search::Family family = search::Family::Classical;
  GrowthSummary flops;
  GrowthSummary parameters;
};

/// Computes growth summaries from a sweep. Throws std::invalid_argument if
/// fewer than two levels produced winners.
FamilyGrowth analyze_growth(const search::SweepResult& sweep);

/// Per-level (features, mean flops, mean params) series for plotting.
struct LevelSeries {
  std::vector<std::size_t> features;
  std::vector<double> mean_flops;
  std::vector<double> mean_parameters;
};
LevelSeries sweep_series(const search::SweepResult& sweep);

/// Renders the Fig. 10-style comparison block for several families.
std::string growth_comparison_to_string(
    const std::vector<FamilyGrowth>& growths);

/// CSV with one row per family: metric lows/highs/increases.
util::CsvWriter growth_comparison_to_csv(
    const std::vector<FamilyGrowth>& growths);

}  // namespace qhdl::core
