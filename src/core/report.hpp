// Markdown report generation: turns a StudyResult into a self-contained
// EXPERIMENTS-style document (per-level winner tables, Fig. 10 growth
// comparison against the paper's reference values, Table I ablation) so
// `run_study` leaves a human-readable artifact next to the CSVs.
#pragma once

#include <string>

#include "core/study.hpp"

namespace qhdl::core {

/// Paper reference values used for side-by-side comparison in the report.
struct PaperReference {
  double classical_flops_pct = 88.5;
  double bel_flops_pct = 80.13;
  double sel_flops_pct = 53.1;
  double classical_params_pct = 88.5;
  double bel_params_pct = 89.6;
  double sel_params_pct = 81.4;
};

/// Renders the full markdown report.
std::string study_report_markdown(const StudyResult& result,
                                  const search::SweepConfig& config,
                                  const PaperReference& reference = {});

}  // namespace qhdl::core
