// Table I ablation: FLOPs breakdown of hybrid models into
// Total / Encoding+Classical / Classical / Encoding / Quantum stages,
// for the best (qubits, depth) combination at selected feature sizes.
#pragma once

#include <string>
#include <vector>

#include "flops/profiler.hpp"
#include "search/candidate.hpp"
#include "util/csv.hpp"

namespace qhdl::core {

/// One Table-I row.
struct AblationRow {
  std::string model;          ///< "Hybrid (BEL)" / "Hybrid (SEL)"
  std::size_t features = 0;
  std::size_t qubits = 0;
  std::size_t depth = 0;
  double total = 0.0;         ///< TF
  double encoding_plus_classical = 0.0;  ///< Enc+CL
  double classical = 0.0;     ///< CL
  double encoding = 0.0;      ///< Enc
  double quantum = 0.0;       ///< QL
};

/// Breakdown of one hybrid configuration at one feature size.
AblationRow ablate_hybrid(const search::HybridSpec& spec,
                          std::size_t features, std::size_t classes,
                          const flops::CostModel& cost_model);

/// The paper's Table I layout: BEL and SEL best combos at features
/// {10, 40, 80, 110}. `best_combos` maps (ansatz, features) -> (q, d);
/// defaults to the paper's reported combinations.
struct AblationSelection {
  search::HybridSpec spec;
  std::size_t features;
};
std::vector<AblationSelection> paper_table1_selection();

std::vector<AblationRow> run_ablation(
    const std::vector<AblationSelection>& selection, std::size_t classes,
    const flops::CostModel& cost_model);

/// Renders rows in the paper's column order.
std::string ablation_to_string(const std::vector<AblationRow>& rows);
util::CsvWriter ablation_to_csv(const std::vector<AblationRow>& rows);

}  // namespace qhdl::core
