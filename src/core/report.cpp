#include "core/report.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace qhdl::core {

namespace {

void append_sweep_section(std::ostringstream& oss, const char* title,
                          const search::SweepResult& sweep) {
  oss << "## " << title << "\n\n";
  oss << "| features | repetition | winner | FLOPs | parameters | "
         "val acc |\n|---|---|---|---|---|---|\n";
  for (const auto& level : sweep.levels) {
    for (std::size_t rep = 0; rep < level.search.repetitions.size(); ++rep) {
      const auto& outcome = level.search.repetitions[rep];
      oss << "| " << level.features << " | " << (rep + 1) << " | ";
      if (outcome.winner.has_value()) {
        const auto& w = *outcome.winner;
        oss << w.spec.to_string() << " | "
            << util::format_double(w.flops, 1) << " | "
            << w.parameter_count << " | "
            << util::format_double(w.avg_best_val_accuracy, 3);
      } else {
        oss << "(no winner) | — | — | —";
      }
      oss << " |\n";
    }
  }
  oss << "\n";
}

const FamilyGrowth* find_growth(const std::vector<FamilyGrowth>& growth,
                                search::Family family) {
  for (const FamilyGrowth& g : growth) {
    if (g.family == family) return &g;
  }
  return nullptr;
}

void append_growth_row(std::ostringstream& oss, const char* label,
                       const FamilyGrowth* growth, double paper_flops_pct,
                       double paper_params_pct) {
  oss << "| " << label << " | ";
  if (growth != nullptr) {
    oss << util::format_double(growth->flops.percent_increase, 1) << "% | ";
  } else {
    oss << "n/a | ";
  }
  oss << util::format_double(paper_flops_pct, 1) << "% | ";
  if (growth != nullptr) {
    oss << util::format_double(growth->parameters.percent_increase, 1)
        << "% | ";
  } else {
    oss << "n/a | ";
  }
  oss << util::format_double(paper_params_pct, 1) << "% |\n";
}

}  // namespace

std::string study_report_markdown(const StudyResult& result,
                                  const search::SweepConfig& config,
                                  const PaperReference& reference) {
  std::ostringstream oss;
  oss << "# HQNN complexity-scaling study — run report\n\n";
  oss << "Protocol: " << config.search.runs_per_model << " runs x "
      << config.search.repetitions << " repetitions, "
      << config.search.train.epochs << " epochs, batch "
      << config.search.train.batch_size << ", lr "
      << util::format_double(config.search.train.learning_rate, 6)
      << ", threshold "
      << util::format_double(config.search.accuracy_threshold, 2)
      << ", dataset " << config.spiral.points << " points / "
      << config.spiral.classes << " classes ("
      << (config.geometry == search::BaseGeometry::Spiral ? "spiral"
                                                          : "rings")
      << "), feature sizes:";
  for (std::size_t f : config.feature_sizes) oss << " " << f;
  oss << ".\n\n";

  append_sweep_section(oss, "Classical winners (Fig. 6)", result.classical);
  append_sweep_section(oss, "Hybrid BEL winners (Fig. 7)",
                       result.hybrid_bel);
  append_sweep_section(oss, "Hybrid SEL winners (Fig. 8)",
                       result.hybrid_sel);

  oss << "## Growth comparison (Fig. 10)\n\n";
  oss << "| family | FLOPs increase (measured) | FLOPs increase (paper) | "
         "params increase (measured) | params increase (paper) |\n"
         "|---|---|---|---|---|\n";
  append_growth_row(oss, "classical",
                    find_growth(result.growth, search::Family::Classical),
                    reference.classical_flops_pct,
                    reference.classical_params_pct);
  append_growth_row(oss, "hybrid BEL",
                    find_growth(result.growth, search::Family::HybridBel),
                    reference.bel_flops_pct, reference.bel_params_pct);
  append_growth_row(oss, "hybrid SEL",
                    find_growth(result.growth, search::Family::HybridSel),
                    reference.sel_flops_pct, reference.sel_params_pct);
  oss << "\nThe paper's claim is the ORDERING (SEL grows slowest); absolute "
         "percentages\ndiffer because the FLOPs substrate differs (see "
         "DESIGN.md §5).\n\n";

  oss << "## Hybrid FLOPs ablation from discovered winners (Table I)\n\n";
  if (result.ablation.empty()) {
    oss << "(no hybrid winners found — ablation unavailable)\n";
  } else {
    oss << "| model | FS/(q,d) | TF | Enc+CL | CL | Enc | QL |\n"
           "|---|---|---|---|---|---|---|\n";
    for (const AblationRow& row : result.ablation) {
      oss << "| " << row.model << " | " << row.features << "/("
          << row.qubits << "," << row.depth << ") | "
          << util::format_double(row.total, 1) << " | "
          << util::format_double(row.encoding_plus_classical, 1) << " | "
          << util::format_double(row.classical, 1) << " | "
          << util::format_double(row.encoding, 1) << " | "
          << util::format_double(row.quantum, 1) << " |\n";
    }
  }
  oss << "\n";
  return oss.str();
}

}  // namespace qhdl::core
