#include "core/study.hpp"

#include <array>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qhdl::core {

ComplexityStudy::ComplexityStudy(search::SweepConfig config)
    : config_(std::move(config)) {}

search::SweepResult ComplexityStudy::run_family(
    search::Family family, search::StudyCheckpoint* checkpoint,
    search::WorkerPool* pool) const {
  return search::run_complexity_sweep(family, config_, checkpoint, pool);
}

std::vector<AblationSelection> ablation_from_sweep(
    const search::SweepResult& sweep) {
  std::vector<AblationSelection> selection;
  for (const auto& level : sweep.levels) {
    if (!level.search.smallest_winner.has_value()) continue;
    const auto& winner = *level.search.smallest_winner;
    if (winner.spec.family != search::ModelSpec::Family::Hybrid) continue;
    selection.push_back(AblationSelection{winner.spec.hybrid, level.features});
  }
  return selection;
}

StudyResult ComplexityStudy::run(search::StudyCheckpoint* checkpoint,
                                 search::WorkerPool* pool) const {
  StudyResult result;
  // The three family sweeps share nothing but the (re-derived) datasets, so
  // they fan out onto the shared pool; each sweep then parallelizes its own
  // levels/candidates/runs from the same budget.
  const std::array<search::Family, 3> families{search::Family::Classical,
                                               search::Family::HybridBel,
                                               search::Family::HybridSel};
  std::array<search::SweepResult*, 3> slots{
      &result.classical, &result.hybrid_bel, &result.hybrid_sel};
  util::parallel_for(0, families.size(), config_.search.threads,
                     [&](std::size_t i) {
                       util::log_info("study: " +
                                      search::family_name(families[i]) +
                                      " sweep");
                       *slots[i] = run_family(families[i], checkpoint, pool);
                     });

  for (const auto* sweep :
       {&result.classical, &result.hybrid_bel, &result.hybrid_sel}) {
    try {
      result.growth.push_back(analyze_growth(*sweep));
    } catch (const std::invalid_argument& e) {
      // A family that never met the threshold at two levels has no growth
      // summary; record a structured skip so the manifest says why the
      // Fig. 10 row is missing instead of silently dropping it.
      const std::string family = search::family_name(sweep->family);
      util::log_warn("study: no growth summary for " + family + ": " +
                     e.what());
      result.growth_skipped.push_back(GrowthSkip{family, e.what()});
    }
  }

  const std::size_t classes = config_.spiral.classes;
  for (const auto* sweep : {&result.hybrid_bel, &result.hybrid_sel}) {
    const auto selection = ablation_from_sweep(*sweep);
    const auto rows =
        run_ablation(selection, classes, config_.search.cost_model);
    result.ablation.insert(result.ablation.end(), rows.begin(), rows.end());
  }
  return result;
}

util::Json StudyResult::to_json() const {
  util::Json root = util::Json::object();
  root["classical"] = search::sweep_to_json(classical);
  root["hybrid_bel"] = search::sweep_to_json(hybrid_bel);
  root["hybrid_sel"] = search::sweep_to_json(hybrid_sel);

  util::Json growth_json = util::Json::array();
  for (const FamilyGrowth& g : growth) {
    util::Json item = util::Json::object();
    item["family"] = util::Json{search::family_name(g.family)};
    item["flops_pct_increase"] = util::Json{g.flops.percent_increase};
    item["flops_abs_increase"] = util::Json{g.flops.absolute_increase};
    item["params_pct_increase"] = util::Json{g.parameters.percent_increase};
    item["params_abs_increase"] = util::Json{g.parameters.absolute_increase};
    growth_json.push_back(std::move(item));
  }
  root["growth"] = std::move(growth_json);

  util::Json skipped_json = util::Json::array();
  for (const GrowthSkip& skip : growth_skipped) {
    util::Json item = util::Json::object();
    item["family"] = util::Json{skip.family};
    item["reason"] = util::Json{skip.reason};
    skipped_json.push_back(std::move(item));
  }
  root["growth_skipped"] = std::move(skipped_json);

  util::Json ablation_json = util::Json::array();
  for (const AblationRow& row : ablation) {
    util::Json item = util::Json::object();
    item["model"] = util::Json{row.model};
    item["features"] = util::Json{row.features};
    item["qubits"] = util::Json{row.qubits};
    item["depth"] = util::Json{row.depth};
    item["total"] = util::Json{row.total};
    item["classical"] = util::Json{row.classical};
    item["encoding"] = util::Json{row.encoding};
    item["quantum"] = util::Json{row.quantum};
    ablation_json.push_back(std::move(item));
  }
  root["ablation"] = std::move(ablation_json);
  return root;
}

}  // namespace qhdl::core
