// ComplexityStudy: the paper's full pipeline (Fig. 3) in one call — runs the
// classical, BEL-hybrid, and SEL-hybrid sweeps on shared datasets, then
// derives the Fig. 10 growth comparison and the Table I ablation using the
// winners it found.
#pragma once

#include "core/ablation.hpp"
#include "core/analysis.hpp"
#include "search/results.hpp"

namespace qhdl::core {

/// A family whose growth summary could not be derived (it never met the
/// threshold at two levels, so there is nothing to fit). Recorded instead of
/// silently dropped so the manifest explains the missing Fig. 10 row.
struct GrowthSkip {
  std::string family;
  std::string reason;  ///< the analyze_growth diagnostic
};

struct StudyResult {
  search::SweepResult classical;
  search::SweepResult hybrid_bel;
  search::SweepResult hybrid_sel;

  std::vector<FamilyGrowth> growth;      ///< Fig. 10 aggregates
  std::vector<GrowthSkip> growth_skipped;  ///< families with no summary
  std::vector<AblationRow> ablation;     ///< Table I rows (from winners)

  /// Full machine-readable manifest.
  util::Json to_json() const;
};

class ComplexityStudy {
 public:
  explicit ComplexityStudy(search::SweepConfig config);

  /// Runs everything. Progress is logged at Info level. A non-null
  /// `checkpoint` makes the study durable: completed candidate evaluations
  /// are recorded/flushed there and replayed on resume (DESIGN.md §10). A
  /// non-null `pool` executes fresh units on crash-isolated worker
  /// processes (DESIGN.md §11) with bit-identical results.
  StudyResult run(search::StudyCheckpoint* checkpoint = nullptr,
                  search::WorkerPool* pool = nullptr) const;

  /// Runs a single family's sweep (used by the per-figure benches).
  search::SweepResult run_family(
      search::Family family, search::StudyCheckpoint* checkpoint = nullptr,
      search::WorkerPool* pool = nullptr) const;

  const search::SweepConfig& config() const { return config_; }

 private:
  search::SweepConfig config_;
};

/// Builds Table-I-style ablation selections from a hybrid sweep's winners:
/// for each level, the repetition-smallest winning (q, d).
std::vector<AblationSelection> ablation_from_sweep(
    const search::SweepResult& sweep);

}  // namespace qhdl::core
