// ComplexityStudy: the paper's full pipeline (Fig. 3) in one call — runs the
// classical, BEL-hybrid, and SEL-hybrid sweeps on shared datasets, then
// derives the Fig. 10 growth comparison and the Table I ablation using the
// winners it found.
#pragma once

#include "core/ablation.hpp"
#include "core/analysis.hpp"
#include "search/results.hpp"

namespace qhdl::core {

struct StudyResult {
  search::SweepResult classical;
  search::SweepResult hybrid_bel;
  search::SweepResult hybrid_sel;

  std::vector<FamilyGrowth> growth;      ///< Fig. 10 aggregates
  std::vector<AblationRow> ablation;     ///< Table I rows (from winners)

  /// Full machine-readable manifest.
  util::Json to_json() const;
};

class ComplexityStudy {
 public:
  explicit ComplexityStudy(search::SweepConfig config);

  /// Runs everything. Progress is logged at Info level.
  StudyResult run() const;

  /// Runs a single family's sweep (used by the per-figure benches).
  search::SweepResult run_family(search::Family family) const;

  const search::SweepConfig& config() const { return config_; }

 private:
  search::SweepConfig config_;
};

/// Builds Table-I-style ablation selections from a hybrid sweep's winners:
/// for each level, the repetition-smallest winning (q, d).
std::vector<AblationSelection> ablation_from_sweep(
    const search::SweepResult& sweep);

}  // namespace qhdl::core
