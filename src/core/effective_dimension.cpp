#include "core/effective_dimension.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "nn/fisher.hpp"
#include "tensor/linalg.hpp"
#include "tensor/ops.hpp"

namespace qhdl::core {

using tensor::Shape;
using tensor::Tensor;

EffectiveDimensionResult effective_dimension(
    const search::ModelSpec& spec, const Tensor& x, std::size_t classes,
    const EffectiveDimensionConfig& config) {
  if (config.parameter_samples == 0) {
    throw std::invalid_argument("effective_dimension: need parameter draws");
  }
  if (config.dataset_size < 3) {
    throw std::invalid_argument("effective_dimension: n too small");
  }
  if (x.rank() != 2 || x.rows() == 0) {
    throw std::invalid_argument("effective_dimension: non-empty [N,F] data");
  }
  const std::size_t rows =
      std::min<std::size_t>(x.rows(), config.data_samples);
  Tensor batch{Shape{rows, x.cols()}};
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      batch.at(i, j) = x.at(i, j);
    }
  }

  util::Rng rng{config.seed};

  // Pass 1: Fishers per parameter draw + mean trace for normalization.
  std::vector<Tensor> fishers;
  fishers.reserve(config.parameter_samples);
  double trace_sum = 0.0;
  std::size_t parameter_count = 0;
  for (std::size_t draw = 0; draw < config.parameter_samples; ++draw) {
    util::Rng draw_rng = rng.split();
    auto model = search::build_from_spec(spec, x.cols(), classes,
                                         qnn::Activation::Tanh, draw_rng);
    parameter_count = nn::flat_parameter_count(*model);
    Tensor fisher = nn::fisher_information(*model, batch, classes);
    trace_sum += tensor::trace(fisher);
    fishers.push_back(std::move(fisher));
  }
  const double mean_trace =
      trace_sum / static_cast<double>(config.parameter_samples);
  if (mean_trace <= 0.0) {
    throw std::runtime_error("effective_dimension: degenerate Fisher");
  }

  // κ_n and the trace normalization F̂ = P · F / mean_trace.
  const double n = static_cast<double>(config.dataset_size);
  const double kappa =
      config.gamma * n / (2.0 * std::numbers::pi * std::log(n));
  const double normalization =
      static_cast<double>(parameter_count) / mean_trace;

  // Pass 2: log E_θ √det(I + κ F̂) via log-sum-exp for stability.
  std::vector<double> half_logdets;
  half_logdets.reserve(fishers.size());
  double max_half_logdet = -1e300;
  for (Tensor& fisher : fishers) {
    // I + κ F̂ in place.
    tensor::scale_inplace(fisher, kappa * normalization);
    for (std::size_t i = 0; i < fisher.rows(); ++i) {
      fisher.at(i, i) += 1.0;
    }
    const double half_logdet = 0.5 * tensor::logdet_spd(fisher, 1e-12);
    half_logdets.push_back(half_logdet);
    max_half_logdet = std::max(max_half_logdet, half_logdet);
  }
  double sum_exp = 0.0;
  for (double h : half_logdets) sum_exp += std::exp(h - max_half_logdet);
  const double log_expectation =
      max_half_logdet +
      std::log(sum_exp / static_cast<double>(half_logdets.size()));

  EffectiveDimensionResult result;
  result.parameter_count = parameter_count;
  result.mean_fisher_trace = mean_trace;
  result.effective_dimension = 2.0 * log_expectation / std::log(kappa);
  result.normalized =
      result.effective_dimension / static_cast<double>(parameter_count);
  return result;
}

}  // namespace qhdl::core
