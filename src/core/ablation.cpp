#include "core/ablation.hpp"

#include "util/string_util.hpp"
#include "util/table.hpp"

namespace qhdl::core {

AblationRow ablate_hybrid(const search::HybridSpec& spec,
                          std::size_t features, std::size_t classes,
                          const flops::CostModel& cost_model) {
  const search::ModelSpec model_spec =
      search::ModelSpec::make_hybrid(spec.qubits, spec.depth, spec.ansatz);
  const auto infos = search::spec_layer_infos(
      model_spec, features, classes, qnn::Activation::Tanh);
  const flops::FlopsReport report = flops::profile_layers(infos, cost_model);

  AblationRow row;
  row.model = spec.ansatz == qnn::AnsatzKind::BasicEntangler
                  ? "Hybrid (BEL)"
                  : "Hybrid (SEL)";
  row.features = features;
  row.qubits = spec.qubits;
  row.depth = spec.depth;
  row.total = report.total();
  row.classical = report.classical;
  row.encoding = report.encoding;
  row.quantum = report.quantum;
  row.encoding_plus_classical = report.encoding_plus_classical();
  return row;
}

std::vector<AblationSelection> paper_table1_selection() {
  using search::HybridSpec;
  const auto bel = qnn::AnsatzKind::BasicEntangler;
  const auto sel = qnn::AnsatzKind::StronglyEntangling;
  // Paper Table I "FS/BC" column: BEL grows to (3,4) then (4,4); SEL stays
  // at (3,2) for every feature size.
  return {
      {HybridSpec{3, 2, bel}, 10},  {HybridSpec{3, 2, bel}, 40},
      {HybridSpec{3, 4, bel}, 80},  {HybridSpec{4, 4, bel}, 110},
      {HybridSpec{3, 2, sel}, 10},  {HybridSpec{3, 2, sel}, 40},
      {HybridSpec{3, 2, sel}, 80},  {HybridSpec{3, 2, sel}, 110},
  };
}

std::vector<AblationRow> run_ablation(
    const std::vector<AblationSelection>& selection, std::size_t classes,
    const flops::CostModel& cost_model) {
  std::vector<AblationRow> rows;
  rows.reserve(selection.size());
  for (const AblationSelection& item : selection) {
    rows.push_back(
        ablate_hybrid(item.spec, item.features, classes, cost_model));
  }
  return rows;
}

std::string ablation_to_string(const std::vector<AblationRow>& rows) {
  util::Table table(
      {"Model", "FS/BC", "TF", "Enc+CL", "CL", "Enc", "QL", "QL %"});
  for (const AblationRow& row : rows) {
    const double quantum_share =
        row.total > 0.0 ? 100.0 * row.quantum / row.total : 0.0;
    table.add_row({row.model,
                   std::to_string(row.features) + "/(" +
                       std::to_string(row.qubits) + "," +
                       std::to_string(row.depth) + ")",
                   util::format_double(row.total, 1),
                   util::format_double(row.encoding_plus_classical, 1),
                   util::format_double(row.classical, 1),
                   util::format_double(row.encoding, 1),
                   util::format_double(row.quantum, 1),
                   util::format_double(quantum_share, 1)});
  }
  return table.to_string();
}

util::CsvWriter ablation_to_csv(const std::vector<AblationRow>& rows) {
  util::CsvWriter csv({"model", "features", "qubits", "depth", "total",
                       "enc_plus_cl", "classical", "encoding", "quantum"});
  for (const AblationRow& row : rows) {
    csv.add_row({row.model, std::to_string(row.features),
                 std::to_string(row.qubits), std::to_string(row.depth),
                 util::format_double(row.total, 2),
                 util::format_double(row.encoding_plus_classical, 2),
                 util::format_double(row.classical, 2),
                 util::format_double(row.encoding, 2),
                 util::format_double(row.quantum, 2)});
  }
  return csv;
}

}  // namespace qhdl::core
