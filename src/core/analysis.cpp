#include "core/analysis.hpp"

#include <sstream>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace qhdl::core {

FamilyGrowth analyze_growth(const search::SweepResult& sweep) {
  // Collect levels that actually produced winners, preserving order.
  std::vector<const search::LevelResult*> usable;
  for (const auto& level : sweep.levels) {
    if (level.search.successful_repetitions > 0) usable.push_back(&level);
  }
  if (usable.size() < 2) {
    throw std::invalid_argument(
        "analyze_growth: need winners at >= 2 complexity levels");
  }

  FamilyGrowth growth;
  growth.family = sweep.family;

  const auto& low = usable.front()->search;
  const auto& high = usable.back()->search;

  growth.flops.low_value = low.mean_winner_flops;
  growth.flops.high_value = high.mean_winner_flops;
  growth.flops.absolute_increase =
      growth.flops.high_value - growth.flops.low_value;
  growth.flops.percent_increase =
      util::percent_increase(growth.flops.low_value, growth.flops.high_value);

  growth.parameters.low_value = low.mean_winner_parameters;
  growth.parameters.high_value = high.mean_winner_parameters;
  growth.parameters.absolute_increase =
      growth.parameters.high_value - growth.parameters.low_value;
  growth.parameters.percent_increase = util::percent_increase(
      growth.parameters.low_value, growth.parameters.high_value);
  return growth;
}

LevelSeries sweep_series(const search::SweepResult& sweep) {
  LevelSeries series;
  for (const auto& level : sweep.levels) {
    if (level.search.successful_repetitions == 0) continue;
    series.features.push_back(level.features);
    series.mean_flops.push_back(level.search.mean_winner_flops);
    series.mean_parameters.push_back(level.search.mean_winner_parameters);
  }
  return series;
}

std::string growth_comparison_to_string(
    const std::vector<FamilyGrowth>& growths) {
  util::Table table({"family", "FLOPs low", "FLOPs high", "FLOPs +abs",
                     "FLOPs +%", "params low", "params high", "params +abs",
                     "params +%"});
  for (const FamilyGrowth& g : growths) {
    table.add_row({search::family_name(g.family),
                   util::format_double(g.flops.low_value, 1),
                   util::format_double(g.flops.high_value, 1),
                   util::format_double(g.flops.absolute_increase, 1),
                   util::format_double(g.flops.percent_increase, 1),
                   util::format_double(g.parameters.low_value, 1),
                   util::format_double(g.parameters.high_value, 1),
                   util::format_double(g.parameters.absolute_increase, 1),
                   util::format_double(g.parameters.percent_increase, 1)});
  }
  return table.to_string();
}

util::CsvWriter growth_comparison_to_csv(
    const std::vector<FamilyGrowth>& growths) {
  util::CsvWriter csv({"family", "flops_low", "flops_high",
                       "flops_abs_increase", "flops_pct_increase",
                       "params_low", "params_high", "params_abs_increase",
                       "params_pct_increase"});
  for (const FamilyGrowth& g : growths) {
    csv.add_row({search::family_name(g.family),
                 util::format_double(g.flops.low_value, 2),
                 util::format_double(g.flops.high_value, 2),
                 util::format_double(g.flops.absolute_increase, 2),
                 util::format_double(g.flops.percent_increase, 2),
                 util::format_double(g.parameters.low_value, 2),
                 util::format_double(g.parameters.high_value, 2),
                 util::format_double(g.parameters.absolute_increase, 2),
                 util::format_double(g.parameters.percent_increase, 2)});
  }
  return csv;
}

}  // namespace qhdl::core
