// Effective dimension (Abbas et al., "The power of quantum neural
// networks", Nature Computational Science 2021 — the paper's reference [5]).
//
// The DAC paper's conclusion (A3) explicitly calls for "additional
// complexity measures" beyond FLOPs and parameter count; the effective
// dimension is the measure its own reference list points to. For a model
// with P parameters and normalized Fisher F̂(θ):
//
//   d_eff(γ, n) = 2 · ln( E_θ √det(I + κ_n F̂(θ)) ) / ln κ_n,
//   κ_n = γ n / (2π ln n),
//
// estimated by Monte Carlo over parameter initializations (E_θ) and a data
// batch (inside the Fisher). F̂ is trace-normalized so that models of
// different sizes are comparable: F̂ = P · F / E_θ[tr F].
#pragma once

#include "flops/cost_model.hpp"
#include "search/candidate.hpp"

namespace qhdl::core {

struct EffectiveDimensionConfig {
  std::size_t parameter_samples = 8;  ///< Monte-Carlo draws over θ
  std::size_t data_samples = 32;      ///< rows of x used for the Fisher
  double gamma = 1.0;                 ///< the γ in κ_n
  std::size_t dataset_size = 1000;    ///< the n in κ_n
  std::uint64_t seed = 5;
};

struct EffectiveDimensionResult {
  double effective_dimension = 0.0;
  std::size_t parameter_count = 0;
  /// d_eff / P in [0, 1]; higher = the model uses its parameters better.
  double normalized = 0.0;
  double mean_fisher_trace = 0.0;
};

/// Computes the effective dimension of a candidate architecture on a data
/// batch `x` (labels are not needed — the Fisher uses the model's own
/// predictive distribution). Each parameter draw re-initializes the model.
EffectiveDimensionResult effective_dimension(
    const search::ModelSpec& spec, const tensor::Tensor& x,
    std::size_t classes, const EffectiveDimensionConfig& config);

}  // namespace qhdl::core
