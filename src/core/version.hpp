// Library identity.
#pragma once

namespace qhdl {

inline constexpr const char* kLibraryName = "qhdl";
inline constexpr const char* kLibraryVersion = "1.0.0";
inline constexpr const char* kPaperTitle =
    "Computational Advantage in Hybrid Quantum Neural Networks: "
    "Myth or Reality? (DAC 2025)";

}  // namespace qhdl
