// Study presets. `paper_scale` mirrors the paper's exact protocol
// (Section III-F / IV); `bench_scale` shrinks run counts and epochs so the
// full bench suite completes in minutes while preserving the protocol's
// structure (documented in EXPERIMENTS.md).
#pragma once

#include "search/experiment.hpp"

namespace qhdl::core {

/// Paper protocol: 5 runs x 5 repetitions, 100 epochs, batch 8, lr 1e-3,
/// features 10..110 step 10, threshold 0.90.
search::SweepConfig paper_scale();

/// Reduced protocol for CI/bench runs: 2 runs x 2 repetitions, 40 epochs,
/// pruning enabled, feature subset {10, 40, 80, 110}.
search::SweepConfig bench_scale();

/// Tiny protocol for unit tests: 1 run x 1 repetition, few epochs,
/// features {6}.
search::SweepConfig test_scale();

}  // namespace qhdl::core
