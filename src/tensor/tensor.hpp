// Dense row-major double tensor with value semantics.
//
// The Tensor class itself favors clarity and strict checking; the dense
// matmul hot paths in ops.cpp route through the blocked/packed GEMM kernel
// in gemm.cpp, and the training loop avoids per-op Tensor allocation
// entirely via the workspace trainer (nn/workspace.hpp).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tensor/shape.hpp"

namespace qhdl::tensor {

/// Owning dense tensor of doubles. Copy = deep copy (value semantics).
class Tensor {
 public:
  /// Scalar zero.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit data; data.size() must equal shape.size().
  Tensor(Shape shape, std::vector<double> data);

  /// Convenience factories -------------------------------------------------
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, double value);
  static Tensor scalar(double value);
  /// Row vector [1, n] from values.
  static Tensor row(std::vector<double> values);
  /// Matrix [rows, cols] from row-major values.
  static Tensor matrix(std::size_t rows, std::size_t cols,
                       std::vector<double> values);
  /// Identity matrix [n, n].
  static Tensor identity(std::size_t n);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.rank(); }
  std::size_t size() const { return data_.size(); }

  /// Rank-agnostic flat access.
  double& at(std::size_t flat_index);
  double at(std::size_t flat_index) const;

  /// Rank-2 access (checked).
  double& at(std::size_t row, std::size_t col);
  double at(std::size_t row, std::size_t col) const;

  /// Unchecked flat access for hot loops.
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Rank-2 helpers (throw std::logic_error if rank != 2).
  std::size_t rows() const;
  std::size_t cols() const;

  /// Reshapes in place; element count must be preserved.
  void reshape(Shape new_shape);

  /// Returns a reshaped copy.
  Tensor reshaped(Shape new_shape) const;

  void fill(double value);

  /// Debug rendering (full contents for small tensors, truncated otherwise).
  std::string to_string() const;

 private:
  Shape shape_;
  std::vector<double> data_;
};

}  // namespace qhdl::tensor
