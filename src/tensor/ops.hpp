// Tensor operations used by the NN stack. All functions validate shapes and
// throw std::invalid_argument with a contextual message on mismatch.
#pragma once

#include <functional>

#include "tensor/tensor.hpp"

namespace qhdl::tensor {

/// C = A·B for rank-2 operands ([m,k]·[k,n] -> [m,n]).
/// All matmul variants run on the blocked/packed GEMM kernel
/// (tensor/gemm.hpp); results are deterministic and identical between the
/// allocating and `_into` forms.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ·B without materializing Aᵀ ([k,m]ᵀ·[k,n] -> [m,n]).
Tensor matmul_transpose_a(const Tensor& a, const Tensor& b);

/// C = A·Bᵀ without materializing Bᵀ ([m,k]·[n,k]ᵀ -> [m,n]).
Tensor matmul_transpose_b(const Tensor& a, const Tensor& b);

/// Out-parameter variants for preallocated hot paths (the training
/// workspace). `out` must already have the result shape; no allocation is
/// performed. When `accumulate` is true the product is added into `out`
/// (gradient accumulation) instead of overwriting it.
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_transpose_a_into(const Tensor& a, const Tensor& b, Tensor& out,
                             bool accumulate = false);
void matmul_transpose_b_into(const Tensor& a, const Tensor& b, Tensor& out);

/// Rank-2 transpose.
Tensor transpose(const Tensor& a);

/// Elementwise binary ops (same shape required).
Tensor add(const Tensor& a, const Tensor& b);
Tensor subtract(const Tensor& a, const Tensor& b);
Tensor multiply(const Tensor& a, const Tensor& b);

/// a += b in place.
void add_inplace(Tensor& a, const Tensor& b);

/// Scalar ops.
Tensor scale(const Tensor& a, double factor);
void scale_inplace(Tensor& a, double factor);

/// Adds a row vector [1,n] (or [n]) to every row of a [m,n] matrix.
Tensor add_row_broadcast(const Tensor& matrix, const Tensor& row);

/// out = matrix with `row` added to every row; out must be pre-shaped
/// [m,n]. `out` may alias `matrix` for an in-place update.
void add_row_broadcast_into(const Tensor& matrix, const Tensor& row,
                            Tensor& out);

/// Applies fn to every element (returns a new tensor).
Tensor map(const Tensor& a, const std::function<double(double)>& fn);

/// Reductions.
double sum(const Tensor& a);
double mean_value(const Tensor& a);
/// Column sums of a [m,n] matrix -> [1,n] (used for bias gradients).
Tensor sum_rows(const Tensor& a);

/// Column sums accumulated into a preallocated [1,n] (or [n]) tensor.
/// When `accumulate` is true the sums are added to the existing contents.
void sum_rows_into(const Tensor& a, Tensor& out, bool accumulate = false);

/// Index of the maximum element in row `row` of a rank-2 tensor.
std::size_t argmax_row(const Tensor& a, std::size_t row);

/// Max |a - b| over elements (shapes must match).
double max_abs_difference(const Tensor& a, const Tensor& b);

/// Frobenius / L2 norm of all elements.
double norm(const Tensor& a);

/// True if every element satisfies |a-b| <= atol + rtol*|b|.
bool allclose(const Tensor& a, const Tensor& b, double rtol = 1e-9,
              double atol = 1e-12);

}  // namespace qhdl::tensor
