// Weight initializers matching the Keras defaults the paper's models used
// (GlorotUniform for Dense kernels, zeros for biases).
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace qhdl::tensor {

/// Glorot/Xavier uniform: U(-limit, limit) with limit = sqrt(6/(fan_in+fan_out)).
Tensor glorot_uniform(std::size_t fan_in, std::size_t fan_out,
                      util::Rng& rng);

/// He/Kaiming normal: N(0, sqrt(2/fan_in)); appropriate for ReLU stacks.
Tensor he_normal(std::size_t fan_in, std::size_t fan_out, util::Rng& rng);

/// Uniform tensor in [lo, hi).
Tensor uniform(Shape shape, double lo, double hi, util::Rng& rng);

/// Normal tensor with the given mean/stddev.
Tensor normal(Shape shape, double mean, double stddev, util::Rng& rng);

}  // namespace qhdl::tensor
