// Cache-blocked, register-tiled double GEMM used by every dense matmul in
// the library (tensor::matmul and friends, the NN workspace trainer).
//
// One kernel serves all four transpose combinations: operands are packed
// into contiguous panels first, so the inner microkernel always reads
// unit-stride memory regardless of the source layout. Accumulation over the
// inner dimension is strictly ascending per output element and the kernel is
// single-threaded, so results are deterministic and — because every caller
// (reference trainer, workspace trainer, Dense module) routes through this
// same code — bit-identical across the training paths that must agree
// (see DESIGN.md §9).
#pragma once

#include <cstddef>

namespace qhdl::tensor::gemm {

/// C[m,n] (+)= A[m,k] · B[k,n], all row-major.
///
/// `a_transposed`: A is stored as [k,m] with leading dimension `lda`
/// (logical element A(i,p) read from a[p*lda + i]) — the Xᵀ·dY case.
/// `b_transposed`: B is stored as [n,k] with leading dimension `ldb`
/// (logical element B(p,j) read from b[j*ldb + p]) — the dY·Wᵀ case.
/// `accumulate`: false overwrites C, true adds the product into C
/// (used to accumulate parameter gradients without a temporary).
void dgemm(std::size_t m, std::size_t n, std::size_t k,
           const double* a, std::size_t lda, bool a_transposed,
           const double* b, std::size_t ldb, bool b_transposed,
           double* c, std::size_t ldc, bool accumulate);

}  // namespace qhdl::tensor::gemm
