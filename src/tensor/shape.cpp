#include "tensor/shape.hpp"

#include <stdexcept>

namespace qhdl::tensor {

Shape::Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}

Shape::Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

std::size_t Shape::size() const {
  std::size_t total = 1;
  for (std::size_t d : dims_) total *= d;
  return total;
}

std::size_t Shape::operator[](std::size_t axis) const { return dims_[axis]; }

std::size_t Shape::dim(std::size_t axis) const {
  if (axis >= dims_.size()) {
    throw std::out_of_range("Shape::dim: axis " + std::to_string(axis) +
                            " out of range for rank " +
                            std::to_string(dims_.size()));
  }
  return dims_[axis];
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  return out + "]";
}

void check_same_shape(const Shape& a, const Shape& b, const char* context) {
  if (a != b) {
    throw std::invalid_argument(std::string{context} + ": shape mismatch " +
                                a.to_string() + " vs " + b.to_string());
  }
}

}  // namespace qhdl::tensor
