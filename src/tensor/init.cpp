#include "tensor/init.hpp"

#include <cmath>

namespace qhdl::tensor {

Tensor glorot_uniform(std::size_t fan_in, std::size_t fan_out,
                      util::Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return uniform(Shape{fan_in, fan_out}, -limit, limit, rng);
}

Tensor he_normal(std::size_t fan_in, std::size_t fan_out, util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  return normal(Shape{fan_in, fan_out}, 0.0, stddev, rng);
}

Tensor uniform(Shape shape, double lo, double hi, util::Rng& rng) {
  Tensor t{std::move(shape)};
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.uniform(lo, hi);
  return t;
}

Tensor normal(Shape shape, double mean, double stddev, util::Rng& rng) {
  Tensor t{std::move(shape)};
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.normal(mean, stddev);
  return t;
}

}  // namespace qhdl::tensor
