#include "tensor/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace qhdl::tensor {

namespace {

void check_square(const Tensor& a, const char* context) {
  if (a.rank() != 2 || a.rows() != a.cols()) {
    throw std::invalid_argument(std::string{context} +
                                ": square matrix required, got " +
                                a.shape().to_string());
  }
}

}  // namespace

Tensor cholesky(const Tensor& a, double jitter) {
  check_square(a, "cholesky");
  const std::size_t n = a.rows();
  Tensor l{Shape{n, n}};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j) + (i == j ? jitter : 0.0);
      for (std::size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw std::invalid_argument(
              "cholesky: matrix is not positive definite (pivot " +
              std::to_string(sum) + " at " + std::to_string(i) + ")");
        }
        l.at(i, j) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  return l;
}

double logdet_spd(const Tensor& a, double jitter) {
  const Tensor l = cholesky(a, jitter);
  double total = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) {
    total += std::log(l.at(i, i));
  }
  return 2.0 * total;
}

double symmetry_error(const Tensor& a) {
  check_square(a, "symmetry_error");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      worst = std::max(worst, std::abs(a.at(i, j) - a.at(j, i)));
    }
  }
  return worst;
}

Tensor gram(const Tensor& a) {
  if (a.rank() != 2) {
    throw std::invalid_argument("gram: rank-2 input required");
  }
  const std::size_t m = a.rows(), k = a.cols();
  Tensor g{Shape{m, m}};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) sum += a.at(i, p) * a.at(j, p);
      g.at(i, j) = sum;
      g.at(j, i) = sum;
    }
  }
  return g;
}

double trace(const Tensor& a) {
  check_square(a, "trace");
  double total = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) total += a.at(i, i);
  return total;
}

void add_outer_product(Tensor& matrix, const Tensor& v, double scale) {
  check_square(matrix, "add_outer_product");
  if (v.size() != matrix.rows()) {
    throw std::invalid_argument("add_outer_product: size mismatch");
  }
  const std::size_t n = v.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double vi = scale * v[i];
    if (vi == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      matrix.at(i, j) += vi * v[j];
    }
  }
}

Tensor cholesky_solve(const Tensor& l, const Tensor& b) {
  check_square(l, "cholesky_solve(L)");
  if (b.rank() != 2 || b.rows() != l.rows()) {
    throw std::invalid_argument("cholesky_solve: rhs shape mismatch");
  }
  const std::size_t n = l.rows();
  const std::size_t m = b.cols();
  // Forward substitution: L·Y = B.
  Tensor y = b;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < m; ++c) {
      double sum = y.at(i, c);
      for (std::size_t k = 0; k < i; ++k) sum -= l.at(i, k) * y.at(k, c);
      y.at(i, c) = sum / l.at(i, i);
    }
  }
  // Back substitution: Lᵀ·X = Y.
  Tensor x = y;
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t c = 0; c < m; ++c) {
      double sum = x.at(i, c);
      for (std::size_t k = i + 1; k < n; ++k) sum -= l.at(k, i) * x.at(k, c);
      x.at(i, c) = sum / l.at(i, i);
    }
  }
  return x;
}

Tensor solve_spd(const Tensor& a, const Tensor& b, double ridge) {
  return cholesky_solve(cholesky(a, ridge), b);
}

}  // namespace qhdl::tensor
