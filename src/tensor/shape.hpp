// Tensor shapes (dimension lists) with validation helpers.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace qhdl::tensor {

/// Dense row-major shape. Rank 0 denotes a scalar (element count 1).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims);
  explicit Shape(std::vector<std::size_t> dims);

  std::size_t rank() const { return dims_.size(); }

  /// Total element count (1 for scalars). Never zero unless a dim is zero.
  std::size_t size() const;

  std::size_t operator[](std::size_t axis) const;

  /// Dimension with negative-style bounds checking and a clear error.
  std::size_t dim(std::size_t axis) const;

  const std::vector<std::size_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3]" style rendering for error messages.
  std::string to_string() const;

 private:
  std::vector<std::size_t> dims_;
};

/// Throws std::invalid_argument with a contextual message on mismatch.
void check_same_shape(const Shape& a, const Shape& b, const char* context);

}  // namespace qhdl::tensor
