#include "tensor/tensor.hpp"

#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace qhdl::tensor {

Tensor::Tensor() : shape_{}, data_(1, 0.0) {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(shape_.size(), 0.0);
}

Tensor::Tensor(Shape shape, std::vector<double> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_.size()) {
    throw std::invalid_argument(
        "Tensor: data size " + std::to_string(data_.size()) +
        " does not match shape " + shape_.to_string());
  }
}

Tensor Tensor::zeros(Shape shape) { return Tensor{std::move(shape)}; }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0); }

Tensor Tensor::full(Shape shape, double value) {
  Tensor t{std::move(shape)};
  t.fill(value);
  return t;
}

Tensor Tensor::scalar(double value) {
  Tensor t;
  t.data_[0] = value;
  return t;
}

Tensor Tensor::row(std::vector<double> values) {
  const std::size_t n = values.size();
  return Tensor{Shape{1, n}, std::move(values)};
}

Tensor Tensor::matrix(std::size_t rows, std::size_t cols,
                      std::vector<double> values) {
  return Tensor{Shape{rows, cols}, std::move(values)};
}

Tensor Tensor::identity(std::size_t n) {
  Tensor t{Shape{n, n}};
  for (std::size_t i = 0; i < n; ++i) t.at(i, i) = 1.0;
  return t;
}

double& Tensor::at(std::size_t flat_index) {
  if (flat_index >= data_.size()) {
    throw std::out_of_range("Tensor::at: flat index out of range");
  }
  return data_[flat_index];
}

double Tensor::at(std::size_t flat_index) const {
  if (flat_index >= data_.size()) {
    throw std::out_of_range("Tensor::at: flat index out of range");
  }
  return data_[flat_index];
}

double& Tensor::at(std::size_t row, std::size_t col) {
  if (rank() != 2) throw std::logic_error("Tensor::at(r,c): rank != 2");
  if (row >= shape_[0] || col >= shape_[1]) {
    throw std::out_of_range("Tensor::at(r,c): index out of range");
  }
  return data_[row * shape_[1] + col];
}

double Tensor::at(std::size_t row, std::size_t col) const {
  if (rank() != 2) throw std::logic_error("Tensor::at(r,c): rank != 2");
  if (row >= shape_[0] || col >= shape_[1]) {
    throw std::out_of_range("Tensor::at(r,c): index out of range");
  }
  return data_[row * shape_[1] + col];
}

std::size_t Tensor::rows() const {
  if (rank() != 2) throw std::logic_error("Tensor::rows: rank != 2");
  return shape_[0];
}

std::size_t Tensor::cols() const {
  if (rank() != 2) throw std::logic_error("Tensor::cols: rank != 2");
  return shape_[1];
}

void Tensor::reshape(Shape new_shape) {
  if (new_shape.size() != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count changes (" +
                                shape_.to_string() + " -> " +
                                new_shape.to_string() + ")");
  }
  shape_ = std::move(new_shape);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::fill(double value) {
  for (auto& v : data_) v = value;
}

std::string Tensor::to_string() const {
  std::ostringstream oss;
  oss << "Tensor" << shape_.to_string() << " {";
  const std::size_t limit = 16;
  for (std::size_t i = 0; i < data_.size() && i < limit; ++i) {
    if (i > 0) oss << ", ";
    oss << util::format_double(data_[i], 4);
  }
  if (data_.size() > limit) oss << ", ...";
  oss << "}";
  return oss.str();
}

}  // namespace qhdl::tensor
