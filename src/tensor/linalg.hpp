// Dense linear algebra for symmetric positive-(semi)definite matrices —
// enough to compute log-determinants of Fisher information matrices for the
// effective-dimension analysis (core/effective_dimension).
#pragma once

#include "tensor/tensor.hpp"

namespace qhdl::tensor {

/// Cholesky factor L (lower triangular, A = L·Lᵀ) of a symmetric
/// positive-definite matrix. `jitter` is added to the diagonal first.
/// Throws std::invalid_argument if A is not square or not PD.
Tensor cholesky(const Tensor& a, double jitter = 0.0);

/// log det(A) for symmetric positive-definite A via Cholesky
/// (= 2 Σ log L_ii).
double logdet_spd(const Tensor& a, double jitter = 0.0);

/// Symmetry check: max |A_ij − A_ji|.
double symmetry_error(const Tensor& a);

/// C = A·Aᵀ (useful for building Gram/outer-product matrices).
Tensor gram(const Tensor& a);

/// Trace of a square matrix.
double trace(const Tensor& a);

/// out += scale * v vᵀ for a flat vector v (rank-1 update on a square
/// matrix). Sizes must agree.
void add_outer_product(Tensor& matrix, const Tensor& v, double scale);

/// Solves A·X = B for SPD A given its Cholesky factor L (A = L·Lᵀ) via
/// forward + back substitution. B may have multiple right-hand-side
/// columns; returns X with B's shape.
Tensor cholesky_solve(const Tensor& l, const Tensor& b);

/// Convenience: solves (A + ridge·I)·X = B for symmetric PSD A.
Tensor solve_spd(const Tensor& a, const Tensor& b, double ridge = 0.0);

}  // namespace qhdl::tensor
