#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/gemm.hpp"

namespace qhdl::tensor {

namespace {

void check_rank2(const Tensor& t, const char* context) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string{context} + ": expected rank 2, got " +
                                t.shape().to_string());
  }
}

struct MatmulDims {
  std::size_t m = 0, k = 0, n = 0;
};

MatmulDims check_matmul(const Tensor& a, const Tensor& b, bool a_transposed,
                        bool b_transposed, const char* context) {
  check_rank2(a, context);
  check_rank2(b, context);
  MatmulDims dims;
  dims.m = a_transposed ? a.cols() : a.rows();
  dims.k = a_transposed ? a.rows() : a.cols();
  dims.n = b_transposed ? b.rows() : b.cols();
  const std::size_t bk = b_transposed ? b.cols() : b.rows();
  if (bk != dims.k) {
    throw std::invalid_argument(std::string{context} + ": inner dims " +
                                a.shape().to_string() + " vs " +
                                b.shape().to_string());
  }
  return dims;
}

void check_out_shape(const Tensor& out, std::size_t rows, std::size_t cols,
                     const char* context) {
  if (out.rank() != 2 || out.rows() != rows || out.cols() != cols) {
    throw std::invalid_argument(
        std::string{context} + ": out shape " + out.shape().to_string() +
        " != [" + std::to_string(rows) + ", " + std::to_string(cols) + "]");
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  const MatmulDims d = check_matmul(a, b, false, false, "matmul");
  Tensor c{Shape{d.m, d.n}};
  gemm::dgemm(d.m, d.n, d.k, a.data().data(), d.k, false, b.data().data(),
              d.n, false, c.data().data(), d.n, false);
  return c;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  const MatmulDims d = check_matmul(a, b, false, false, "matmul_into");
  check_out_shape(out, d.m, d.n, "matmul_into");
  gemm::dgemm(d.m, d.n, d.k, a.data().data(), d.k, false, b.data().data(),
              d.n, false, out.data().data(), d.n, false);
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  const MatmulDims d = check_matmul(a, b, true, false, "matmul_transpose_a");
  Tensor c{Shape{d.m, d.n}};
  gemm::dgemm(d.m, d.n, d.k, a.data().data(), d.m, true, b.data().data(),
              d.n, false, c.data().data(), d.n, false);
  return c;
}

void matmul_transpose_a_into(const Tensor& a, const Tensor& b, Tensor& out,
                             bool accumulate) {
  const MatmulDims d =
      check_matmul(a, b, true, false, "matmul_transpose_a_into");
  check_out_shape(out, d.m, d.n, "matmul_transpose_a_into");
  gemm::dgemm(d.m, d.n, d.k, a.data().data(), d.m, true, b.data().data(),
              d.n, false, out.data().data(), d.n, accumulate);
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  const MatmulDims d = check_matmul(a, b, false, true, "matmul_transpose_b");
  Tensor c{Shape{d.m, d.n}};
  gemm::dgemm(d.m, d.n, d.k, a.data().data(), d.k, false, b.data().data(),
              d.k, true, c.data().data(), d.n, false);
  return c;
}

void matmul_transpose_b_into(const Tensor& a, const Tensor& b, Tensor& out) {
  const MatmulDims d =
      check_matmul(a, b, false, true, "matmul_transpose_b_into");
  check_out_shape(out, d.m, d.n, "matmul_transpose_b_into");
  gemm::dgemm(d.m, d.n, d.k, a.data().data(), d.k, false, b.data().data(),
              d.k, true, out.data().data(), d.n, false);
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  const std::size_t m = a.rows(), n = a.cols();
  Tensor t{Shape{n, m}};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "add");
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] += b[i];
  return c;
}

Tensor subtract(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "subtract");
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] -= b[i];
  return c;
}

Tensor multiply(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "multiply");
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] *= b[i];
  return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "add_inplace");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

Tensor scale(const Tensor& a, double factor) {
  Tensor c = a;
  scale_inplace(c, factor);
  return c;
}

void scale_inplace(Tensor& a, double factor) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= factor;
}

Tensor add_row_broadcast(const Tensor& matrix, const Tensor& row) {
  check_rank2(matrix, "add_row_broadcast(matrix)");
  const std::size_t n = matrix.cols();
  if (row.size() != n) {
    throw std::invalid_argument("add_row_broadcast: row size " +
                                std::to_string(row.size()) + " != cols " +
                                std::to_string(n));
  }
  Tensor c = matrix;
  add_row_broadcast_into(c, row, c);
  return c;
}

void add_row_broadcast_into(const Tensor& matrix, const Tensor& row,
                            Tensor& out) {
  check_rank2(matrix, "add_row_broadcast_into(matrix)");
  const std::size_t m = matrix.rows(), n = matrix.cols();
  if (row.size() != n) {
    throw std::invalid_argument("add_row_broadcast_into: row size " +
                                std::to_string(row.size()) + " != cols " +
                                std::to_string(n));
  }
  check_out_shape(out, m, n, "add_row_broadcast_into");
  const double* src = matrix.data().data();
  const double* rp = row.data().data();
  double* dst = out.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* srow = src + i * n;
    double* drow = dst + i * n;
    for (std::size_t j = 0; j < n; ++j) drow[j] = srow[j] + rp[j];
  }
}

Tensor map(const Tensor& a, const std::function<double(double)>& fn) {
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = fn(c[i]);
  return c;
}

double sum(const Tensor& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

double mean_value(const Tensor& a) {
  if (a.size() == 0) return 0.0;
  return sum(a) / static_cast<double>(a.size());
}

Tensor sum_rows(const Tensor& a) {
  check_rank2(a, "sum_rows");
  Tensor out{Shape{1, a.cols()}};
  sum_rows_into(a, out, /*accumulate=*/false);
  return out;
}

void sum_rows_into(const Tensor& a, Tensor& out, bool accumulate) {
  check_rank2(a, "sum_rows_into");
  const std::size_t m = a.rows(), n = a.cols();
  if (out.size() != n) {
    throw std::invalid_argument("sum_rows_into: out size " +
                                std::to_string(out.size()) + " != cols " +
                                std::to_string(n));
  }
  double* op = out.data().data();
  if (!accumulate) std::fill(op, op + n, 0.0);
  const double* ap = a.data().data();
  // Row-ascending accumulation: the same order as summing each column with
  // its own scalar accumulator, so results match the naive loop bit-for-bit.
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = ap + i * n;
    for (std::size_t j = 0; j < n; ++j) op[j] += arow[j];
  }
}

std::size_t argmax_row(const Tensor& a, std::size_t row) {
  check_rank2(a, "argmax_row");
  if (row >= a.rows()) {
    throw std::out_of_range("argmax_row: row out of range");
  }
  std::size_t best = 0;
  double best_value = a.at(row, 0);
  for (std::size_t j = 1; j < a.cols(); ++j) {
    if (a.at(row, j) > best_value) {
      best_value = a.at(row, j);
      best = j;
    }
  }
  return best;
}

double max_abs_difference(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "max_abs_difference");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double norm(const Tensor& a) {
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) ss += a[i] * a[i];
  return std::sqrt(ss);
}

bool allclose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > atol + rtol * std::abs(b[i])) return false;
  }
  return true;
}

}  // namespace qhdl::tensor
