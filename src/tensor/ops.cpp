#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

namespace qhdl::tensor {

namespace {

void check_rank2(const Tensor& t, const char* context) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string{context} + ": expected rank 2, got " +
                                t.shape().to_string());
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul(a)");
  check_rank2(b, "matmul(b)");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) {
    throw std::invalid_argument("matmul: inner dims " + a.shape().to_string() +
                                " vs " + b.shape().to_string());
  }
  Tensor c{Shape{m, n}};
  const auto* ap = a.data().data();
  const auto* bp = b.data().data();
  auto* cp = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const double aval = ap[i * k + p];
      if (aval == 0.0) continue;
      const double* brow = bp + p * n;
      double* crow = cp + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
  return c;
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_transpose_a(a)");
  check_rank2(b, "matmul_transpose_a(b)");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (b.rows() != k) {
    throw std::invalid_argument("matmul_transpose_a: inner dims " +
                                a.shape().to_string() + " vs " +
                                b.shape().to_string());
  }
  Tensor c{Shape{m, n}};
  const auto* ap = a.data().data();
  const auto* bp = b.data().data();
  auto* cp = c.data().data();
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = ap + p * m;
    const double* brow = bp + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double aval = arow[i];
      if (aval == 0.0) continue;
      double* crow = cp + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
  return c;
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_transpose_b(a)");
  check_rank2(b, "matmul_transpose_b(b)");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k) {
    throw std::invalid_argument("matmul_transpose_b: inner dims " +
                                a.shape().to_string() + " vs " +
                                b.shape().to_string());
  }
  Tensor c{Shape{m, n}};
  const auto* ap = a.data().data();
  const auto* bp = b.data().data();
  auto* cp = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = ap + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = bp + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      cp[i * n + j] = acc;
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  const std::size_t m = a.rows(), n = a.cols();
  Tensor t{Shape{n, m}};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "add");
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] += b[i];
  return c;
}

Tensor subtract(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "subtract");
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] -= b[i];
  return c;
}

Tensor multiply(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "multiply");
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] *= b[i];
  return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "add_inplace");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

Tensor scale(const Tensor& a, double factor) {
  Tensor c = a;
  scale_inplace(c, factor);
  return c;
}

void scale_inplace(Tensor& a, double factor) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= factor;
}

Tensor add_row_broadcast(const Tensor& matrix, const Tensor& row) {
  check_rank2(matrix, "add_row_broadcast(matrix)");
  const std::size_t n = matrix.cols();
  if (row.size() != n) {
    throw std::invalid_argument("add_row_broadcast: row size " +
                                std::to_string(row.size()) + " != cols " +
                                std::to_string(n));
  }
  Tensor c = matrix;
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    for (std::size_t j = 0; j < n; ++j) c.at(i, j) += row[j];
  }
  return c;
}

Tensor map(const Tensor& a, const std::function<double(double)>& fn) {
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = fn(c[i]);
  return c;
}

double sum(const Tensor& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

double mean_value(const Tensor& a) {
  if (a.size() == 0) return 0.0;
  return sum(a) / static_cast<double>(a.size());
}

Tensor sum_rows(const Tensor& a) {
  check_rank2(a, "sum_rows");
  Tensor out{Shape{1, a.cols()}};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += a.at(i, j);
  }
  return out;
}

std::size_t argmax_row(const Tensor& a, std::size_t row) {
  check_rank2(a, "argmax_row");
  if (row >= a.rows()) {
    throw std::out_of_range("argmax_row: row out of range");
  }
  std::size_t best = 0;
  double best_value = a.at(row, 0);
  for (std::size_t j = 1; j < a.cols(); ++j) {
    if (a.at(row, j) > best_value) {
      best_value = a.at(row, j);
      best = j;
    }
  }
  return best;
}

double max_abs_difference(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "max_abs_difference");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double norm(const Tensor& a) {
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) ss += a[i] * a[i];
  return std::sqrt(ss);
}

bool allclose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > atol + rtol * std::abs(b[i])) return false;
  }
  return true;
}

}  // namespace qhdl::tensor
