#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#include "util/backend_registry.hpp"

namespace qhdl::tensor::gemm {

namespace {

// Register tile (MR x NR accumulators) and cache blocks. MR*NR doubles plus
// one packed-B row must fit the architectural register file with room to
// spare at baseline x86-64 (SSE2, 16 xmm regs), so 4x4. The cache blocks
// keep one packed A block (MC*KC doubles = 128 KB) plus one packed B block
// (KC*NC doubles = 256 KB) resident in L2 while C tiles stay in L1.
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 4;
constexpr std::size_t MC = 64;
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 128;

double* scratch(std::vector<double>& buffer, std::size_t size) {
  if (buffer.size() < size) buffer.resize(size);
  return buffer.data();
}

// The MR x NR micro-kernel is registry-dispatched (DESIGN.md §13): every
// backend sums each acc element in ascending p — the deterministic order
// every caller shares — so the packed path stays bit-identical across
// backends. MR/NR here must match the registry's 4x4 packing contract.
static_assert(MR == 4 && NR == 4,
              "KernelOps::gemm_micro_4x4 assumes a 4x4 register tile");

// Shapes this small skip packing entirely: the classical search's matrices
// (batch 8, widths 2..110) are dominated by packing overhead, not cache
// misses. Both direct kernels keep the packed path's per-element arithmetic:
// each C element is a sum over ascending p starting from 0, committed to C
// with one store (or one add when accumulating) — so for k <= KC the direct
// and packed paths are bit-identical and the dispatch is purely a speed
// choice.
constexpr std::size_t kDirectMaxN = 128;

/// Direct i-k-j kernel with a stack row accumulator (B rows contiguous).
template <class AAt, class BAt>
void dgemm_direct_row(std::size_t m, std::size_t n, std::size_t k, AAt a_at,
                      BAt b_at, double* c, std::size_t ldc, bool accumulate) {
  double rowacc[kDirectMaxN];
  for (std::size_t i = 0; i < m; ++i) {
    std::fill(rowacc, rowacc + n, 0.0);
    for (std::size_t p = 0; p < k; ++p) {
      const double aval = a_at(i, p);
      for (std::size_t j = 0; j < n; ++j) rowacc[j] += aval * b_at(p, j);
    }
    double* crow = c + i * ldc;
    if (accumulate) {
      for (std::size_t j = 0; j < n; ++j) crow[j] += rowacc[j];
    } else {
      for (std::size_t j = 0; j < n; ++j) crow[j] = rowacc[j];
    }
  }
}

/// Direct i-j-k dot-product kernel for transposed B (both operands walk
/// contiguously over p). Four independent j accumulators break the serial
/// add-chain of a lone dot product; each accumulator is still its own
/// ascending-p sum, so per-element order matches dgemm_direct_row.
template <class AAt, class BAt>
void dgemm_direct_dot(std::size_t m, std::size_t n, std::size_t k, AAt a_at,
                      BAt b_at, double* c, std::size_t ldc, bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    double* crow = c + i * ldc;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double av = a_at(i, p);
        acc0 += av * b_at(p, j);
        acc1 += av * b_at(p, j + 1);
        acc2 += av * b_at(p, j + 2);
        acc3 += av * b_at(p, j + 3);
      }
      if (accumulate) {
        crow[j] += acc0;
        crow[j + 1] += acc1;
        crow[j + 2] += acc2;
        crow[j + 3] += acc3;
      } else {
        crow[j] = acc0;
        crow[j + 1] = acc1;
        crow[j + 2] = acc2;
        crow[j + 3] = acc3;
      }
    }
    for (; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a_at(i, p) * b_at(p, j);
      if (accumulate) {
        crow[j] += acc;
      } else {
        crow[j] = acc;
      }
    }
  }
}

template <class AAt, class BAt>
void dgemm_impl(std::size_t m, std::size_t n, std::size_t k, AAt a_at,
                BAt b_at, double* c, std::size_t ldc, bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) {
      for (std::size_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0.0);
      }
    }
    return;
  }
  thread_local std::vector<double> pa_buffer;
  thread_local std::vector<double> pb_buffer;
  const auto& simd_ops = util::simd::ops();

  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    const std::size_t nc_padded = (nc + NR - 1) / NR * NR;
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      // The first k-block overwrites C (unless accumulating into existing
      // contents); later blocks always add, keeping ascending-p order.
      const bool add_into_c = accumulate || pc > 0;

      // Pack B block: kc rows of nc_padded contiguous doubles, zero-padded
      // past nc so edge tiles run the full-width microkernel (the padded
      // lanes accumulate into discarded registers only).
      double* pb = scratch(pb_buffer, kc * nc_padded);
      for (std::size_t p = 0; p < kc; ++p) {
        double* row = pb + p * nc_padded;
        std::size_t j = 0;
        for (; j < nc; ++j) row[j] = b_at(pc + p, jc + j);
        for (; j < nc_padded; ++j) row[j] = 0.0;
      }

      for (std::size_t ic = 0; ic < m; ic += MC) {
        const std::size_t mc = std::min(MC, m - ic);
        const std::size_t tiles_m = (mc + MR - 1) / MR;

        // Pack A block tile-major: tile t holds rows [ic+t*MR, ic+t*MR+MR)
        // p-major (MR values per p step), zero-padded past mc.
        double* pa = scratch(pa_buffer, tiles_m * MR * kc);
        for (std::size_t t = 0; t < tiles_m; ++t) {
          double* tile = pa + t * MR * kc;
          for (std::size_t p = 0; p < kc; ++p) {
            for (std::size_t ii = 0; ii < MR; ++ii) {
              const std::size_t i = t * MR + ii;
              tile[p * MR + ii] =
                  i < mc ? a_at(ic + i, pc + p) : 0.0;
            }
          }
        }

        for (std::size_t t = 0; t < tiles_m; ++t) {
          const std::size_t i0 = ic + t * MR;
          const std::size_t mr = std::min(MR, ic + mc - i0);
          const double* pa_tile = pa + t * MR * kc;
          for (std::size_t jt = 0; jt < nc_padded / NR; ++jt) {
            const std::size_t j0 = jc + jt * NR;
            const std::size_t nr = std::min(NR, jc + nc - j0);
            double acc[MR][NR] = {};
            simd_ops.gemm_micro_4x4(kc, pa_tile, pb + jt * NR, nc_padded,
                                    acc);
            for (std::size_t ii = 0; ii < mr; ++ii) {
              double* crow = c + (i0 + ii) * ldc + j0;
              for (std::size_t jj = 0; jj < nr; ++jj) {
                if (add_into_c) {
                  crow[jj] += acc[ii][jj];
                } else {
                  crow[jj] = acc[ii][jj];
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

void dgemm(std::size_t m, std::size_t n, std::size_t k, const double* a,
           std::size_t lda, bool a_transposed, const double* b,
           std::size_t ldb, bool b_transposed, double* c, std::size_t ldc,
           bool accumulate) {
  const auto a_plain = [=](std::size_t i, std::size_t p) {
    return a[i * lda + p];
  };
  const auto a_trans = [=](std::size_t i, std::size_t p) {
    return a[p * lda + i];
  };
  const auto b_plain = [=](std::size_t p, std::size_t j) {
    return b[p * ldb + j];
  };
  const auto b_trans = [=](std::size_t p, std::size_t j) {
    return b[j * ldb + p];
  };

  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) {
      for (std::size_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0.0);
      }
    }
    return;
  }

  // Shape-only dispatch (never data-dependent): small problems — the whole
  // classical search space — go to the direct kernels, whose results are
  // bit-identical to the packed path for k <= KC.
  const bool small = k <= KC && n <= kDirectMaxN && k * n <= 8192;
  if (small) {
    if (b_transposed) {
      if (a_transposed) {
        dgemm_direct_dot(m, n, k, a_trans, b_trans, c, ldc, accumulate);
      } else {
        dgemm_direct_dot(m, n, k, a_plain, b_trans, c, ldc, accumulate);
      }
    } else {
      if (a_transposed) {
        dgemm_direct_row(m, n, k, a_trans, b_plain, c, ldc, accumulate);
      } else {
        dgemm_direct_row(m, n, k, a_plain, b_plain, c, ldc, accumulate);
      }
    }
    return;
  }

  if (a_transposed) {
    if (b_transposed) {
      dgemm_impl(m, n, k, a_trans, b_trans, c, ldc, accumulate);
    } else {
      dgemm_impl(m, n, k, a_trans, b_plain, c, ldc, accumulate);
    }
  } else {
    if (b_transposed) {
      dgemm_impl(m, n, k, a_plain, b_trans, c, ldc, accumulate);
    } else {
      dgemm_impl(m, n, k, a_plain, b_plain, c, ldc, accumulate);
    }
  }
}

}  // namespace qhdl::tensor::gemm
