// Gate library: fixed gates, parameterized rotations, their adjoints, and
// their parameter derivatives (used by adjoint differentiation).
//
// Conventions follow PennyLane:
//   RX(θ) = exp(-i θ X / 2), RY, RZ analogous;
//   Rot(φ, θ, ω) = RZ(ω) · RY(θ) · RZ(φ)   (RZ(φ) applied first);
//   PhaseShift(θ) = diag(1, e^{iθ});
//   CR*(θ) = |0⟩⟨0|⊗I + |1⟩⟨1|⊗R*(θ).
#pragma once

#include <span>
#include <string>

#include "quantum/statevector.hpp"

namespace qhdl::quantum {

class StateVectorBatch;

enum class GateType {
  // Fixed single-qubit gates.
  PauliX,
  PauliY,
  PauliZ,
  Hadamard,
  S,
  T,
  // Parameterized single-qubit gates (1 parameter each).
  RX,
  RY,
  RZ,
  PhaseShift,
  // Fixed two-qubit gates.
  CNOT,
  CZ,
  SWAP,
  // Parameterized controlled rotations (1 parameter each).
  CRX,
  CRY,
  CRZ,
  // Parameterized two-qubit Ising rotations exp(-i θ P⊗P / 2).
  RXX,
  RYY,
  RZZ,
};

/// Number of wires the gate acts on (1 or 2).
std::size_t gate_arity(GateType type);

/// True for gates that carry a rotation angle.
bool gate_is_parameterized(GateType type);

/// True for two-qubit gates whose first wire is a control.
bool gate_is_controlled(GateType type);

/// Human-readable name ("RX", "CNOT", ...).
std::string gate_name(GateType type);

namespace gates {

/// Fixed gate matrices.
Mat2 pauli_x();
Mat2 pauli_y();
Mat2 pauli_z();
Mat2 hadamard();
Mat2 s();
Mat2 t();

/// Rotation matrices.
Mat2 rx(double theta);
Mat2 ry(double theta);
Mat2 rz(double theta);
Mat2 phase_shift(double theta);

/// Parameter derivatives dU/dθ (non-unitary matrices).
Mat2 rx_derivative(double theta);
Mat2 ry_derivative(double theta);
Mat2 rz_derivative(double theta);
Mat2 phase_shift_derivative(double theta);

/// Matrix for any single-qubit GateType (angle ignored for fixed gates).
Mat2 matrix_for(GateType type, double theta);

/// Ising-gate pair matrices acting on the double-flip amplitude pairs (see
/// StateVector::apply_double_flip_pairs): first = even-parity block
/// (|00⟩↔|11⟩), second = odd-parity block (|01⟩↔|10⟩).
struct IsingPair {
  Mat2 even;
  Mat2 odd;
};
IsingPair ising_pair(GateType type, double theta);
IsingPair ising_pair_derivative(GateType type, double theta);

/// Derivative matrix for a parameterized single-qubit / controlled gate's
/// target factor. Throws std::invalid_argument for fixed gates.
Mat2 derivative_for(GateType type, double theta);

}  // namespace gates

/// Applies `type` (with optional angle) to the state on the given wires.
/// For two-qubit gates wires[0] is the control (or first swap wire).
void apply_gate(StateVector& state, GateType type, double theta,
                std::size_t wire0, std::size_t wire1 = SIZE_MAX);

/// Applies the inverse gate.
void apply_gate_inverse(StateVector& state, GateType type, double theta,
                        std::size_t wire0, std::size_t wire1 = SIZE_MAX);

/// Applies dU/dθ (non-unitary). Only valid for parameterized gates.
void apply_gate_derivative(StateVector& state, GateType type, double theta,
                           std::size_t wire0, std::size_t wire1 = SIZE_MAX);

// --- batched (SoA) dispatch -----------------------------------------------
// `angles` holds either ONE shared angle (size 1 — also pass {0.0} for fixed
// gates) or one angle per batch row (size batch.batch()). Shared angles hit
// the shared kernels (one trig evaluation for the whole batch); per-row
// angles hit the per-row kernel variants. These always use the specialized
// kernels — the QHDL_FORCE_GENERIC_KERNELS escape hatch disables the batched
// path upstream (callers fall back to per-row StateVector execution).

void apply_gate_batch(StateVectorBatch& batch, GateType type,
                      std::span<const double> angles, std::size_t wire0,
                      std::size_t wire1 = SIZE_MAX);

void apply_gate_inverse_batch(StateVectorBatch& batch, GateType type,
                              std::span<const double> angles,
                              std::size_t wire0, std::size_t wire1 = SIZE_MAX);

/// Only valid for parameterized gates.
void apply_gate_derivative_batch(StateVectorBatch& batch, GateType type,
                                 std::span<const double> angles,
                                 std::size_t wire0,
                                 std::size_t wire1 = SIZE_MAX);

}  // namespace qhdl::quantum
