// QNode-style executor: a circuit plus a list of observables, runnable on a
// parameter vector, with gradients via adjoint (default) or parameter-shift.
// This is the seam between the quantum simulator and the QNN layer.
#pragma once

#include <span>
#include <vector>

#include "quantum/adjoint_diff.hpp"
#include "quantum/circuit.hpp"
#include "quantum/observable.hpp"

namespace qhdl::quantum {

enum class DiffMethod { Adjoint, ParameterShift };

class Executor {
 public:
  Executor(Circuit circuit, std::vector<Observable> observables,
           DiffMethod diff_method = DiffMethod::Adjoint);

  const Circuit& circuit() const { return circuit_; }
  std::size_t observable_count() const { return observables_.size(); }
  std::size_t parameter_count() const { return circuit_.parameter_count(); }
  DiffMethod diff_method() const { return diff_method_; }

  /// Forward only: ⟨O_k⟩ for each observable.
  std::vector<double> run(std::span<const double> params) const;

  /// Forward + VJP: expectations and dL/dθ given upstream dL/d⟨O_k⟩.
  AdjointVjpResult run_with_vjp(std::span<const double> params,
                                std::span<const double> upstream) const;

  /// Full Jacobian d⟨O_k⟩/dθ_j (row per observable).
  std::vector<std::vector<double>> jacobian(
      std::span<const double> params) const;

  /// True when the batched SoA path can serve this executor: adjoint
  /// differentiation, all-diagonal observables, and the generic-kernel
  /// escape hatch not active.
  bool batch_path_available() const;

  /// Forward for `batch_rows` parameter rows at once through the SoA
  /// kernels. Row b reads params[b*param_stride, (b+1)*param_stride).
  /// Returns expectations [b * observable_count + k]. Falls back to per-row
  /// run() when batch_path_available() is false.
  std::vector<double> run_batch(std::span<const double> params,
                                std::size_t param_stride,
                                std::size_t batch_rows) const;

  /// Batched forward + VJP; upstream is [b * observable_count + k]. Falls
  /// back to per-row run_with_vjp when batch_path_available() is false.
  BatchAdjointVjpResult run_with_vjp_batch(
      std::span<const double> params, std::size_t param_stride,
      std::size_t batch_rows, std::span<const double> upstream) const;

 private:
  Circuit circuit_;
  std::vector<Observable> observables_;
  DiffMethod diff_method_;
};

}  // namespace qhdl::quantum
