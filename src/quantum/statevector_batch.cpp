#include "quantum/statevector_batch.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "quantum/kernels.hpp"
#include "util/backend_registry.hpp"

namespace qhdl::quantum {

namespace {

/// Same compact-index expanders as the scalar kernels (statevector.cpp).
inline std::size_t expand_two_zero_bits(std::size_t i, std::size_t lo_mask,
                                        std::size_t hi_mask) {
  std::size_t j = ((i & ~(lo_mask - 1)) << 1) | (i & (lo_mask - 1));
  return ((j & ~(hi_mask - 1)) << 1) | (j & (hi_mask - 1));
}

inline std::size_t expand_one_zero_bit(std::size_t i, std::size_t mask) {
  return ((i & ~(mask - 1)) << 1) | (i & (mask - 1));
}

}  // namespace

StateVectorBatch::StateVectorBatch(std::size_t num_qubits, std::size_t batch)
    : num_qubits_(num_qubits), batch_(batch) {
  if (num_qubits == 0 || num_qubits > 28) {
    throw std::invalid_argument(
        "StateVectorBatch: qubit count must be in [1,28]");
  }
  if (batch == 0) {
    throw std::invalid_argument("StateVectorBatch: batch must be >= 1");
  }
  dimension_ = std::size_t{1} << num_qubits;
  amplitudes_.assign(dimension_ * batch_, Complex{0.0, 0.0});
  for (std::size_t b = 0; b < batch_; ++b) {
    amplitudes_[b] = Complex{1.0, 0.0};
  }
}

void StateVectorBatch::reset() {
  for (auto& a : amplitudes_) a = Complex{0.0, 0.0};
  for (std::size_t b = 0; b < batch_; ++b) {
    amplitudes_[b] = Complex{1.0, 0.0};
  }
}

void StateVectorBatch::assign_from(const StateVectorBatch& other) {
  if (other.num_qubits_ != num_qubits_ || other.batch_ != batch_) {
    throw std::invalid_argument("StateVectorBatch::assign_from: shape");
  }
  // std::copy into the existing storage: same-shape batches have equal
  // sizes, so this never reallocates on the hot path (the adjoint sweep
  // calls assign_from once per parameterized op).
  std::copy(other.amplitudes_.begin(), other.amplitudes_.end(),
            amplitudes_.begin());
}

namespace {

/// Transpose block for the AoS<->SoA row bridges: enough amplitudes that
/// each strided pass streams ~a cache line per lane run without the whole
/// pass evicting the contiguous side (256 complexes = 4 KiB contiguous).
constexpr std::size_t kRowCopyBlock = 256;

}  // namespace

StateVector StateVectorBatch::extract_row(std::size_t row) const {
  if (row >= batch_) {
    throw std::out_of_range("StateVectorBatch::extract_row: row");
  }
  std::vector<Complex> amps(dimension_);
  const Complex* src = amplitudes_.data() + row;
  for (std::size_t i0 = 0; i0 < dimension_; i0 += kRowCopyBlock) {
    const std::size_t end = std::min(dimension_, i0 + kRowCopyBlock);
    for (std::size_t i = i0; i < end; ++i) {
      amps[i] = src[i * batch_];
    }
  }
  return StateVector{std::move(amps)};
}

void StateVectorBatch::set_row(std::size_t row, const StateVector& state) {
  if (row >= batch_) {
    throw std::out_of_range("StateVectorBatch::set_row: row");
  }
  if (state.dimension() != dimension_) {
    throw std::invalid_argument("StateVectorBatch::set_row: dimension");
  }
  const auto amps = state.amplitudes();
  Complex* dst = amplitudes_.data() + row;
  for (std::size_t i0 = 0; i0 < dimension_; i0 += kRowCopyBlock) {
    const std::size_t end = std::min(dimension_, i0 + kRowCopyBlock);
    for (std::size_t i = i0; i < end; ++i) {
      dst[i * batch_] = amps[i];
    }
  }
}

void StateVectorBatch::check_wire(std::size_t wire,
                                  const char* context) const {
  if (wire >= num_qubits_) {
    throw std::out_of_range(std::string{context} + ": wire " +
                            std::to_string(wire) + " out of range for " +
                            std::to_string(num_qubits_) + " qubits");
  }
}

void StateVectorBatch::check_rows(std::size_t span_size,
                                  const char* context) const {
  if (span_size != batch_) {
    throw std::invalid_argument(std::string{context} +
                                ": per-row span size " +
                                std::to_string(span_size) + " != batch " +
                                std::to_string(batch_));
  }
}

// --- shared-matrix kernels -------------------------------------------------

void StateVectorBatch::apply_single_qubit(const Mat2& gate,
                                          std::size_t wire) {
  check_wire(wire, "StateVectorBatch::apply_single_qubit");
  kernels::count_generic();
  kernels::count_batched_rows(batch_);
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  // Registry-dispatched (DESIGN.md §14): the active backend vectorizes
  // across the contiguous batch lanes; per-lane arithmetic is the scalar
  // StateVector formula unchanged.
  const Complex m[4] = {gate.m00, gate.m01, gate.m10, gate.m11};
  util::simd::ops().apply_single_qubit_batch(amplitudes_.data(), dimension_,
                                             stride, batch_, m);
}

void StateVectorBatch::apply_diagonal(Complex d0, Complex d1,
                                      std::size_t wire) {
  check_wire(wire, "StateVectorBatch::apply_diagonal");
  kernels::count_diagonal();
  kernels::count_batched_rows(batch_);
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  // Registry-dispatched; the d0 == 1 phase-gate fast path lives inside
  // the backend op, mirroring the scalar apply_diagonal.
  util::simd::ops().apply_diagonal_batch(amplitudes_.data(), dimension_,
                                         stride, batch_, d0, d1);
}

void StateVectorBatch::apply_rx_fast(double c, double s, std::size_t wire) {
  check_wire(wire, "StateVectorBatch::apply_rx_fast");
  kernels::count_real_rotation();
  kernels::count_batched_rows(batch_);
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  Complex* amps = amplitudes_.data();
  for (std::size_t block = 0; block < dimension_; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Complex* a0 = amps + (block + offset) * batch_;
      Complex* a1 = amps + (block + stride + offset) * batch_;
      for (std::size_t b = 0; b < batch_; ++b) {
        const double r0 = a0[b].real(), i0 = a0[b].imag();
        const double r1 = a1[b].real(), i1 = a1[b].imag();
        a0[b] = Complex{c * r0 + s * i1, c * i0 - s * r1};
        a1[b] = Complex{s * i0 + c * r1, -s * r0 + c * i1};
      }
    }
  }
}

void StateVectorBatch::apply_ry_fast(double c, double s, std::size_t wire) {
  check_wire(wire, "StateVectorBatch::apply_ry_fast");
  kernels::count_real_rotation();
  kernels::count_batched_rows(batch_);
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  Complex* amps = amplitudes_.data();
  for (std::size_t block = 0; block < dimension_; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Complex* a0 = amps + (block + offset) * batch_;
      Complex* a1 = amps + (block + stride + offset) * batch_;
      for (std::size_t b = 0; b < batch_; ++b) {
        const double r0 = a0[b].real(), i0 = a0[b].imag();
        const double r1 = a1[b].real(), i1 = a1[b].imag();
        a0[b] = Complex{c * r0 - s * r1, c * i0 - s * i1};
        a1[b] = Complex{s * r0 + c * r1, s * i0 + c * i1};
      }
    }
  }
}

void StateVectorBatch::apply_pauli_x(std::size_t wire) {
  check_wire(wire, "StateVectorBatch::apply_pauli_x");
  kernels::count_permutation();
  kernels::count_batched_rows(batch_);
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  Complex* amps = amplitudes_.data();
  for (std::size_t block = 0; block < dimension_; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Complex* a0 = amps + (block + offset) * batch_;
      Complex* a1 = amps + (block + stride + offset) * batch_;
      for (std::size_t b = 0; b < batch_; ++b) std::swap(a0[b], a1[b]);
    }
  }
}

void StateVectorBatch::apply_cnot(std::size_t control, std::size_t target) {
  check_wire(control, "StateVectorBatch::apply_cnot");
  check_wire(target, "StateVectorBatch::apply_cnot");
  if (control == target) {
    throw std::invalid_argument("StateVectorBatch::apply_cnot: wires equal");
  }
  kernels::count_permutation();
  kernels::count_batched_rows(batch_);
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const std::size_t lo = cmask < tmask ? cmask : tmask;
  const std::size_t hi = cmask < tmask ? tmask : cmask;
  // Registry-dispatched pure permutation: each swap moves a run of batch_
  // complexes.
  util::simd::ops().apply_cnot_pairs_batch(amplitudes_.data(), dimension_ / 4,
                                           lo, hi, cmask, tmask, batch_);
}

void StateVectorBatch::apply_two_qubit(const Mat4& gate, std::size_t wire_a,
                                       std::size_t wire_b) {
  check_wire(wire_a, "StateVectorBatch::apply_two_qubit");
  check_wire(wire_b, "StateVectorBatch::apply_two_qubit");
  if (wire_a == wire_b) {
    throw std::invalid_argument(
        "StateVectorBatch::apply_two_qubit: wires must differ");
  }
  kernels::count_two_qubit_dense();
  kernels::count_batched_rows(batch_);
  const std::size_t amask = std::size_t{1} << (num_qubits_ - 1 - wire_a);
  const std::size_t bmask = std::size_t{1} << (num_qubits_ - 1 - wire_b);
  const std::size_t lo = amask < bmask ? amask : bmask;
  const std::size_t hi = amask < bmask ? bmask : amask;
  // Same basis order as StateVector::apply_two_qubit: |wire_a wire_b⟩ rows
  // {base, base|bmask, base|amask, base|amask|bmask}.
  util::simd::ops().apply_two_qubit_batch(amplitudes_.data(), dimension_ / 4,
                                          lo, hi, amask, bmask, batch_,
                                          &gate.m[0][0]);
}

void StateVectorBatch::apply_cz(std::size_t control, std::size_t target) {
  check_wire(control, "StateVectorBatch::apply_cz");
  check_wire(target, "StateVectorBatch::apply_cz");
  if (control == target) {
    throw std::invalid_argument("StateVectorBatch::apply_cz: wires equal");
  }
  kernels::count_diagonal();
  kernels::count_batched_rows(batch_);
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const std::size_t lo = cmask < tmask ? cmask : tmask;
  const std::size_t hi = cmask < tmask ? tmask : cmask;
  Complex* amps = amplitudes_.data();
  for (std::size_t k = 0; k < dimension_ / 4; ++k) {
    Complex* a = amps + (expand_two_zero_bits(k, lo, hi) | cmask | tmask) *
                            batch_;
    for (std::size_t b = 0; b < batch_; ++b) a[b] = -a[b];
  }
}

void StateVectorBatch::apply_swap(std::size_t wire_a, std::size_t wire_b) {
  check_wire(wire_a, "StateVectorBatch::apply_swap");
  check_wire(wire_b, "StateVectorBatch::apply_swap");
  if (wire_a == wire_b) return;
  kernels::count_permutation();
  kernels::count_batched_rows(batch_);
  const std::size_t amask = std::size_t{1} << (num_qubits_ - 1 - wire_a);
  const std::size_t bmask = std::size_t{1} << (num_qubits_ - 1 - wire_b);
  const std::size_t lo = amask < bmask ? amask : bmask;
  const std::size_t hi = amask < bmask ? bmask : amask;
  Complex* amps = amplitudes_.data();
  for (std::size_t k = 0; k < dimension_ / 4; ++k) {
    const std::size_t base = expand_two_zero_bits(k, lo, hi);
    Complex* a0 = amps + (base | amask) * batch_;
    Complex* a1 = amps + (base | bmask) * batch_;
    for (std::size_t b = 0; b < batch_; ++b) std::swap(a0[b], a1[b]);
  }
}

void StateVectorBatch::apply_controlled(const Mat2& gate, std::size_t control,
                                        std::size_t target) {
  check_wire(control, "StateVectorBatch::apply_controlled");
  check_wire(target, "StateVectorBatch::apply_controlled");
  if (control == target) {
    throw std::invalid_argument(
        "StateVectorBatch::apply_controlled: wires equal");
  }
  kernels::count_controlled();
  kernels::count_batched_rows(batch_);
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const std::size_t lo = cmask < tmask ? cmask : tmask;
  const std::size_t hi = cmask < tmask ? tmask : cmask;
  Complex* amps = amplitudes_.data();
  for (std::size_t k = 0; k < dimension_ / 4; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
    Complex* a0 = amps + i * batch_;
    Complex* a1 = amps + (i | tmask) * batch_;
    for (std::size_t b = 0; b < batch_; ++b) {
      const Complex v0 = a0[b];
      const Complex v1 = a1[b];
      a0[b] = gate.m00 * v0 + gate.m01 * v1;
      a1[b] = gate.m10 * v0 + gate.m11 * v1;
    }
  }
}

void StateVectorBatch::apply_controlled_derivative(const Mat2& gate,
                                                   std::size_t control,
                                                   std::size_t target) {
  check_wire(control, "StateVectorBatch::apply_controlled_derivative");
  check_wire(target, "StateVectorBatch::apply_controlled_derivative");
  if (control == target) {
    throw std::invalid_argument(
        "StateVectorBatch::apply_controlled_derivative: wires equal");
  }
  kernels::count_controlled();
  kernels::count_batched_rows(batch_);
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  Complex* amps = amplitudes_.data();
  for (std::size_t k = 0; k < dimension_ / 2; ++k) {
    Complex* a = amps + expand_one_zero_bit(k, cmask) * batch_;
    for (std::size_t b = 0; b < batch_; ++b) a[b] = Complex{0.0, 0.0};
  }
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const std::size_t lo = cmask < tmask ? cmask : tmask;
  const std::size_t hi = cmask < tmask ? tmask : cmask;
  for (std::size_t k = 0; k < dimension_ / 4; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
    Complex* a0 = amps + i * batch_;
    Complex* a1 = amps + (i | tmask) * batch_;
    for (std::size_t b = 0; b < batch_; ++b) {
      const Complex v0 = a0[b];
      const Complex v1 = a1[b];
      a0[b] = gate.m00 * v0 + gate.m01 * v1;
      a1[b] = gate.m10 * v0 + gate.m11 * v1;
    }
  }
}

void StateVectorBatch::apply_double_flip_pairs(const Mat2& even_pair,
                                               const Mat2& odd_pair,
                                               std::size_t wire_a,
                                               std::size_t wire_b) {
  check_wire(wire_a, "StateVectorBatch::apply_double_flip_pairs");
  check_wire(wire_b, "StateVectorBatch::apply_double_flip_pairs");
  if (wire_a == wire_b) {
    throw std::invalid_argument(
        "StateVectorBatch::apply_double_flip_pairs: wires must differ");
  }
  kernels::count_double_flip();
  kernels::count_batched_rows(batch_);
  const std::size_t amask = std::size_t{1} << (num_qubits_ - 1 - wire_a);
  const std::size_t bmask = std::size_t{1} << (num_qubits_ - 1 - wire_b);
  const std::size_t flip = amask | bmask;
  const std::size_t lo = amask < bmask ? amask : bmask;
  const std::size_t hi = amask < bmask ? bmask : amask;
  Complex* amps = amplitudes_.data();
  const auto apply_pair = [&](std::size_t i, std::size_t j,
                              const Mat2& gate) {
    Complex* a0 = amps + i * batch_;
    Complex* a1 = amps + j * batch_;
    for (std::size_t b = 0; b < batch_; ++b) {
      const Complex v0 = a0[b];
      const Complex v1 = a1[b];
      a0[b] = gate.m00 * v0 + gate.m01 * v1;
      a1[b] = gate.m10 * v0 + gate.m11 * v1;
    }
  };
  for (std::size_t k = 0; k < dimension_ / 4; ++k) {
    const std::size_t base = expand_two_zero_bits(k, lo, hi);
    apply_pair(base, base ^ flip, even_pair);
    apply_pair(base | bmask, (base | bmask) ^ flip, odd_pair);
  }
}

// --- per-row kernels -------------------------------------------------------

void StateVectorBatch::apply_single_qubit_per_row(std::span<const Mat2> gates,
                                                  std::size_t wire) {
  check_wire(wire, "StateVectorBatch::apply_single_qubit_per_row");
  check_rows(gates.size(), "StateVectorBatch::apply_single_qubit_per_row");
  kernels::count_generic();
  kernels::count_batched_rows(batch_);
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  Complex* amps = amplitudes_.data();
  for (std::size_t block = 0; block < dimension_; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Complex* a0 = amps + (block + offset) * batch_;
      Complex* a1 = amps + (block + stride + offset) * batch_;
      for (std::size_t b = 0; b < batch_; ++b) {
        const Mat2& gate = gates[b];
        const Complex v0 = a0[b];
        const Complex v1 = a1[b];
        a0[b] = gate.m00 * v0 + gate.m01 * v1;
        a1[b] = gate.m10 * v0 + gate.m11 * v1;
      }
    }
  }
}

void StateVectorBatch::apply_diagonal_per_row(std::span<const Complex> d0,
                                              std::span<const Complex> d1,
                                              std::size_t wire) {
  check_wire(wire, "StateVectorBatch::apply_diagonal_per_row");
  check_rows(d0.size(), "StateVectorBatch::apply_diagonal_per_row");
  check_rows(d1.size(), "StateVectorBatch::apply_diagonal_per_row");
  kernels::count_diagonal();
  kernels::count_batched_rows(batch_);
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  Complex* amps = amplitudes_.data();
  for (std::size_t block = 0; block < dimension_; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Complex* a0 = amps + (block + offset) * batch_;
      Complex* a1 = amps + (block + stride + offset) * batch_;
      for (std::size_t b = 0; b < batch_; ++b) a0[b] *= d0[b];
      for (std::size_t b = 0; b < batch_; ++b) a1[b] *= d1[b];
    }
  }
}

void StateVectorBatch::apply_rx_fast_per_row(std::span<const double> c,
                                             std::span<const double> s,
                                             std::size_t wire) {
  check_wire(wire, "StateVectorBatch::apply_rx_fast_per_row");
  check_rows(c.size(), "StateVectorBatch::apply_rx_fast_per_row");
  check_rows(s.size(), "StateVectorBatch::apply_rx_fast_per_row");
  kernels::count_real_rotation();
  kernels::count_batched_rows(batch_);
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  Complex* amps = amplitudes_.data();
  for (std::size_t block = 0; block < dimension_; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Complex* a0 = amps + (block + offset) * batch_;
      Complex* a1 = amps + (block + stride + offset) * batch_;
      for (std::size_t b = 0; b < batch_; ++b) {
        const double r0 = a0[b].real(), i0 = a0[b].imag();
        const double r1 = a1[b].real(), i1 = a1[b].imag();
        a0[b] = Complex{c[b] * r0 + s[b] * i1, c[b] * i0 - s[b] * r1};
        a1[b] = Complex{s[b] * i0 + c[b] * r1, -s[b] * r0 + c[b] * i1};
      }
    }
  }
}

void StateVectorBatch::apply_ry_fast_per_row(std::span<const double> c,
                                             std::span<const double> s,
                                             std::size_t wire) {
  check_wire(wire, "StateVectorBatch::apply_ry_fast_per_row");
  check_rows(c.size(), "StateVectorBatch::apply_ry_fast_per_row");
  check_rows(s.size(), "StateVectorBatch::apply_ry_fast_per_row");
  kernels::count_real_rotation();
  kernels::count_batched_rows(batch_);
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  Complex* amps = amplitudes_.data();
  for (std::size_t block = 0; block < dimension_; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Complex* a0 = amps + (block + offset) * batch_;
      Complex* a1 = amps + (block + stride + offset) * batch_;
      for (std::size_t b = 0; b < batch_; ++b) {
        const double r0 = a0[b].real(), i0 = a0[b].imag();
        const double r1 = a1[b].real(), i1 = a1[b].imag();
        a0[b] = Complex{c[b] * r0 - s[b] * r1, c[b] * i0 - s[b] * i1};
        a1[b] = Complex{s[b] * r0 + c[b] * r1, s[b] * i0 + c[b] * i1};
      }
    }
  }
}

void StateVectorBatch::apply_controlled_per_row(std::span<const Mat2> gates,
                                                std::size_t control,
                                                std::size_t target) {
  check_wire(control, "StateVectorBatch::apply_controlled_per_row");
  check_wire(target, "StateVectorBatch::apply_controlled_per_row");
  check_rows(gates.size(), "StateVectorBatch::apply_controlled_per_row");
  if (control == target) {
    throw std::invalid_argument(
        "StateVectorBatch::apply_controlled_per_row: wires equal");
  }
  kernels::count_controlled();
  kernels::count_batched_rows(batch_);
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const std::size_t lo = cmask < tmask ? cmask : tmask;
  const std::size_t hi = cmask < tmask ? tmask : cmask;
  Complex* amps = amplitudes_.data();
  for (std::size_t k = 0; k < dimension_ / 4; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
    Complex* a0 = amps + i * batch_;
    Complex* a1 = amps + (i | tmask) * batch_;
    for (std::size_t b = 0; b < batch_; ++b) {
      const Mat2& gate = gates[b];
      const Complex v0 = a0[b];
      const Complex v1 = a1[b];
      a0[b] = gate.m00 * v0 + gate.m01 * v1;
      a1[b] = gate.m10 * v0 + gate.m11 * v1;
    }
  }
}

void StateVectorBatch::apply_controlled_derivative_per_row(
    std::span<const Mat2> gates, std::size_t control, std::size_t target) {
  check_wire(control, "StateVectorBatch::apply_controlled_derivative_per_row");
  check_wire(target, "StateVectorBatch::apply_controlled_derivative_per_row");
  check_rows(gates.size(),
             "StateVectorBatch::apply_controlled_derivative_per_row");
  if (control == target) {
    throw std::invalid_argument(
        "StateVectorBatch::apply_controlled_derivative_per_row: wires equal");
  }
  kernels::count_controlled();
  kernels::count_batched_rows(batch_);
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  Complex* amps = amplitudes_.data();
  for (std::size_t k = 0; k < dimension_ / 2; ++k) {
    Complex* a = amps + expand_one_zero_bit(k, cmask) * batch_;
    for (std::size_t b = 0; b < batch_; ++b) a[b] = Complex{0.0, 0.0};
  }
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const std::size_t lo = cmask < tmask ? cmask : tmask;
  const std::size_t hi = cmask < tmask ? tmask : cmask;
  for (std::size_t k = 0; k < dimension_ / 4; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
    Complex* a0 = amps + i * batch_;
    Complex* a1 = amps + (i | tmask) * batch_;
    for (std::size_t b = 0; b < batch_; ++b) {
      const Mat2& gate = gates[b];
      const Complex v0 = a0[b];
      const Complex v1 = a1[b];
      a0[b] = gate.m00 * v0 + gate.m01 * v1;
      a1[b] = gate.m10 * v0 + gate.m11 * v1;
    }
  }
}

void StateVectorBatch::apply_double_flip_pairs_per_row(
    std::span<const Mat2> even_pairs, std::span<const Mat2> odd_pairs,
    std::size_t wire_a, std::size_t wire_b) {
  check_wire(wire_a, "StateVectorBatch::apply_double_flip_pairs_per_row");
  check_wire(wire_b, "StateVectorBatch::apply_double_flip_pairs_per_row");
  check_rows(even_pairs.size(),
             "StateVectorBatch::apply_double_flip_pairs_per_row");
  check_rows(odd_pairs.size(),
             "StateVectorBatch::apply_double_flip_pairs_per_row");
  if (wire_a == wire_b) {
    throw std::invalid_argument(
        "StateVectorBatch::apply_double_flip_pairs_per_row: wires differ");
  }
  kernels::count_double_flip();
  kernels::count_batched_rows(batch_);
  const std::size_t amask = std::size_t{1} << (num_qubits_ - 1 - wire_a);
  const std::size_t bmask = std::size_t{1} << (num_qubits_ - 1 - wire_b);
  const std::size_t flip = amask | bmask;
  const std::size_t lo = amask < bmask ? amask : bmask;
  const std::size_t hi = amask < bmask ? bmask : amask;
  Complex* amps = amplitudes_.data();
  const auto apply_pair = [&](std::size_t i, std::size_t j,
                              std::span<const Mat2> gates) {
    Complex* a0 = amps + i * batch_;
    Complex* a1 = amps + j * batch_;
    for (std::size_t b = 0; b < batch_; ++b) {
      const Mat2& gate = gates[b];
      const Complex v0 = a0[b];
      const Complex v1 = a1[b];
      a0[b] = gate.m00 * v0 + gate.m01 * v1;
      a1[b] = gate.m10 * v0 + gate.m11 * v1;
    }
  };
  for (std::size_t k = 0; k < dimension_ / 4; ++k) {
    const std::size_t base = expand_two_zero_bits(k, lo, hi);
    apply_pair(base, base ^ flip, even_pairs);
    apply_pair(base | bmask, (base | bmask) ^ flip, odd_pairs);
  }
}

// --- reductions ------------------------------------------------------------

void StateVectorBatch::expval_pauli_z(std::size_t wire,
                                      std::span<double> out) const {
  check_wire(wire, "StateVectorBatch::expval_pauli_z");
  check_rows(out.size(), "StateVectorBatch::expval_pauli_z");
  const std::size_t mask = std::size_t{1} << (num_qubits_ - 1 - wire);
  // Registry-dispatched per-row sequential reduction (the batched canon —
  // backend_registry.hpp), one independent running sum per lane.
  util::simd::ops().expval_z_batch(amplitudes_.data(), dimension_, mask,
                                   batch_, out.data());
}

void StateVectorBatch::inner_products_real(const StateVectorBatch& other,
                                           std::span<double> out) const {
  if (other.num_qubits_ != num_qubits_ || other.batch_ != batch_) {
    throw std::invalid_argument(
        "StateVectorBatch::inner_products_real: shape mismatch");
  }
  check_rows(out.size(), "StateVectorBatch::inner_products_real");
  // Re(conj(l)·r) per row, accumulated in index order (the batched
  // reduction canon), registry-dispatched.
  util::simd::ops().inner_products_real_batch(amplitudes_.data(),
                                              other.amplitudes_.data(),
                                              dimension_, batch_, out.data());
}

}  // namespace qhdl::quantum
