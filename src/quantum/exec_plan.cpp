#include "quantum/exec_plan.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <list>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "quantum/circuit.hpp"
#include "quantum/kernels.hpp"
#include "quantum/statevector_batch.hpp"
#include "util/fault_injection.hpp"

namespace qhdl::quantum {

KernelClass kernel_class_for(GateType type) {
  // Mirrors apply_gate_specialized's dispatch switch (gates.cpp).
  switch (type) {
    case GateType::PauliZ:
    case GateType::S:
    case GateType::T:
    case GateType::RZ:
    case GateType::PhaseShift:
    case GateType::CZ:
      return KernelClass::Diagonal;
    case GateType::RX:
    case GateType::RY:
      return KernelClass::RealRotation;
    case GateType::PauliX:
    case GateType::CNOT:
    case GateType::SWAP:
      return KernelClass::Permutation;
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
      return KernelClass::Controlled;
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ:
      return KernelClass::DoubleFlip;
    case GateType::PauliY:
    case GateType::Hadamard:
      return KernelClass::Generic;
  }
  return KernelClass::Generic;
}

namespace {

/// True for gates whose square is the exact identity permutation/sign flip
/// on amplitudes, so an adjacent pair can be dropped without changing a
/// single bit of any downstream value. Hadamard is deliberately excluded:
/// H·H only equals identity up to 1/√2 rounding. PauliY is excluded too
/// (its dense matvec rounds through ±i multiplies).
bool cancels_exactly_with_self(GateType type) {
  switch (type) {
    case GateType::PauliX:
    case GateType::PauliZ:
    case GateType::CNOT:
    case GateType::CZ:
    case GateType::SWAP:
      return true;
    default:
      return false;
  }
}

/// True when wires match closely enough for an exact self-cancellation:
/// CNOT needs identical (control, target); CZ/SWAP are wire-symmetric.
bool wires_cancel(const PlanOp& a, const PlanOp& b) {
  if (a.wire0 == b.wire0 && a.wire1 == b.wire1) return true;
  if (a.type == GateType::CZ || a.type == GateType::SWAP) {
    return a.wire0 == b.wire1 && a.wire1 == b.wire0;
  }
  return false;
}

/// Dense 4x4 for a fixed-angle two-qubit gate in the (wire0, wire1) local
/// basis (index = bit_{wire0} << 1 | bit_{wire1}).
Mat4 two_qubit_matrix_for(GateType type, double theta) {
  Mat4 m{};
  const Complex one{1.0, 0.0};
  switch (type) {
    case GateType::CNOT:
      m.m[0][0] = one;
      m.m[1][1] = one;
      m.m[2][3] = one;
      m.m[3][2] = one;
      return m;
    case GateType::CZ:
      m.m[0][0] = one;
      m.m[1][1] = one;
      m.m[2][2] = one;
      m.m[3][3] = Complex{-1.0, 0.0};
      return m;
    case GateType::SWAP:
      m.m[0][0] = one;
      m.m[1][2] = one;
      m.m[2][1] = one;
      m.m[3][3] = one;
      return m;
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ: {
      const Mat2 u = gates::matrix_for(type, theta);
      m.m[0][0] = one;
      m.m[1][1] = one;
      m.m[2][2] = u.m00;
      m.m[2][3] = u.m01;
      m.m[3][2] = u.m10;
      m.m[3][3] = u.m11;
      return m;
    }
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ: {
      const gates::IsingPair pair = gates::ising_pair(type, theta);
      // Even-parity block couples |00⟩ (local 0) with |11⟩ (local 3), the
      // odd block couples |01⟩ (local 1, wire0's bit low) with |10⟩.
      m.m[0][0] = pair.even.m00;
      m.m[0][3] = pair.even.m01;
      m.m[3][0] = pair.even.m10;
      m.m[3][3] = pair.even.m11;
      m.m[1][1] = pair.odd.m00;
      m.m[1][2] = pair.odd.m01;
      m.m[2][1] = pair.odd.m10;
      m.m[2][2] = pair.odd.m11;
      return m;
    }
    default:
      throw std::invalid_argument("two_qubit_matrix_for: " + gate_name(type) +
                                  " is not a two-qubit gate");
  }
}

/// Re-expresses a 4x4 given in (b, a) wire order in (a, b) order: local
/// basis bits swap, i.e. indices 1 and 2 transpose in both dimensions.
Mat4 swap_wire_order(const Mat4& m) {
  constexpr int perm[4] = {0, 2, 1, 3};
  Mat4 out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) out.m[r][c] = m.m[perm[r]][perm[c]];
  }
  return out;
}

std::uint64_t fnv1a64(const std::string& text) {
  // Same FNV-1a scheme as search::sweep_config_hash (checkpoint.cpp).
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Canonical structural string for a circuit: qubit count plus, per op,
/// gate type, wires, and parameter slot or exact fixed-angle bits. Two
/// circuits compile to interchangeable plans iff their keys match.
std::string build_structure_key(const Circuit& circuit) {
  std::ostringstream oss;
  oss << "q" << circuit.num_qubits();
  for (const Op& op : circuit.ops()) {
    oss << "|" << static_cast<int>(op.type) << ":" << op.wire0;
    if (op.wire1 != SIZE_MAX) oss << "," << op.wire1;
    if (op.param_index.has_value()) {
      oss << ":p" << *op.param_index;
    } else {
      // Exact bit pattern, immune to locale and formatting-precision drift.
      char bits[17];
      std::snprintf(bits, sizeof bits, "%016llx",
                    static_cast<unsigned long long>(
                        std::bit_cast<std::uint64_t>(op.fixed_angle)));
      oss << ":f" << bits;
    }
  }
  return oss.str();
}

/// Deferred single-qubit gates on one wire during fused-stream lowering.
struct CompileChain {
  std::vector<ChainGate> gates;
  bool all_fixed = true;
};

void flush_chain(std::vector<FusedOp>& fused, std::vector<ChainGate>& pool,
                 CompileChain& chain, std::size_t wire) {
  if (chain.gates.empty()) return;
  FusedOp op;
  op.wire0 = wire;
  op.gate_count = static_cast<std::uint32_t>(chain.gates.size());
  if (chain.gates.size() == 1) {
    const ChainGate& g = chain.gates.front();
    op.kind = FusedOp::Kind::Single;
    op.type = g.type;
    op.param_slot = g.param_slot;
    op.fixed_angle = g.fixed_angle;
    op.kernel = kernel_class_for(g.type);
  } else if (chain.all_fixed) {
    // Precompute the product once; same order as the runtime fuser
    // (later gates multiply from the left).
    Mat2 matrix =
        gates::matrix_for(chain.gates[0].type, chain.gates[0].fixed_angle);
    bool all_diagonal = kernel_class_for(chain.gates[0].type) ==
                        KernelClass::Diagonal;
    for (std::size_t i = 1; i < chain.gates.size(); ++i) {
      matrix = gates::matrix_for(chain.gates[i].type,
                                 chain.gates[i].fixed_angle) *
               matrix;
      all_diagonal = all_diagonal && kernel_class_for(chain.gates[i].type) ==
                                         KernelClass::Diagonal;
    }
    if (all_diagonal) {
      op.kind = FusedOp::Kind::DiagonalChain;
      op.d0 = matrix.m00;
      op.d1 = matrix.m11;
      op.kernel = KernelClass::Diagonal;
    } else {
      op.kind = FusedOp::Kind::FixedChain;
      op.matrix = matrix;
      op.kernel = KernelClass::Generic;
    }
  } else {
    op.kind = FusedOp::Kind::Chain;
    op.chain_begin = static_cast<std::uint32_t>(pool.size());
    op.chain_length = static_cast<std::uint32_t>(chain.gates.size());
    op.kernel = KernelClass::Generic;
    pool.insert(pool.end(), chain.gates.begin(), chain.gates.end());
  }
  fused.push_back(op);
  chain.gates.clear();
  chain.all_fixed = true;
}

}  // namespace

std::shared_ptr<const ExecutionPlan> compile_circuit(const Circuit& circuit) {
  auto plan = std::make_shared<ExecutionPlan>();
  plan->num_qubits_ = circuit.num_qubits();
  plan->parameter_count_ = circuit.parameter_count();
  plan->source_op_count_ = circuit.op_count();
  plan->structure_key_ = build_structure_key(circuit);
  plan->structure_hash_ = fnv1a64(plan->structure_key_);

  // 1. Flat stream: resolve params/kernels, peephole-cancel exact
  //    involution pairs (stack scan reaches the fixpoint in one pass).
  std::vector<PlanOp>& flat = plan->flat_ops_;
  flat.reserve(circuit.op_count());
  for (const Op& op : circuit.ops()) {
    PlanOp lowered;
    lowered.type = op.type;
    lowered.wire0 = op.wire0;
    lowered.wire1 = op.wire1;
    lowered.param_slot = op.param_index.has_value()
                             ? static_cast<std::int64_t>(*op.param_index)
                             : -1;
    lowered.fixed_angle = op.fixed_angle;
    lowered.kernel = kernel_class_for(op.type);
    if (!flat.empty() && cancels_exactly_with_self(op.type) &&
        flat.back().type == op.type && wires_cancel(flat.back(), lowered)) {
      flat.pop_back();
      continue;
    }
    flat.push_back(lowered);
  }
  plan->cancelled_op_count_ = circuit.op_count() - flat.size();

  // 2. Fused stream: replay the per-wire deferral the runtime fuser does,
  //    but once, at compile time. Emission order matches Circuit::run.
  std::vector<CompileChain> pending(plan->num_qubits_);
  for (const PlanOp& op : flat) {
    if (gate_arity(op.type) == 1) {
      CompileChain& chain = pending[op.wire0];
      chain.gates.push_back(
          ChainGate{op.type, op.param_slot, op.fixed_angle});
      chain.all_fixed = chain.all_fixed && op.param_slot < 0;
      continue;
    }
    flush_chain(plan->fused_ops_, plan->chain_gates_, pending[op.wire0],
                op.wire0);
    flush_chain(plan->fused_ops_, plan->chain_gates_, pending[op.wire1],
                op.wire1);
    // Angle-independent two-qubit gates adjacent on the same wire pair
    // collapse into one precomputed 4x4.
    FusedOp* prev =
        plan->fused_ops_.empty() ? nullptr : &plan->fused_ops_.back();
    const bool prev_fusable =
        prev != nullptr &&
        (prev->kind == FusedOp::Kind::FusedPair ||
         (prev->kind == FusedOp::Kind::TwoQubit && prev->param_slot < 0)) &&
        ((prev->wire0 == op.wire0 && prev->wire1 == op.wire1) ||
         (prev->wire0 == op.wire1 && prev->wire1 == op.wire0));
    if (op.param_slot < 0 && prev_fusable) {
      Mat4 base = prev->kind == FusedOp::Kind::FusedPair
                      ? prev->matrix4
                      : two_qubit_matrix_for(prev->type, prev->fixed_angle);
      Mat4 next = two_qubit_matrix_for(op.type, op.fixed_angle);
      if (prev->wire0 != op.wire0) next = swap_wire_order(next);
      prev->kind = FusedOp::Kind::FusedPair;
      prev->matrix4 = next * base;
      prev->kernel = KernelClass::Generic;
      prev->param_slot = -1;
      ++prev->gate_count;
      continue;
    }
    FusedOp two;
    two.kind = FusedOp::Kind::TwoQubit;
    two.type = op.type;
    two.wire0 = op.wire0;
    two.wire1 = op.wire1;
    two.param_slot = op.param_slot;
    two.fixed_angle = op.fixed_angle;
    two.kernel = op.kernel;
    plan->fused_ops_.push_back(two);
  }
  for (std::size_t wire = 0; wire < plan->num_qubits_; ++wire) {
    flush_chain(plan->fused_ops_, plan->chain_gates_, pending[wire], wire);
  }
  return plan;
}

void ExecutionPlan::run(StateVector& state,
                        std::span<const double> params) const {
  for (const FusedOp& op : fused_ops_) {
    switch (op.kind) {
      case FusedOp::Kind::Single:
        apply_gate(state, op.type, op.angle(params), op.wire0);
        break;
      case FusedOp::Kind::Chain: {
        // Same left-multiplication order as the runtime fuser, so the
        // product — and therefore the state — matches it bit-for-bit.
        const ChainGate* gates = &chain_gates_[op.chain_begin];
        Mat2 matrix =
            gates::matrix_for(gates[0].type, gates[0].angle(params));
        for (std::uint32_t i = 1; i < op.chain_length; ++i) {
          matrix =
              gates::matrix_for(gates[i].type, gates[i].angle(params)) *
              matrix;
        }
        state.apply_single_qubit(matrix, op.wire0);
        kernels::count_fused(op.chain_length);
        break;
      }
      case FusedOp::Kind::FixedChain:
        state.apply_single_qubit(op.matrix, op.wire0);
        kernels::count_fused(op.gate_count);
        break;
      case FusedOp::Kind::DiagonalChain:
        state.apply_diagonal(op.d0, op.d1, op.wire0);
        kernels::count_fused(op.gate_count);
        break;
      case FusedOp::Kind::TwoQubit:
        apply_gate(state, op.type, op.angle(params), op.wire0, op.wire1);
        break;
      case FusedOp::Kind::FusedPair:
        state.apply_two_qubit(op.matrix4, op.wire0, op.wire1);
        kernels::count_fused(op.gate_count);
        break;
    }
  }
}

void ExecutionPlan::run_batch(StateVectorBatch& batch,
                              std::span<const double> params,
                              std::size_t param_stride) const {
  // Executes the FUSED stream — the same ops ExecutionPlan::run dispatches
  // — so every batch row reproduces the scalar compiled path bit-for-bit
  // and the fused chains feed the batched SIMD kernels (DESIGN.md §14).
  // Parameterized gates detect shared-vs-per-row angles at runtime; a
  // chain whose angles are all row-independent falls back to one 2x2
  // product per row, built in the scalar fuser's left-multiplication
  // order.
  const std::size_t rows = batch.batch();
  thread_local std::vector<double> angles;
  thread_local std::vector<Mat2> row_mats;
  angles.resize(rows);
  const auto gather = [&](std::int64_t slot, double fixed_angle) -> bool {
    // Fills `angles`; true when every row shares one angle.
    if (slot < 0) {
      angles[0] = fixed_angle;
      return true;
    }
    const std::size_t index = static_cast<std::size_t>(slot);
    bool shared = true;
    for (std::size_t b = 0; b < rows; ++b) {
      angles[b] = params[b * param_stride + index];
      shared = shared && angles[b] == angles[0];
    }
    return shared;
  };
  for (const FusedOp& op : fused_ops_) {
    switch (op.kind) {
      case FusedOp::Kind::Single:
      case FusedOp::Kind::TwoQubit: {
        const bool shared = gather(op.param_slot, op.fixed_angle);
        apply_gate_batch(batch, op.type,
                         shared ? std::span<const double>{angles.data(), 1}
                                : std::span<const double>{angles},
                         op.wire0, op.wire1);
        break;
      }
      case FusedOp::Kind::Chain: {
        const ChainGate* gates = &chain_gates_[op.chain_begin];
        bool all_shared = true;
        for (std::uint32_t i = 0; i < op.chain_length && all_shared; ++i) {
          if (gates[i].param_slot < 0) continue;
          const std::size_t index =
              static_cast<std::size_t>(gates[i].param_slot);
          const double first = params[index];
          for (std::size_t b = 1; b < rows && all_shared; ++b) {
            all_shared = params[b * param_stride + index] == first;
          }
        }
        const auto chain_angle = [&](std::uint32_t i, std::size_t b) {
          return gates[i].param_slot < 0
                     ? gates[i].fixed_angle
                     : params[b * param_stride +
                              static_cast<std::size_t>(gates[i].param_slot)];
        };
        if (all_shared) {
          Mat2 matrix = gates::matrix_for(gates[0].type, chain_angle(0, 0));
          for (std::uint32_t i = 1; i < op.chain_length; ++i) {
            matrix =
                gates::matrix_for(gates[i].type, chain_angle(i, 0)) * matrix;
          }
          batch.apply_single_qubit(matrix, op.wire0);
        } else {
          row_mats.resize(rows);
          for (std::size_t b = 0; b < rows; ++b) {
            Mat2 matrix = gates::matrix_for(gates[0].type, chain_angle(0, b));
            for (std::uint32_t i = 1; i < op.chain_length; ++i) {
              matrix = gates::matrix_for(gates[i].type, chain_angle(i, b)) *
                       matrix;
            }
            row_mats[b] = matrix;
          }
          batch.apply_single_qubit_per_row(row_mats, op.wire0);
        }
        kernels::count_fused(op.chain_length);
        break;
      }
      case FusedOp::Kind::FixedChain:
        batch.apply_single_qubit(op.matrix, op.wire0);
        kernels::count_fused(op.gate_count);
        break;
      case FusedOp::Kind::DiagonalChain:
        batch.apply_diagonal(op.d0, op.d1, op.wire0);
        kernels::count_fused(op.gate_count);
        break;
      case FusedOp::Kind::FusedPair:
        batch.apply_two_qubit(op.matrix4, op.wire0, op.wire1);
        kernels::count_fused(op.gate_count);
        break;
    }
  }
}

std::string PlanCacheStats::to_string() const {
  std::ostringstream oss;
  oss << "plan cache: hits=" << hits << " misses=" << misses
      << " compiled=" << compiled << " evictions=" << evictions
      << " resident=" << size << "/" << capacity;
  return oss.str();
}

namespace plan_cache {

namespace {

struct CacheEntry {
  std::string key;
  std::shared_ptr<const ExecutionPlan> plan;
  std::uint64_t last_used = 0;
};

struct Cache {
  std::mutex mutex;
  // Hash → entries with that hash (collision bucket; full keys compared).
  std::unordered_map<std::uint64_t, std::vector<CacheEntry>> buckets;
  std::size_t resident = 0;
  std::uint64_t tick = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t compiled = 0;
  std::optional<std::size_t> capacity_override;

  std::size_t capacity() const {
    if (capacity_override.has_value()) return *capacity_override;
    static const std::size_t from_env = [] {
      const char* value = std::getenv("QHDL_PLAN_CACHE_CAPACITY");
      if (value != nullptr && value[0] != '\0') {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(value, &end, 10);
        if (end != nullptr && *end == '\0') {
          return static_cast<std::size_t>(parsed);
        }
      }
      return std::size_t{64};
    }();
    return from_env;
  }

  /// Drops least-recently-used entries until `resident` <= `limit`.
  /// Caller holds the mutex.
  void evict_down_to(std::size_t limit) {
    while (resident > limit) {
      std::uint64_t oldest_hash = 0;
      std::size_t oldest_index = 0;
      std::uint64_t oldest_tick = UINT64_MAX;
      for (const auto& [hash, entries] : buckets) {
        for (std::size_t i = 0; i < entries.size(); ++i) {
          if (entries[i].last_used < oldest_tick) {
            oldest_tick = entries[i].last_used;
            oldest_hash = hash;
            oldest_index = i;
          }
        }
      }
      auto& entries = buckets[oldest_hash];
      entries.erase(entries.begin() +
                    static_cast<std::ptrdiff_t>(oldest_index));
      if (entries.empty()) buckets.erase(oldest_hash);
      --resident;
      ++evictions;
    }
  }

  void drop_all() {
    evictions += resident;
    buckets.clear();
    resident = 0;
  }
};

Cache& cache() {
  static Cache instance;
  return instance;
}

}  // namespace

std::shared_ptr<const ExecutionPlan> get_or_compile(const Circuit& circuit) {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  // Deterministic fault site: plan=evict@N flushes the whole cache on the
  // N-th lookup, forcing a rehash + recompile (results must not change).
  if (util::FaultInjector::instance().plan_cache_evict()) {
    c.drop_all();
  }
  const std::string key = build_structure_key(circuit);
  const std::uint64_t hash = fnv1a64(key);
  auto bucket = c.buckets.find(hash);
  if (bucket != c.buckets.end()) {
    for (CacheEntry& entry : bucket->second) {
      if (entry.key == key) {
        ++c.hits;
        entry.last_used = ++c.tick;
        return entry.plan;
      }
    }
  }
  ++c.misses;
  // Compiling under the lock serializes first-touch per structure but
  // guarantees exactly one resident plan and one compile per miss.
  std::shared_ptr<const ExecutionPlan> plan = compile_circuit(circuit);
  ++c.compiled;
  CacheEntry entry;
  entry.key = key;
  entry.plan = plan;
  entry.last_used = ++c.tick;
  c.buckets[hash].push_back(std::move(entry));
  ++c.resident;
  c.evict_down_to(c.capacity());
  return plan;
}

PlanCacheStats stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  PlanCacheStats snapshot;
  snapshot.hits = c.hits;
  snapshot.misses = c.misses;
  snapshot.evictions = c.evictions;
  snapshot.compiled = c.compiled;
  snapshot.size = c.resident;
  snapshot.capacity = c.capacity();
  return snapshot;
}

void reset_stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.hits = 0;
  c.misses = 0;
  c.evictions = 0;
  c.compiled = 0;
}

void clear() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.drop_all();
}

std::size_t size() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.resident;
}

void set_capacity(std::optional<std::size_t> capacity) {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.capacity_override = capacity;
  c.evict_down_to(c.capacity());
}

}  // namespace plan_cache
}  // namespace qhdl::quantum
