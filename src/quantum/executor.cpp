#include "quantum/executor.hpp"

#include <algorithm>
#include <stdexcept>

#include "quantum/kernels.hpp"
#include "quantum/parameter_shift.hpp"
#include "quantum/statevector_batch.hpp"

namespace qhdl::quantum {

Executor::Executor(Circuit circuit, std::vector<Observable> observables,
                   DiffMethod diff_method)
    : circuit_(std::move(circuit)),
      observables_(std::move(observables)),
      diff_method_(diff_method) {
  if (observables_.empty()) {
    throw std::invalid_argument("Executor: need at least one observable");
  }
  // Prime the compiled plan while construction is still single-threaded:
  // later run()/run_batch() calls (possibly from many worker threads at
  // once) find the memoized slot already filled. No-op when a force flag
  // disables compiled execution.
  circuit_.compiled_plan();
}

std::vector<double> Executor::run(std::span<const double> params) const {
  const StateVector psi = circuit_.execute(params);
  std::vector<double> expectations;
  expectations.reserve(observables_.size());
  for (const Observable& obs : observables_) {
    expectations.push_back(obs.expectation(psi));
  }
  return expectations;
}

AdjointVjpResult Executor::run_with_vjp(
    std::span<const double> params, std::span<const double> upstream) const {
  if (upstream.size() != observables_.size()) {
    throw std::invalid_argument("Executor::run_with_vjp: upstream size");
  }
  if (diff_method_ == DiffMethod::Adjoint) {
    return adjoint_vjp(circuit_, params, observables_, upstream);
  }
  // Parameter-shift path: full Jacobian, then contract with upstream.
  AdjointVjpResult result;
  result.expectations = run(params);
  result.gradient.assign(circuit_.parameter_count(), 0.0);
  for (std::size_t k = 0; k < observables_.size(); ++k) {
    if (upstream[k] == 0.0) continue;
    const auto row =
        parameter_shift_gradient(circuit_, params, observables_[k]);
    for (std::size_t j = 0; j < row.size(); ++j) {
      result.gradient[j] += upstream[k] * row[j];
    }
  }
  return result;
}

bool Executor::batch_path_available() const {
  if (kernels::force_generic()) return false;
  if (diff_method_ != DiffMethod::Adjoint) return false;
  for (const Observable& obs : observables_) {
    if (!obs.is_diagonal()) return false;
  }
  return true;
}

std::vector<double> Executor::run_batch(std::span<const double> params,
                                        std::size_t param_stride,
                                        std::size_t batch_rows) const {
  if (batch_rows == 0) {
    throw std::invalid_argument("Executor::run_batch: batch must be >= 1");
  }
  const std::size_t obs_count = observables_.size();
  if (!batch_path_available()) {
    // Per-row fallback: identical results, row at a time. Each row's
    // parameters are the first parameter_count() entries of its stride
    // block (run() rejects anything but an exact-size span).
    std::vector<double> expectations(batch_rows * obs_count);
    for (std::size_t b = 0; b < batch_rows; ++b) {
      const auto row = run(
          params.subspan(b * param_stride, circuit_.parameter_count()));
      std::copy(row.begin(), row.end(),
                expectations.begin() + b * obs_count);
    }
    return expectations;
  }
  StateVectorBatch batch{circuit_.num_qubits(), batch_rows};
  circuit_.run_batch(batch, params, param_stride);

  std::vector<double> expectations(batch_rows * obs_count, 0.0);
  const std::size_t dimension = batch.dimension();
  const std::span<const Complex> amps = batch.amplitudes();
  std::vector<std::vector<double>> diagonals;
  diagonals.reserve(obs_count);
  for (const Observable& obs : observables_) {
    diagonals.push_back(obs.diagonal(circuit_.num_qubits()));
  }
  for (std::size_t i = 0; i < dimension; ++i) {
    for (std::size_t b = 0; b < batch_rows; ++b) {
      const double p = std::norm(amps[i * batch_rows + b]);
      for (std::size_t k = 0; k < obs_count; ++k) {
        expectations[b * obs_count + k] += diagonals[k][i] * p;
      }
    }
  }
  return expectations;
}

BatchAdjointVjpResult Executor::run_with_vjp_batch(
    std::span<const double> params, std::size_t param_stride,
    std::size_t batch_rows, std::span<const double> upstream) const {
  const std::size_t obs_count = observables_.size();
  if (upstream.size() != batch_rows * obs_count) {
    throw std::invalid_argument(
        "Executor::run_with_vjp_batch: upstream size");
  }
  if (batch_path_available()) {
    return adjoint_vjp_batch(circuit_, params, param_stride, batch_rows,
                             observables_, upstream);
  }
  // Per-row fallback (parameter-shift, non-diagonal observables, or the
  // generic-kernel escape hatch).
  BatchAdjointVjpResult result;
  result.batch = batch_rows;
  result.observable_count = obs_count;
  const std::size_t parameter_count = circuit_.parameter_count();
  result.expectations.resize(batch_rows * obs_count);
  result.gradient.resize(batch_rows * parameter_count);
  for (std::size_t b = 0; b < batch_rows; ++b) {
    const AdjointVjpResult row =
        run_with_vjp(params.subspan(b * param_stride, parameter_count),
                     upstream.subspan(b * obs_count, obs_count));
    std::copy(row.expectations.begin(), row.expectations.end(),
              result.expectations.begin() + b * obs_count);
    std::copy(row.gradient.begin(), row.gradient.end(),
              result.gradient.begin() + b * parameter_count);
  }
  return result;
}

std::vector<std::vector<double>> Executor::jacobian(
    std::span<const double> params) const {
  if (diff_method_ == DiffMethod::Adjoint) {
    return adjoint_jacobian(circuit_, params, observables_);
  }
  std::vector<std::vector<double>> rows;
  rows.reserve(observables_.size());
  for (const Observable& obs : observables_) {
    rows.push_back(parameter_shift_gradient(circuit_, params, obs));
  }
  return rows;
}

}  // namespace qhdl::quantum
