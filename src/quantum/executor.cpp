#include "quantum/executor.hpp"

#include <stdexcept>

#include "quantum/parameter_shift.hpp"

namespace qhdl::quantum {

Executor::Executor(Circuit circuit, std::vector<Observable> observables,
                   DiffMethod diff_method)
    : circuit_(std::move(circuit)),
      observables_(std::move(observables)),
      diff_method_(diff_method) {
  if (observables_.empty()) {
    throw std::invalid_argument("Executor: need at least one observable");
  }
}

std::vector<double> Executor::run(std::span<const double> params) const {
  const StateVector psi = circuit_.execute(params);
  std::vector<double> expectations;
  expectations.reserve(observables_.size());
  for (const Observable& obs : observables_) {
    expectations.push_back(obs.expectation(psi));
  }
  return expectations;
}

AdjointVjpResult Executor::run_with_vjp(
    std::span<const double> params, std::span<const double> upstream) const {
  if (upstream.size() != observables_.size()) {
    throw std::invalid_argument("Executor::run_with_vjp: upstream size");
  }
  if (diff_method_ == DiffMethod::Adjoint) {
    return adjoint_vjp(circuit_, params, observables_, upstream);
  }
  // Parameter-shift path: full Jacobian, then contract with upstream.
  AdjointVjpResult result;
  result.expectations = run(params);
  result.gradient.assign(circuit_.parameter_count(), 0.0);
  for (std::size_t k = 0; k < observables_.size(); ++k) {
    if (upstream[k] == 0.0) continue;
    const auto row =
        parameter_shift_gradient(circuit_, params, observables_[k]);
    for (std::size_t j = 0; j < row.size(); ++j) {
      result.gradient[j] += upstream[k] * row[j];
    }
  }
  return result;
}

std::vector<std::vector<double>> Executor::jacobian(
    std::span<const double> params) const {
  if (diff_method_ == DiffMethod::Adjoint) {
    return adjoint_jacobian(circuit_, params, observables_);
  }
  std::vector<std::vector<double>> rows;
  rows.reserve(observables_.size());
  for (const Observable& obs : observables_) {
    rows.push_back(parameter_shift_gradient(circuit_, params, obs));
  }
  return rows;
}

}  // namespace qhdl::quantum
