// Structure-of-arrays batch of state vectors.
//
// Stores B states of 2^n amplitudes with layout amps[i*B + b] (amplitude
// index major, batch row minor), so every gate kernel walks contiguous
// memory: the pair update for amplitude indices (i0, i1) touches two dense
// runs of B complex numbers. This is what makes the hybrid layer's batch
// forward/backward (one circuit, many samples) cache-friendly — the
// per-row StateVector path re-derives the same gate matrices and strides
// 2^n-sized vectors once per sample.
//
// Two kernel flavors per gate family:
//   * shared — one matrix/angle for every row (ansatz weights, fixed gates);
//     trig and matrix construction happen once for the whole batch;
//   * per-row — independent angle per row (data-encoding gates).
// Arithmetic per row is identical to the scalar StateVector kernels (same
// operations in the same order), so batch results match the per-row path
// bit-for-bit regardless of how the batch is chunked.
//
// The hottest kernels (dense 2x2, diagonal, CNOT, dense 4x4, expval-Z,
// batched inner products) are registry-dispatched through
// util::simd::ops() (DESIGN.md §14): the active backend vectorizes ACROSS
// the contiguous batch lanes, which cannot change any per-lane rounding.
#pragma once

#include <span>
#include <vector>

#include "quantum/statevector.hpp"

namespace qhdl::quantum {

class StateVectorBatch {
 public:
  /// B copies of |0...0⟩.
  StateVectorBatch(std::size_t num_qubits, std::size_t batch);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t batch() const { return batch_; }
  std::size_t dimension() const { return dimension_; }

  /// Raw SoA storage (index i, row b at position i*batch() + b).
  std::span<Complex> amplitudes() { return amplitudes_; }
  std::span<const Complex> amplitudes() const { return amplitudes_; }

  /// Resets every row to |0...0⟩.
  void reset();

  /// Copies the amplitudes of another batch (same shape) into this one.
  void assign_from(const StateVectorBatch& other);

  /// AoS bridge for tests / row-level fallbacks.
  StateVector extract_row(std::size_t row) const;
  void set_row(std::size_t row, const StateVector& state);

  // --- shared-matrix kernels (one gate for all rows) ---------------------
  void apply_single_qubit(const Mat2& gate, std::size_t wire);
  void apply_diagonal(Complex d0, Complex d1, std::size_t wire);
  void apply_rx_fast(double c, double s, std::size_t wire);
  void apply_ry_fast(double c, double s, std::size_t wire);
  void apply_pauli_x(std::size_t wire);
  void apply_cnot(std::size_t control, std::size_t target);
  void apply_cz(std::size_t control, std::size_t target);
  void apply_swap(std::size_t wire_a, std::size_t wire_b);
  void apply_controlled(const Mat2& gate, std::size_t control,
                        std::size_t target);
  void apply_controlled_derivative(const Mat2& gate, std::size_t control,
                                   std::size_t target);
  void apply_double_flip_pairs(const Mat2& even_pair, const Mat2& odd_pair,
                               std::size_t wire_a, std::size_t wire_b);
  /// Dense 4x4 two-qubit unitary on |wire_a wire_b⟩, same basis order and
  /// row formula as StateVector::apply_two_qubit (used by the compiled
  /// plan's FusedPair ops).
  void apply_two_qubit(const Mat4& gate, std::size_t wire_a,
                       std::size_t wire_b);

  // --- per-row kernels (independent gate per row; spans sized batch()) ---
  void apply_single_qubit_per_row(std::span<const Mat2> gates,
                                  std::size_t wire);
  void apply_diagonal_per_row(std::span<const Complex> d0,
                              std::span<const Complex> d1, std::size_t wire);
  void apply_rx_fast_per_row(std::span<const double> c,
                             std::span<const double> s, std::size_t wire);
  void apply_ry_fast_per_row(std::span<const double> c,
                             std::span<const double> s, std::size_t wire);
  void apply_controlled_per_row(std::span<const Mat2> gates,
                                std::size_t control, std::size_t target);
  void apply_controlled_derivative_per_row(std::span<const Mat2> gates,
                                           std::size_t control,
                                           std::size_t target);
  void apply_double_flip_pairs_per_row(std::span<const Mat2> even_pairs,
                                       std::span<const Mat2> odd_pairs,
                                       std::size_t wire_a, std::size_t wire_b);

  // --- reductions --------------------------------------------------------
  /// out[b] = ⟨Z_wire⟩ of row b (accumulated in amplitude-index order, the
  /// same order the scalar path uses).
  void expval_pauli_z(std::size_t wire, std::span<double> out) const;

  /// out[b] = Re⟨this_b|other_b⟩, index-order accumulation per row.
  void inner_products_real(const StateVectorBatch& other,
                           std::span<double> out) const;

 private:
  void check_wire(std::size_t wire, const char* context) const;
  void check_rows(std::size_t span_size, const char* context) const;

  std::size_t num_qubits_;
  std::size_t batch_;
  std::size_t dimension_;
  std::vector<Complex> amplitudes_;
};

}  // namespace qhdl::quantum
