#include "quantum/observable.hpp"

#include <sstream>
#include <stdexcept>

namespace qhdl::quantum {

PauliWord PauliWord::z(std::size_t wire) {
  PauliWord word;
  word.factors.push_back(Pauli::Z);
  word.wires.push_back(wire);
  return word;
}

PauliWord PauliWord::identity() { return PauliWord{}; }

bool PauliWord::is_diagonal() const {
  for (Pauli p : factors) {
    if (p == Pauli::X || p == Pauli::Y) return false;
  }
  return true;
}

std::string PauliWord::to_string() const {
  if (is_identity()) return "I";
  std::ostringstream oss;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (i > 0) oss << "⊗";
    switch (factors[i]) {
      case Pauli::I: oss << "I"; break;
      case Pauli::X: oss << "X"; break;
      case Pauli::Y: oss << "Y"; break;
      case Pauli::Z: oss << "Z"; break;
    }
    oss << wires[i];
  }
  return oss.str();
}

Observable::Observable(PauliWord word) { add_term(1.0, std::move(word)); }

Observable Observable::pauli_z(std::size_t wire) {
  return Observable{PauliWord::z(wire)};
}

Observable Observable::weighted_z_sum(std::span<const double> weights,
                                      std::span<const std::size_t> wires) {
  if (weights.size() != wires.size()) {
    throw std::invalid_argument("weighted_z_sum: size mismatch");
  }
  Observable obs;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    obs.add_term(weights[i], PauliWord::z(wires[i]));
  }
  return obs;
}

void Observable::add_term(double weight, PauliWord word) {
  if (word.factors.size() != word.wires.size()) {
    throw std::invalid_argument("Observable: malformed Pauli word");
  }
  terms_.push_back(Term{weight, std::move(word)});
}

bool Observable::is_diagonal() const {
  for (const Term& term : terms_) {
    if (!term.word.is_diagonal()) return false;
  }
  return true;
}

namespace {

/// Applies a single Pauli word to |state⟩, writing into `out` (accumulating
/// weight * P|state⟩ on top of existing contents).
void accumulate_word(const PauliWord& word, double weight,
                     const StateVector& state, StateVector& out) {
  const std::size_t n = state.dimension();
  const std::size_t q = state.num_qubits();
  const auto amps = state.amplitudes();
  auto out_amps = out.amplitudes();

  for (std::size_t i = 0; i < n; ++i) {
    // P|i⟩ = phase · |j⟩; compute j and the phase for this basis state.
    std::size_t j = i;
    Complex phase{1.0, 0.0};
    for (std::size_t k = 0; k < word.factors.size(); ++k) {
      const std::size_t wire = word.wires[k];
      if (wire >= q) {
        throw std::out_of_range("Observable: wire out of range");
      }
      const std::size_t mask = std::size_t{1} << (q - 1 - wire);
      const bool bit = (i & mask) != 0;
      switch (word.factors[k]) {
        case Pauli::I:
          break;
        case Pauli::X:
          j ^= mask;
          break;
        case Pauli::Y:
          j ^= mask;
          // Y|0⟩ = i|1⟩, Y|1⟩ = -i|0⟩.
          phase *= bit ? Complex{0.0, -1.0} : Complex{0.0, 1.0};
          break;
        case Pauli::Z:
          if (bit) phase = -phase;
          break;
      }
    }
    out_amps[j] += weight * phase * amps[i];
  }
}

}  // namespace

void Observable::apply(const StateVector& state, StateVector& out) const {
  if (out.dimension() != state.dimension()) {
    throw std::invalid_argument("Observable::apply: dimension mismatch");
  }
  for (auto& a : out.amplitudes()) a = Complex{0.0, 0.0};
  for (const Term& term : terms_) {
    accumulate_word(term.word, term.weight, state, out);
  }
}

std::vector<double> Observable::diagonal(std::size_t num_qubits) const {
  if (!is_diagonal()) {
    throw std::logic_error("Observable::diagonal: observable has X/Y terms");
  }
  const std::size_t dimension = std::size_t{1} << num_qubits;
  std::vector<double> diag(dimension);
  for (std::size_t i = 0; i < dimension; ++i) {
    double sign_weight = 0.0;
    for (const Term& term : terms_) {
      double sign = 1.0;
      for (std::size_t k = 0; k < term.word.wires.size(); ++k) {
        const std::size_t wire = term.word.wires[k];
        if (wire >= num_qubits) {
          throw std::out_of_range("Observable::diagonal: wire out of range");
        }
        const std::size_t mask = std::size_t{1} << (num_qubits - 1 - wire);
        if (term.word.factors[k] == Pauli::Z && (i & mask) != 0) {
          sign = -sign;
        }
      }
      sign_weight += term.weight * sign;
    }
    diag[i] = sign_weight;
  }
  return diag;
}

double Observable::expectation(const StateVector& state) const {
  // Fast path: all-Z observables are diagonal.
  if (is_diagonal()) {
    const std::size_t q = state.num_qubits();
    const auto amps = state.amplitudes();
    double total = 0.0;
    for (std::size_t i = 0; i < state.dimension(); ++i) {
      double sign_weight = 0.0;
      for (const Term& term : terms_) {
        double sign = 1.0;
        for (std::size_t k = 0; k < term.word.wires.size(); ++k) {
          const std::size_t mask =
              std::size_t{1} << (q - 1 - term.word.wires[k]);
          if (term.word.factors[k] == Pauli::Z && (i & mask) != 0) {
            sign = -sign;
          }
        }
        sign_weight += term.weight * sign;
      }
      total += sign_weight * std::norm(amps[i]);
    }
    return total;
  }
  StateVector scratch{state.num_qubits()};
  apply(state, scratch);
  return state.inner_product(scratch).real();
}

std::string Observable::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) oss << " + ";
    oss << terms_[i].weight << "·" << terms_[i].word.to_string();
  }
  if (terms_.empty()) oss << "0";
  return oss.str();
}

}  // namespace qhdl::quantum
