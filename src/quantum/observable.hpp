// Observables: Pauli words and real-weighted sums of them.
//
// The QNN layers measure ⟨Z_w⟩ on each wire; adjoint differentiation uses a
// weighted Z-sum as the effective observable for vector-Jacobian products.
#pragma once

#include <string>
#include <vector>

#include "quantum/statevector.hpp"

namespace qhdl::quantum {

enum class Pauli { I, X, Y, Z };

/// A tensor product of Paulis over a subset of wires, e.g. Z0 ⊗ X2.
struct PauliWord {
  /// Parallel arrays: factor[i] acts on wire[i]. Wires must be distinct.
  std::vector<Pauli> factors;
  std::vector<std::size_t> wires;

  static PauliWord z(std::size_t wire);
  static PauliWord identity();

  bool is_identity() const { return factors.empty(); }
  /// True when every factor is Z (diagonal in computational basis).
  bool is_diagonal() const;
  std::string to_string() const;
};

/// Real-weighted sum of Pauli words (a Hermitian operator).
class Observable {
 public:
  Observable() = default;

  /// Single-word observable with weight 1.
  explicit Observable(PauliWord word);

  static Observable pauli_z(std::size_t wire);

  /// Σ_k weights[k] · Z_{wires[k]} — the effective observable used for VJPs.
  static Observable weighted_z_sum(std::span<const double> weights,
                                   std::span<const std::size_t> wires);

  void add_term(double weight, PauliWord word);

  std::size_t term_count() const { return terms_.size(); }

  /// ⟨state|O|state⟩ (real, since O is Hermitian and weights are real).
  double expectation(const StateVector& state) const;

  /// out = O|state⟩. Requires out.dimension() == state.dimension().
  void apply(const StateVector& state, StateVector& out) const;

  /// True when every term is a Z-word (fast diagonal path applies).
  bool is_diagonal() const;

  /// The operator's computational-basis diagonal, entry per basis index
  /// (size 2^num_qubits). Each entry is accumulated term-by-term in the same
  /// order as expectation()'s diagonal fast path, so
  /// Σ_i diagonal[i]·|a_i|² reproduces expectation() bit-for-bit. Throws
  /// std::logic_error unless is_diagonal().
  std::vector<double> diagonal(std::size_t num_qubits) const;

  std::string to_string() const;

 private:
  struct Term {
    double weight;
    PauliWord word;
  };
  std::vector<Term> terms_;
};

}  // namespace qhdl::quantum
