// Parameter-shift gradients — hardware-compatible exact gradients used here
// to cross-validate adjoint differentiation (tests) and as a reference
// implementation of the rules HQNN training would use on real devices.
//
// Two-term rule (RX/RY/RZ/PhaseShift, generator eigenvalue gap 1):
//   dE/dθ = [E(θ+π/2) − E(θ−π/2)] / 2.
// Four-term rule (CRX/CRY/CRZ, generator spectrum {0, ±1/2}):
//   dE/dθ = c₊[E(θ+π/2) − E(θ−π/2)] − c₋[E(θ+3π/2) − E(θ−3π/2)],
//   c± = (√2 ± 1) / (4√2).
#pragma once

#include <span>
#include <vector>

#include "quantum/circuit.hpp"
#include "quantum/observable.hpp"

namespace qhdl::quantum {

/// Expectation with the angle of op `op_index` shifted by `delta` (all other
/// ops use their normal angles). Helper for shift rules; exposed for tests.
double expectation_with_op_shift(const Circuit& circuit,
                                 std::span<const double> params,
                                 const Observable& observable,
                                 std::size_t op_index, double delta);

/// Gradient of ⟨observable⟩ w.r.t. every runtime parameter via shift rules.
/// Handles parameters shared by several ops (contributions accumulate).
std::vector<double> parameter_shift_gradient(const Circuit& circuit,
                                             std::span<const double> params,
                                             const Observable& observable);

/// Count of circuit executions the shift rules need for this circuit
/// (2 per two-term op, 4 per four-term op) — the cost the paper's NISQ
/// narrative contrasts with classical backprop.
std::size_t parameter_shift_evaluation_count(const Circuit& circuit);

}  // namespace qhdl::quantum
