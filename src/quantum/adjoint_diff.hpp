// Adjoint differentiation (Jones & Gacon, arXiv:2009.02823) — the same
// algorithm PennyLane's default.qubit uses for simulator gradients.
//
// For a circuit U = U_n … U_1 and Hermitian observable O, the gradient of
// E(θ) = ⟨0|U† O U|0⟩ w.r.t. the angle of gate k is
//     dE/dθ_k = 2 Re ⟨λ_k | (dU_k/dθ_k) | φ_{k-1}⟩,
// computed in a single reverse sweep that maintains |φ⟩ (the forward state
// with gates peeled off) and |λ⟩ (O|ψ⟩ pulled back through the circuit).
// Cost: O(ops · 2^q) — independent of the parameter count, unlike
// parameter-shift.
//
// The VJP variant fuses multiple observables: given upstream weights w_k
// (dL/d⟨O_k⟩ from classical backprop), it runs ONE sweep with the effective
// observable Σ_k w_k O_k, yielding dL/dθ directly. This is what the hybrid
// QuantumLayer calls in its backward pass.
#pragma once

#include <span>
#include <vector>

#include "quantum/circuit.hpp"
#include "quantum/observable.hpp"

namespace qhdl::quantum {

struct AdjointResult {
  double expectation = 0.0;
  std::vector<double> gradient;  ///< dE/dθ per runtime parameter
};

struct AdjointVjpResult {
  std::vector<double> expectations;  ///< ⟨O_k⟩ per observable
  std::vector<double> gradient;      ///< dL/dθ per runtime parameter
};

/// Gradient of a single observable's expectation w.r.t. every runtime
/// parameter. Parameters shared across ops accumulate (product rule).
AdjointResult adjoint_gradient(const Circuit& circuit,
                               std::span<const double> params,
                               const Observable& observable);

/// Single-sweep vector-Jacobian product over multiple observables.
/// `upstream_weights[k]` multiplies observable k; the returned gradient is
/// Σ_k upstream_weights[k] · d⟨O_k⟩/dθ. Also returns each raw ⟨O_k⟩.
AdjointVjpResult adjoint_vjp(const Circuit& circuit,
                             std::span<const double> params,
                             std::span<const Observable> observables,
                             std::span<const double> upstream_weights);

/// Same, but the circuit starts from `initial_state` instead of |0...0⟩ —
/// needed by amplitude-encoded layers whose state preparation is data, not
/// gates. The gradient covers the circuit parameters only (the caller owns
/// the chain rule through the initial state; see initial_state_cogradient).
AdjointVjpResult adjoint_vjp_from_state(
    const Circuit& circuit, std::span<const double> params,
    const StateVector& initial_state,
    std::span<const Observable> observables,
    std::span<const double> upstream_weights);

/// Co-gradient of the weighted expectation with respect to the REAL part of
/// each initial amplitude: returns v with
///   v_i = 2 Re[ (U† O_eff U |φ⟩)_i ],   O_eff = Σ_k w_k O_k,
/// so that for real amplitude vectors dE/dφ_i = v_i. Used by amplitude
/// encoding to backpropagate into the data register.
std::vector<double> initial_state_cogradient(
    const Circuit& circuit, std::span<const double> params,
    const StateVector& initial_state,
    std::span<const Observable> observables,
    std::span<const double> upstream_weights);

/// Full Jacobian d⟨O_k⟩/dθ_j as rows per observable (one adjoint sweep per
/// observable; used in tests and for Fisher-style analyses).
std::vector<std::vector<double>> adjoint_jacobian(
    const Circuit& circuit, std::span<const double> params,
    std::span<const Observable> observables);

// --- batched (SoA) adjoint VJP --------------------------------------------

struct BatchAdjointVjpResult {
  std::size_t batch = 0;
  std::size_t observable_count = 0;
  std::vector<double> expectations;  ///< [b * observable_count + k]
  std::vector<double> gradient;      ///< [b * parameter_count + p]
};

/// One reverse sweep over a whole SoA batch of rows. Row b reads its circuit
/// parameters from params[b*param_stride, (b+1)*param_stride) and its
/// upstream weights from upstream_weights[b*K, (b+1)*K) with
/// K = observables.size(). Requires every observable to be diagonal
/// (all-Z) so the co-state seed is a per-amplitude multiply — the hybrid
/// layer's ⟨Z_w⟩ heads satisfy this; callers with X/Y observables fall back
/// to the per-row adjoint_vjp. Throws std::invalid_argument otherwise.
BatchAdjointVjpResult adjoint_vjp_batch(
    const Circuit& circuit, std::span<const double> params,
    std::size_t param_stride, std::size_t batch_rows,
    std::span<const Observable> observables,
    std::span<const double> upstream_weights);

}  // namespace qhdl::quantum
