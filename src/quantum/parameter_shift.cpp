#include "quantum/parameter_shift.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qhdl::quantum {

double expectation_with_op_shift(const Circuit& circuit,
                                 std::span<const double> params,
                                 const Observable& observable,
                                 std::size_t op_index, double delta) {
  const auto& ops = circuit.ops();
  if (op_index >= ops.size()) {
    throw std::out_of_range("expectation_with_op_shift: op index");
  }
  StateVector state{circuit.num_qubits()};
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    double angle = op.angle(params);
    if (i == op_index) angle += delta;
    apply_gate(state, op.type, angle, op.wire0, op.wire1);
  }
  return observable.expectation(state);
}

std::vector<double> parameter_shift_gradient(const Circuit& circuit,
                                             std::span<const double> params,
                                             const Observable& observable) {
  std::vector<double> gradient(circuit.parameter_count(), 0.0);
  const auto& ops = circuit.ops();
  const double half_pi = std::numbers::pi / 2.0;

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (!op.param_index.has_value()) continue;

    double contribution = 0.0;
    switch (op.type) {
      case GateType::RX:
      case GateType::RY:
      case GateType::RZ:
      case GateType::PhaseShift:
      case GateType::RXX:
      case GateType::RYY:
      case GateType::RZZ: {
        // Generators P (or P⊗P) with eigenvalues ±1: two-term rule.
        const double plus =
            expectation_with_op_shift(circuit, params, observable, i, half_pi);
        const double minus = expectation_with_op_shift(circuit, params,
                                                       observable, i, -half_pi);
        contribution = 0.5 * (plus - minus);
        break;
      }
      case GateType::CRX:
      case GateType::CRY:
      case GateType::CRZ: {
        const double sqrt2 = std::numbers::sqrt2;
        const double c_plus = (sqrt2 + 1.0) / (4.0 * sqrt2);
        const double c_minus = (sqrt2 - 1.0) / (4.0 * sqrt2);
        const double three_half_pi = 3.0 * half_pi;
        const double term1 =
            expectation_with_op_shift(circuit, params, observable, i,
                                      half_pi) -
            expectation_with_op_shift(circuit, params, observable, i,
                                      -half_pi);
        const double term2 =
            expectation_with_op_shift(circuit, params, observable, i,
                                      three_half_pi) -
            expectation_with_op_shift(circuit, params, observable, i,
                                      -three_half_pi);
        contribution = c_plus * term1 - c_minus * term2;
        break;
      }
      default:
        throw std::logic_error("parameter_shift_gradient: no rule for " +
                               gate_name(op.type));
    }
    gradient[*op.param_index] += contribution;
  }
  return gradient;
}

std::size_t parameter_shift_evaluation_count(const Circuit& circuit) {
  std::size_t count = 0;
  for (const Op& op : circuit.ops()) {
    if (!op.param_index.has_value()) continue;
    switch (op.type) {
      case GateType::CRX:
      case GateType::CRY:
      case GateType::CRZ:
        count += 4;
        break;
      default:
        count += 2;
        break;
    }
  }
  return count;
}

}  // namespace qhdl::quantum
