#include "quantum/statevector.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "quantum/kernels.hpp"
#include "util/backend_registry.hpp"

namespace qhdl::quantum {

Mat2 Mat2::dagger() const {
  return Mat2{std::conj(m00), std::conj(m10), std::conj(m01), std::conj(m11)};
}

Mat2 Mat2::operator*(const Mat2& other) const {
  return Mat2{m00 * other.m00 + m01 * other.m10,
              m00 * other.m01 + m01 * other.m11,
              m10 * other.m00 + m11 * other.m10,
              m10 * other.m01 + m11 * other.m11};
}

bool Mat2::is_unitary(double tolerance) const {
  const Mat2 product = *this * dagger();
  return std::abs(product.m00 - Complex{1.0, 0.0}) < tolerance &&
         std::abs(product.m01) < tolerance &&
         std::abs(product.m10) < tolerance &&
         std::abs(product.m11 - Complex{1.0, 0.0}) < tolerance;
}

Mat4 Mat4::dagger() const {
  Mat4 out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) out.m[r][c] = std::conj(m[c][r]);
  }
  return out;
}

Mat4 Mat4::operator*(const Mat4& other) const {
  Mat4 out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      Complex sum{0.0, 0.0};
      for (int k = 0; k < 4; ++k) sum += m[r][k] * other.m[k][c];
      out.m[r][c] = sum;
    }
  }
  return out;
}

bool Mat4::is_unitary(double tolerance) const {
  const Mat4 product = *this * dagger();
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const Complex expected = r == c ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
      if (std::abs(product.m[r][c] - expected) >= tolerance) return false;
    }
  }
  return true;
}

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t log2_size(std::size_t n) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

/// Spreads compact index `i` into a basis index with a 0 bit at both mask
/// positions (masks must satisfy lo_mask < hi_mask). Lets two-qubit kernels
/// visit exactly the n/4 relevant base indices branch-free instead of
/// scanning all n amplitudes.
inline std::size_t expand_two_zero_bits(std::size_t i, std::size_t lo_mask,
                                        std::size_t hi_mask) {
  std::size_t j = ((i & ~(lo_mask - 1)) << 1) | (i & (lo_mask - 1));
  return ((j & ~(hi_mask - 1)) << 1) | (j & (hi_mask - 1));
}

/// One-bit version: a 0 bit at the mask position.
inline std::size_t expand_one_zero_bit(std::size_t i, std::size_t mask) {
  return ((i & ~(mask - 1)) << 1) | (i & (mask - 1));
}

}  // namespace

StateVector::StateVector(std::size_t num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits == 0 || num_qubits > 28) {
    throw std::invalid_argument("StateVector: qubit count must be in [1,28]");
  }
  amplitudes_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  amplitudes_[0] = Complex{1.0, 0.0};
}

StateVector::StateVector(std::vector<Complex> amplitudes)
    : amplitudes_(std::move(amplitudes)) {
  if (!is_power_of_two(amplitudes_.size()) || amplitudes_.size() < 2) {
    throw std::invalid_argument(
        "StateVector: amplitude count must be a power of two >= 2");
  }
  num_qubits_ = log2_size(amplitudes_.size());
}

void StateVector::reset() {
  for (auto& a : amplitudes_) a = Complex{0.0, 0.0};
  amplitudes_[0] = Complex{1.0, 0.0};
}

void StateVector::set_basis_state(std::size_t basis_index) {
  if (basis_index >= amplitudes_.size()) {
    throw std::out_of_range("StateVector::set_basis_state: index out of range");
  }
  for (auto& a : amplitudes_) a = Complex{0.0, 0.0};
  amplitudes_[basis_index] = Complex{1.0, 0.0};
}

void StateVector::check_wire(std::size_t wire, const char* context) const {
  if (wire >= num_qubits_) {
    throw std::out_of_range(std::string{context} + ": wire " +
                            std::to_string(wire) + " out of range for " +
                            std::to_string(num_qubits_) + " qubits");
  }
}

void StateVector::apply_single_qubit(const Mat2& gate, std::size_t wire) {
  check_wire(wire, "apply_single_qubit");
  kernels::count_generic();
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  // Inner loop is registry-dispatched (DESIGN.md §13): the active backend's
  // dense 2x2 kernel runs a0' = m00*a0 + m01*a1, a1' = m10*a0 + m11*a1 over
  // every (i, i+stride) pair, bit-identically across backends.
  const Complex m[4] = {gate.m00, gate.m01, gate.m10, gate.m11};
  util::simd::ops().apply_single_qubit(amplitudes_.data(), amplitudes_.size(),
                                       stride, m);
}

void StateVector::apply_diagonal(Complex d0, Complex d1, std::size_t wire) {
  check_wire(wire, "apply_diagonal");
  kernels::count_diagonal();
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  // Registry-dispatched; the d0 == 1 phase-gate fast path (only the wire=1
  // half moves) lives inside the backend op.
  util::simd::ops().apply_diagonal(amplitudes_.data(), amplitudes_.size(),
                                   stride, d0, d1);
}

void StateVector::apply_rx_fast(double c, double s, std::size_t wire) {
  check_wire(wire, "apply_rx_fast");
  kernels::count_real_rotation();
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  const std::size_t n = amplitudes_.size();
  Complex* amps = amplitudes_.data();
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Complex& a0 = amps[block + offset];
      Complex& a1 = amps[block + stride + offset];
      const double r0 = a0.real(), i0 = a0.imag();
      const double r1 = a1.real(), i1 = a1.imag();
      // [[c, -is], [-is, c]] expanded over real/imag components, in the
      // same operation order as the dense complex matvec.
      a0 = Complex{c * r0 + s * i1, c * i0 - s * r1};
      a1 = Complex{s * i0 + c * r1, -s * r0 + c * i1};
    }
  }
}

void StateVector::apply_ry_fast(double c, double s, std::size_t wire) {
  check_wire(wire, "apply_ry_fast");
  kernels::count_real_rotation();
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  const std::size_t n = amplitudes_.size();
  Complex* amps = amplitudes_.data();
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Complex& a0 = amps[block + offset];
      Complex& a1 = amps[block + stride + offset];
      const double r0 = a0.real(), i0 = a0.imag();
      const double r1 = a1.real(), i1 = a1.imag();
      // Real rotation [[c, -s], [s, c]] applied to both components.
      a0 = Complex{c * r0 - s * r1, c * i0 - s * i1};
      a1 = Complex{s * r0 + c * r1, s * i0 + c * i1};
    }
  }
}

void StateVector::apply_pauli_x(std::size_t wire) {
  check_wire(wire, "apply_pauli_x");
  kernels::count_permutation();
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);
  const std::size_t n = amplitudes_.size();
  Complex* amps = amplitudes_.data();
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      std::swap(amps[block + offset], amps[block + stride + offset]);
    }
  }
}

void StateVector::apply_controlled(const Mat2& gate, std::size_t control,
                                   std::size_t target) {
  check_wire(control, "apply_controlled");
  check_wire(target, "apply_controlled");
  if (control == target) {
    throw std::invalid_argument("apply_controlled: control == target");
  }
  kernels::count_controlled();
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const std::size_t lo = cmask < tmask ? cmask : tmask;
  const std::size_t hi = cmask < tmask ? tmask : cmask;
  const std::size_t quarter = amplitudes_.size() / 4;
  Complex* amps = amplitudes_.data();
  // Visit each control-1, target-0 amplitude once; pair with target-1.
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
    const std::size_t j = i | tmask;
    const Complex a0 = amps[i];
    const Complex a1 = amps[j];
    amps[i] = gate.m00 * a0 + gate.m01 * a1;
    amps[j] = gate.m10 * a0 + gate.m11 * a1;
  }
}

void StateVector::apply_controlled_derivative(const Mat2& gate,
                                              std::size_t control,
                                              std::size_t target) {
  check_wire(control, "apply_controlled_derivative");
  check_wire(target, "apply_controlled_derivative");
  if (control == target) {
    throw std::invalid_argument(
        "apply_controlled_derivative: control == target");
  }
  kernels::count_controlled();
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const std::size_t lo = cmask < tmask ? cmask : tmask;
  const std::size_t hi = cmask < tmask ? tmask : cmask;
  const std::size_t half = amplitudes_.size() / 2;
  const std::size_t quarter = amplitudes_.size() / 4;
  Complex* amps = amplitudes_.data();
  // d(CU)/dθ annihilates the control-0 subspace.
  for (std::size_t k = 0; k < half; ++k) {
    amps[expand_one_zero_bit(k, cmask)] = Complex{0.0, 0.0};
  }
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
    const std::size_t j = i | tmask;
    const Complex a0 = amps[i];
    const Complex a1 = amps[j];
    amps[i] = gate.m00 * a0 + gate.m01 * a1;
    amps[j] = gate.m10 * a0 + gate.m11 * a1;
  }
}

void StateVector::apply_cnot(std::size_t control, std::size_t target) {
  check_wire(control, "apply_cnot");
  check_wire(target, "apply_cnot");
  if (control == target) {
    throw std::invalid_argument("apply_cnot: control == target");
  }
  kernels::count_permutation();
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const std::size_t lo = cmask < tmask ? cmask : tmask;
  const std::size_t hi = cmask < tmask ? tmask : cmask;
  // Registry-dispatched pure permutation: swap amplitudes at
  // expand_two_zero_bits(k, lo, hi) | cmask and its | tmask partner.
  util::simd::ops().apply_cnot_pairs(amplitudes_.data(),
                                     amplitudes_.size() / 4, lo, hi, cmask,
                                     tmask);
}

void StateVector::apply_cz(std::size_t control, std::size_t target) {
  check_wire(control, "apply_cz");
  check_wire(target, "apply_cz");
  if (control == target) {
    throw std::invalid_argument("apply_cz: control == target");
  }
  kernels::count_diagonal();
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const std::size_t lo = cmask < tmask ? cmask : tmask;
  const std::size_t hi = cmask < tmask ? tmask : cmask;
  const std::size_t quarter = amplitudes_.size() / 4;
  Complex* amps = amplitudes_.data();
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask | tmask;
    amps[i] = -amps[i];
  }
}

void StateVector::apply_swap(std::size_t wire_a, std::size_t wire_b) {
  check_wire(wire_a, "apply_swap");
  check_wire(wire_b, "apply_swap");
  if (wire_a == wire_b) return;
  kernels::count_permutation();
  const std::size_t amask = std::size_t{1} << (num_qubits_ - 1 - wire_a);
  const std::size_t bmask = std::size_t{1} << (num_qubits_ - 1 - wire_b);
  const std::size_t lo = amask < bmask ? amask : bmask;
  const std::size_t hi = amask < bmask ? bmask : amask;
  const std::size_t quarter = amplitudes_.size() / 4;
  Complex* amps = amplitudes_.data();
  // Swap |..a=1..b=0..⟩ with |..a=0..b=1..⟩; visit each pair once.
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t base = expand_two_zero_bits(k, lo, hi);
    std::swap(amps[base | amask], amps[base | bmask]);
  }
}

void StateVector::apply_two_qubit(const Mat4& gate, std::size_t wire_a,
                                  std::size_t wire_b) {
  check_wire(wire_a, "apply_two_qubit");
  check_wire(wire_b, "apply_two_qubit");
  if (wire_a == wire_b) {
    throw std::invalid_argument("apply_two_qubit: wires must differ");
  }
  kernels::count_two_qubit_dense();
  const std::size_t amask = std::size_t{1} << (num_qubits_ - 1 - wire_a);
  const std::size_t bmask = std::size_t{1} << (num_qubits_ - 1 - wire_b);
  const std::size_t lo = amask < bmask ? amask : bmask;
  const std::size_t hi = amask < bmask ? bmask : amask;
  const std::size_t quarter = amplitudes_.size() / 4;
  Complex* amps = amplitudes_.data();
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t base = expand_two_zero_bits(k, lo, hi);
    const std::size_t idx[4] = {base, base | bmask, base | amask,
                                base | amask | bmask};
    const Complex a[4] = {amps[idx[0]], amps[idx[1]], amps[idx[2]],
                          amps[idx[3]]};
    for (int r = 0; r < 4; ++r) {
      amps[idx[r]] = gate.m[r][0] * a[0] + gate.m[r][1] * a[1] +
                     gate.m[r][2] * a[2] + gate.m[r][3] * a[3];
    }
  }
}

void StateVector::apply_double_flip_pairs(const Mat2& even_pair,
                                          const Mat2& odd_pair,
                                          std::size_t wire_a,
                                          std::size_t wire_b) {
  check_wire(wire_a, "apply_double_flip_pairs");
  check_wire(wire_b, "apply_double_flip_pairs");
  if (wire_a == wire_b) {
    throw std::invalid_argument("apply_double_flip_pairs: wires must differ");
  }
  kernels::count_double_flip();
  const std::size_t amask = std::size_t{1} << (num_qubits_ - 1 - wire_a);
  const std::size_t bmask = std::size_t{1} << (num_qubits_ - 1 - wire_b);
  const std::size_t flip = amask | bmask;
  const std::size_t lo = amask < bmask ? amask : bmask;
  const std::size_t hi = amask < bmask ? bmask : amask;
  const std::size_t quarter = amplitudes_.size() / 4;
  Complex* amps = amplitudes_.data();
  // Visit each pair from its a=0 member: even block from |a=0,b=0⟩, odd
  // block from |a=0,b=1⟩.
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t base = expand_two_zero_bits(k, lo, hi);
    {
      const std::size_t i = base, j = base ^ flip;
      const Complex a0 = amps[i];
      const Complex a1 = amps[j];
      amps[i] = even_pair.m00 * a0 + even_pair.m01 * a1;
      amps[j] = even_pair.m10 * a0 + even_pair.m11 * a1;
    }
    {
      const std::size_t i = base | bmask, j = (base | bmask) ^ flip;
      const Complex a0 = amps[i];
      const Complex a1 = amps[j];
      amps[i] = odd_pair.m00 * a0 + odd_pair.m01 * a1;
      amps[j] = odd_pair.m10 * a0 + odd_pair.m11 * a1;
    }
  }
}

void StateVector::scale(Complex factor) {
  for (auto& a : amplitudes_) a *= factor;
}

double StateVector::expval_pauli_z(std::size_t wire) const {
  check_wire(wire, "expval_pauli_z");
  const std::size_t mask = std::size_t{1} << (num_qubits_ - 1 - wire);
  // Registry-dispatched reduction. generic/avx2/avx512fma share the
  // canonical mod-8 lane order (bit-identical to each other); the reference
  // backend keeps the historical strictly sequential sum, which may differ
  // from the lane order by ~1 ulp per reassociation.
  return util::simd::ops().expval_z(amplitudes_.data(), amplitudes_.size(),
                                    mask);
}

double StateVector::probability(std::size_t basis_index) const {
  if (basis_index >= amplitudes_.size()) {
    throw std::out_of_range("StateVector::probability: index out of range");
  }
  return std::norm(amplitudes_[basis_index]);
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> probs(amplitudes_.size());
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    probs[i] = std::norm(amplitudes_[i]);
  }
  return probs;
}

double StateVector::norm_squared() const {
  double total = 0.0;
  for (const auto& a : amplitudes_) total += std::norm(a);
  return total;
}

Complex StateVector::inner_product(const StateVector& other) const {
  if (other.amplitudes_.size() != amplitudes_.size()) {
    throw std::invalid_argument("inner_product: dimension mismatch");
  }
  Complex total{0.0, 0.0};
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    total += std::conj(amplitudes_[i]) * other.amplitudes_[i];
  }
  return total;
}

std::string StateVector::to_string() const {
  std::ostringstream oss;
  bool first = true;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    if (std::abs(amplitudes_[i]) < 1e-12) continue;
    if (!first) oss << " + ";
    first = false;
    oss.precision(4);
    oss << std::fixed << "(" << amplitudes_[i].real() << (amplitudes_[i].imag() >= 0 ? "+" : "")
        << amplitudes_[i].imag() << "i)|";
    for (std::size_t b = 0; b < num_qubits_; ++b) {
      oss << (((i >> (num_qubits_ - 1 - b)) & 1) ? '1' : '0');
    }
    oss << "⟩";
  }
  if (first) oss << "0";
  return oss.str();
}

}  // namespace qhdl::quantum
