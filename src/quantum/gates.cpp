#include "quantum/gates.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "quantum/kernels.hpp"
#include "quantum/statevector_batch.hpp"

namespace qhdl::quantum {

std::size_t gate_arity(GateType type) {
  switch (type) {
    case GateType::PauliX:
    case GateType::PauliY:
    case GateType::PauliZ:
    case GateType::Hadamard:
    case GateType::S:
    case GateType::T:
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
    case GateType::PhaseShift:
      return 1;
    case GateType::CNOT:
    case GateType::CZ:
    case GateType::SWAP:
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ:
      return 2;
  }
  throw std::logic_error("gate_arity: unknown gate");
}

bool gate_is_parameterized(GateType type) {
  switch (type) {
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
    case GateType::PhaseShift:
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ:
      return true;
    default:
      return false;
  }
}

bool gate_is_controlled(GateType type) {
  switch (type) {
    case GateType::CNOT:
    case GateType::CZ:
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
      return true;
    default:
      return false;
  }
}

std::string gate_name(GateType type) {
  switch (type) {
    case GateType::PauliX: return "X";
    case GateType::PauliY: return "Y";
    case GateType::PauliZ: return "Z";
    case GateType::Hadamard: return "H";
    case GateType::S: return "S";
    case GateType::T: return "T";
    case GateType::RX: return "RX";
    case GateType::RY: return "RY";
    case GateType::RZ: return "RZ";
    case GateType::PhaseShift: return "PhaseShift";
    case GateType::CNOT: return "CNOT";
    case GateType::CZ: return "CZ";
    case GateType::SWAP: return "SWAP";
    case GateType::CRX: return "CRX";
    case GateType::CRY: return "CRY";
    case GateType::CRZ: return "CRZ";
    case GateType::RXX: return "RXX";
    case GateType::RYY: return "RYY";
    case GateType::RZZ: return "RZZ";
  }
  return "?";
}

namespace gates {

namespace {
constexpr Complex kI{0.0, 1.0};
constexpr Complex kZero{0.0, 0.0};
constexpr Complex kOne{1.0, 0.0};
}  // namespace

Mat2 pauli_x() { return {kZero, kOne, kOne, kZero}; }
Mat2 pauli_y() { return {kZero, -kI, kI, kZero}; }
Mat2 pauli_z() { return {kOne, kZero, kZero, -kOne}; }

Mat2 hadamard() {
  const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
  return {Complex{inv_sqrt2, 0}, Complex{inv_sqrt2, 0}, Complex{inv_sqrt2, 0},
          Complex{-inv_sqrt2, 0}};
}

Mat2 s() { return {kOne, kZero, kZero, kI}; }

Mat2 t() {
  return {kOne, kZero, kZero, std::exp(kI * (std::numbers::pi / 4.0))};
}

Mat2 rx(double theta) {
  const double c = std::cos(theta / 2.0);
  const double sn = std::sin(theta / 2.0);
  return {Complex{c, 0}, Complex{0, -sn}, Complex{0, -sn}, Complex{c, 0}};
}

Mat2 ry(double theta) {
  const double c = std::cos(theta / 2.0);
  const double sn = std::sin(theta / 2.0);
  return {Complex{c, 0}, Complex{-sn, 0}, Complex{sn, 0}, Complex{c, 0}};
}

Mat2 rz(double theta) {
  return {std::exp(-kI * (theta / 2.0)), kZero, kZero,
          std::exp(kI * (theta / 2.0))};
}

Mat2 phase_shift(double theta) {
  return {kOne, kZero, kZero, std::exp(kI * theta)};
}

Mat2 rx_derivative(double theta) {
  const double c = 0.5 * std::cos(theta / 2.0);
  const double sn = 0.5 * std::sin(theta / 2.0);
  return {Complex{-sn, 0}, Complex{0, -c}, Complex{0, -c}, Complex{-sn, 0}};
}

Mat2 ry_derivative(double theta) {
  const double c = 0.5 * std::cos(theta / 2.0);
  const double sn = 0.5 * std::sin(theta / 2.0);
  return {Complex{-sn, 0}, Complex{-c, 0}, Complex{c, 0}, Complex{-sn, 0}};
}

Mat2 rz_derivative(double theta) {
  return {-kI * 0.5 * std::exp(-kI * (theta / 2.0)), kZero, kZero,
          kI * 0.5 * std::exp(kI * (theta / 2.0))};
}

Mat2 phase_shift_derivative(double theta) {
  return {kZero, kZero, kZero, kI * std::exp(kI * theta)};
}

IsingPair ising_pair(GateType type, double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  switch (type) {
    case GateType::RXX: {
      // exp(-i θ XX/2): both parity blocks mix with -i sin.
      const Mat2 block{Complex{c, 0}, Complex{0, -s}, Complex{0, -s},
                       Complex{c, 0}};
      return IsingPair{block, block};
    }
    case GateType::RYY: {
      // YY|00⟩ = -|11⟩ (even block mixes with +i sin); YY|01⟩ = +|10⟩.
      const Mat2 even{Complex{c, 0}, Complex{0, s}, Complex{0, s},
                      Complex{c, 0}};
      const Mat2 odd{Complex{c, 0}, Complex{0, -s}, Complex{0, -s},
                     Complex{c, 0}};
      return IsingPair{even, odd};
    }
    case GateType::RZZ: {
      // Diagonal: e^{-iθ/2} on even parity, e^{+iθ/2} on odd parity.
      const Mat2 even{std::exp(kI * (-theta / 2.0)), Complex{0, 0},
                      Complex{0, 0}, std::exp(kI * (-theta / 2.0))};
      const Mat2 odd{std::exp(kI * (theta / 2.0)), Complex{0, 0},
                     Complex{0, 0}, std::exp(kI * (theta / 2.0))};
      return IsingPair{even, odd};
    }
    default:
      throw std::invalid_argument("ising_pair: not an Ising gate: " +
                                  gate_name(type));
  }
}

IsingPair ising_pair_derivative(GateType type, double theta) {
  const double c = 0.5 * std::cos(theta / 2.0);
  const double s = 0.5 * std::sin(theta / 2.0);
  switch (type) {
    case GateType::RXX: {
      const Mat2 block{Complex{-s, 0}, Complex{0, -c}, Complex{0, -c},
                       Complex{-s, 0}};
      return IsingPair{block, block};
    }
    case GateType::RYY: {
      const Mat2 even{Complex{-s, 0}, Complex{0, c}, Complex{0, c},
                      Complex{-s, 0}};
      const Mat2 odd{Complex{-s, 0}, Complex{0, -c}, Complex{0, -c},
                     Complex{-s, 0}};
      return IsingPair{even, odd};
    }
    case GateType::RZZ: {
      const Mat2 even{-kI * 0.5 * std::exp(kI * (-theta / 2.0)),
                      Complex{0, 0}, Complex{0, 0},
                      -kI * 0.5 * std::exp(kI * (-theta / 2.0))};
      const Mat2 odd{kI * 0.5 * std::exp(kI * (theta / 2.0)), Complex{0, 0},
                     Complex{0, 0},
                     kI * 0.5 * std::exp(kI * (theta / 2.0))};
      return IsingPair{even, odd};
    }
    default:
      throw std::invalid_argument(
          "ising_pair_derivative: not an Ising gate: " + gate_name(type));
  }
}

Mat2 matrix_for(GateType type, double theta) {
  switch (type) {
    case GateType::PauliX: return pauli_x();
    case GateType::PauliY: return pauli_y();
    case GateType::PauliZ: return pauli_z();
    case GateType::Hadamard: return hadamard();
    case GateType::S: return s();
    case GateType::T: return t();
    case GateType::RX:
    case GateType::CRX:
      return rx(theta);
    case GateType::RY:
    case GateType::CRY:
      return ry(theta);
    case GateType::RZ:
    case GateType::CRZ:
      return rz(theta);
    case GateType::PhaseShift: return phase_shift(theta);
    default:
      throw std::invalid_argument("matrix_for: gate has no 2x2 target matrix: " +
                                  gate_name(type));
  }
}

Mat2 derivative_for(GateType type, double theta) {
  switch (type) {
    case GateType::RX:
    case GateType::CRX:
      return rx_derivative(theta);
    case GateType::RY:
    case GateType::CRY:
      return ry_derivative(theta);
    case GateType::RZ:
    case GateType::CRZ:
      return rz_derivative(theta);
    case GateType::PhaseShift:
      return phase_shift_derivative(theta);
    default:
      throw std::invalid_argument("derivative_for: gate is not parameterized: " +
                                  gate_name(type));
  }
}

}  // namespace gates

namespace {

constexpr Complex kIu{0.0, 1.0};
constexpr Complex kOneu{1.0, 0.0};

void require_second_wire(GateType type, std::size_t wire1) {
  if (wire1 == SIZE_MAX) {
    throw std::invalid_argument("apply_gate: " + gate_name(type) +
                                " needs two wires");
  }
}

/// Generic path: every single-qubit gate as a dense 2x2 matvec (the
/// pre-specialization behavior, kept verbatim behind the
/// QHDL_FORCE_GENERIC_KERNELS escape hatch).
void apply_gate_generic(StateVector& state, GateType type, double theta,
                        std::size_t wire0, std::size_t wire1) {
  switch (type) {
    case GateType::CNOT:
      require_second_wire(type, wire1);
      state.apply_cnot(wire0, wire1);
      return;
    case GateType::CZ:
      require_second_wire(type, wire1);
      state.apply_cz(wire0, wire1);
      return;
    case GateType::SWAP:
      require_second_wire(type, wire1);
      state.apply_swap(wire0, wire1);
      return;
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
      require_second_wire(type, wire1);
      state.apply_controlled(gates::matrix_for(type, theta), wire0, wire1);
      return;
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ: {
      require_second_wire(type, wire1);
      const gates::IsingPair pair = gates::ising_pair(type, theta);
      state.apply_double_flip_pairs(pair.even, pair.odd, wire0, wire1);
      return;
    }
    default:
      state.apply_single_qubit(gates::matrix_for(type, theta), wire0);
      return;
  }
}

/// Specialized dispatch (DESIGN.md §8): diagonal / real-rotation /
/// permutation kernels where the gate structure allows, dense 2x2 otherwise.
void apply_gate_specialized(StateVector& state, GateType type, double theta,
                            std::size_t wire0, std::size_t wire1) {
  switch (type) {
    case GateType::PauliX:
      state.apply_pauli_x(wire0);
      return;
    case GateType::PauliZ:
      state.apply_diagonal(kOneu, -kOneu, wire0);
      return;
    case GateType::S:
      state.apply_diagonal(kOneu, kIu, wire0);
      return;
    case GateType::T:
      state.apply_diagonal(kOneu, std::exp(kIu * (std::numbers::pi / 4.0)),
                           wire0);
      return;
    case GateType::RZ: {
      const double c = std::cos(theta / 2.0);
      const double s = std::sin(theta / 2.0);
      state.apply_diagonal(Complex{c, -s}, Complex{c, s}, wire0);
      return;
    }
    case GateType::PhaseShift:
      state.apply_diagonal(kOneu, Complex{std::cos(theta), std::sin(theta)},
                           wire0);
      return;
    case GateType::RX:
      state.apply_rx_fast(std::cos(theta / 2.0), std::sin(theta / 2.0),
                          wire0);
      return;
    case GateType::RY:
      state.apply_ry_fast(std::cos(theta / 2.0), std::sin(theta / 2.0),
                          wire0);
      return;
    default:
      // PauliY / Hadamard keep the dense matvec; two-qubit gates already
      // dispatch to their structure-specific kernels.
      apply_gate_generic(state, type, theta, wire0, wire1);
      return;
  }
}

}  // namespace

void apply_gate(StateVector& state, GateType type, double theta,
                std::size_t wire0, std::size_t wire1) {
  if (kernels::force_generic()) {
    apply_gate_generic(state, type, theta, wire0, wire1);
  } else {
    apply_gate_specialized(state, type, theta, wire0, wire1);
  }
}

void apply_gate_inverse(StateVector& state, GateType type, double theta,
                        std::size_t wire0, std::size_t wire1) {
  if (kernels::force_generic()) {
    switch (type) {
      case GateType::CNOT:
      case GateType::CZ:
      case GateType::SWAP:
        // Self-inverse.
        apply_gate_generic(state, type, theta, wire0, wire1);
        return;
      case GateType::CRX:
      case GateType::CRY:
      case GateType::CRZ:
        require_second_wire(type, wire1);
        state.apply_controlled(gates::matrix_for(type, -theta), wire0, wire1);
        return;
      case GateType::RXX:
      case GateType::RYY:
      case GateType::RZZ: {
        require_second_wire(type, wire1);
        const gates::IsingPair pair = gates::ising_pair(type, -theta);
        state.apply_double_flip_pairs(pair.even, pair.odd, wire0, wire1);
        return;
      }
      case GateType::RX:
      case GateType::RY:
      case GateType::RZ:
        state.apply_single_qubit(gates::matrix_for(type, -theta), wire0);
        return;
      case GateType::PhaseShift:
        state.apply_single_qubit(gates::phase_shift(-theta), wire0);
        return;
      default:
        // Fixed gates: apply the conjugate transpose.
        state.apply_single_qubit(gates::matrix_for(type, theta).dagger(),
                                 wire0);
        return;
    }
  }
  switch (type) {
    case GateType::S:
      state.apply_diagonal(kOneu, -kIu, wire0);
      return;
    case GateType::T:
      state.apply_diagonal(kOneu, std::exp(-kIu * (std::numbers::pi / 4.0)),
                           wire0);
      return;
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
    case GateType::PhaseShift:
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ:
      // Every parameterized gate inverts by negating its angle.
      apply_gate_specialized(state, type, -theta, wire0, wire1);
      return;
    default:
      // X, Y, Z, H, CNOT, CZ, SWAP are self-inverse (U† = U).
      apply_gate_specialized(state, type, theta, wire0, wire1);
      return;
  }
}

void apply_gate_derivative(StateVector& state, GateType type, double theta,
                           std::size_t wire0, std::size_t wire1) {
  if (!gate_is_parameterized(type)) {
    throw std::invalid_argument("apply_gate_derivative: " + gate_name(type) +
                                " has no parameter");
  }
  switch (type) {
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
      require_second_wire(type, wire1);
      state.apply_controlled_derivative(gates::derivative_for(type, theta),
                                        wire0, wire1);
      return;
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ: {
      require_second_wire(type, wire1);
      const gates::IsingPair pair = gates::ising_pair_derivative(type, theta);
      state.apply_double_flip_pairs(pair.even, pair.odd, wire0, wire1);
      return;
    }
    case GateType::RZ:
      if (!kernels::force_generic()) {
        // dRZ/dθ = diag(-i/2·e^{-iθ/2}, i/2·e^{iθ/2}) — still diagonal.
        const double c = 0.5 * std::cos(theta / 2.0);
        const double s = 0.5 * std::sin(theta / 2.0);
        state.apply_diagonal(Complex{-s, -c}, Complex{-s, c}, wire0);
        return;
      }
      state.apply_single_qubit(gates::derivative_for(type, theta), wire0);
      return;
    case GateType::PhaseShift:
      if (!kernels::force_generic()) {
        // d/dθ diag(1, e^{iθ}) = diag(0, i·e^{iθ}).
        state.apply_diagonal(Complex{0.0, 0.0},
                             kIu * Complex{std::cos(theta), std::sin(theta)},
                             wire0);
        return;
      }
      state.apply_single_qubit(gates::derivative_for(type, theta), wire0);
      return;
    case GateType::RX:
      if (!kernels::force_generic()) {
        // dRX/dθ = [[-s', -ic'], [-ic', -s']] with c' = cos(θ/2)/2,
        // s' = sin(θ/2)/2 — the RX kernel shape with (c, s) = (-s', c').
        state.apply_rx_fast(-0.5 * std::sin(theta / 2.0),
                            0.5 * std::cos(theta / 2.0), wire0);
        return;
      }
      state.apply_single_qubit(gates::derivative_for(type, theta), wire0);
      return;
    case GateType::RY:
      if (!kernels::force_generic()) {
        // dRY/dθ = [[-s', -c'], [c', -s']] — RY kernel with (-s', c').
        state.apply_ry_fast(-0.5 * std::sin(theta / 2.0),
                            0.5 * std::cos(theta / 2.0), wire0);
        return;
      }
      state.apply_single_qubit(gates::derivative_for(type, theta), wire0);
      return;
    default:
      state.apply_single_qubit(gates::derivative_for(type, theta), wire0);
      return;
  }
}

namespace {

/// Per-call scratch for per-row batched dispatch. thread_local so the batch
/// path allocates at most once per thread, not once per gate.
struct BatchScratch {
  std::vector<double> c, s;
  std::vector<Complex> d0, d1;
  std::vector<Mat2> m_even, m_odd;
};

BatchScratch& batch_scratch() {
  thread_local BatchScratch scratch;
  return scratch;
}

void require_second_wire_batch(GateType type, std::size_t wire1) {
  if (wire1 == SIZE_MAX) {
    throw std::invalid_argument("apply_gate_batch: " + gate_name(type) +
                                " needs two wires");
  }
}

void check_angles_span(const StateVectorBatch& batch, GateType type,
                       std::span<const double> angles) {
  if (angles.size() != 1 && angles.size() != batch.batch()) {
    throw std::invalid_argument(
        "apply_gate_batch: " + gate_name(type) + " got " +
        std::to_string(angles.size()) + " angles for batch " +
        std::to_string(batch.batch()) + " (need 1 or batch)");
  }
}

/// Shared-angle dispatch: mirror of apply_gate_specialized over the batch.
void apply_gate_batch_shared(StateVectorBatch& batch, GateType type,
                             double theta, std::size_t wire0,
                             std::size_t wire1) {
  switch (type) {
    case GateType::PauliX:
      batch.apply_pauli_x(wire0);
      return;
    case GateType::PauliZ:
      batch.apply_diagonal(kOneu, -kOneu, wire0);
      return;
    case GateType::S:
      batch.apply_diagonal(kOneu, kIu, wire0);
      return;
    case GateType::T:
      batch.apply_diagonal(kOneu, std::exp(kIu * (std::numbers::pi / 4.0)),
                           wire0);
      return;
    case GateType::RZ: {
      const double c = std::cos(theta / 2.0);
      const double s = std::sin(theta / 2.0);
      batch.apply_diagonal(Complex{c, -s}, Complex{c, s}, wire0);
      return;
    }
    case GateType::PhaseShift:
      batch.apply_diagonal(kOneu, Complex{std::cos(theta), std::sin(theta)},
                           wire0);
      return;
    case GateType::RX:
      batch.apply_rx_fast(std::cos(theta / 2.0), std::sin(theta / 2.0),
                          wire0);
      return;
    case GateType::RY:
      batch.apply_ry_fast(std::cos(theta / 2.0), std::sin(theta / 2.0),
                          wire0);
      return;
    case GateType::CNOT:
      require_second_wire_batch(type, wire1);
      batch.apply_cnot(wire0, wire1);
      return;
    case GateType::CZ:
      require_second_wire_batch(type, wire1);
      batch.apply_cz(wire0, wire1);
      return;
    case GateType::SWAP:
      require_second_wire_batch(type, wire1);
      batch.apply_swap(wire0, wire1);
      return;
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
      require_second_wire_batch(type, wire1);
      batch.apply_controlled(gates::matrix_for(type, theta), wire0, wire1);
      return;
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ: {
      require_second_wire_batch(type, wire1);
      const gates::IsingPair pair = gates::ising_pair(type, theta);
      batch.apply_double_flip_pairs(pair.even, pair.odd, wire0, wire1);
      return;
    }
    default:
      // PauliY / Hadamard: dense 2x2 over the batch.
      batch.apply_single_qubit(gates::matrix_for(type, theta), wire0);
      return;
  }
}

/// Per-row-angle dispatch. Only parameterized gates can differ per row.
void apply_gate_batch_per_row(StateVectorBatch& batch, GateType type,
                              std::span<const double> angles,
                              std::size_t wire0, std::size_t wire1) {
  BatchScratch& scratch = batch_scratch();
  const std::size_t rows = batch.batch();
  switch (type) {
    case GateType::RX:
    case GateType::RY: {
      scratch.c.resize(rows);
      scratch.s.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        scratch.c[b] = std::cos(angles[b] / 2.0);
        scratch.s[b] = std::sin(angles[b] / 2.0);
      }
      if (type == GateType::RX) {
        batch.apply_rx_fast_per_row(scratch.c, scratch.s, wire0);
      } else {
        batch.apply_ry_fast_per_row(scratch.c, scratch.s, wire0);
      }
      return;
    }
    case GateType::RZ: {
      scratch.d0.resize(rows);
      scratch.d1.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        const double c = std::cos(angles[b] / 2.0);
        const double s = std::sin(angles[b] / 2.0);
        scratch.d0[b] = Complex{c, -s};
        scratch.d1[b] = Complex{c, s};
      }
      batch.apply_diagonal_per_row(scratch.d0, scratch.d1, wire0);
      return;
    }
    case GateType::PhaseShift: {
      scratch.d0.assign(rows, kOneu);
      scratch.d1.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        scratch.d1[b] = Complex{std::cos(angles[b]), std::sin(angles[b])};
      }
      batch.apply_diagonal_per_row(scratch.d0, scratch.d1, wire0);
      return;
    }
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ: {
      require_second_wire_batch(type, wire1);
      scratch.m_even.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        scratch.m_even[b] = gates::matrix_for(type, angles[b]);
      }
      batch.apply_controlled_per_row(scratch.m_even, wire0, wire1);
      return;
    }
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ: {
      require_second_wire_batch(type, wire1);
      scratch.m_even.resize(rows);
      scratch.m_odd.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        const gates::IsingPair pair = gates::ising_pair(type, angles[b]);
        scratch.m_even[b] = pair.even;
        scratch.m_odd[b] = pair.odd;
      }
      batch.apply_double_flip_pairs_per_row(scratch.m_even, scratch.m_odd,
                                            wire0, wire1);
      return;
    }
    default:
      // Fixed gates cannot vary per row; the angle is ignored anyway.
      apply_gate_batch_shared(batch, type, angles[0], wire0, wire1);
      return;
  }
}

}  // namespace

void apply_gate_batch(StateVectorBatch& batch, GateType type,
                      std::span<const double> angles, std::size_t wire0,
                      std::size_t wire1) {
  check_angles_span(batch, type, angles);
  if (angles.size() == 1 || !gate_is_parameterized(type)) {
    apply_gate_batch_shared(batch, type, angles[0], wire0, wire1);
  } else {
    apply_gate_batch_per_row(batch, type, angles, wire0, wire1);
  }
}

void apply_gate_inverse_batch(StateVectorBatch& batch, GateType type,
                              std::span<const double> angles,
                              std::size_t wire0, std::size_t wire1) {
  check_angles_span(batch, type, angles);
  if (!gate_is_parameterized(type)) {
    // S and T are the only non-self-inverse fixed gates in the library.
    if (type == GateType::S) {
      batch.apply_diagonal(kOneu, -kIu, wire0);
    } else if (type == GateType::T) {
      batch.apply_diagonal(kOneu, std::exp(-kIu * (std::numbers::pi / 4.0)),
                           wire0);
    } else {
      apply_gate_batch_shared(batch, type, 0.0, wire0, wire1);
    }
    return;
  }
  // Parameterized gates invert by negating the angle.
  if (angles.size() == 1) {
    apply_gate_batch_shared(batch, type, -angles[0], wire0, wire1);
    return;
  }
  thread_local std::vector<double> negated;
  negated.resize(angles.size());
  for (std::size_t b = 0; b < angles.size(); ++b) negated[b] = -angles[b];
  apply_gate_batch_per_row(batch, type, negated, wire0, wire1);
}

void apply_gate_derivative_batch(StateVectorBatch& batch, GateType type,
                                 std::span<const double> angles,
                                 std::size_t wire0, std::size_t wire1) {
  if (!gate_is_parameterized(type)) {
    throw std::invalid_argument("apply_gate_derivative_batch: " +
                                gate_name(type) + " has no parameter");
  }
  check_angles_span(batch, type, angles);
  BatchScratch& scratch = batch_scratch();
  const bool shared = angles.size() == 1;
  const std::size_t rows = batch.batch();
  switch (type) {
    case GateType::RX:
    case GateType::RY: {
      // dU/dθ is the rotation-kernel shape with (c, s) = (-s', c') where
      // c' = cos(θ/2)/2, s' = sin(θ/2)/2 (see apply_gate_derivative).
      if (shared) {
        const double c = -0.5 * std::sin(angles[0] / 2.0);
        const double s = 0.5 * std::cos(angles[0] / 2.0);
        if (type == GateType::RX) {
          batch.apply_rx_fast(c, s, wire0);
        } else {
          batch.apply_ry_fast(c, s, wire0);
        }
        return;
      }
      scratch.c.resize(rows);
      scratch.s.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        scratch.c[b] = -0.5 * std::sin(angles[b] / 2.0);
        scratch.s[b] = 0.5 * std::cos(angles[b] / 2.0);
      }
      if (type == GateType::RX) {
        batch.apply_rx_fast_per_row(scratch.c, scratch.s, wire0);
      } else {
        batch.apply_ry_fast_per_row(scratch.c, scratch.s, wire0);
      }
      return;
    }
    case GateType::RZ: {
      if (shared) {
        const double c = 0.5 * std::cos(angles[0] / 2.0);
        const double s = 0.5 * std::sin(angles[0] / 2.0);
        batch.apply_diagonal(Complex{-s, -c}, Complex{-s, c}, wire0);
        return;
      }
      scratch.d0.resize(rows);
      scratch.d1.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        const double c = 0.5 * std::cos(angles[b] / 2.0);
        const double s = 0.5 * std::sin(angles[b] / 2.0);
        scratch.d0[b] = Complex{-s, -c};
        scratch.d1[b] = Complex{-s, c};
      }
      batch.apply_diagonal_per_row(scratch.d0, scratch.d1, wire0);
      return;
    }
    case GateType::PhaseShift: {
      if (shared) {
        batch.apply_diagonal(
            Complex{0.0, 0.0},
            kIu * Complex{std::cos(angles[0]), std::sin(angles[0])}, wire0);
        return;
      }
      scratch.d0.assign(rows, Complex{0.0, 0.0});
      scratch.d1.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        scratch.d1[b] =
            kIu * Complex{std::cos(angles[b]), std::sin(angles[b])};
      }
      batch.apply_diagonal_per_row(scratch.d0, scratch.d1, wire0);
      return;
    }
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ: {
      require_second_wire_batch(type, wire1);
      if (shared) {
        batch.apply_controlled_derivative(
            gates::derivative_for(type, angles[0]), wire0, wire1);
        return;
      }
      scratch.m_even.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        scratch.m_even[b] = gates::derivative_for(type, angles[b]);
      }
      batch.apply_controlled_derivative_per_row(scratch.m_even, wire0, wire1);
      return;
    }
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ: {
      require_second_wire_batch(type, wire1);
      if (shared) {
        const gates::IsingPair pair =
            gates::ising_pair_derivative(type, angles[0]);
        batch.apply_double_flip_pairs(pair.even, pair.odd, wire0, wire1);
        return;
      }
      scratch.m_even.resize(rows);
      scratch.m_odd.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        const gates::IsingPair pair =
            gates::ising_pair_derivative(type, angles[b]);
        scratch.m_even[b] = pair.even;
        scratch.m_odd[b] = pair.odd;
      }
      batch.apply_double_flip_pairs_per_row(scratch.m_even, scratch.m_odd,
                                            wire0, wire1);
      return;
    }
    default:
      throw std::logic_error("apply_gate_derivative_batch: unreachable");
  }
}

}  // namespace qhdl::quantum
