#include "quantum/gates.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qhdl::quantum {

std::size_t gate_arity(GateType type) {
  switch (type) {
    case GateType::PauliX:
    case GateType::PauliY:
    case GateType::PauliZ:
    case GateType::Hadamard:
    case GateType::S:
    case GateType::T:
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
    case GateType::PhaseShift:
      return 1;
    case GateType::CNOT:
    case GateType::CZ:
    case GateType::SWAP:
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ:
      return 2;
  }
  throw std::logic_error("gate_arity: unknown gate");
}

bool gate_is_parameterized(GateType type) {
  switch (type) {
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
    case GateType::PhaseShift:
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ:
      return true;
    default:
      return false;
  }
}

bool gate_is_controlled(GateType type) {
  switch (type) {
    case GateType::CNOT:
    case GateType::CZ:
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
      return true;
    default:
      return false;
  }
}

std::string gate_name(GateType type) {
  switch (type) {
    case GateType::PauliX: return "X";
    case GateType::PauliY: return "Y";
    case GateType::PauliZ: return "Z";
    case GateType::Hadamard: return "H";
    case GateType::S: return "S";
    case GateType::T: return "T";
    case GateType::RX: return "RX";
    case GateType::RY: return "RY";
    case GateType::RZ: return "RZ";
    case GateType::PhaseShift: return "PhaseShift";
    case GateType::CNOT: return "CNOT";
    case GateType::CZ: return "CZ";
    case GateType::SWAP: return "SWAP";
    case GateType::CRX: return "CRX";
    case GateType::CRY: return "CRY";
    case GateType::CRZ: return "CRZ";
    case GateType::RXX: return "RXX";
    case GateType::RYY: return "RYY";
    case GateType::RZZ: return "RZZ";
  }
  return "?";
}

namespace gates {

namespace {
constexpr Complex kI{0.0, 1.0};
constexpr Complex kZero{0.0, 0.0};
constexpr Complex kOne{1.0, 0.0};
}  // namespace

Mat2 pauli_x() { return {kZero, kOne, kOne, kZero}; }
Mat2 pauli_y() { return {kZero, -kI, kI, kZero}; }
Mat2 pauli_z() { return {kOne, kZero, kZero, -kOne}; }

Mat2 hadamard() {
  const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
  return {Complex{inv_sqrt2, 0}, Complex{inv_sqrt2, 0}, Complex{inv_sqrt2, 0},
          Complex{-inv_sqrt2, 0}};
}

Mat2 s() { return {kOne, kZero, kZero, kI}; }

Mat2 t() {
  return {kOne, kZero, kZero, std::exp(kI * (std::numbers::pi / 4.0))};
}

Mat2 rx(double theta) {
  const double c = std::cos(theta / 2.0);
  const double sn = std::sin(theta / 2.0);
  return {Complex{c, 0}, Complex{0, -sn}, Complex{0, -sn}, Complex{c, 0}};
}

Mat2 ry(double theta) {
  const double c = std::cos(theta / 2.0);
  const double sn = std::sin(theta / 2.0);
  return {Complex{c, 0}, Complex{-sn, 0}, Complex{sn, 0}, Complex{c, 0}};
}

Mat2 rz(double theta) {
  return {std::exp(-kI * (theta / 2.0)), kZero, kZero,
          std::exp(kI * (theta / 2.0))};
}

Mat2 phase_shift(double theta) {
  return {kOne, kZero, kZero, std::exp(kI * theta)};
}

Mat2 rx_derivative(double theta) {
  const double c = 0.5 * std::cos(theta / 2.0);
  const double sn = 0.5 * std::sin(theta / 2.0);
  return {Complex{-sn, 0}, Complex{0, -c}, Complex{0, -c}, Complex{-sn, 0}};
}

Mat2 ry_derivative(double theta) {
  const double c = 0.5 * std::cos(theta / 2.0);
  const double sn = 0.5 * std::sin(theta / 2.0);
  return {Complex{-sn, 0}, Complex{-c, 0}, Complex{c, 0}, Complex{-sn, 0}};
}

Mat2 rz_derivative(double theta) {
  return {-kI * 0.5 * std::exp(-kI * (theta / 2.0)), kZero, kZero,
          kI * 0.5 * std::exp(kI * (theta / 2.0))};
}

Mat2 phase_shift_derivative(double theta) {
  return {kZero, kZero, kZero, kI * std::exp(kI * theta)};
}

IsingPair ising_pair(GateType type, double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  switch (type) {
    case GateType::RXX: {
      // exp(-i θ XX/2): both parity blocks mix with -i sin.
      const Mat2 block{Complex{c, 0}, Complex{0, -s}, Complex{0, -s},
                       Complex{c, 0}};
      return IsingPair{block, block};
    }
    case GateType::RYY: {
      // YY|00⟩ = -|11⟩ (even block mixes with +i sin); YY|01⟩ = +|10⟩.
      const Mat2 even{Complex{c, 0}, Complex{0, s}, Complex{0, s},
                      Complex{c, 0}};
      const Mat2 odd{Complex{c, 0}, Complex{0, -s}, Complex{0, -s},
                     Complex{c, 0}};
      return IsingPair{even, odd};
    }
    case GateType::RZZ: {
      // Diagonal: e^{-iθ/2} on even parity, e^{+iθ/2} on odd parity.
      const Mat2 even{std::exp(kI * (-theta / 2.0)), Complex{0, 0},
                      Complex{0, 0}, std::exp(kI * (-theta / 2.0))};
      const Mat2 odd{std::exp(kI * (theta / 2.0)), Complex{0, 0},
                     Complex{0, 0}, std::exp(kI * (theta / 2.0))};
      return IsingPair{even, odd};
    }
    default:
      throw std::invalid_argument("ising_pair: not an Ising gate: " +
                                  gate_name(type));
  }
}

IsingPair ising_pair_derivative(GateType type, double theta) {
  const double c = 0.5 * std::cos(theta / 2.0);
  const double s = 0.5 * std::sin(theta / 2.0);
  switch (type) {
    case GateType::RXX: {
      const Mat2 block{Complex{-s, 0}, Complex{0, -c}, Complex{0, -c},
                       Complex{-s, 0}};
      return IsingPair{block, block};
    }
    case GateType::RYY: {
      const Mat2 even{Complex{-s, 0}, Complex{0, c}, Complex{0, c},
                      Complex{-s, 0}};
      const Mat2 odd{Complex{-s, 0}, Complex{0, -c}, Complex{0, -c},
                     Complex{-s, 0}};
      return IsingPair{even, odd};
    }
    case GateType::RZZ: {
      const Mat2 even{-kI * 0.5 * std::exp(kI * (-theta / 2.0)),
                      Complex{0, 0}, Complex{0, 0},
                      -kI * 0.5 * std::exp(kI * (-theta / 2.0))};
      const Mat2 odd{kI * 0.5 * std::exp(kI * (theta / 2.0)), Complex{0, 0},
                     Complex{0, 0},
                     kI * 0.5 * std::exp(kI * (theta / 2.0))};
      return IsingPair{even, odd};
    }
    default:
      throw std::invalid_argument(
          "ising_pair_derivative: not an Ising gate: " + gate_name(type));
  }
}

Mat2 matrix_for(GateType type, double theta) {
  switch (type) {
    case GateType::PauliX: return pauli_x();
    case GateType::PauliY: return pauli_y();
    case GateType::PauliZ: return pauli_z();
    case GateType::Hadamard: return hadamard();
    case GateType::S: return s();
    case GateType::T: return t();
    case GateType::RX:
    case GateType::CRX:
      return rx(theta);
    case GateType::RY:
    case GateType::CRY:
      return ry(theta);
    case GateType::RZ:
    case GateType::CRZ:
      return rz(theta);
    case GateType::PhaseShift: return phase_shift(theta);
    default:
      throw std::invalid_argument("matrix_for: gate has no 2x2 target matrix: " +
                                  gate_name(type));
  }
}

Mat2 derivative_for(GateType type, double theta) {
  switch (type) {
    case GateType::RX:
    case GateType::CRX:
      return rx_derivative(theta);
    case GateType::RY:
    case GateType::CRY:
      return ry_derivative(theta);
    case GateType::RZ:
    case GateType::CRZ:
      return rz_derivative(theta);
    case GateType::PhaseShift:
      return phase_shift_derivative(theta);
    default:
      throw std::invalid_argument("derivative_for: gate is not parameterized: " +
                                  gate_name(type));
  }
}

}  // namespace gates

namespace {

void require_second_wire(GateType type, std::size_t wire1) {
  if (wire1 == SIZE_MAX) {
    throw std::invalid_argument("apply_gate: " + gate_name(type) +
                                " needs two wires");
  }
}

}  // namespace

void apply_gate(StateVector& state, GateType type, double theta,
                std::size_t wire0, std::size_t wire1) {
  switch (type) {
    case GateType::CNOT:
      require_second_wire(type, wire1);
      state.apply_cnot(wire0, wire1);
      return;
    case GateType::CZ:
      require_second_wire(type, wire1);
      state.apply_cz(wire0, wire1);
      return;
    case GateType::SWAP:
      require_second_wire(type, wire1);
      state.apply_swap(wire0, wire1);
      return;
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
      require_second_wire(type, wire1);
      state.apply_controlled(gates::matrix_for(type, theta), wire0, wire1);
      return;
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ: {
      require_second_wire(type, wire1);
      const gates::IsingPair pair = gates::ising_pair(type, theta);
      state.apply_double_flip_pairs(pair.even, pair.odd, wire0, wire1);
      return;
    }
    default:
      state.apply_single_qubit(gates::matrix_for(type, theta), wire0);
      return;
  }
}

void apply_gate_inverse(StateVector& state, GateType type, double theta,
                        std::size_t wire0, std::size_t wire1) {
  switch (type) {
    case GateType::CNOT:
    case GateType::CZ:
    case GateType::SWAP:
      // Self-inverse.
      apply_gate(state, type, theta, wire0, wire1);
      return;
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
      require_second_wire(type, wire1);
      state.apply_controlled(gates::matrix_for(type, -theta), wire0, wire1);
      return;
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ: {
      require_second_wire(type, wire1);
      const gates::IsingPair pair = gates::ising_pair(type, -theta);
      state.apply_double_flip_pairs(pair.even, pair.odd, wire0, wire1);
      return;
    }
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
      state.apply_single_qubit(gates::matrix_for(type, -theta), wire0);
      return;
    case GateType::PhaseShift:
      state.apply_single_qubit(gates::phase_shift(-theta), wire0);
      return;
    default:
      // Fixed gates: apply the conjugate transpose.
      state.apply_single_qubit(gates::matrix_for(type, theta).dagger(), wire0);
      return;
  }
}

void apply_gate_derivative(StateVector& state, GateType type, double theta,
                           std::size_t wire0, std::size_t wire1) {
  if (!gate_is_parameterized(type)) {
    throw std::invalid_argument("apply_gate_derivative: " + gate_name(type) +
                                " has no parameter");
  }
  switch (type) {
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
      require_second_wire(type, wire1);
      state.apply_controlled_derivative(gates::derivative_for(type, theta),
                                        wire0, wire1);
      return;
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ: {
      require_second_wire(type, wire1);
      const gates::IsingPair pair = gates::ising_pair_derivative(type, theta);
      state.apply_double_flip_pairs(pair.even, pair.odd, wire0, wire1);
      return;
    }
    default:
      state.apply_single_qubit(gates::derivative_for(type, theta), wire0);
      return;
  }
}

}  // namespace qhdl::quantum
