#include "quantum/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "util/backend_registry.hpp"

namespace qhdl::quantum {

std::string KernelStatsSnapshot::to_string() const {
  std::ostringstream oss;
  oss << "kernel dispatches: diagonal=" << diagonal
      << " real_rotation=" << real_rotation << " permutation=" << permutation
      << " controlled=" << controlled << " double_flip=" << double_flip
      << " generic=" << generic << " two_qubit_dense=" << two_qubit_dense
      << " (fused_chains=" << fused
      << " absorbing " << fused_gates << " gates, batched_rows="
      << batched_rows << ")";
  return oss.str();
}

namespace kernels {

namespace {

bool env_default() {
  // Env var wins when set ("0" = specialized, anything else = generic);
  // otherwise the build-time default applies.
  const char* value = std::getenv("QHDL_FORCE_GENERIC_KERNELS");
  if (value != nullptr && value[0] != '\0') {
    return !(value[0] == '0' && value[1] == '\0');
  }
#ifdef QHDL_FORCE_GENERIC_KERNELS_DEFAULT
  return true;
#else
  return false;
#endif
}

bool uncompiled_env_default() {
  const char* value = std::getenv("QHDL_FORCE_UNCOMPILED");
  if (value != nullptr && value[0] != '\0') {
    return !(value[0] == '0' && value[1] == '\0');
  }
#ifdef QHDL_FORCE_UNCOMPILED_DEFAULT
  return true;
#else
  return false;
#endif
}

// -1 = follow env/build default, 0 = specialized, 1 = generic.
std::atomic<int> g_force_override{-1};

// -1 = follow env/build default, 0 = compiled plans, 1 = uncompiled.
std::atomic<int> g_force_uncompiled_override{-1};

struct Counters {
  std::atomic<std::uint64_t> diagonal{0};
  std::atomic<std::uint64_t> real_rotation{0};
  std::atomic<std::uint64_t> permutation{0};
  std::atomic<std::uint64_t> controlled{0};
  std::atomic<std::uint64_t> double_flip{0};
  std::atomic<std::uint64_t> generic{0};
  std::atomic<std::uint64_t> two_qubit_dense{0};
  std::atomic<std::uint64_t> fused{0};
  std::atomic<std::uint64_t> fused_gates{0};
  std::atomic<std::uint64_t> batched_rows{0};
};

Counters& counters() {
  static Counters instance;
  return instance;
}

inline void bump(std::atomic<std::uint64_t>& c, std::uint64_t by = 1) {
  c.fetch_add(by, std::memory_order_relaxed);
}

}  // namespace

bool force_generic() {
  const int override_value = g_force_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return override_value == 1;
  static const bool from_env = env_default();
  // The reference kernel backend (QHDL_BACKEND=reference) implies the
  // historical QHDL_FORCE_GENERIC_KERNELS escape hatch: no specialized
  // dispatch, fusion, or batched SoA path. Queried live (not cached) so
  // runtime backend switches in tests take effect.
  return from_env || util::simd::active_backend().reference;
}

void set_force_generic(std::optional<bool> forced) {
  g_force_override.store(forced.has_value() ? (*forced ? 1 : 0) : -1,
                         std::memory_order_relaxed);
}

bool force_uncompiled() {
  if (force_generic()) return true;
  const int override_value =
      g_force_uncompiled_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return override_value == 1;
  static const bool from_env = uncompiled_env_default();
  return from_env;
}

void set_force_uncompiled(std::optional<bool> forced) {
  g_force_uncompiled_override.store(
      forced.has_value() ? (*forced ? 1 : 0) : -1, std::memory_order_relaxed);
}

void count_diagonal() { bump(counters().diagonal); }
void count_real_rotation() { bump(counters().real_rotation); }
void count_permutation() { bump(counters().permutation); }
void count_controlled() { bump(counters().controlled); }
void count_double_flip() { bump(counters().double_flip); }
void count_generic() { bump(counters().generic); }
void count_two_qubit_dense() { bump(counters().two_qubit_dense); }
void count_fused(std::uint64_t gates_absorbed) {
  bump(counters().fused);
  bump(counters().fused_gates, gates_absorbed);
}
void count_batched_rows(std::uint64_t rows) {
  bump(counters().batched_rows, rows);
}

KernelStatsSnapshot stats() {
  const Counters& c = counters();
  KernelStatsSnapshot snapshot;
  snapshot.diagonal = c.diagonal.load(std::memory_order_relaxed);
  snapshot.real_rotation = c.real_rotation.load(std::memory_order_relaxed);
  snapshot.permutation = c.permutation.load(std::memory_order_relaxed);
  snapshot.controlled = c.controlled.load(std::memory_order_relaxed);
  snapshot.double_flip = c.double_flip.load(std::memory_order_relaxed);
  snapshot.generic = c.generic.load(std::memory_order_relaxed);
  snapshot.two_qubit_dense = c.two_qubit_dense.load(std::memory_order_relaxed);
  snapshot.fused = c.fused.load(std::memory_order_relaxed);
  snapshot.fused_gates = c.fused_gates.load(std::memory_order_relaxed);
  snapshot.batched_rows = c.batched_rows.load(std::memory_order_relaxed);
  return snapshot;
}

void reset_stats() {
  Counters& c = counters();
  c.diagonal.store(0, std::memory_order_relaxed);
  c.real_rotation.store(0, std::memory_order_relaxed);
  c.permutation.store(0, std::memory_order_relaxed);
  c.controlled.store(0, std::memory_order_relaxed);
  c.double_flip.store(0, std::memory_order_relaxed);
  c.generic.store(0, std::memory_order_relaxed);
  c.two_qubit_dense.store(0, std::memory_order_relaxed);
  c.fused.store(0, std::memory_order_relaxed);
  c.fused_gates.store(0, std::memory_order_relaxed);
  c.batched_rows.store(0, std::memory_order_relaxed);
}

}  // namespace kernels
}  // namespace qhdl::quantum
