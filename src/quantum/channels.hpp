// Standard single-qubit noise channels as Kraus-operator sets, plus a
// NoiseModel that attaches channels to circuit execution (after every gate,
// on the wires the gate touched) — the standard NISQ noise idealization.
#pragma once

#include "quantum/circuit.hpp"
#include "quantum/density_matrix.hpp"

namespace qhdl::quantum {

namespace channels {

/// Depolarizing: with probability p the qubit is replaced by I/2.
/// Kraus: {√(1-p) I, √(p/3) X, √(p/3) Y, √(p/3) Z}. Requires p ∈ [0, 1].
KrausChannel depolarizing(double p);

/// Amplitude damping (T1 decay): |1⟩ -> |0⟩ with probability γ.
KrausChannel amplitude_damping(double gamma);

/// Phase damping (pure dephasing, T2): off-diagonals shrink by √(1-γ).
KrausChannel phase_damping(double gamma);

/// Bit flip: X with probability p.
KrausChannel bit_flip(double p);

/// Phase flip: Z with probability p.
KrausChannel phase_flip(double p);

}  // namespace channels

/// Per-execution noise description: a channel applied after every gate on
/// each wire the gate acts on (empty = noiseless).
struct NoiseModel {
  std::vector<KrausChannel> per_gate_channels;

  bool empty() const { return per_gate_channels.empty(); }

  static NoiseModel noiseless() { return NoiseModel{}; }
  static NoiseModel depolarizing(double p);
  static NoiseModel amplitude_damping(double gamma);
};

/// Runs a circuit on a density matrix under the noise model and returns the
/// final state. Fixed-angle and parameterized ops both supported.
DensityMatrix run_noisy(const Circuit& circuit,
                        std::span<const double> params,
                        const NoiseModel& noise);

/// ⟨Z_w⟩ for each requested wire under noisy execution.
std::vector<double> noisy_expvals(const Circuit& circuit,
                                  std::span<const double> params,
                                  const NoiseModel& noise,
                                  std::span<const std::size_t> wires);

/// Parameter-shift gradient of ⟨Z_wire⟩ under noisy execution. The shift
/// rules remain exact for unitary parameterized gates even when the overall
/// evolution is a noisy CPTP map.
std::vector<double> noisy_parameter_shift_gradient(
    const Circuit& circuit, std::span<const double> params,
    const NoiseModel& noise, std::size_t observable_wire);

/// Vector-Jacobian product under noise: gradient of
/// Σ_k upstream[k] · ⟨Z_{wires[k]}⟩ w.r.t. every runtime parameter, plus the
/// unshifted expectations. Each shifted circuit is evolved ONCE and all
/// observables are read from it, so the cost matches the single-observable
/// shift rule. This is what a noisy QuantumLayer's backward pass uses.
struct NoisyVjpResult {
  std::vector<double> expectations;
  std::vector<double> gradient;
};
NoisyVjpResult noisy_parameter_shift_vjp(const Circuit& circuit,
                                         std::span<const double> params,
                                         const NoiseModel& noise,
                                         std::span<const std::size_t> wires,
                                         std::span<const double> upstream);

}  // namespace qhdl::quantum
