#include "quantum/density_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace qhdl::quantum {

bool KrausChannel::is_trace_preserving(double tolerance) const {
  // Σ K† K must equal I.
  Complex s00{0, 0}, s01{0, 0}, s10{0, 0}, s11{0, 0};
  for (const Mat2& k : operators) {
    const Mat2 ktk = k.dagger() * k;
    s00 += ktk.m00;
    s01 += ktk.m01;
    s10 += ktk.m10;
    s11 += ktk.m11;
  }
  return std::abs(s00 - Complex{1, 0}) < tolerance &&
         std::abs(s11 - Complex{1, 0}) < tolerance &&
         std::abs(s01) < tolerance && std::abs(s10) < tolerance;
}

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : num_qubits_(num_qubits) {
  if (num_qubits == 0 || num_qubits > 14) {
    throw std::invalid_argument(
        "DensityMatrix: qubit count must be in [1,14]");
  }
  dim_ = std::size_t{1} << num_qubits;
  elements_.assign(dim_ * dim_, Complex{0, 0});
  elements_[0] = Complex{1, 0};
}

DensityMatrix DensityMatrix::from_statevector(const StateVector& state) {
  DensityMatrix rho{state.num_qubits()};
  const auto amps = state.amplitudes();
  for (std::size_t i = 0; i < rho.dim_; ++i) {
    for (std::size_t j = 0; j < rho.dim_; ++j) {
      rho.elements_[i * rho.dim_ + j] = amps[i] * std::conj(amps[j]);
    }
  }
  return rho;
}

DensityMatrix DensityMatrix::maximally_mixed(std::size_t num_qubits) {
  DensityMatrix rho{num_qubits};
  rho.elements_.assign(rho.dim_ * rho.dim_, Complex{0, 0});
  const double p = 1.0 / static_cast<double>(rho.dim_);
  for (std::size_t i = 0; i < rho.dim_; ++i) {
    rho.elements_[i * rho.dim_ + i] = Complex{p, 0};
  }
  return rho;
}

Complex& DensityMatrix::at(std::size_t row, std::size_t col) {
  if (row >= dim_ || col >= dim_) {
    throw std::out_of_range("DensityMatrix::at: index out of range");
  }
  return elements_[row * dim_ + col];
}

Complex DensityMatrix::at(std::size_t row, std::size_t col) const {
  if (row >= dim_ || col >= dim_) {
    throw std::out_of_range("DensityMatrix::at: index out of range");
  }
  return elements_[row * dim_ + col];
}

void DensityMatrix::check_wire(std::size_t wire, const char* context) const {
  if (wire >= num_qubits_) {
    throw std::out_of_range(std::string{context} + ": wire out of range");
  }
}

void DensityMatrix::apply_single_qubit(const Mat2& gate, std::size_t wire) {
  check_wire(wire, "DensityMatrix::apply_single_qubit");
  const std::size_t stride = std::size_t{1} << (num_qubits_ - 1 - wire);

  // Left multiply: each column transforms as a statevector.
  for (std::size_t col = 0; col < dim_; ++col) {
    for (std::size_t block = 0; block < dim_; block += 2 * stride) {
      for (std::size_t offset = 0; offset < stride; ++offset) {
        const std::size_t r0 = block + offset;
        const std::size_t r1 = r0 + stride;
        const Complex a0 = elements_[r0 * dim_ + col];
        const Complex a1 = elements_[r1 * dim_ + col];
        elements_[r0 * dim_ + col] = gate.m00 * a0 + gate.m01 * a1;
        elements_[r1 * dim_ + col] = gate.m10 * a0 + gate.m11 * a1;
      }
    }
  }
  // Right multiply by U†: each row transforms with conj(U).
  const Mat2 conj_gate{std::conj(gate.m00), std::conj(gate.m01),
                       std::conj(gate.m10), std::conj(gate.m11)};
  for (std::size_t row = 0; row < dim_; ++row) {
    Complex* row_ptr = elements_.data() + row * dim_;
    for (std::size_t block = 0; block < dim_; block += 2 * stride) {
      for (std::size_t offset = 0; offset < stride; ++offset) {
        const std::size_t c0 = block + offset;
        const std::size_t c1 = c0 + stride;
        const Complex a0 = row_ptr[c0];
        const Complex a1 = row_ptr[c1];
        // (ρU†)_rc = Σ_k ρ_rk conj(U_ck).
        row_ptr[c0] = conj_gate.m00 * a0 + conj_gate.m01 * a1;
        row_ptr[c1] = conj_gate.m10 * a0 + conj_gate.m11 * a1;
      }
    }
  }
}

void DensityMatrix::apply_cnot(std::size_t control, std::size_t target) {
  check_wire(control, "DensityMatrix::apply_cnot");
  check_wire(target, "DensityMatrix::apply_cnot");
  if (control == target) {
    throw std::invalid_argument("DensityMatrix::apply_cnot: same wires");
  }
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const auto permute = [&](std::size_t index) {
    return (index & cmask) != 0 ? index ^ tmask : index;
  };
  // ρ' = P ρ P with permutation P: ρ'_{ij} = ρ_{P(i) P(j)}. Done in place by
  // swapping rows then columns for each control-1 pair.
  for (std::size_t i = 0; i < dim_; ++i) {
    const std::size_t pi = permute(i);
    if (pi <= i) continue;
    for (std::size_t j = 0; j < dim_; ++j) {
      std::swap(elements_[i * dim_ + j], elements_[pi * dim_ + j]);
    }
  }
  for (std::size_t j = 0; j < dim_; ++j) {
    const std::size_t pj = permute(j);
    if (pj <= j) continue;
    for (std::size_t i = 0; i < dim_; ++i) {
      std::swap(elements_[i * dim_ + j], elements_[i * dim_ + pj]);
    }
  }
}

void DensityMatrix::apply_cz(std::size_t control, std::size_t target) {
  check_wire(control, "DensityMatrix::apply_cz");
  check_wire(target, "DensityMatrix::apply_cz");
  if (control == target) {
    throw std::invalid_argument("DensityMatrix::apply_cz: same wires");
  }
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);
  const auto sign = [&](std::size_t index) {
    return ((index & cmask) != 0 && (index & tmask) != 0) ? -1.0 : 1.0;
  };
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      elements_[i * dim_ + j] *= sign(i) * sign(j);
    }
  }
}

void DensityMatrix::apply_controlled(const Mat2& gate, std::size_t control,
                                     std::size_t target) {
  check_wire(control, "DensityMatrix::apply_controlled");
  check_wire(target, "DensityMatrix::apply_controlled");
  if (control == target) {
    throw std::invalid_argument("DensityMatrix::apply_controlled: same wires");
  }
  const std::size_t cmask = std::size_t{1} << (num_qubits_ - 1 - control);
  const std::size_t tmask = std::size_t{1} << (num_qubits_ - 1 - target);

  // Left multiply by CU.
  for (std::size_t col = 0; col < dim_; ++col) {
    for (std::size_t r = 0; r < dim_; ++r) {
      if ((r & cmask) == 0 || (r & tmask) != 0) continue;
      const std::size_t r1 = r | tmask;
      const Complex a0 = elements_[r * dim_ + col];
      const Complex a1 = elements_[r1 * dim_ + col];
      elements_[r * dim_ + col] = gate.m00 * a0 + gate.m01 * a1;
      elements_[r1 * dim_ + col] = gate.m10 * a0 + gate.m11 * a1;
    }
  }
  // Right multiply by (CU)†.
  const Mat2 conj_gate{std::conj(gate.m00), std::conj(gate.m01),
                       std::conj(gate.m10), std::conj(gate.m11)};
  for (std::size_t row = 0; row < dim_; ++row) {
    Complex* row_ptr = elements_.data() + row * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((c & cmask) == 0 || (c & tmask) != 0) continue;
      const std::size_t c1 = c | tmask;
      const Complex a0 = row_ptr[c];
      const Complex a1 = row_ptr[c1];
      row_ptr[c] = conj_gate.m00 * a0 + conj_gate.m01 * a1;
      row_ptr[c1] = conj_gate.m10 * a0 + conj_gate.m11 * a1;
    }
  }
}

void DensityMatrix::apply_double_flip_pairs(const Mat2& even_pair,
                                            const Mat2& odd_pair,
                                            std::size_t wire_a,
                                            std::size_t wire_b) {
  check_wire(wire_a, "DensityMatrix::apply_double_flip_pairs");
  check_wire(wire_b, "DensityMatrix::apply_double_flip_pairs");
  if (wire_a == wire_b) {
    throw std::invalid_argument(
        "DensityMatrix::apply_double_flip_pairs: same wires");
  }
  const std::size_t amask = std::size_t{1} << (num_qubits_ - 1 - wire_a);
  const std::size_t bmask = std::size_t{1} << (num_qubits_ - 1 - wire_b);
  const std::size_t flip = amask | bmask;

  // Left multiply by U: columns transform as statevectors.
  for (std::size_t col = 0; col < dim_; ++col) {
    for (std::size_t r = 0; r < dim_; ++r) {
      if ((r & amask) != 0) continue;
      const std::size_t r1 = r ^ flip;
      const Mat2& gate = (r & bmask) == 0 ? even_pair : odd_pair;
      const Complex a0 = elements_[r * dim_ + col];
      const Complex a1 = elements_[r1 * dim_ + col];
      elements_[r * dim_ + col] = gate.m00 * a0 + gate.m01 * a1;
      elements_[r1 * dim_ + col] = gate.m10 * a0 + gate.m11 * a1;
    }
  }
  // Right multiply by U† (conjugate blocks).
  const Mat2 even_conj{std::conj(even_pair.m00), std::conj(even_pair.m01),
                       std::conj(even_pair.m10), std::conj(even_pair.m11)};
  const Mat2 odd_conj{std::conj(odd_pair.m00), std::conj(odd_pair.m01),
                      std::conj(odd_pair.m10), std::conj(odd_pair.m11)};
  for (std::size_t row = 0; row < dim_; ++row) {
    Complex* row_ptr = elements_.data() + row * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((c & amask) != 0) continue;
      const std::size_t c1 = c ^ flip;
      const Mat2& gate = (c & bmask) == 0 ? even_conj : odd_conj;
      const Complex a0 = row_ptr[c];
      const Complex a1 = row_ptr[c1];
      row_ptr[c] = gate.m00 * a0 + gate.m01 * a1;
      row_ptr[c1] = gate.m10 * a0 + gate.m11 * a1;
    }
  }
}

void DensityMatrix::apply_channel(const KrausChannel& channel,
                                  std::size_t wire) {
  check_wire(wire, "DensityMatrix::apply_channel");
  if (channel.operators.empty()) {
    throw std::invalid_argument("DensityMatrix::apply_channel: empty channel");
  }
  // Accumulate Σ K ρ K† using a scratch copy per Kraus operator.
  std::vector<Complex> accumulated(dim_ * dim_, Complex{0, 0});
  const std::vector<Complex> original = elements_;
  for (const Mat2& k : channel.operators) {
    elements_ = original;
    apply_single_qubit(k, wire);  // note: applies K ρ K† since K† branch
                                  // uses the conjugate of the same matrix
    for (std::size_t i = 0; i < elements_.size(); ++i) {
      accumulated[i] += elements_[i];
    }
  }
  elements_ = std::move(accumulated);
}

Complex DensityMatrix::trace() const {
  Complex total{0, 0};
  for (std::size_t i = 0; i < dim_; ++i) total += elements_[i * dim_ + i];
  return total;
}

double DensityMatrix::purity() const {
  // Tr(ρ²) = Σ_ij ρ_ij ρ_ji = Σ_ij |ρ_ij|² for Hermitian ρ.
  double total = 0.0;
  for (const Complex& e : elements_) total += std::norm(e);
  return total;
}

double DensityMatrix::expval_pauli_z(std::size_t wire) const {
  check_wire(wire, "DensityMatrix::expval_pauli_z");
  const std::size_t mask = std::size_t{1} << (num_qubits_ - 1 - wire);
  double total = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double p = elements_[i * dim_ + i].real();
    total += (i & mask) == 0 ? p : -p;
  }
  return total;
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> probs(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    probs[i] = elements_[i * dim_ + i].real();
  }
  return probs;
}

Mat2 DensityMatrix::reduced_single_qubit(std::size_t wire) const {
  check_wire(wire, "DensityMatrix::reduced_single_qubit");
  const std::size_t mask = std::size_t{1} << (num_qubits_ - 1 - wire);
  Mat2 reduced{Complex{0, 0}, Complex{0, 0}, Complex{0, 0}, Complex{0, 0}};
  for (std::size_t i = 0; i < dim_; ++i) {
    // Pair i with j = i ^ mask; diagonal blocks accumulate by wire bit.
    const bool bit = (i & mask) != 0;
    if (bit) {
      reduced.m11 += elements_[i * dim_ + i];
    } else {
      reduced.m00 += elements_[i * dim_ + i];
      reduced.m01 += elements_[i * dim_ + (i | mask)];
      reduced.m10 += elements_[(i | mask) * dim_ + i];
    }
  }
  return reduced;
}

double DensityMatrix::hermiticity_error() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      worst = std::max(worst,
                       std::abs(elements_[i * dim_ + j] -
                                std::conj(elements_[j * dim_ + i])));
    }
  }
  return worst;
}

Mat2 reduced_single_qubit(const StateVector& state, std::size_t wire) {
  if (wire >= state.num_qubits()) {
    throw std::out_of_range("reduced_single_qubit: wire out of range");
  }
  const std::size_t q = state.num_qubits();
  const std::size_t mask = std::size_t{1} << (q - 1 - wire);
  const auto amps = state.amplitudes();
  Mat2 reduced{Complex{0, 0}, Complex{0, 0}, Complex{0, 0}, Complex{0, 0}};
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if ((i & mask) != 0) continue;
    const Complex a0 = amps[i];
    const Complex a1 = amps[i | mask];
    reduced.m00 += a0 * std::conj(a0);
    reduced.m01 += a0 * std::conj(a1);
    reduced.m10 += a1 * std::conj(a0);
    reduced.m11 += a1 * std::conj(a1);
  }
  return reduced;
}

}  // namespace qhdl::quantum
