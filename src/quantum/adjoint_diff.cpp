#include "quantum/adjoint_diff.hpp"

#include <stdexcept>

namespace qhdl::quantum {

namespace {

/// Core reverse sweep shared by the scalar and VJP entry points.
/// `lambda` must hold O_eff|ψ⟩ on entry; `phi` must hold |ψ⟩.
std::vector<double> reverse_sweep(const Circuit& circuit,
                                  std::span<const double> params,
                                  StateVector& phi, StateVector& lambda) {
  std::vector<double> gradient(circuit.parameter_count(), 0.0);
  const auto& ops = circuit.ops();
  StateVector mu{circuit.num_qubits()};

  for (std::size_t idx = ops.size(); idx-- > 0;) {
    const Op& op = ops[idx];
    const double angle = op.angle(params);
    // Peel the gate off the forward state: φ ← U_k† φ.
    apply_gate_inverse(phi, op.type, angle, op.wire0, op.wire1);

    if (op.param_index.has_value()) {
      // μ = (dU_k/dθ) φ_{k-1}; contribution = 2 Re⟨λ|μ⟩.
      mu = phi;
      apply_gate_derivative(mu, op.type, angle, op.wire0, op.wire1);
      gradient[*op.param_index] += 2.0 * lambda.inner_product(mu).real();
    }

    // Pull the co-state back: λ ← U_k† λ.
    apply_gate_inverse(lambda, op.type, angle, op.wire0, op.wire1);
  }
  return gradient;
}

}  // namespace

AdjointResult adjoint_gradient(const Circuit& circuit,
                               std::span<const double> params,
                               const Observable& observable) {
  StateVector psi = circuit.execute(params);
  AdjointResult result;
  result.expectation = observable.expectation(psi);

  StateVector lambda{circuit.num_qubits()};
  observable.apply(psi, lambda);
  result.gradient = reverse_sweep(circuit, params, psi, lambda);
  return result;
}

namespace {

/// λ = Σ_k w_k (O_k ψ) — the adjoint co-state seed.
StateVector weighted_observable_state(
    const StateVector& psi, std::span<const Observable> observables,
    std::span<const double> upstream_weights) {
  StateVector lambda{psi.num_qubits()};
  StateVector scratch{psi.num_qubits()};
  for (auto& a : lambda.amplitudes()) a = Complex{0.0, 0.0};
  for (std::size_t k = 0; k < observables.size(); ++k) {
    if (upstream_weights[k] == 0.0) continue;
    observables[k].apply(psi, scratch);
    auto lam = lambda.amplitudes();
    auto scr = scratch.amplitudes();
    for (std::size_t i = 0; i < lam.size(); ++i) {
      lam[i] += upstream_weights[k] * scr[i];
    }
  }
  return lambda;
}

AdjointVjpResult adjoint_vjp_impl(const Circuit& circuit,
                                  std::span<const double> params,
                                  StateVector psi,
                                  std::span<const Observable> observables,
                                  std::span<const double> upstream_weights) {
  AdjointVjpResult result;
  result.expectations.reserve(observables.size());
  for (const Observable& obs : observables) {
    result.expectations.push_back(obs.expectation(psi));
  }
  StateVector lambda =
      weighted_observable_state(psi, observables, upstream_weights);
  result.gradient = reverse_sweep(circuit, params, psi, lambda);
  return result;
}

}  // namespace

AdjointVjpResult adjoint_vjp(const Circuit& circuit,
                             std::span<const double> params,
                             std::span<const Observable> observables,
                             std::span<const double> upstream_weights) {
  if (observables.size() != upstream_weights.size()) {
    throw std::invalid_argument(
        "adjoint_vjp: observables/upstream size mismatch");
  }
  return adjoint_vjp_impl(circuit, params, circuit.execute(params),
                          observables, upstream_weights);
}

AdjointVjpResult adjoint_vjp_from_state(
    const Circuit& circuit, std::span<const double> params,
    const StateVector& initial_state,
    std::span<const Observable> observables,
    std::span<const double> upstream_weights) {
  if (observables.size() != upstream_weights.size()) {
    throw std::invalid_argument(
        "adjoint_vjp_from_state: observables/upstream size mismatch");
  }
  StateVector psi = initial_state;
  circuit.run(psi, params);
  return adjoint_vjp_impl(circuit, params, std::move(psi), observables,
                          upstream_weights);
}

std::vector<double> initial_state_cogradient(
    const Circuit& circuit, std::span<const double> params,
    const StateVector& initial_state,
    std::span<const Observable> observables,
    std::span<const double> upstream_weights) {
  if (observables.size() != upstream_weights.size()) {
    throw std::invalid_argument(
        "initial_state_cogradient: observables/upstream size mismatch");
  }
  // v = U† O_eff U |φ⟩: run forward, seed with O_eff, pull back through U†.
  StateVector psi = initial_state;
  circuit.run(psi, params);
  StateVector lambda =
      weighted_observable_state(psi, observables, upstream_weights);
  const auto& ops = circuit.ops();
  for (std::size_t idx = ops.size(); idx-- > 0;) {
    const Op& op = ops[idx];
    apply_gate_inverse(lambda, op.type, op.angle(params), op.wire0,
                       op.wire1);
  }
  std::vector<double> cogradient(lambda.dimension());
  const auto amps = lambda.amplitudes();
  for (std::size_t i = 0; i < cogradient.size(); ++i) {
    cogradient[i] = 2.0 * amps[i].real();
  }
  return cogradient;
}

std::vector<std::vector<double>> adjoint_jacobian(
    const Circuit& circuit, std::span<const double> params,
    std::span<const Observable> observables) {
  std::vector<std::vector<double>> jacobian;
  jacobian.reserve(observables.size());
  for (const Observable& obs : observables) {
    jacobian.push_back(adjoint_gradient(circuit, params, obs).gradient);
  }
  return jacobian;
}

}  // namespace qhdl::quantum
