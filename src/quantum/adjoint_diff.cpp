#include "quantum/adjoint_diff.hpp"

#include <stdexcept>

#include "quantum/exec_plan.hpp"
#include "quantum/statevector_batch.hpp"

namespace qhdl::quantum {

namespace {

// The sweeps below run over either the circuit's raw op list or its
// compiled plan's flat op stream (same ops minus exactly-cancelled
// involution pairs — see exec_plan.hpp). These shims give both op types
// one parameter-slot interface.
inline bool op_has_param(const Op& op) { return op.param_index.has_value(); }
inline std::size_t op_param(const Op& op) { return *op.param_index; }
inline bool op_has_param(const PlanOp& op) { return op.param_slot >= 0; }
inline std::size_t op_param(const PlanOp& op) {
  return static_cast<std::size_t>(op.param_slot);
}

/// Core reverse sweep shared by the scalar and VJP entry points.
/// `lambda` must hold O_eff|ψ⟩ on entry; `phi` must hold |ψ⟩.
template <typename OpT>
std::vector<double> reverse_sweep_ops(std::span<const OpT> ops,
                                      std::size_t parameter_count,
                                      std::size_t num_qubits,
                                      std::span<const double> params,
                                      StateVector& phi, StateVector& lambda) {
  std::vector<double> gradient(parameter_count, 0.0);
  StateVector mu{num_qubits};

  for (std::size_t idx = ops.size(); idx-- > 0;) {
    const OpT& op = ops[idx];
    const double angle = op.angle(params);
    // Peel the gate off the forward state: φ ← U_k† φ.
    apply_gate_inverse(phi, op.type, angle, op.wire0, op.wire1);

    if (op_has_param(op)) {
      // μ = (dU_k/dθ) φ_{k-1}; contribution = 2 Re⟨λ|μ⟩.
      mu = phi;
      apply_gate_derivative(mu, op.type, angle, op.wire0, op.wire1);
      gradient[op_param(op)] += 2.0 * lambda.inner_product(mu).real();
    }

    // Pull the co-state back: λ ← U_k† λ.
    apply_gate_inverse(lambda, op.type, angle, op.wire0, op.wire1);
  }
  return gradient;
}

std::vector<double> reverse_sweep(const Circuit& circuit,
                                  std::span<const double> params,
                                  StateVector& phi, StateVector& lambda) {
  if (const std::shared_ptr<const ExecutionPlan> plan =
          circuit.compiled_plan()) {
    return reverse_sweep_ops<PlanOp>(plan->flat_ops(),
                                     circuit.parameter_count(),
                                     circuit.num_qubits(), params, phi,
                                     lambda);
  }
  return reverse_sweep_ops<Op>(circuit.ops(), circuit.parameter_count(),
                               circuit.num_qubits(), params, phi, lambda);
}

}  // namespace

AdjointResult adjoint_gradient(const Circuit& circuit,
                               std::span<const double> params,
                               const Observable& observable) {
  StateVector psi = circuit.execute(params);
  AdjointResult result;
  result.expectation = observable.expectation(psi);

  StateVector lambda{circuit.num_qubits()};
  observable.apply(psi, lambda);
  result.gradient = reverse_sweep(circuit, params, psi, lambda);
  return result;
}

namespace {

/// λ = Σ_k w_k (O_k ψ) — the adjoint co-state seed.
StateVector weighted_observable_state(
    const StateVector& psi, std::span<const Observable> observables,
    std::span<const double> upstream_weights) {
  StateVector lambda{psi.num_qubits()};
  StateVector scratch{psi.num_qubits()};
  for (auto& a : lambda.amplitudes()) a = Complex{0.0, 0.0};
  for (std::size_t k = 0; k < observables.size(); ++k) {
    if (upstream_weights[k] == 0.0) continue;
    observables[k].apply(psi, scratch);
    auto lam = lambda.amplitudes();
    auto scr = scratch.amplitudes();
    for (std::size_t i = 0; i < lam.size(); ++i) {
      lam[i] += upstream_weights[k] * scr[i];
    }
  }
  return lambda;
}

AdjointVjpResult adjoint_vjp_impl(const Circuit& circuit,
                                  std::span<const double> params,
                                  StateVector psi,
                                  std::span<const Observable> observables,
                                  std::span<const double> upstream_weights) {
  AdjointVjpResult result;
  result.expectations.reserve(observables.size());
  for (const Observable& obs : observables) {
    result.expectations.push_back(obs.expectation(psi));
  }
  StateVector lambda =
      weighted_observable_state(psi, observables, upstream_weights);
  result.gradient = reverse_sweep(circuit, params, psi, lambda);
  return result;
}

}  // namespace

AdjointVjpResult adjoint_vjp(const Circuit& circuit,
                             std::span<const double> params,
                             std::span<const Observable> observables,
                             std::span<const double> upstream_weights) {
  if (observables.size() != upstream_weights.size()) {
    throw std::invalid_argument(
        "adjoint_vjp: observables/upstream size mismatch");
  }
  return adjoint_vjp_impl(circuit, params, circuit.execute(params),
                          observables, upstream_weights);
}

AdjointVjpResult adjoint_vjp_from_state(
    const Circuit& circuit, std::span<const double> params,
    const StateVector& initial_state,
    std::span<const Observable> observables,
    std::span<const double> upstream_weights) {
  if (observables.size() != upstream_weights.size()) {
    throw std::invalid_argument(
        "adjoint_vjp_from_state: observables/upstream size mismatch");
  }
  StateVector psi = initial_state;
  circuit.run(psi, params);
  return adjoint_vjp_impl(circuit, params, std::move(psi), observables,
                          upstream_weights);
}

std::vector<double> initial_state_cogradient(
    const Circuit& circuit, std::span<const double> params,
    const StateVector& initial_state,
    std::span<const Observable> observables,
    std::span<const double> upstream_weights) {
  if (observables.size() != upstream_weights.size()) {
    throw std::invalid_argument(
        "initial_state_cogradient: observables/upstream size mismatch");
  }
  // v = U† O_eff U |φ⟩: run forward, seed with O_eff, pull back through U†.
  StateVector psi = initial_state;
  circuit.run(psi, params);
  StateVector lambda =
      weighted_observable_state(psi, observables, upstream_weights);
  const auto pull_back = [&](auto ops) {
    for (std::size_t idx = ops.size(); idx-- > 0;) {
      const auto& op = ops[idx];
      apply_gate_inverse(lambda, op.type, op.angle(params), op.wire0,
                         op.wire1);
    }
  };
  if (const std::shared_ptr<const ExecutionPlan> plan =
          circuit.compiled_plan()) {
    pull_back(plan->flat_ops());
  } else {
    pull_back(std::span<const Op>{circuit.ops()});
  }
  std::vector<double> cogradient(lambda.dimension());
  const auto amps = lambda.amplitudes();
  for (std::size_t i = 0; i < cogradient.size(); ++i) {
    cogradient[i] = 2.0 * amps[i].real();
  }
  return cogradient;
}

BatchAdjointVjpResult adjoint_vjp_batch(
    const Circuit& circuit, std::span<const double> params,
    std::size_t param_stride, std::size_t batch_rows,
    std::span<const Observable> observables,
    std::span<const double> upstream_weights) {
  const std::size_t obs_count = observables.size();
  if (upstream_weights.size() != batch_rows * obs_count) {
    throw std::invalid_argument(
        "adjoint_vjp_batch: upstream_weights size must be batch * "
        "observables");
  }
  if (batch_rows == 0) {
    throw std::invalid_argument("adjoint_vjp_batch: batch must be >= 1");
  }
  // Same strictness as Circuit::run/run_batch: a stride or size mismatch in
  // either direction is a packing-layout bug, not something to read past.
  if (param_stride < circuit.parameter_count()) {
    throw std::invalid_argument(
        "adjoint_vjp_batch: param_stride " + std::to_string(param_stride) +
        " < " + std::to_string(circuit.parameter_count()) +
        " circuit parameters");
  }
  if (params.size() != batch_rows * param_stride) {
    throw std::invalid_argument(
        "adjoint_vjp_batch: got " + std::to_string(params.size()) +
        " params, need exactly " + std::to_string(batch_rows * param_stride));
  }
  for (const Observable& obs : observables) {
    if (!obs.is_diagonal()) {
      throw std::invalid_argument(
          "adjoint_vjp_batch: all observables must be diagonal (all-Z); "
          "fall back to per-row adjoint_vjp for " +
          obs.to_string());
    }
  }

  const std::size_t num_qubits = circuit.num_qubits();
  const std::size_t dimension = std::size_t{1} << num_qubits;

  BatchAdjointVjpResult result;
  result.batch = batch_rows;
  result.observable_count = obs_count;

  // Forward: all rows at once through the SoA kernels.
  StateVectorBatch phi{num_qubits, batch_rows};
  circuit.run_batch(phi, params, param_stride);

  // Each diagonal entry matches expectation()'s fast-path sign_weight, so
  // the per-row expectations below are bit-identical to the scalar path.
  std::vector<std::vector<double>> diagonals;
  diagonals.reserve(obs_count);
  for (const Observable& obs : observables) {
    diagonals.push_back(obs.diagonal(num_qubits));
  }

  result.expectations.assign(batch_rows * obs_count, 0.0);
  {
    const std::span<const Complex> amps = phi.amplitudes();
    for (std::size_t i = 0; i < dimension; ++i) {
      for (std::size_t b = 0; b < batch_rows; ++b) {
        const double p = std::norm(amps[i * batch_rows + b]);
        for (std::size_t k = 0; k < obs_count; ++k) {
          result.expectations[b * obs_count + k] += diagonals[k][i] * p;
        }
      }
    }
  }

  // Co-state seed: λ_b = Σ_k w_{b,k} (O_k ψ_b), accumulated term-by-term in
  // the same order as the scalar weighted_observable_state (k outer,
  // ascending i, w == 0 terms skipped) — bit-identical per row for the
  // single-term observables the hybrid layer emits.
  StateVectorBatch lambda{num_qubits, batch_rows};
  {
    const std::span<const Complex> amps = phi.amplitudes();
    const std::span<Complex> lam = lambda.amplitudes();
    for (auto& a : lam) a = Complex{0.0, 0.0};  // ctor seeds amplitude 0 to 1
    for (std::size_t k = 0; k < obs_count; ++k) {
      const std::vector<double>& diag = diagonals[k];
      for (std::size_t i = 0; i < dimension; ++i) {
        for (std::size_t b = 0; b < batch_rows; ++b) {
          const double w = upstream_weights[b * obs_count + k];
          if (w == 0.0) continue;
          lam[i * batch_rows + b] += w * (diag[i] * amps[i * batch_rows + b]);
        }
      }
    }
  }

  // Reverse sweep, batched: peel φ, form μ = (dU/dθ)φ, take per-row
  // Re⟨λ|μ⟩, pull λ back.
  const std::size_t parameter_count = circuit.parameter_count();
  result.gradient.assign(batch_rows * parameter_count, 0.0);
  StateVectorBatch mu{num_qubits, batch_rows};
  std::vector<double> angles(batch_rows);
  std::vector<double> row_inner(batch_rows);

  const auto gather_angles =
      [&](const auto& op) -> std::span<const double> {
    if (!op_has_param(op)) {
      angles[0] = op.fixed_angle;
      return {angles.data(), 1};
    }
    bool shared = true;
    for (std::size_t b = 0; b < batch_rows; ++b) {
      angles[b] = params[b * param_stride + op_param(op)];
      shared = shared && angles[b] == angles[0];
    }
    return shared ? std::span<const double>{angles.data(), 1}
                  : std::span<const double>{angles};
  };

  const auto sweep = [&](auto ops) {
    for (std::size_t idx = ops.size(); idx-- > 0;) {
      const auto& op = ops[idx];
      const std::span<const double> op_angles = gather_angles(op);
      apply_gate_inverse_batch(phi, op.type, op_angles, op.wire0, op.wire1);

      if (op_has_param(op)) {
        mu.assign_from(phi);
        apply_gate_derivative_batch(mu, op.type, op_angles, op.wire0,
                                    op.wire1);
        lambda.inner_products_real(mu, row_inner);
        for (std::size_t b = 0; b < batch_rows; ++b) {
          result.gradient[b * parameter_count + op_param(op)] +=
              2.0 * row_inner[b];
        }
      }

      apply_gate_inverse_batch(lambda, op.type, op_angles, op.wire0,
                               op.wire1);
    }
  };
  // The flat plan stream is the op list minus exactly-cancelled involution
  // pairs (bit-identical, and never parameterized), so gradients match the
  // uncompiled sweep exactly.
  if (const std::shared_ptr<const ExecutionPlan> plan =
          circuit.compiled_plan()) {
    sweep(plan->flat_ops());
  } else {
    sweep(std::span<const Op>{circuit.ops()});
  }
  return result;
}

std::vector<std::vector<double>> adjoint_jacobian(
    const Circuit& circuit, std::span<const double> params,
    std::span<const Observable> observables) {
  std::vector<std::vector<double>> jacobian;
  jacobian.reserve(observables.size());
  for (const Observable& obs : observables) {
    jacobian.push_back(adjoint_gradient(circuit, params, obs).gradient);
  }
  return jacobian;
}

}  // namespace qhdl::quantum
