// Dense state-vector simulator.
//
// Wire convention matches PennyLane: wire 0 is the most significant bit of
// the computational-basis index, so |q0 q1 ... q_{n-1}⟩ has basis index
// (q0 << (n-1)) | ... | q_{n-1}. All public methods validate wires.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace qhdl::quantum {

using Complex = std::complex<double>;

/// Column-major-free 2x2 complex matrix [[m00, m01], [m10, m11]].
struct Mat2 {
  Complex m00, m01, m10, m11;

  /// Conjugate transpose.
  Mat2 dagger() const;
  /// Matrix product this * other.
  Mat2 operator*(const Mat2& other) const;
  bool is_unitary(double tolerance = 1e-12) const;
};

/// Dense 4x4 complex matrix, row-major m[row][col]. Acts on a wire pair
/// (a, b) with local basis index (bit_a << 1) | bit_b. Used by the compile
/// pass to collapse adjacent fixed two-qubit gates into one unitary.
struct Mat4 {
  Complex m[4][4];

  /// Conjugate transpose.
  Mat4 dagger() const;
  /// Matrix product this * other.
  Mat4 operator*(const Mat4& other) const;
  bool is_unitary(double tolerance = 1e-12) const;
};

/// State of `num_qubits` qubits; 2^n complex amplitudes.
class StateVector {
 public:
  /// Initializes |0...0⟩.
  explicit StateVector(std::size_t num_qubits);

  /// Takes explicit amplitudes (must have power-of-two size).
  explicit StateVector(std::vector<Complex> amplitudes);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t dimension() const { return amplitudes_.size(); }

  std::span<Complex> amplitudes() { return amplitudes_; }
  std::span<const Complex> amplitudes() const { return amplitudes_; }

  /// Resets to |0...0⟩.
  void reset();

  /// Sets to a computational basis state.
  void set_basis_state(std::size_t basis_index);

  /// Applies a single-qubit matrix to `wire` (generic dense 2x2 matvec over
  /// every amplitude pair — the reference path every specialized kernel is
  /// tested against).
  void apply_single_qubit(const Mat2& gate, std::size_t wire);

  // --- specialized kernels (see DESIGN.md §8) ---------------------------
  // Each is algebraically identical to apply_single_qubit with the
  // corresponding matrix but touches less data / does fewer FLOPs.

  /// diag(d0, d1) on `wire`: pure per-amplitude phase multiply, no pair
  /// gather (RZ, PhaseShift, S, T, PauliZ). When d0 == 1 only the wire=1
  /// half of the state is touched.
  void apply_diagonal(Complex d0, Complex d1, std::size_t wire);

  /// RX(θ) with c = cos(θ/2), s = sin(θ/2): the matrix [[c, -is], [-is, c]]
  /// needs only real multiplies (4 mul + 2 add per component pair).
  void apply_rx_fast(double c, double s, std::size_t wire);

  /// RY(θ) with c = cos(θ/2), s = sin(θ/2): the real rotation
  /// [[c, -s], [s, c]] applied componentwise.
  void apply_ry_fast(double c, double s, std::size_t wire);

  /// PauliX on `wire`: pure index-permutation swap of amplitude pairs.
  void apply_pauli_x(std::size_t wire);

  /// Applies a single-qubit matrix to `target` controlled on `control`=1.
  void apply_controlled(const Mat2& gate, std::size_t control,
                        std::size_t target);

  /// Applies d(CU)/dθ = |1⟩⟨1|_c ⊗ (dU/dθ): control-0 amplitudes are zeroed,
  /// control-1 amplitudes get `gate` (typically a non-unitary derivative).
  void apply_controlled_derivative(const Mat2& gate, std::size_t control,
                                   std::size_t target);

  void apply_cnot(std::size_t control, std::size_t target);
  void apply_cz(std::size_t control, std::size_t target);
  void apply_swap(std::size_t wire_a, std::size_t wire_b);

  /// Applies a dense 4x4 matrix to the wire pair (wire_a, wire_b); the
  /// matrix's local basis index is (bit_a << 1) | bit_b. The generic
  /// two-qubit path — specialized kernels above beat it whenever the gate
  /// has structure; the compile pass uses it for fused gate pairs.
  void apply_two_qubit(const Mat4& gate, std::size_t wire_a,
                       std::size_t wire_b);

  /// Applies a 2x2 matrix to the double-flip amplitude pairs
  /// (i, i ^ mask_a ^ mask_b): `even_pair` where the two wire bits agree
  /// (|00⟩↔|11⟩ blocks), `odd_pair` where they differ (|01⟩↔|10⟩). The
  /// "low" element of each pair has wire_a's bit = 0. This is exactly the
  /// structure of the Ising gates RXX/RYY/RZZ (see gates.hpp).
  void apply_double_flip_pairs(const Mat2& even_pair, const Mat2& odd_pair,
                               std::size_t wire_a, std::size_t wire_b);

  /// Multiplies the whole state by a scalar (used by derivative ops).
  void scale(Complex factor);

  /// ⟨Z_wire⟩ = Σ_i ±|a_i|².
  double expval_pauli_z(std::size_t wire) const;

  /// Probability of measuring basis state `basis_index`.
  double probability(std::size_t basis_index) const;

  /// All 2^n basis probabilities.
  std::vector<double> probabilities() const;

  /// Σ|a_i|² (should stay 1 under unitary evolution).
  double norm_squared() const;

  /// ⟨this|other⟩.
  Complex inner_product(const StateVector& other) const;

  /// Debug rendering "(0.70+0.00i)|00⟩ + ...".
  std::string to_string() const;

 private:
  void check_wire(std::size_t wire, const char* context) const;

  std::size_t num_qubits_;
  std::vector<Complex> amplitudes_;
};

}  // namespace qhdl::quantum
