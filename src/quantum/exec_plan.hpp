// Compiled circuit execution plans (DESIGN.md §12).
//
// Circuit::run used to re-derive the same lowering on every call: scan the
// op list, rebuild single-qubit fusion chains, and re-decide kernel dispatch
// — per run × epoch × batch in a grid search even though thousands of
// candidate evaluations share a handful of circuit *structures*. The compile
// pass here lowers a Circuit once into an immutable ExecutionPlan:
//
//   * a peephole pass drops adjacent exact-involution pairs (X·X, Z·Z,
//     CNOT·CNOT, CZ·CZ, SWAP·SWAP on the same wires — pure permutations and
//     sign flips, so removal is bit-exact);
//   * adjacent single-qubit gates on one wire become fused chains: fully
//     fixed chains collapse to a precomputed dense 2×2 (or a precomputed
//     diagonal when every factor is diagonal), parameterized chains record
//     the gate sequence so run() multiplies the same matrices in the same
//     order the uncompiled fuser would;
//   * adjacent angle-independent two-qubit gates on one wire pair collapse
//     to a precomputed 4×4 unitary (StateVector::apply_two_qubit);
//   * every op records the specialized kernel class it dispatches to, so
//     flops::classify_plan can model the compiled dispatch mix exactly.
//
// Plans are cached process-wide, keyed by a structural FNV-1a hash (same
// scheme as search::sweep_config_hash) with full-key verification, so a
// sweep compiles each (ansatz, qubits, depth) structure once per process —
// including re-exec'd --worker-mode processes, which warm their own cache on
// the first unit of each structure. QHDL_FORCE_UNCOMPILED restores the
// per-call lowering (and QHDL_FORCE_GENERIC_KERNELS still bypasses both).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "quantum/gates.hpp"

namespace qhdl::quantum {

class Circuit;
class StateVectorBatch;

/// Specialized kernel class an op dispatches to (the compile-time mirror of
/// the dispatch switch in gates.cpp / flops::DispatchCounts).
enum class KernelClass : std::uint8_t {
  Diagonal,      ///< RZ / PhaseShift / S / T / Z / CZ
  RealRotation,  ///< RX / RY
  Permutation,   ///< X / CNOT / SWAP
  Controlled,    ///< CRX / CRY / CRZ
  DoubleFlip,    ///< RXX / RYY / RZZ
  Generic,       ///< dense 2x2 matvec (PauliY, Hadamard)
};

/// Kernel class `type` routes to under specialized dispatch.
KernelClass kernel_class_for(GateType type);

/// One op of the flat (unfused) stream: the original op order minus
/// peephole-cancelled pairs, with parameter lookup and kernel dispatch
/// resolved at compile time. Used by run_batch and the adjoint reverse
/// sweeps, whose arithmetic must stay bit-identical to per-op dispatch.
struct PlanOp {
  GateType type;
  std::size_t wire0 = 0;
  std::size_t wire1 = SIZE_MAX;  ///< SIZE_MAX for single-qubit ops
  std::int64_t param_slot = -1;  ///< runtime parameter index, -1 = fixed
  double fixed_angle = 0.0;
  KernelClass kernel = KernelClass::Generic;

  double angle(std::span<const double> params) const {
    return param_slot < 0 ? fixed_angle
                          : params[static_cast<std::size_t>(param_slot)];
  }
};

/// One gate inside a parameterized fused chain.
struct ChainGate {
  GateType type;
  std::int64_t param_slot = -1;
  double fixed_angle = 0.0;

  double angle(std::span<const double> params) const {
    return param_slot < 0 ? fixed_angle
                          : params[static_cast<std::size_t>(param_slot)];
  }
};

/// One op of the fused scalar stream, emitted in exactly the order the
/// uncompiled fuser applies gates (two-qubit ops flush their wires first;
/// trailing chains flush in ascending wire order).
struct FusedOp {
  enum class Kind : std::uint8_t {
    Single,         ///< one single-qubit gate, specialized dispatch
    Chain,          ///< >=2 single-qubit gates, runtime 2x2 product
    FixedChain,     ///< >=2 fixed single-qubit gates, precomputed dense 2x2
    DiagonalChain,  ///< >=2 fixed diagonal gates, precomputed diagonal
    TwoQubit,       ///< one two-qubit gate, specialized dispatch
    FusedPair,      ///< >=2 fixed two-qubit gates on one pair, 4x4 unitary
  };

  Kind kind = Kind::Single;
  GateType type = GateType::PauliX;  ///< valid for Single / TwoQubit
  std::size_t wire0 = 0;
  std::size_t wire1 = SIZE_MAX;
  std::int64_t param_slot = -1;  ///< Single / TwoQubit; -1 = fixed
  double fixed_angle = 0.0;
  KernelClass kernel = KernelClass::Generic;
  Mat2 matrix{};         ///< FixedChain product
  Complex d0{}, d1{};    ///< DiagonalChain product diagonal
  Mat4 matrix4{};        ///< FusedPair product
  std::uint32_t chain_begin = 0;  ///< Chain slice into chain_gates()
  std::uint32_t chain_length = 0;
  std::uint32_t gate_count = 1;  ///< source gates this op covers

  double angle(std::span<const double> params) const {
    return param_slot < 0 ? fixed_angle
                          : params[static_cast<std::size_t>(param_slot)];
  }
};

/// Immutable compiled form of one circuit structure. Thread-safe to execute
/// concurrently (plans hold no mutable state).
class ExecutionPlan {
 public:
  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t parameter_count() const { return parameter_count_; }
  /// Ops in the source circuit before lowering.
  std::size_t source_op_count() const { return source_op_count_; }
  /// Source ops removed by exact involution cancellation.
  std::size_t cancelled_op_count() const { return cancelled_op_count_; }

  std::span<const PlanOp> flat_ops() const { return flat_ops_; }
  std::span<const FusedOp> fused_ops() const { return fused_ops_; }
  std::span<const ChainGate> chain_gates() const { return chain_gates_; }

  /// FNV-1a 64-bit over the structural key (cache key).
  std::uint64_t structure_hash() const { return structure_hash_; }
  /// Canonical structural string the hash is taken over; exact-compared on
  /// cache lookup so hash collisions can never alias two structures.
  const std::string& structure_key() const { return structure_key_; }

  /// Executes the fused scalar stream. Arithmetic per op matches the
  /// uncompiled fuser (same matrices multiplied in the same order), so
  /// outputs agree to the golden-suite tolerance; chains of one gate and
  /// two-qubit ops dispatch through apply_gate and are bit-identical.
  void run(StateVector& state, std::span<const double> params) const;

  /// Executes the FUSED stream with the batched SoA kernels (DESIGN.md
  /// §14): the same fused ops run() dispatches, so every batch row is
  /// bit-identical to the scalar compiled path — and to the uncompiled
  /// batch fuser, which mirrors the same lowering per call.
  void run_batch(StateVectorBatch& batch, std::span<const double> params,
                 std::size_t param_stride) const;

 private:
  friend std::shared_ptr<const ExecutionPlan> compile_circuit(const Circuit&);

  std::size_t num_qubits_ = 0;
  std::size_t parameter_count_ = 0;
  std::size_t source_op_count_ = 0;
  std::size_t cancelled_op_count_ = 0;
  std::vector<PlanOp> flat_ops_;
  std::vector<FusedOp> fused_ops_;
  std::vector<ChainGate> chain_gates_;
  std::uint64_t structure_hash_ = 0;
  std::string structure_key_;
};

/// Lowers `circuit` to a fresh plan, bypassing the cache (tests/tools; hot
/// paths go through plan_cache::get_or_compile via Circuit::compiled_plan).
std::shared_ptr<const ExecutionPlan> compile_circuit(const Circuit& circuit);

/// Point-in-time counters of the process-wide plan cache.
struct PlanCacheStats {
  std::uint64_t hits = 0;        ///< lookups served by a cached plan
  std::uint64_t misses = 0;      ///< lookups that had to compile
  std::uint64_t evictions = 0;   ///< plans dropped (capacity or fault site)
  std::uint64_t compiled = 0;    ///< total compilations (== misses)
  std::size_t size = 0;          ///< plans currently resident
  std::size_t capacity = 0;      ///< eviction threshold
  std::string to_string() const;
};

namespace plan_cache {

/// Returns the cached plan for the circuit's structure, compiling and
/// inserting on miss. Lookups verify the full structural key, not just the
/// hash. Thread-safe: misses compile under the cache lock, so every
/// structure is compiled exactly once per residency no matter how many
/// threads race on first touch.
std::shared_ptr<const ExecutionPlan> get_or_compile(const Circuit& circuit);

/// Copies the current counters.
PlanCacheStats stats();

/// Zeroes hit/miss/eviction counters (tests / bench epochs); resident plans
/// stay cached.
void reset_stats();

/// Drops every resident plan (counted as evictions).
void clear();

/// Plans currently resident.
std::size_t size();

/// Test override for the eviction threshold; nullopt restores the
/// QHDL_PLAN_CACHE_CAPACITY env default (64 when unset). Shrinking below
/// the resident count evicts least-recently-used plans immediately.
void set_capacity(std::optional<std::size_t> capacity);

}  // namespace plan_cache
}  // namespace qhdl::quantum
