#include "quantum/circuit.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "quantum/exec_plan.hpp"
#include "quantum/kernels.hpp"
#include "quantum/statevector_batch.hpp"

namespace qhdl::quantum {

double Op::angle(std::span<const double> params) const {
  if (!param_index.has_value()) return fixed_angle;
  if (*param_index >= params.size()) {
    throw std::out_of_range("Op::angle: parameter index " +
                            std::to_string(*param_index) +
                            " out of range for " +
                            std::to_string(params.size()) + " parameters");
  }
  return params[*param_index];
}

Circuit::Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits == 0) {
    throw std::invalid_argument("Circuit: need at least one qubit");
  }
}

Circuit::Circuit(const Circuit& other)
    : num_qubits_(other.num_qubits_),
      ops_(other.ops_),
      parameter_count_(other.parameter_count_),
      plan_slot_(other.plan_slot_.load(std::memory_order_acquire)) {}

Circuit::Circuit(Circuit&& other) noexcept
    : num_qubits_(other.num_qubits_),
      ops_(std::move(other.ops_)),
      parameter_count_(other.parameter_count_),
      plan_slot_(other.plan_slot_.load(std::memory_order_acquire)) {}

Circuit& Circuit::operator=(const Circuit& other) {
  if (this != &other) {
    num_qubits_ = other.num_qubits_;
    ops_ = other.ops_;
    parameter_count_ = other.parameter_count_;
    plan_slot_.store(other.plan_slot_.load(std::memory_order_acquire),
                     std::memory_order_release);
  }
  return *this;
}

Circuit& Circuit::operator=(Circuit&& other) noexcept {
  if (this != &other) {
    num_qubits_ = other.num_qubits_;
    ops_ = std::move(other.ops_);
    parameter_count_ = other.parameter_count_;
    plan_slot_.store(other.plan_slot_.load(std::memory_order_acquire),
                     std::memory_order_release);
  }
  return *this;
}

std::size_t Circuit::parameterized_op_count() const {
  std::size_t count = 0;
  for (const Op& op : ops_) {
    if (op.param_index.has_value()) ++count;
  }
  return count;
}

void Circuit::check_wires(GateType type, std::size_t wire0,
                          std::size_t wire1) const {
  if (wire0 >= num_qubits_) {
    throw std::out_of_range("Circuit: wire " + std::to_string(wire0) +
                            " out of range");
  }
  const std::size_t arity = gate_arity(type);
  if (arity == 2) {
    if (wire1 == SIZE_MAX) {
      throw std::invalid_argument("Circuit: " + gate_name(type) +
                                  " needs two wires");
    }
    if (wire1 >= num_qubits_) {
      throw std::out_of_range("Circuit: wire " + std::to_string(wire1) +
                              " out of range");
    }
    if (wire0 == wire1) {
      throw std::invalid_argument("Circuit: " + gate_name(type) +
                                  " wires must differ");
    }
  } else if (wire1 != SIZE_MAX) {
    throw std::invalid_argument("Circuit: " + gate_name(type) +
                                " takes one wire");
  }
}

Circuit& Circuit::gate(GateType type, std::size_t wire0, std::size_t wire1,
                       double fixed_angle) {
  check_wires(type, wire0, wire1);
  Op op;
  op.type = type;
  op.wire0 = wire0;
  op.wire1 = wire1;
  op.fixed_angle = fixed_angle;
  ops_.push_back(op);
  plan_slot_.store(nullptr, std::memory_order_release);
  return *this;
}

Circuit& Circuit::parameterized_gate(GateType type, std::size_t param_index,
                                     std::size_t wire0, std::size_t wire1) {
  if (!gate_is_parameterized(type)) {
    throw std::invalid_argument("Circuit: " + gate_name(type) +
                                " takes no parameter");
  }
  check_wires(type, wire0, wire1);
  Op op;
  op.type = type;
  op.wire0 = wire0;
  op.wire1 = wire1;
  op.param_index = param_index;
  ops_.push_back(op);
  parameter_count_ = std::max(parameter_count_, param_index + 1);
  plan_slot_.store(nullptr, std::memory_order_release);
  return *this;
}

Circuit& Circuit::rot(std::size_t param_index_base, std::size_t wire) {
  parameterized_gate(GateType::RZ, param_index_base, wire);
  parameterized_gate(GateType::RY, param_index_base + 1, wire);
  parameterized_gate(GateType::RZ, param_index_base + 2, wire);
  return *this;
}

namespace {

/// Per-wire chain of deferred adjacent single-qubit gates. A chain of one
/// gate dispatches through the specialized kernels untouched; two or more
/// are collapsed into a single dense 2x2 before application. Single-qubit
/// gates on distinct wires commute exactly, so deferral never reorders
/// anything observable.
struct PendingChain {
  GateType first_type;
  double first_angle = 0.0;
  Mat2 matrix;  ///< product of the chain; only valid once gates >= 2
  std::size_t gates = 0;
};

void flush_wire(StateVector& state, std::vector<PendingChain>& pending,
                std::size_t wire) {
  PendingChain& chain = pending[wire];
  if (chain.gates == 0) return;
  if (chain.gates == 1) {
    apply_gate(state, chain.first_type, chain.first_angle, wire);
  } else {
    state.apply_single_qubit(chain.matrix, wire);
    kernels::count_fused(chain.gates);
  }
  chain.gates = 0;
}

/// Batched mirror of PendingChain. Per-row matrix products are deferred
/// until a second gate lands on the wire; a chain whose angles are all
/// shared across rows keeps one matrix (the scalar fuser's product), while
/// any per-row angle switches the chain to one product per row — built in
/// the same left-multiplication order, so every row matches the scalar
/// fuser bit-for-bit.
struct BatchPendingChain {
  GateType first_type;
  bool first_shared = true;
  std::vector<double> first_angles;  ///< size 1 (shared) or rows
  bool per_row = false;
  Mat2 shared_matrix;             ///< product; valid once gates >= 2, !per_row
  std::vector<Mat2> row_matrices;  ///< products; valid when per_row
  std::size_t gates = 0;
};

void batch_chain_append(BatchPendingChain& chain, GateType type,
                        std::span<const double> angles, std::size_t rows) {
  const bool shared = angles.size() == 1;
  const auto angle_of = [&](std::size_t b) {
    return shared ? angles[0] : angles[b];
  };
  if (chain.gates == 0) {
    chain.first_type = type;
    chain.first_shared = shared;
    chain.first_angles.assign(angles.begin(), angles.end());
    chain.per_row = false;
    chain.gates = 1;
    return;
  }
  if (chain.gates == 1) {
    if (chain.first_shared && shared) {
      chain.shared_matrix =
          gates::matrix_for(chain.first_type, chain.first_angles[0]);
      chain.shared_matrix =
          gates::matrix_for(type, angles[0]) * chain.shared_matrix;
    } else {
      chain.per_row = true;
      chain.row_matrices.resize(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        const double first_angle = chain.first_shared ? chain.first_angles[0]
                                                      : chain.first_angles[b];
        chain.row_matrices[b] =
            gates::matrix_for(type, angle_of(b)) *
            gates::matrix_for(chain.first_type, first_angle);
      }
    }
    chain.gates = 2;
    return;
  }
  if (!chain.per_row && shared) {
    chain.shared_matrix = gates::matrix_for(type, angles[0]) *
                          chain.shared_matrix;
  } else if (!chain.per_row) {
    chain.per_row = true;
    chain.row_matrices.assign(rows, chain.shared_matrix);
    for (std::size_t b = 0; b < rows; ++b) {
      chain.row_matrices[b] =
          gates::matrix_for(type, angle_of(b)) * chain.row_matrices[b];
    }
  } else {
    for (std::size_t b = 0; b < rows; ++b) {
      chain.row_matrices[b] =
          gates::matrix_for(type, angle_of(b)) * chain.row_matrices[b];
    }
  }
  ++chain.gates;
}

void flush_wire_batch(StateVectorBatch& batch,
                      std::vector<BatchPendingChain>& pending,
                      std::size_t wire) {
  BatchPendingChain& chain = pending[wire];
  if (chain.gates == 0) return;
  if (chain.gates == 1) {
    apply_gate_batch(batch, chain.first_type, chain.first_angles, wire,
                     SIZE_MAX);
  } else if (!chain.per_row) {
    batch.apply_single_qubit(chain.shared_matrix, wire);
    kernels::count_fused(chain.gates);
  } else {
    batch.apply_single_qubit_per_row(chain.row_matrices, wire);
    kernels::count_fused(chain.gates);
  }
  chain.gates = 0;
}

}  // namespace

std::shared_ptr<const ExecutionPlan> Circuit::compiled_plan() const {
  if (kernels::force_uncompiled()) return nullptr;
  std::shared_ptr<const ExecutionPlan> plan =
      plan_slot_.load(std::memory_order_acquire);
  if (plan != nullptr) return plan;
  plan = plan_cache::get_or_compile(*this);
  plan_slot_.store(plan, std::memory_order_release);
  return plan;
}

void Circuit::run(StateVector& state, std::span<const double> params) const {
  if (state.num_qubits() != num_qubits_) {
    throw std::invalid_argument("Circuit::run: state has " +
                                std::to_string(state.num_qubits()) +
                                " qubits, circuit needs " +
                                std::to_string(num_qubits_));
  }
  // Oversized parameter vectors are as much a caller bug as undersized
  // ones (a packing-layout mismatch would silently read garbage angles),
  // so both directions are hard errors.
  if (params.size() != parameter_count_) {
    throw std::invalid_argument("Circuit::run: got " +
                                std::to_string(params.size()) +
                                " params, need exactly " +
                                std::to_string(parameter_count_));
  }
  if (kernels::force_generic()) {
    // Escape hatch: no fusion, no specialized kernels — the pre-PR2 loop.
    for (const Op& op : ops_) {
      apply_gate(state, op.type, op.angle(params), op.wire0, op.wire1);
    }
    return;
  }
  if (const std::shared_ptr<const ExecutionPlan> plan = compiled_plan()) {
    plan->run(state, params);
    return;
  }
  // QHDL_FORCE_UNCOMPILED: per-call lowering, the pre-plan fused loop.
  thread_local std::vector<PendingChain> pending;
  pending.assign(num_qubits_, PendingChain{});
  for (const Op& op : ops_) {
    if (gate_arity(op.type) == 1) {
      const double theta = op.angle(params);
      PendingChain& chain = pending[op.wire0];
      if (chain.gates == 0) {
        chain.first_type = op.type;
        chain.first_angle = theta;
        chain.gates = 1;
      } else {
        if (chain.gates == 1) {
          chain.matrix =
              gates::matrix_for(chain.first_type, chain.first_angle);
        }
        chain.matrix = gates::matrix_for(op.type, theta) * chain.matrix;
        ++chain.gates;
      }
    } else {
      flush_wire(state, pending, op.wire0);
      flush_wire(state, pending, op.wire1);
      apply_gate(state, op.type, op.angle(params), op.wire0, op.wire1);
    }
  }
  for (std::size_t wire = 0; wire < num_qubits_; ++wire) {
    flush_wire(state, pending, wire);
  }
}

void Circuit::run_batch(StateVectorBatch& batch,
                        std::span<const double> params,
                        std::size_t param_stride) const {
  if (batch.num_qubits() != num_qubits_) {
    throw std::invalid_argument("Circuit::run_batch: batch has " +
                                std::to_string(batch.num_qubits()) +
                                " qubits, circuit needs " +
                                std::to_string(num_qubits_));
  }
  if (param_stride < parameter_count_) {
    throw std::invalid_argument("Circuit::run_batch: param_stride " +
                                std::to_string(param_stride) + " < " +
                                std::to_string(parameter_count_) +
                                " circuit parameters");
  }
  const std::size_t rows = batch.batch();
  if (params.size() != rows * param_stride) {
    throw std::invalid_argument("Circuit::run_batch: got " +
                                std::to_string(params.size()) +
                                " params, need exactly " +
                                std::to_string(rows * param_stride));
  }
  thread_local std::vector<double> angles;
  angles.resize(rows);
  const auto gather = [&](const Op& op) -> std::span<const double> {
    if (!op.param_index.has_value()) {
      angles[0] = op.fixed_angle;
      return {angles.data(), 1};
    }
    const std::size_t index = *op.param_index;
    bool shared = true;
    for (std::size_t b = 0; b < rows; ++b) {
      angles[b] = params[b * param_stride + index];
      shared = shared && angles[b] == angles[0];
    }
    return shared ? std::span<const double>{angles.data(), 1}
                  : std::span<const double>{angles};
  };
  if (kernels::force_generic()) {
    // Escape hatch: no fusion — one batched kernel per op, mirroring the
    // scalar force-generic loop per row.
    for (const Op& op : ops_) {
      apply_gate_batch(batch, op.type, gather(op), op.wire0, op.wire1);
    }
    return;
  }
  if (const std::shared_ptr<const ExecutionPlan> plan = compiled_plan()) {
    plan->run_batch(batch, params, param_stride);
    return;
  }
  // QHDL_FORCE_UNCOMPILED: per-call runtime fusion, mirroring the scalar
  // PendingChain loop so every batch row matches Circuit::run bit-for-bit.
  thread_local std::vector<BatchPendingChain> pending;
  if (pending.size() < num_qubits_) pending.resize(num_qubits_);
  for (std::size_t wire = 0; wire < num_qubits_; ++wire) {
    pending[wire].gates = 0;
  }
  for (const Op& op : ops_) {
    if (gate_arity(op.type) == 1) {
      batch_chain_append(pending[op.wire0], op.type, gather(op), rows);
    } else {
      flush_wire_batch(batch, pending, op.wire0);
      flush_wire_batch(batch, pending, op.wire1);
      apply_gate_batch(batch, op.type, gather(op), op.wire0, op.wire1);
    }
  }
  for (std::size_t wire = 0; wire < num_qubits_; ++wire) {
    flush_wire_batch(batch, pending, wire);
  }
}

StateVector Circuit::execute(std::span<const double> params) const {
  StateVector state{num_qubits_};
  run(state, params);
  return state;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> wire_level(num_qubits_, 0);
  std::size_t depth = 0;
  for (const Op& op : ops_) {
    std::size_t level = wire_level[op.wire0];
    if (op.wire1 != SIZE_MAX) {
      level = std::max(level, wire_level[op.wire1]);
    }
    ++level;
    wire_level[op.wire0] = level;
    if (op.wire1 != SIZE_MAX) wire_level[op.wire1] = level;
    depth = std::max(depth, level);
  }
  return depth;
}

std::vector<std::pair<GateType, std::size_t>> Circuit::gate_histogram()
    const {
  std::map<GateType, std::size_t> counts;
  for (const Op& op : ops_) ++counts[op.type];
  return {counts.begin(), counts.end()};
}

std::size_t Circuit::two_qubit_op_count() const {
  std::size_t count = 0;
  for (const Op& op : ops_) {
    if (gate_arity(op.type) == 2) ++count;
  }
  return count;
}

std::string Circuit::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (i > 0) oss << " ; ";
    const Op& op = ops_[i];
    oss << gate_name(op.type);
    if (gate_is_parameterized(op.type)) {
      if (op.param_index.has_value()) {
        oss << "(p" << *op.param_index << ")";
      } else {
        oss << "(" << op.fixed_angle << ")";
      }
    }
    oss << " q" << op.wire0;
    if (op.wire1 != SIZE_MAX) oss << ",q" << op.wire1;
  }
  return oss.str();
}

}  // namespace qhdl::quantum
