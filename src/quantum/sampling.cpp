#include "quantum/sampling.hpp"

#include <algorithm>
#include <stdexcept>

namespace qhdl::quantum {

BasisSampler::BasisSampler(const StateVector& state)
    : num_qubits_(state.num_qubits()) {
  const auto probs = state.probabilities();
  cdf_.resize(probs.size());
  double cumulative = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    cumulative += probs[i];
    cdf_[i] = cumulative;
  }
  // Guard against rounding: force the last entry to cover u -> 1.
  if (!cdf_.empty()) cdf_.back() = std::max(cdf_.back(), 1.0);
}

std::size_t BasisSampler::draw(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

std::vector<std::size_t> sample_basis_states(const StateVector& state,
                                             std::size_t shots,
                                             util::Rng& rng) {
  if (shots == 0) {
    throw std::invalid_argument("sample_basis_states: shots must be > 0");
  }
  const BasisSampler sampler{state};
  std::vector<std::size_t> outcomes(shots);
  for (auto& outcome : outcomes) outcome = sampler.draw(rng);
  return outcomes;
}

std::map<std::size_t, std::size_t> sample_counts(const StateVector& state,
                                                 std::size_t shots,
                                                 util::Rng& rng) {
  std::map<std::size_t, std::size_t> counts;
  for (std::size_t outcome : sample_basis_states(state, shots, rng)) {
    ++counts[outcome];
  }
  return counts;
}

double estimate_expval_z(const StateVector& state, std::size_t wire,
                         std::size_t shots, util::Rng& rng) {
  const std::vector<std::size_t> wires{wire};
  return estimate_expvals_z(state, wires, shots, rng)[0];
}

std::vector<double> estimate_expvals_z(const StateVector& state,
                                       std::span<const std::size_t> wires,
                                       std::size_t shots, util::Rng& rng) {
  if (shots == 0) {
    throw std::invalid_argument("estimate_expvals_z: shots must be > 0");
  }
  const std::size_t q = state.num_qubits();
  for (std::size_t wire : wires) {
    if (wire >= q) {
      throw std::out_of_range("estimate_expvals_z: wire out of range");
    }
  }
  const BasisSampler sampler{state};
  std::vector<long> sums(wires.size(), 0);
  for (std::size_t shot = 0; shot < shots; ++shot) {
    const std::size_t outcome = sampler.draw(rng);
    for (std::size_t k = 0; k < wires.size(); ++k) {
      const std::size_t mask = std::size_t{1} << (q - 1 - wires[k]);
      sums[k] += (outcome & mask) == 0 ? 1 : -1;
    }
  }
  std::vector<double> estimates(wires.size());
  for (std::size_t k = 0; k < wires.size(); ++k) {
    estimates[k] = static_cast<double>(sums[k]) / static_cast<double>(shots);
  }
  return estimates;
}

}  // namespace qhdl::quantum
