// Parameterized quantum circuits.
//
// A Circuit is an ordered op list over `num_qubits` wires. Each op either
// carries a fixed angle or references an index into the runtime parameter
// vector (set at execution). Helper builders add common structures; the QNN
// module builds encoding + ansatz circuits on top of this.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "quantum/gates.hpp"

namespace qhdl::quantum {

class ExecutionPlan;
class StateVectorBatch;

/// One circuit operation.
struct Op {
  GateType type;
  std::size_t wire0 = 0;
  std::size_t wire1 = SIZE_MAX;  ///< SIZE_MAX for single-qubit gates
  /// Index into the runtime parameter vector, or nullopt for a fixed angle.
  std::optional<std::size_t> param_index;
  double fixed_angle = 0.0;

  /// Resolves the angle from the runtime parameters.
  double angle(std::span<const double> params) const;
};

class Circuit {
 public:
  explicit Circuit(std::size_t num_qubits);

  // Copies and moves are explicit because the memoized plan slot is atomic
  // (shareable across concurrently running executors); the slot's value —
  // a pointer into the process-wide plan cache — travels with the circuit.
  Circuit(const Circuit& other);
  Circuit(Circuit&& other) noexcept;
  Circuit& operator=(const Circuit& other);
  Circuit& operator=(Circuit&& other) noexcept;

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t op_count() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }

  /// Number of runtime parameters the circuit expects
  /// (= 1 + max referenced index, or 0 if none).
  std::size_t parameter_count() const { return parameter_count_; }

  /// Count of ops that carry a runtime parameter.
  std::size_t parameterized_op_count() const;

  // --- builders ---------------------------------------------------------

  /// Fixed-angle / angle-free gate.
  Circuit& gate(GateType type, std::size_t wire0,
                std::size_t wire1 = SIZE_MAX, double fixed_angle = 0.0);

  /// Gate whose angle is params[param_index] at execution time.
  Circuit& parameterized_gate(GateType type, std::size_t param_index,
                              std::size_t wire0,
                              std::size_t wire1 = SIZE_MAX);

  /// PennyLane Rot(φ, θ, ω) decomposed as RZ(φ) RY(θ) RZ(ω) (applied in that
  /// order), consuming params [base, base+1, base+2].
  Circuit& rot(std::size_t param_index_base, std::size_t wire);

  // --- execution --------------------------------------------------------

  /// Applies all ops to `state` with the given runtime parameters
  /// (params.size() must equal parameter_count() exactly). By default this
  /// executes the circuit's cached ExecutionPlan (compiled on first use,
  /// shared through the process-wide plan cache — see exec_plan.hpp).
  /// QHDL_FORCE_UNCOMPILED falls back to per-call lowering: adjacent
  /// single-qubit gates on the same wire are fused into one 2x2 matrix
  /// before application (gates on different wires commute exactly, so
  /// deferral is safe; two-qubit ops flush both of their wires first).
  /// QHDL_FORCE_GENERIC_KERNELS additionally disables fusion and the
  /// specialized kernels.
  void run(StateVector& state, std::span<const double> params) const;

  /// Applies all ops to every row of a SoA batch. Row b reads its
  /// parameters from params[b*param_stride, (b+1)*param_stride), and
  /// params.size() must equal batch()*param_stride exactly. Ops whose
  /// angle is identical across rows (fixed angles, shared ansatz weights)
  /// run as one shared kernel with a single sin/cos evaluation; per-row
  /// angles (data encoding) use the per-row kernel variants. Executes the
  /// cached plan's flat op stream unless QHDL_FORCE_UNCOMPILED /
  /// QHDL_FORCE_GENERIC_KERNELS is active (both paths are bit-identical).
  void run_batch(StateVectorBatch& batch, std::span<const double> params,
                 std::size_t param_stride) const;

  /// The circuit's compiled plan, memoized per instance and shared through
  /// the process-wide plan cache. Returns nullptr when compiled execution
  /// is disabled (QHDL_FORCE_UNCOMPILED or QHDL_FORCE_GENERIC_KERNELS), so
  /// callers can use it directly as the "should I take the compiled path"
  /// test. Thread-safe; builder mutations invalidate the memoized slot.
  std::shared_ptr<const ExecutionPlan> compiled_plan() const;

  /// Runs on a fresh |0...0⟩ state and returns it.
  StateVector execute(std::span<const double> params) const;

  /// "RX(p0) q0 ; CNOT q0,q1 ; ..." rendering.
  std::string to_string() const;

  /// Critical-path depth: the longest chain of ops sharing wires (each op
  /// lands at 1 + max(levels of its wires)). 0 for an empty circuit.
  std::size_t depth() const;

  /// Ops per gate type, in a stable (enum) order: pairs (type, count),
  /// only for types that appear.
  std::vector<std::pair<GateType, std::size_t>> gate_histogram() const;

  /// Count of two-qubit ops (entanglers + controlled/Ising rotations).
  std::size_t two_qubit_op_count() const;

 private:
  void check_wires(GateType type, std::size_t wire0, std::size_t wire1) const;

  std::size_t num_qubits_;
  std::vector<Op> ops_;
  std::size_t parameter_count_ = 0;
  /// Memoized compiled plan (nullptr until first compiled execution or
  /// after a builder mutation). Atomic so concurrent run()/run_batch()
  /// calls on one circuit can fill and read it without a lock.
  mutable std::atomic<std::shared_ptr<const ExecutionPlan>> plan_slot_;
};

}  // namespace qhdl::quantum
