// Kernel dispatch configuration and observability.
//
// The state-vector simulator routes every gate through one of a handful of
// specialized kernels (see DESIGN.md §8): diagonal phase multiplies for
// RZ/PhaseShift/S/T/Z/CZ, real-rotation updates for RX/RY, index
// permutations for X/CNOT/SWAP, and dense complex 2x2 matvecs for
// everything else. This header owns
//   * the QHDL_FORCE_GENERIC_KERNELS escape hatch (env var or CMake option)
//     that forces every gate back onto the generic dense-matrix path and
//     disables fusion and the batched SoA executor — i.e. reproduces the
//     pre-kernel code path bit-for-bit,
//   * the QHDL_FORCE_UNCOMPILED escape hatch (same env/CMake/override
//     plumbing) that keeps the specialized kernels but disables the cached
//     ExecutionPlan path, restoring per-call circuit lowering (DESIGN.md
//     §12); forcing generic kernels implies uncompiled execution, and
//   * per-kernel dispatch counters, so the FLOPs cost model's predicted gate
//     mix can be checked against what the simulator actually executed
//     (flops::classify_circuit / flops::dispatch_comparison_to_string).
//
// Counters are process-global relaxed atomics: cheap, thread-safe, and
// deliberately order-free (they are diagnostics, never control flow).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace qhdl::quantum {

/// Point-in-time copy of the dispatch counters.
struct KernelStatsSnapshot {
  std::uint64_t diagonal = 0;       ///< RZ / PhaseShift / S / T / Z / CZ
  std::uint64_t real_rotation = 0;  ///< RX / RY fast paths
  std::uint64_t permutation = 0;    ///< X / CNOT / SWAP
  std::uint64_t controlled = 0;     ///< CRX / CRY / CRZ (dense on half pairs)
  std::uint64_t double_flip = 0;    ///< RXX / RYY / RZZ
  std::uint64_t generic = 0;        ///< dense 2x2 matvec over all pairs
  std::uint64_t two_qubit_dense = 0;  ///< dense 4x4 matvec (fused gate pairs)
  std::uint64_t fused = 0;          ///< gate chains merged into one matrix
  std::uint64_t fused_gates = 0;    ///< gates absorbed into those chains
  std::uint64_t batched_rows = 0;   ///< row-gates executed by the SoA batch path

  /// Individual gate applications (a fused chain counts once).
  std::uint64_t total_dispatches() const {
    return diagonal + real_rotation + permutation + controlled + double_flip +
           generic + two_qubit_dense;
  }
  std::string to_string() const;
};

namespace kernels {

/// True when the escape hatch is active: the QHDL_FORCE_GENERIC_KERNELS
/// environment variable is set to anything but "0"/"" at first use, the
/// CMake option of the same name was ON at build time, or a test override
/// is in place.
bool force_generic();

/// Test override: true/false forces the mode, nullopt restores the
/// env/build-time default. Not thread-safe against concurrent gate
/// application (flip it only between runs).
void set_force_generic(std::optional<bool> forced);

/// True when the cached-plan escape hatch is active: QHDL_FORCE_UNCOMPILED
/// env var set to anything but "0"/"" at first use, the CMake option of the
/// same name ON at build time, or a test override. Circuits then lower
/// per call instead of executing a cached ExecutionPlan. Implied by
/// force_generic() (the generic path never compiles).
bool force_uncompiled();

/// Test override mirroring set_force_generic. Flip only between runs.
void set_force_uncompiled(std::optional<bool> forced);

// Counter bumps (relaxed; called from the hot loops in statevector.cpp).
void count_diagonal();
void count_real_rotation();
void count_permutation();
void count_controlled();
void count_double_flip();
void count_generic();
void count_two_qubit_dense();
void count_fused(std::uint64_t gates_absorbed);
void count_batched_rows(std::uint64_t rows);

/// Copies the current counters.
KernelStatsSnapshot stats();

/// Zeroes all counters (tests / bench epochs).
void reset_stats();

}  // namespace kernels
}  // namespace qhdl::quantum
