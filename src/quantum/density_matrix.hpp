// Density-matrix simulator for mixed states.
//
// The paper frames HQNNs as NISQ-era constructions (Section I); its cited
// companion work (Kashif et al., IJCNN'24) studies how hardware noise
// affects HQNN training. This substrate makes those experiments possible:
// ρ evolves under the same gate set as StateVector plus CPTP noise channels
// (Kraus operators), at O(4^q) per gate. Same wire convention as
// StateVector (wire 0 = most significant bit).
#pragma once

#include <span>
#include <vector>

#include "quantum/statevector.hpp"

namespace qhdl::quantum {

/// A quantum channel as a list of 2x2 Kraus operators acting on one qubit.
/// CPTP requires Σ K_k† K_k = I (checked by is_trace_preserving).
struct KrausChannel {
  std::string name;
  std::vector<Mat2> operators;

  bool is_trace_preserving(double tolerance = 1e-10) const;
};

/// Dense 2^q x 2^q density matrix, row-major.
class DensityMatrix {
 public:
  /// |0...0⟩⟨0...0|.
  explicit DensityMatrix(std::size_t num_qubits);

  /// Pure-state projector |ψ⟩⟨ψ|.
  static DensityMatrix from_statevector(const StateVector& state);

  /// Maximally mixed state I / 2^q.
  static DensityMatrix maximally_mixed(std::size_t num_qubits);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t dimension() const { return dim_; }

  Complex& at(std::size_t row, std::size_t col);
  Complex at(std::size_t row, std::size_t col) const;

  /// ρ ← U ρ U† for a single-qubit unitary on `wire`.
  void apply_single_qubit(const Mat2& gate, std::size_t wire);

  /// ρ ← U ρ U† for CNOT / CZ / controlled-U.
  void apply_cnot(std::size_t control, std::size_t target);
  void apply_cz(std::size_t control, std::size_t target);
  void apply_controlled(const Mat2& gate, std::size_t control,
                        std::size_t target);

  /// Ising-gate application (see StateVector::apply_double_flip_pairs):
  /// ρ ← U ρ U† where U acts on the double-flip pairs with parity-dependent
  /// 2x2 blocks.
  void apply_double_flip_pairs(const Mat2& even_pair, const Mat2& odd_pair,
                               std::size_t wire_a, std::size_t wire_b);

  /// ρ ← Σ_k K_k ρ K_k† on `wire`.
  void apply_channel(const KrausChannel& channel, std::size_t wire);

  /// Tr(ρ) — should stay 1 under CPTP evolution.
  Complex trace() const;

  /// Tr(ρ²) ∈ (0, 1]; 1 iff pure.
  double purity() const;

  /// Tr(Z_wire ρ).
  double expval_pauli_z(std::size_t wire) const;

  /// Diagonal of ρ: computational-basis probabilities.
  std::vector<double> probabilities() const;

  /// Reduced density matrix of a single qubit (partial trace over the rest),
  /// returned as a 2x2 matrix. Used by the Meyer-Wallach entanglement
  /// measure.
  Mat2 reduced_single_qubit(std::size_t wire) const;

  /// Hermiticity violation: max |ρ_ij - conj(ρ_ji)|.
  double hermiticity_error() const;

 private:
  void check_wire(std::size_t wire, const char* context) const;

  std::size_t num_qubits_;
  std::size_t dim_;
  std::vector<Complex> elements_;  ///< row-major dim x dim
};

/// Single-qubit reduced density matrix straight from a pure state —
/// cheaper than materializing the full ρ.
Mat2 reduced_single_qubit(const StateVector& state, std::size_t wire);

}  // namespace qhdl::quantum
