// Finite-shot measurement simulation. On hardware, expectation values are
// estimated from a finite number of computational-basis samples; this module
// reproduces that statistical layer so HQNN inference can be studied under
// realistic shot budgets (standard deviation ~ 1/√shots).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "quantum/statevector.hpp"
#include "util/rng.hpp"

namespace qhdl::quantum {

/// Draws `shots` computational-basis outcomes from |ψ|².
std::vector<std::size_t> sample_basis_states(const StateVector& state,
                                             std::size_t shots,
                                             util::Rng& rng);

/// Histogram of sampled basis states (index -> count).
std::map<std::size_t, std::size_t> sample_counts(const StateVector& state,
                                                 std::size_t shots,
                                                 util::Rng& rng);

/// Shot-based ⟨Z_wire⟩ estimate: (N₀ − N₁) / shots.
double estimate_expval_z(const StateVector& state, std::size_t wire,
                         std::size_t shots, util::Rng& rng);

/// Shot-based estimates of ⟨Z_w⟩ for several wires from ONE shared sample
/// set (as hardware would do: every shot yields all wires' bits).
std::vector<double> estimate_expvals_z(const StateVector& state,
                                       std::span<const std::size_t> wires,
                                       std::size_t shots, util::Rng& rng);

/// Precomputed alias-free CDF sampler for repeated draws from one state.
class BasisSampler {
 public:
  explicit BasisSampler(const StateVector& state);

  std::size_t num_qubits() const { return num_qubits_; }

  /// One basis-state draw.
  std::size_t draw(util::Rng& rng) const;

 private:
  std::size_t num_qubits_;
  std::vector<double> cdf_;  ///< inclusive prefix sums of |ψ|²
};

}  // namespace qhdl::quantum
