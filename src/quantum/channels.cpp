#include "quantum/channels.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qhdl::quantum {

namespace channels {

namespace {

void check_probability(double p, const char* context) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string{context} +
                                ": probability must be in [0, 1]");
  }
}

Mat2 scaled(const Mat2& m, double factor) {
  const Complex f{factor, 0.0};
  return Mat2{f * m.m00, f * m.m01, f * m.m10, f * m.m11};
}

Mat2 identity() {
  return Mat2{Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{1, 0}};
}

}  // namespace

KrausChannel depolarizing(double p) {
  check_probability(p, "depolarizing");
  KrausChannel channel;
  channel.name = "depolarizing(" + std::to_string(p) + ")";
  channel.operators = {scaled(identity(), std::sqrt(1.0 - p)),
                       scaled(gates::pauli_x(), std::sqrt(p / 3.0)),
                       scaled(gates::pauli_y(), std::sqrt(p / 3.0)),
                       scaled(gates::pauli_z(), std::sqrt(p / 3.0))};
  return channel;
}

KrausChannel amplitude_damping(double gamma) {
  check_probability(gamma, "amplitude_damping");
  KrausChannel channel;
  channel.name = "amplitude_damping(" + std::to_string(gamma) + ")";
  // K0 = diag(1, √(1-γ)), K1 = √γ |0⟩⟨1|.
  channel.operators = {
      Mat2{Complex{1, 0}, Complex{0, 0}, Complex{0, 0},
           Complex{std::sqrt(1.0 - gamma), 0}},
      Mat2{Complex{0, 0}, Complex{std::sqrt(gamma), 0}, Complex{0, 0},
           Complex{0, 0}}};
  return channel;
}

KrausChannel phase_damping(double gamma) {
  check_probability(gamma, "phase_damping");
  KrausChannel channel;
  channel.name = "phase_damping(" + std::to_string(gamma) + ")";
  // K0 = diag(1, √(1-γ)), K1 = diag(0, √γ).
  channel.operators = {
      Mat2{Complex{1, 0}, Complex{0, 0}, Complex{0, 0},
           Complex{std::sqrt(1.0 - gamma), 0}},
      Mat2{Complex{0, 0}, Complex{0, 0}, Complex{0, 0},
           Complex{std::sqrt(gamma), 0}}};
  return channel;
}

KrausChannel bit_flip(double p) {
  check_probability(p, "bit_flip");
  KrausChannel channel;
  channel.name = "bit_flip(" + std::to_string(p) + ")";
  channel.operators = {scaled(identity(), std::sqrt(1.0 - p)),
                       scaled(gates::pauli_x(), std::sqrt(p))};
  return channel;
}

KrausChannel phase_flip(double p) {
  check_probability(p, "phase_flip");
  KrausChannel channel;
  channel.name = "phase_flip(" + std::to_string(p) + ")";
  channel.operators = {scaled(identity(), std::sqrt(1.0 - p)),
                       scaled(gates::pauli_z(), std::sqrt(p))};
  return channel;
}

}  // namespace channels

NoiseModel NoiseModel::depolarizing(double p) {
  NoiseModel model;
  model.per_gate_channels.push_back(channels::depolarizing(p));
  return model;
}

NoiseModel NoiseModel::amplitude_damping(double gamma) {
  NoiseModel model;
  model.per_gate_channels.push_back(channels::amplitude_damping(gamma));
  return model;
}

namespace {

void apply_gate_to_density(DensityMatrix& rho, GateType type, double angle,
                           std::size_t wire0, std::size_t wire1) {
  switch (type) {
    case GateType::CNOT:
      rho.apply_cnot(wire0, wire1);
      return;
    case GateType::CZ:
      rho.apply_cz(wire0, wire1);
      return;
    case GateType::SWAP:
      // SWAP = 3 CNOTs.
      rho.apply_cnot(wire0, wire1);
      rho.apply_cnot(wire1, wire0);
      rho.apply_cnot(wire0, wire1);
      return;
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
      rho.apply_controlled(gates::matrix_for(type, angle), wire0, wire1);
      return;
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ: {
      const gates::IsingPair pair = gates::ising_pair(type, angle);
      rho.apply_double_flip_pairs(pair.even, pair.odd, wire0, wire1);
      return;
    }
    default:
      rho.apply_single_qubit(gates::matrix_for(type, angle), wire0);
      return;
  }
}

void apply_noise(DensityMatrix& rho, const NoiseModel& noise,
                 std::size_t wire0, std::size_t wire1) {
  for (const KrausChannel& channel : noise.per_gate_channels) {
    rho.apply_channel(channel, wire0);
    if (wire1 != SIZE_MAX) rho.apply_channel(channel, wire1);
  }
}

}  // namespace

DensityMatrix run_noisy(const Circuit& circuit,
                        std::span<const double> params,
                        const NoiseModel& noise) {
  if (params.size() < circuit.parameter_count()) {
    throw std::invalid_argument("run_noisy: insufficient parameters");
  }
  DensityMatrix rho{circuit.num_qubits()};
  for (const Op& op : circuit.ops()) {
    apply_gate_to_density(rho, op.type, op.angle(params), op.wire0, op.wire1);
    if (!noise.empty()) apply_noise(rho, noise, op.wire0, op.wire1);
  }
  return rho;
}

std::vector<double> noisy_expvals(const Circuit& circuit,
                                  std::span<const double> params,
                                  const NoiseModel& noise,
                                  std::span<const std::size_t> wires) {
  const DensityMatrix rho = run_noisy(circuit, params, noise);
  std::vector<double> values;
  values.reserve(wires.size());
  for (std::size_t wire : wires) {
    values.push_back(rho.expval_pauli_z(wire));
  }
  return values;
}

std::vector<double> noisy_parameter_shift_gradient(
    const Circuit& circuit, std::span<const double> params,
    const NoiseModel& noise, std::size_t observable_wire) {
  std::vector<double> gradient(circuit.parameter_count(), 0.0);
  const double half_pi = std::numbers::pi / 2.0;
  const auto& ops = circuit.ops();

  const auto eval_with_shift = [&](std::size_t op_index, double delta) {
    DensityMatrix rho{circuit.num_qubits()};
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      double angle = op.angle(params);
      if (i == op_index) angle += delta;
      apply_gate_to_density(rho, op.type, angle, op.wire0, op.wire1);
      if (!noise.empty()) apply_noise(rho, noise, op.wire0, op.wire1);
    }
    return rho.expval_pauli_z(observable_wire);
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (!op.param_index.has_value()) continue;
    double contribution = 0.0;
    switch (op.type) {
      case GateType::RX:
      case GateType::RY:
      case GateType::RZ:
      case GateType::PhaseShift:
      case GateType::RXX:
      case GateType::RYY:
      case GateType::RZZ:
        contribution = 0.5 * (eval_with_shift(i, half_pi) -
                              eval_with_shift(i, -half_pi));
        break;
      case GateType::CRX:
      case GateType::CRY:
      case GateType::CRZ: {
        const double sqrt2 = std::numbers::sqrt2;
        const double c_plus = (sqrt2 + 1.0) / (4.0 * sqrt2);
        const double c_minus = (sqrt2 - 1.0) / (4.0 * sqrt2);
        contribution =
            c_plus * (eval_with_shift(i, half_pi) -
                      eval_with_shift(i, -half_pi)) -
            c_minus * (eval_with_shift(i, 3.0 * half_pi) -
                       eval_with_shift(i, -3.0 * half_pi));
        break;
      }
      default:
        throw std::logic_error(
            "noisy_parameter_shift_gradient: no rule for " +
            gate_name(op.type));
    }
    gradient[*op.param_index] += contribution;
  }
  return gradient;
}

NoisyVjpResult noisy_parameter_shift_vjp(const Circuit& circuit,
                                         std::span<const double> params,
                                         const NoiseModel& noise,
                                         std::span<const std::size_t> wires,
                                         std::span<const double> upstream) {
  if (wires.size() != upstream.size()) {
    throw std::invalid_argument(
        "noisy_parameter_shift_vjp: wires/upstream size mismatch");
  }
  const auto& ops = circuit.ops();
  const double half_pi = std::numbers::pi / 2.0;

  // Weighted observable value of one (optionally shifted) execution.
  const auto weighted_eval = [&](std::size_t op_index, double delta) {
    DensityMatrix rho{circuit.num_qubits()};
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      double angle = op.angle(params);
      if (i == op_index) angle += delta;
      apply_gate_to_density(rho, op.type, angle, op.wire0, op.wire1);
      if (!noise.empty()) apply_noise(rho, noise, op.wire0, op.wire1);
    }
    double total = 0.0;
    for (std::size_t k = 0; k < wires.size(); ++k) {
      total += upstream[k] * rho.expval_pauli_z(wires[k]);
    }
    return total;
  };

  NoisyVjpResult result;
  result.expectations = noisy_expvals(circuit, params, noise, wires);
  result.gradient.assign(circuit.parameter_count(), 0.0);

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (!op.param_index.has_value()) continue;
    double contribution = 0.0;
    switch (op.type) {
      case GateType::RX:
      case GateType::RY:
      case GateType::RZ:
      case GateType::PhaseShift:
      case GateType::RXX:
      case GateType::RYY:
      case GateType::RZZ:
        contribution = 0.5 * (weighted_eval(i, half_pi) -
                              weighted_eval(i, -half_pi));
        break;
      case GateType::CRX:
      case GateType::CRY:
      case GateType::CRZ: {
        const double sqrt2 = std::numbers::sqrt2;
        const double c_plus = (sqrt2 + 1.0) / (4.0 * sqrt2);
        const double c_minus = (sqrt2 - 1.0) / (4.0 * sqrt2);
        contribution = c_plus * (weighted_eval(i, half_pi) -
                                 weighted_eval(i, -half_pi)) -
                       c_minus * (weighted_eval(i, 3.0 * half_pi) -
                                  weighted_eval(i, -3.0 * half_pi));
        break;
      }
      default:
        throw std::logic_error("noisy_parameter_shift_vjp: no rule for " +
                               gate_name(op.type));
    }
    result.gradient[*op.param_index] += contribution;
  }
  return result;
}

}  // namespace qhdl::quantum
