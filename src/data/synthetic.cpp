#include "data/synthetic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qhdl::data {

using tensor::Shape;
using tensor::Tensor;

namespace {

Dataset allocate(std::size_t points, std::size_t classes,
                 const char* context) {
  if (classes < 2) {
    throw std::invalid_argument(std::string{context} + ": need >= 2 classes");
  }
  if (points < classes) {
    throw std::invalid_argument(std::string{context} +
                                ": need >= 1 point per class");
  }
  Dataset dataset;
  dataset.classes = classes;
  const std::size_t per_class = points / classes;
  const std::size_t total = per_class * classes;
  dataset.x = Tensor{Shape{total, 2}};
  dataset.y.resize(total);
  return dataset;
}

}  // namespace

Dataset make_rings(std::size_t points, std::size_t classes, double noise,
                   util::Rng& rng) {
  Dataset dataset = allocate(points, classes, "make_rings");
  const std::size_t per_class = dataset.size() / classes;
  const double two_pi = 2.0 * std::numbers::pi;
  std::size_t row = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    const double radius =
        static_cast<double>(c + 1) / static_cast<double>(classes);
    for (std::size_t i = 0; i < per_class; ++i) {
      const double angle = two_pi * static_cast<double>(i) /
                           static_cast<double>(per_class);
      const double r = radius + noise * rng.normal();
      dataset.x.at(row, 0) = r * std::cos(angle);
      dataset.x.at(row, 1) = r * std::sin(angle);
      dataset.y[row] = c;
      ++row;
    }
  }
  return dataset;
}

Dataset make_moons(std::size_t points, double noise, util::Rng& rng) {
  Dataset dataset = allocate(points, 2, "make_moons");
  const std::size_t per_class = dataset.size() / 2;
  std::size_t row = 0;
  for (std::size_t i = 0; i < per_class; ++i) {
    const double t = std::numbers::pi * static_cast<double>(i) /
                     static_cast<double>(per_class);
    // Upper moon.
    dataset.x.at(row, 0) = std::cos(t) + noise * rng.normal();
    dataset.x.at(row, 1) = std::sin(t) + noise * rng.normal();
    dataset.y[row] = 0;
    ++row;
  }
  for (std::size_t i = 0; i < per_class; ++i) {
    const double t = std::numbers::pi * static_cast<double>(i) /
                     static_cast<double>(per_class);
    // Lower moon, shifted right and down.
    dataset.x.at(row, 0) = 1.0 - std::cos(t) + noise * rng.normal();
    dataset.x.at(row, 1) = 0.5 - std::sin(t) + noise * rng.normal();
    dataset.y[row] = 1;
    ++row;
  }
  return dataset;
}

Dataset make_blobs(std::size_t points, std::size_t classes,
                   double separation, double noise, util::Rng& rng) {
  Dataset dataset = allocate(points, classes, "make_blobs");
  const std::size_t per_class = dataset.size() / classes;
  const double two_pi = 2.0 * std::numbers::pi;
  std::size_t row = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    const double angle =
        two_pi * static_cast<double>(c) / static_cast<double>(classes);
    const double cx = separation * std::cos(angle);
    const double cy = separation * std::sin(angle);
    for (std::size_t i = 0; i < per_class; ++i) {
      dataset.x.at(row, 0) = cx + noise * rng.normal();
      dataset.x.at(row, 1) = cy + noise * rng.normal();
      dataset.y[row] = c;
      ++row;
    }
  }
  return dataset;
}

}  // namespace qhdl::data
