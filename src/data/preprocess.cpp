#include "data/preprocess.hpp"

#include <cmath>
#include <stdexcept>

namespace qhdl::data {

using tensor::Tensor;

void Scaler::apply(Tensor& x) const {
  if (x.rank() != 2 || x.cols() != offset.size()) {
    throw std::invalid_argument("Scaler::apply: feature count mismatch");
  }
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      x.at(i, j) = (x.at(i, j) - offset[j]) / scale[j];
    }
  }
}

Scaler fit_standardizer(const Tensor& x) {
  if (x.rank() != 2 || x.rows() == 0) {
    throw std::invalid_argument("fit_standardizer: empty or non-matrix input");
  }
  const std::size_t n = x.rows(), f = x.cols();
  Scaler scaler;
  scaler.offset.assign(f, 0.0);
  scaler.scale.assign(f, 1.0);
  for (std::size_t j = 0; j < f; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += x.at(i, j);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = x.at(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    scaler.offset[j] = mean;
    scaler.scale[j] = var > 1e-24 ? std::sqrt(var) : 1.0;
  }
  return scaler;
}

Scaler fit_minmax(const Tensor& x, double lo, double hi) {
  if (x.rank() != 2 || x.rows() == 0) {
    throw std::invalid_argument("fit_minmax: empty or non-matrix input");
  }
  if (hi <= lo) throw std::invalid_argument("fit_minmax: hi <= lo");
  const std::size_t n = x.rows(), f = x.cols();
  Scaler scaler;
  scaler.offset.assign(f, 0.0);
  scaler.scale.assign(f, 1.0);
  for (std::size_t j = 0; j < f; ++j) {
    double mn = x.at(0, j), mx = x.at(0, j);
    for (std::size_t i = 1; i < n; ++i) {
      mn = std::min(mn, x.at(i, j));
      mx = std::max(mx, x.at(i, j));
    }
    const double range = mx - mn;
    // Map [mn, mx] -> [lo, hi]: (v - offset) / scale with
    // scale = range/(hi-lo), offset = mn - lo*scale.
    const double s = range > 1e-24 ? range / (hi - lo) : 1.0;
    scaler.scale[j] = s;
    scaler.offset[j] = mn - lo * s;
  }
  return scaler;
}

void standardize_split(TrainValSplit& split) {
  const Scaler scaler = fit_standardizer(split.train.x);
  scaler.apply(split.train.x);
  scaler.apply(split.val.x);
}

}  // namespace qhdl::data
