// Synthetic spiral dataset with controllable problem complexity
// (paper Section III-A).
//
// Base structure: 1500 points in 3 interleaved spiral arms (2 features).
// Complexity is raised by appending derived features — deterministic
// nonlinear transforms of the base coordinates — each perturbed by Gaussian
// noise whose scale grows with the feature count:
//     noise(F) = 0.1 + 0.003 · F,
// exactly the paper's schedule. The same noise level also jitters the base
// spiral's arm parameter, so higher feature counts are genuinely harder,
// not just wider.
#pragma once

#include "data/dataset.hpp"

namespace qhdl::data {

struct SpiralConfig {
  std::size_t points = 1500;      ///< total points across all classes
  std::size_t classes = 3;
  double turns = 0.5;             ///< arm length in revolutions
  double radial_noise = 0.0;      ///< extra radial jitter (optional)
};

/// Paper noise schedule: 0.1 + 0.003 · num_features.
double noise_for_features(std::size_t num_features);

/// Calibration of the abstract noise parameter onto concrete jitter.
/// The paper specifies the schedule but not how the parameter maps onto the
/// generator; these factors were calibrated (see DESIGN.md §2) so that the
/// paper's protocol behaves as reported: at F=10 the cheapest candidates of
/// every family reach the 90% threshold, while at F=110 the cheapest fail
/// and larger configurations are required.
inline constexpr double kAngleNoiseFactor = 0.15;   ///< arm-angle jitter share
inline constexpr double kDerivedNoiseFactor = 0.60; ///< derived-feature share

/// Base 2-feature spiral: class c's arm is r = t, θ = 2π·turns·t + phase(c),
/// with Gaussian jitter `noise` on θ (and optionally r).
Dataset make_spiral(const SpiralConfig& config, double noise, util::Rng& rng);

/// Appends derived features until `target_features` columns exist. Derived
/// feature k cycles through a family of nonlinear transforms of the base
/// coordinates (sin/cos mixtures, products, radial/polynomial terms) with
/// deterministic coefficients, plus N(0, noise) jitter per element.
Dataset augment_features(const Dataset& base, std::size_t target_features,
                         double noise, util::Rng& rng);

/// One-call generator for a paper complexity level: builds the base spiral
/// and augments to `num_features` columns using noise_for_features().
/// Deterministic for a given seed.
Dataset make_complexity_dataset(std::size_t num_features,
                                const SpiralConfig& config,
                                std::uint64_t seed);

}  // namespace qhdl::data
