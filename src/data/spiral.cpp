#include "data/spiral.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qhdl::data {

using tensor::Shape;
using tensor::Tensor;

double noise_for_features(std::size_t num_features) {
  return 0.1 + 0.003 * static_cast<double>(num_features);
}

Dataset make_spiral(const SpiralConfig& config, double noise,
                    util::Rng& rng) {
  if (config.classes < 2) {
    throw std::invalid_argument("make_spiral: need >= 2 classes");
  }
  if (config.points < config.classes) {
    throw std::invalid_argument("make_spiral: need >= 1 point per class");
  }

  const std::size_t per_class = config.points / config.classes;
  const std::size_t total = per_class * config.classes;

  Dataset dataset;
  dataset.classes = config.classes;
  dataset.x = Tensor{Shape{total, 2}};
  dataset.y.resize(total);

  const double two_pi = 2.0 * std::numbers::pi;
  std::size_t row = 0;
  for (std::size_t c = 0; c < config.classes; ++c) {
    const double phase =
        two_pi * static_cast<double>(c) / static_cast<double>(config.classes);
    for (std::size_t i = 0; i < per_class; ++i) {
      // t in (0, 1]: radius grows along the arm; avoid the degenerate
      // all-classes-coincide point at r = 0.
      const double t = (static_cast<double>(i) + 1.0) /
                       static_cast<double>(per_class);
      const double radius = t + config.radial_noise * rng.normal();
      const double angle =
          config.turns * two_pi * t + phase + noise * rng.normal();
      dataset.x.at(row, 0) = radius * std::sin(angle);
      dataset.x.at(row, 1) = radius * std::cos(angle);
      dataset.y[row] = c;
      ++row;
    }
  }
  return dataset;
}

namespace {

/// Derived-feature family: deterministic nonlinear transforms of the base
/// spiral coordinates. Index k selects the transform and its coefficients,
/// so the feature set for F columns is reproducible and nested (the first
/// F1 < F2 features of two datasets with equal seeds coincide pre-noise).
double derived_feature(std::size_t k, double x0, double x1) {
  const double a = 0.5 + 0.25 * static_cast<double>(k % 7);   // 0.5 .. 2.0
  const double b = 0.3 + 0.2 * static_cast<double>(k % 5);    // 0.3 .. 1.1
  switch (k % 6) {
    case 0: return std::sin(a * x0 + b * x1);
    case 1: return std::cos(a * x1 - b * x0);
    case 2: return std::tanh(a * x0 * x1);
    case 3: return x0 * x0 - b * x1 * x1;
    case 4: return std::sqrt(x0 * x0 + x1 * x1) * std::cos(a * (x0 + x1));
    default: return std::sin(a * x0) * std::cos(b * x1);
  }
}

}  // namespace

Dataset augment_features(const Dataset& base, std::size_t target_features,
                         double noise, util::Rng& rng) {
  base.validate();
  const std::size_t base_features = base.features();
  if (base_features < 2) {
    throw std::invalid_argument("augment_features: base needs >= 2 features");
  }
  if (target_features < base_features) {
    throw std::invalid_argument(
        "augment_features: target below base feature count");
  }

  Dataset out;
  out.classes = base.classes;
  out.y = base.y;
  out.x = Tensor{Shape{base.size(), target_features}};
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (std::size_t j = 0; j < base_features; ++j) {
      out.x.at(i, j) = base.x.at(i, j);
    }
    const double x0 = base.x.at(i, 0);
    const double x1 = base.x.at(i, 1);
    for (std::size_t j = base_features; j < target_features; ++j) {
      const std::size_t k = j - base_features;
      out.x.at(i, j) = derived_feature(k, x0, x1) + noise * rng.normal();
    }
  }
  return out;
}

Dataset make_complexity_dataset(std::size_t num_features,
                                const SpiralConfig& config,
                                std::uint64_t seed) {
  if (num_features < 2) {
    throw std::invalid_argument("make_complexity_dataset: need >= 2 features");
  }
  util::Rng rng{seed};
  const double noise = noise_for_features(num_features);
  const Dataset base =
      make_spiral(config, noise * kAngleNoiseFactor, rng);
  return augment_features(base, num_features, noise * kDerivedNoiseFactor,
                          rng);
}

}  // namespace qhdl::data
