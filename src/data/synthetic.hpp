// Additional synthetic classification datasets (beyond the paper's spiral)
// for robustness checks: concentric rings, two moons, and Gaussian blobs —
// the standard benchmarking trio of the synthetic-data literature the paper
// cites ([43], [44]). Each supports the same feature-augmentation pipeline
// (data::augment_features) as the spiral, so the whole complexity study can
// be re-run on a different base geometry.
#pragma once

#include "data/dataset.hpp"

namespace qhdl::data {

/// `classes` concentric rings: class c lives at radius (c+1)/classes with
/// Gaussian radial jitter `noise`. Rotation-invariant — a good stress test
/// for models that latch onto axis-aligned features.
Dataset make_rings(std::size_t points, std::size_t classes, double noise,
                   util::Rng& rng);

/// The classic two interleaving half-moons (2 classes, 2 features) with
/// isotropic Gaussian jitter.
Dataset make_moons(std::size_t points, double noise, util::Rng& rng);

/// Isotropic Gaussian blobs: class c centered on a circle of radius
/// `separation`, stddev `noise`. The linearly separable control case.
Dataset make_blobs(std::size_t points, std::size_t classes,
                   double separation, double noise, util::Rng& rng);

}  // namespace qhdl::data
