#include "data/dataset.hpp"

#include <numeric>
#include <stdexcept>

namespace qhdl::data {

using tensor::Shape;
using tensor::Tensor;

void Dataset::validate() const {
  if (x.rank() != 2) {
    throw std::logic_error("Dataset: x must be rank 2");
  }
  if (x.rows() != y.size()) {
    throw std::logic_error("Dataset: row count " + std::to_string(x.rows()) +
                           " != label count " + std::to_string(y.size()));
  }
  if (classes == 0) throw std::logic_error("Dataset: classes == 0");
  for (std::size_t label : y) {
    if (label >= classes) {
      throw std::logic_error("Dataset: label out of range");
    }
  }
}

namespace {

Dataset gather(const Dataset& source, const std::vector<std::size_t>& rows) {
  Dataset out;
  out.classes = source.classes;
  out.x = Tensor{Shape{rows.size(), source.features()}};
  out.y.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < source.features(); ++j) {
      out.x.at(i, j) = source.x.at(rows[i], j);
    }
    out.y[i] = source.y[rows[i]];
  }
  return out;
}

}  // namespace

TrainValSplit stratified_split(const Dataset& dataset, double val_fraction,
                               util::Rng& rng) {
  dataset.validate();
  if (val_fraction <= 0.0 || val_fraction >= 1.0) {
    throw std::invalid_argument("stratified_split: fraction must be in (0,1)");
  }

  // Bucket row indices per class, shuffle each bucket, then cut.
  std::vector<std::vector<std::size_t>> buckets(dataset.classes);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    buckets[dataset.y[i]].push_back(i);
  }

  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> val_rows;
  for (auto& bucket : buckets) {
    rng.shuffle(bucket);
    const std::size_t val_count = static_cast<std::size_t>(
        static_cast<double>(bucket.size()) * val_fraction);
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      (i < val_count ? val_rows : train_rows).push_back(bucket[i]);
    }
  }
  rng.shuffle(train_rows);
  rng.shuffle(val_rows);

  return TrainValSplit{gather(dataset, train_rows), gather(dataset, val_rows)};
}

Dataset shuffled(const Dataset& dataset, util::Rng& rng) {
  dataset.validate();
  std::vector<std::size_t> rows(dataset.size());
  std::iota(rows.begin(), rows.end(), 0);
  rng.shuffle(rows);
  return gather(dataset, rows);
}

std::vector<std::size_t> class_counts(const Dataset& dataset) {
  dataset.validate();
  std::vector<std::size_t> counts(dataset.classes, 0);
  for (std::size_t label : dataset.y) ++counts[label];
  return counts;
}

}  // namespace qhdl::data
