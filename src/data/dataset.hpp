// Labeled dataset container with stratified splitting.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace qhdl::data {

/// Dense features [N, F] with integer class labels.
struct Dataset {
  tensor::Tensor x;               ///< [N, F]
  std::vector<std::size_t> y;     ///< N labels in [0, classes)
  std::size_t classes = 0;

  std::size_t size() const { return y.size(); }
  std::size_t features() const { return x.rank() == 2 ? x.cols() : 0; }

  /// Throws std::logic_error if x/y/classes are inconsistent.
  void validate() const;
};

struct TrainValSplit {
  Dataset train;
  Dataset val;
};

/// Stratified split: each class contributes ~val_fraction of its samples to
/// the validation set. Order within splits is shuffled.
TrainValSplit stratified_split(const Dataset& dataset, double val_fraction,
                               util::Rng& rng);

/// Returns a copy with rows shuffled consistently with labels.
Dataset shuffled(const Dataset& dataset, util::Rng& rng);

/// Per-class sample counts.
std::vector<std::size_t> class_counts(const Dataset& dataset);

}  // namespace qhdl::data
