// Feature preprocessing. The study standardizes features using training-set
// statistics before feeding either model family (classical or hybrid).
#pragma once

#include "data/dataset.hpp"

namespace qhdl::data {

/// Per-feature affine transform parameters.
struct Scaler {
  std::vector<double> offset;  ///< subtracted per feature
  std::vector<double> scale;   ///< divided per feature (never zero)

  /// Applies the transform in place.
  void apply(tensor::Tensor& x) const;
};

/// Fits a z-score scaler (mean/std) on `x`; zero-variance features get
/// scale 1 so they pass through centered.
Scaler fit_standardizer(const tensor::Tensor& x);

/// Fits a min-max scaler mapping each feature to [lo, hi].
Scaler fit_minmax(const tensor::Tensor& x, double lo, double hi);

/// Standardizes train and val in place using TRAIN statistics only.
void standardize_split(TrainValSplit& split);

}  // namespace qhdl::data
