// Analytic FLOPs cost model (replaces the paper's TensorFlow Profiler; see
// DESIGN.md §5 for the substitution rationale).
//
// All counts are per sample (batch 1), forward and backward, in real FLOPs.
// The quantum costs model a dense state-vector simulation with N = 2^q
// amplitudes — the "simulation overhead" the paper's argument hinges on:
//   * a 1-qubit gate updates N/2 amplitude pairs with a complex 2x2 matvec
//     (4 complex mul = 24 FLOPs, 2 complex add = 4 FLOPs per pair → 14·N),
//     plus a constant for building the rotation matrix (sin/cos);
//   * CNOT/CZ are permutations/sign flips — 0 FLOPs by default (pure data
//     movement), configurable for sensitivity studies;
//   * ⟨Z⟩ costs 3·N (|a|² = 2 mul + 1 add per amplitude, signed);
//   * adjoint backward sweeps the circuit once, costing ~2 gate
//     applications per op plus a derivative application and an 8·N complex
//     inner product per parameterized op.
//
// Every constant is a struct field so the cost-model ablation bench
// (bench_ablation_costmodel) can re-run the paper's comparison under
// alternative assumptions.
#pragma once

#include <cstddef>

#include "nn/module.hpp"

namespace qhdl::flops {

struct CostModel {
  // --- classical ---------------------------------------------------------
  /// FLOPs per multiply-accumulate in a matmul (2 = mul + add).
  double matmul_mac = 2.0;
  /// FLOPs per bias element (forward add / backward copy-accumulate).
  double bias_per_element = 1.0;
  /// Elementwise activation forward / backward FLOPs per element.
  double activation_forward = 1.0;
  double activation_backward = 2.0;
  /// Softmax forward FLOPs per element (exp + div + max + sum amortized).
  double softmax_forward = 4.0;

  // --- quantum simulation ------------------------------------------------
  /// Per-amplitude cost of a 1-qubit dense gate application (pairs: 4 cmul
  /// + 2 cadd per 2 amplitudes = 14 per amplitude).
  double gate_per_amplitude = 14.0;
  /// Constant cost of constructing a rotation matrix (sin/cos evaluations).
  double rotation_setup = 8.0;
  /// Per-amplitude cost of CNOT/CZ (0 = treated as data movement).
  double entangler_per_amplitude = 0.0;
  /// Per-amplitude cost of a ⟨Z⟩ expectation.
  double expval_per_amplitude = 3.0;
  /// Per-amplitude cost of applying one observable term when seeding the
  /// adjoint co-state (includes the upstream weighting).
  double observable_apply_per_amplitude = 4.0;
  /// Per-amplitude cost of a complex inner product ⟨λ|μ⟩.
  double inner_product_per_amplitude = 8.0;

  // --- derived helpers (classical) ----------------------------------------
  double dense_forward(std::size_t inputs, std::size_t outputs) const;
  double dense_backward(std::size_t inputs, std::size_t outputs) const;
  double activation_forward_flops(std::size_t width) const;
  double activation_backward_flops(std::size_t width) const;
  double softmax_forward_flops(std::size_t width) const;
  /// Fused softmax+CE backward: one subtraction per logit.
  double softmax_ce_backward_flops(std::size_t width) const;

  // --- derived helpers (quantum; N = 2^qubits) ----------------------------
  double amplitudes(std::size_t qubits) const;
  double rotation_gate_flops(std::size_t qubits) const;
  double entangler_gate_flops(std::size_t qubits) const;
  double expval_z_flops(std::size_t qubits) const;

  /// Quantum layer stage costs from its structural descriptor.
  /// Encoding stage: the q input-encoding rotations (forward) plus their
  /// share of the adjoint sweep (backward).
  double quantum_encoding_forward(const nn::LayerInfo& info) const;
  double quantum_encoding_backward(const nn::LayerInfo& info) const;
  /// Quantum stage: ansatz gates + measurements (forward) plus their share
  /// of the adjoint sweep and the co-state seeding (backward).
  double quantum_circuit_forward(const nn::LayerInfo& info) const;
  double quantum_circuit_backward(const nn::LayerInfo& info) const;

  /// Full layer costs dispatched on LayerInfo.kind. Unknown kinds throw.
  double layer_forward(const nn::LayerInfo& info) const;
  double layer_backward(const nn::LayerInfo& info) const;
};

}  // namespace qhdl::flops
