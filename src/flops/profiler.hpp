// Model FLOPs profiler: walks a model's layer descriptors and produces the
// per-stage breakdown the paper reports (Table I columns: TF, Enc+CL, CL,
// Enc, QL) plus a per-layer table.
#pragma once

#include <string>
#include <vector>

#include "flops/cost_model.hpp"
#include "nn/sequential.hpp"
#include "quantum/circuit.hpp"
#include "quantum/exec_plan.hpp"
#include "quantum/kernels.hpp"

namespace qhdl::flops {

struct LayerFlops {
  std::string name;
  std::string kind;
  double forward = 0.0;
  double backward = 0.0;
  double total() const { return forward + backward; }
};

/// Per-sample forward+backward FLOPs of a model, split into the paper's
/// ablation stages.
struct FlopsReport {
  std::vector<LayerFlops> layers;

  double forward_total = 0.0;
  double backward_total = 0.0;
  double total() const { return forward_total + backward_total; }

  // Stage split (forward + backward combined), matching Table I columns:
  double classical = 0.0;  ///< CL: all dense/activation layers
  double encoding = 0.0;   ///< Enc: encoding gates + their adjoint share
  double quantum = 0.0;    ///< QL: ansatz gates, measurement, adjoint sweep
  double encoding_plus_classical() const { return encoding + classical; }

  std::size_t parameter_count = 0;
};

/// Profiles from layer descriptors (per sample, batch 1).
FlopsReport profile_layers(const std::vector<nn::LayerInfo>& infos,
                           const CostModel& cost_model = CostModel{});

/// Profiles a built model.
FlopsReport profile_model(const nn::Sequential& model,
                          const CostModel& cost_model = CostModel{});

/// Renders the per-layer table plus stage summary.
std::string report_to_string(const FlopsReport& report);

// --- kernel-dispatch accounting (DESIGN.md §8) ----------------------------

/// Modeled per-kernel-class dispatch counts for ONE execution of a circuit:
/// which specialized statevector kernel each op routes to. classify_circuit
/// models the un-fused per-op stream; classify_plan models the compiled
/// fused stream (chains count once, like the measured counters).
struct DispatchCounts {
  std::uint64_t diagonal = 0;       ///< RZ, PhaseShift, S, T, Z, CZ
  std::uint64_t real_rotation = 0;  ///< RX, RY
  std::uint64_t permutation = 0;    ///< X, CNOT, SWAP
  std::uint64_t controlled = 0;     ///< CRX, CRY, CRZ
  std::uint64_t double_flip = 0;    ///< RXX, RYY, RZZ
  std::uint64_t generic = 0;        ///< PauliY, Hadamard (dense 2x2)
  std::uint64_t two_qubit_dense = 0;  ///< fused two-qubit pairs (dense 4x4)
  std::uint64_t fused = 0;        ///< single-qubit chains merged to one 2x2
  std::uint64_t fused_gates = 0;  ///< source gates absorbed into those chains
  std::uint64_t total() const {
    return diagonal + real_rotation + permutation + controlled +
           double_flip + generic + two_qubit_dense;
  }
};

/// Classifies every op of `circuit` by the kernel it dispatches to.
DispatchCounts classify_circuit(const quantum::Circuit& circuit);

/// Classifies the fused scalar stream of a compiled plan: exactly the
/// dispatch mix one ExecutionPlan::run performs, so modeled counts line up
/// with the measured process counters when the compiled path is active.
DispatchCounts classify_plan(const quantum::ExecutionPlan& plan);

/// Side-by-side table of the modeled dispatch mix for a circuit vs the
/// measured process-wide kernel counters (quantum::kernels::stats()), e.g.
/// to confirm an experiment actually exercised the specialized paths.
std::string dispatch_comparison_to_string(
    const DispatchCounts& modeled,
    const quantum::KernelStatsSnapshot& measured);

}  // namespace qhdl::flops
