#include "flops/profiler.hpp"

#include <sstream>

#include "util/string_util.hpp"
#include "util/table.hpp"

namespace qhdl::flops {

FlopsReport profile_layers(const std::vector<nn::LayerInfo>& infos,
                           const CostModel& cost_model) {
  FlopsReport report;
  for (const nn::LayerInfo& info : infos) {
    LayerFlops lf;
    lf.kind = info.kind;
    lf.name = info.kind;
    lf.forward = cost_model.layer_forward(info);
    lf.backward = cost_model.layer_backward(info);
    report.layers.push_back(lf);

    report.forward_total += lf.forward;
    report.backward_total += lf.backward;
    report.parameter_count += info.parameter_count;

    if (info.kind == "quantum") {
      report.encoding += cost_model.quantum_encoding_forward(info) +
                         cost_model.quantum_encoding_backward(info);
      report.quantum += cost_model.quantum_circuit_forward(info) +
                        cost_model.quantum_circuit_backward(info);
    } else {
      report.classical += lf.total();
    }
  }
  return report;
}

FlopsReport profile_model(const nn::Sequential& model,
                          const CostModel& cost_model) {
  return profile_layers(model.layer_infos(), cost_model);
}

DispatchCounts classify_circuit(const quantum::Circuit& circuit) {
  using quantum::GateType;
  DispatchCounts counts;
  for (const quantum::Op& op : circuit.ops()) {
    switch (op.type) {
      case GateType::RZ:
      case GateType::PhaseShift:
      case GateType::S:
      case GateType::T:
      case GateType::PauliZ:
      case GateType::CZ:
        ++counts.diagonal;
        break;
      case GateType::RX:
      case GateType::RY:
        ++counts.real_rotation;
        break;
      case GateType::PauliX:
      case GateType::CNOT:
      case GateType::SWAP:
        ++counts.permutation;
        break;
      case GateType::CRX:
      case GateType::CRY:
      case GateType::CRZ:
        ++counts.controlled;
        break;
      case GateType::RXX:
      case GateType::RYY:
      case GateType::RZZ:
        ++counts.double_flip;
        break;
      case GateType::PauliY:
      case GateType::Hadamard:
        ++counts.generic;
        break;
    }
  }
  return counts;
}

DispatchCounts classify_plan(const quantum::ExecutionPlan& plan) {
  using quantum::FusedOp;
  using quantum::KernelClass;
  DispatchCounts counts;
  const auto count_kernel = [&](KernelClass kernel) {
    switch (kernel) {
      case KernelClass::Diagonal: ++counts.diagonal; break;
      case KernelClass::RealRotation: ++counts.real_rotation; break;
      case KernelClass::Permutation: ++counts.permutation; break;
      case KernelClass::Controlled: ++counts.controlled; break;
      case KernelClass::DoubleFlip: ++counts.double_flip; break;
      case KernelClass::Generic: ++counts.generic; break;
    }
  };
  for (const quantum::FusedOp& op : plan.fused_ops()) {
    switch (op.kind) {
      case FusedOp::Kind::Single:
      case FusedOp::Kind::TwoQubit:
        count_kernel(op.kernel);
        break;
      case FusedOp::Kind::Chain:
        // Runtime/precomputed 2x2 products go through the dense
        // single-qubit kernel, which the measured counters file as generic.
        ++counts.generic;
        ++counts.fused;
        counts.fused_gates += op.chain_length;
        break;
      case FusedOp::Kind::FixedChain:
        ++counts.generic;
        ++counts.fused;
        counts.fused_gates += op.gate_count;
        break;
      case FusedOp::Kind::DiagonalChain:
        ++counts.diagonal;
        ++counts.fused;
        counts.fused_gates += op.gate_count;
        break;
      case FusedOp::Kind::FusedPair:
        ++counts.two_qubit_dense;
        ++counts.fused;
        counts.fused_gates += op.gate_count;
        break;
    }
  }
  return counts;
}

std::string dispatch_comparison_to_string(
    const DispatchCounts& modeled,
    const quantum::KernelStatsSnapshot& measured) {
  util::Table table({"kernel", "modeled/run", "measured"});
  const auto row = [&](const char* name, std::uint64_t m, std::uint64_t got) {
    table.add_row({name, std::to_string(m), std::to_string(got)});
  };
  row("diagonal", modeled.diagonal, measured.diagonal);
  row("real_rotation", modeled.real_rotation, measured.real_rotation);
  row("permutation", modeled.permutation, measured.permutation);
  row("controlled", modeled.controlled, measured.controlled);
  row("double_flip", modeled.double_flip, measured.double_flip);
  row("generic", modeled.generic, measured.generic);
  row("two_qubit_dense", modeled.two_qubit_dense, measured.two_qubit_dense);
  std::ostringstream oss;
  oss << table.to_string();
  oss << "modeled total=" << modeled.total()
      << " (fused_chains=" << modeled.fused << " absorbing "
      << modeled.fused_gates << " gates)"
      << " | measured total=" << measured.total_dispatches()
      << " (fused_chains=" << measured.fused << " absorbing "
      << measured.fused_gates << " gates, batched_rows="
      << measured.batched_rows << ")\n";
  return oss.str();
}

std::string report_to_string(const FlopsReport& report) {
  util::Table table({"layer", "kind", "fwd FLOPs", "bwd FLOPs", "total"});
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    const LayerFlops& lf = report.layers[i];
    table.add_row({std::to_string(i) + ":" + lf.name, lf.kind,
                   util::format_double(lf.forward, 1),
                   util::format_double(lf.backward, 1),
                   util::format_double(lf.total(), 1)});
  }
  std::ostringstream oss;
  oss << table.to_string();
  oss << "total=" << util::format_double(report.total(), 1)
      << " (fwd=" << util::format_double(report.forward_total, 1)
      << ", bwd=" << util::format_double(report.backward_total, 1) << ")\n"
      << "stages: CL=" << util::format_double(report.classical, 1)
      << " Enc=" << util::format_double(report.encoding, 1)
      << " QL=" << util::format_double(report.quantum, 1)
      << " | params=" << report.parameter_count << "\n";
  return oss.str();
}

}  // namespace qhdl::flops
