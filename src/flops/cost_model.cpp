#include "flops/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace qhdl::flops {

double CostModel::dense_forward(std::size_t inputs,
                                std::size_t outputs) const {
  const double i = static_cast<double>(inputs);
  const double o = static_cast<double>(outputs);
  return matmul_mac * i * o + bias_per_element * o;
}

double CostModel::dense_backward(std::size_t inputs,
                                 std::size_t outputs) const {
  const double i = static_cast<double>(inputs);
  const double o = static_cast<double>(outputs);
  // dW = Xᵀ·dY and dX = dY·Wᵀ are both full matmuls; db accumulates dY.
  return 2.0 * matmul_mac * i * o + bias_per_element * o;
}

double CostModel::activation_forward_flops(std::size_t width) const {
  return activation_forward * static_cast<double>(width);
}

double CostModel::activation_backward_flops(std::size_t width) const {
  return activation_backward * static_cast<double>(width);
}

double CostModel::softmax_forward_flops(std::size_t width) const {
  return softmax_forward * static_cast<double>(width);
}

double CostModel::softmax_ce_backward_flops(std::size_t width) const {
  return static_cast<double>(width);
}

double CostModel::amplitudes(std::size_t qubits) const {
  return std::ldexp(1.0, static_cast<int>(qubits));  // 2^q
}

double CostModel::rotation_gate_flops(std::size_t qubits) const {
  return gate_per_amplitude * amplitudes(qubits) + rotation_setup;
}

double CostModel::entangler_gate_flops(std::size_t qubits) const {
  return entangler_per_amplitude * amplitudes(qubits);
}

double CostModel::expval_z_flops(std::size_t qubits) const {
  return expval_per_amplitude * amplitudes(qubits);
}

namespace {

void require_quantum(const nn::LayerInfo& info, const char* context) {
  if (info.kind != "quantum") {
    throw std::invalid_argument(std::string{context} +
                                ": layer is not quantum");
  }
}

}  // namespace

double CostModel::quantum_encoding_forward(const nn::LayerInfo& info) const {
  require_quantum(info, "quantum_encoding_forward");
  return static_cast<double>(info.encoding_gate_count) *
         rotation_gate_flops(info.qubits);
}

double CostModel::quantum_encoding_backward(const nn::LayerInfo& info) const {
  require_quantum(info, "quantum_encoding_backward");
  // Adjoint sweep share for each encoding rotation: two inverse gate
  // applications (φ and λ), one derivative application, one inner product.
  const double sweep_per_rotation = 2.0 * rotation_gate_flops(info.qubits) +
                                    rotation_gate_flops(info.qubits) +
                                    inner_product_per_amplitude *
                                        amplitudes(info.qubits);
  return static_cast<double>(info.encoding_gate_count) * sweep_per_rotation;
}

double CostModel::quantum_circuit_forward(const nn::LayerInfo& info) const {
  require_quantum(info, "quantum_circuit_forward");
  const std::size_t ansatz_rotations =
      info.param_gate_count - info.encoding_gate_count;
  const std::size_t entanglers = info.gate_count - info.param_gate_count;
  return static_cast<double>(ansatz_rotations) *
             rotation_gate_flops(info.qubits) +
         static_cast<double>(entanglers) * entangler_gate_flops(info.qubits) +
         static_cast<double>(info.qubits) * expval_z_flops(info.qubits);
}

double CostModel::quantum_circuit_backward(const nn::LayerInfo& info) const {
  require_quantum(info, "quantum_circuit_backward");
  const std::size_t ansatz_rotations =
      info.param_gate_count - info.encoding_gate_count;
  const std::size_t entanglers = info.gate_count - info.param_gate_count;
  const double n = amplitudes(info.qubits);
  // Co-state seeding: apply each ⟨Z_w⟩ term of the effective observable.
  const double seed = static_cast<double>(info.qubits) *
                      observable_apply_per_amplitude * n;
  const double sweep_rotations =
      static_cast<double>(ansatz_rotations) *
      (3.0 * rotation_gate_flops(info.qubits) + inner_product_per_amplitude * n);
  const double sweep_entanglers =
      static_cast<double>(entanglers) * 2.0 * entangler_gate_flops(info.qubits);
  return seed + sweep_rotations + sweep_entanglers;
}

double CostModel::layer_forward(const nn::LayerInfo& info) const {
  if (info.kind == "dense") return dense_forward(info.inputs, info.outputs);
  if (info.kind == "tanh" || info.kind == "relu" || info.kind == "sigmoid") {
    return activation_forward_flops(info.outputs);
  }
  if (info.kind == "softmax") return softmax_forward_flops(info.outputs);
  if (info.kind == "quantum") {
    return quantum_encoding_forward(info) + quantum_circuit_forward(info);
  }
  throw std::invalid_argument("CostModel::layer_forward: unknown kind '" +
                              info.kind + "'");
}

double CostModel::layer_backward(const nn::LayerInfo& info) const {
  if (info.kind == "dense") return dense_backward(info.inputs, info.outputs);
  if (info.kind == "tanh" || info.kind == "relu" || info.kind == "sigmoid") {
    return activation_backward_flops(info.outputs);
  }
  if (info.kind == "softmax") return softmax_ce_backward_flops(info.outputs);
  if (info.kind == "quantum") {
    return quantum_encoding_backward(info) + quantum_circuit_backward(info);
  }
  throw std::invalid_argument("CostModel::layer_backward: unknown kind '" +
                              info.kind + "'");
}

}  // namespace qhdl::flops
