#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace qhdl::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Silent: return "     ";
  }
  return "?    ";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::Silent) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::Debug, message); }
void log_info(const std::string& message) { log(LogLevel::Info, message); }
void log_warn(const std::string& message) { log(LogLevel::Warn, message); }
void log_error(const std::string& message) { log(LogLevel::Error, message); }

}  // namespace qhdl::util
