#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace qhdl::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Silent: return "     ";
  }
  return "?    ";
}

/// Reads QHDL_LOG_LEVEL exactly once; a valid value pins the threshold for
/// the whole process (workers inherit the variable, so one setting governs
/// the merged supervisor+worker stream).
bool env_pinned_level() {
  static const bool pinned = [] {
    const char* env = std::getenv("QHDL_LOG_LEVEL");
    if (env == nullptr || env[0] == '\0') return false;
    const std::optional<LogLevel> parsed = log_level_from_name(env);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "ignoring invalid QHDL_LOG_LEVEL='%s' (expected "
                           "debug|info|warn|error|silent)\n", env);
      return false;
    }
    g_level.store(*parsed);
    return true;
  }();
  return pinned;
}

long current_pid() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

}  // namespace

std::optional<LogLevel> log_level_from_name(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "silent") return LogLevel::Silent;
  return std::nullopt;
}

bool log_level_env_pinned() { return env_pinned_level(); }

void set_log_level(LogLevel level) {
  if (env_pinned_level()) return;
  g_level.store(level);
}

LogLevel log_level() {
  env_pinned_level();
  return g_level.load();
}

std::string format_log_line(LogLevel level, const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
#if defined(__unix__) || defined(__APPLE__)
  localtime_r(&seconds, &tm_buf);
#else
  const std::tm* local = std::localtime(&seconds);
  if (local != nullptr) tm_buf = *local;
#endif
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d %H:%M:%S", &tm_buf);

  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%s.%03d] [pid %ld] [%s] ", stamp,
                static_cast<int>(ms), current_pid(), level_name(level));
  return std::string{prefix} + message;
}

void log(LogLevel level, const std::string& message) {
  env_pinned_level();
  if (level < g_level.load() || level == LogLevel::Silent) return;
  // One fprintf per line so concurrent processes sharing stderr interleave
  // at line granularity, not mid-line.
  const std::string line = format_log_line(level, message);
  std::fprintf(stderr, "%s\n", line.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::Debug, message); }
void log_info(const std::string& message) { log(LogLevel::Info, message); }
void log_warn(const std::string& message) { log(LogLevel::Warn, message); }
void log_error(const std::string& message) { log(LogLevel::Error, message); }

}  // namespace qhdl::util
