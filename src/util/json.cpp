#include "util/json.hpp"

#include <cctype>
#include <charconv>

#include "util/atomic_file.hpp"
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>

namespace qhdl::util {

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

void Json::push_back(Json value) {
  if (type_ != Type::Array) {
    throw std::logic_error("Json::push_back on non-array");
  }
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::Array:
      return array_.size();
    case Type::Object:
      return object_.size();
    default:
      throw std::logic_error("Json::size on scalar");
  }
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::Null) type_ = Type::Object;  // convenient auto-vivify
  if (type_ != Type::Object) {
    throw std::logic_error("Json::operator[] on non-object");
  }
  return object_[key];
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::Object && object_.count(key) > 0;
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", n);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  out += buf;
}

}  // namespace

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : std::string{};
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string{};
  const char* nl = indent > 0 ? "\n" : "";
  const char* space = indent > 0 ? " " : "";

  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Number:
      append_number(out, number_);
      break;
    case Type::String:
      escape_string(out, string_);
      break;
    case Type::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_impl(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::Object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        out += pad;
        escape_string(out, key);
        out += ':';
        out += space;
        value.dump_impl(out, indent, depth + 1);
        if (++i < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw std::logic_error("Json::as_bool: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) {
    throw std::logic_error("Json::as_number: not a number");
  }
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) {
    throw std::logic_error("Json::as_string: not a string");
  }
  return string_;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::Array) throw std::logic_error("Json::at: not an array");
  if (index >= array_.size()) {
    throw std::out_of_range("Json::at: array index out of range");
  }
  return array_[index];
}

const std::map<std::string, Json>& Json::object_items() const {
  if (type_ != Type::Object) {
    throw std::logic_error("Json::object_items: not an object");
  }
  return object_;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::Object) {
    throw std::logic_error("Json::at: not an object");
  }
  const auto it = object_.find(key);
  if (it == object_.end()) {
    throw std::out_of_range("Json::at: missing key '" + key + "'");
  }
  return it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("Json::parse: " + message + " at offset " +
                                std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json{parse_string()};
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json{true};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json{false};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[key] = parse_value();
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit");
          }
          // Basic-multilingual-plane only; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    // std::from_chars, not std::stod: stod honors the global C locale (a
    // ','-decimal locale rejects every serialized double) and throws
    // out_of_range on subnormals, which %.17g-printed worker-protocol
    // payloads legitimately contain. from_chars is locale-independent,
    // round-trips subnormals and signed zeros exactly, and reserves
    // result_out_of_range for values no finite double can represent.
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ptr != last || ec != std::errc{}) fail("bad number");
    return Json{value};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser{text}.parse_document();
}

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Json::parse_file: cannot open " + path);
  std::string content{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
  return parse(content);
}

void Json::write_file(const std::string& path, int indent) const {
  // Atomic temp+flush+rename: a crash or IO fault mid-write can never leave
  // a truncated manifest where a complete one (or nothing) used to be.
  atomic_write_file(path, dump(indent) + '\n');
}

}  // namespace qhdl::util
