// Persistent worker-thread pool shared by every parallel code path (quantum
// batch execution, per-candidate training runs, speculative candidate
// lookahead, level-parallel sweeps).
//
// Design constraints, in order:
//   1. Determinism: the pool never decides *what* runs, only *where*. Call
//      sites pre-split RNG streams and write results into per-index slots,
//      so outputs are bit-identical for any thread count.
//   2. No per-call thread spawning: the search trains thousands of models
//      with batch-size-8 forward/backward calls; creating threads inside
//      that loop (the pre-pool design) costs more than the work itself.
//   3. Deadlock-free nesting: parallel_for may be called from inside a task
//      already running on the pool (candidate -> training run -> quantum
//      batch). The calling thread always participates in the loop it
//      issued, so a loop completes even when every worker is busy.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

namespace qhdl::util {

class ThreadPool {
 public:
  /// Spawns `workers` persistent threads (at least 1).
  explicit ThreadPool(std::size_t workers);

  /// Drains nothing: outstanding parallel_for calls have already completed
  /// (they block their caller); queued leftover helpers are no-ops.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Runs work(i) for every i in [begin, end) and blocks until all have
  /// finished. At most `max_threads` indices execute concurrently (the
  /// calling thread counts as one and always participates); max_threads <= 1
  /// executes inline, in order, on the calling thread — the serial path and
  /// the parallel path are the same code. The first exception thrown by
  /// `work` is rethrown here after the loop quiesces (remaining unclaimed
  /// indices are skipped).
  void parallel_for(std::size_t begin, std::size_t end,
                    std::size_t max_threads,
                    const std::function<void(std::size_t)>& work);

  /// Process-wide pool, lazily created on first use with
  /// hardware_concurrency() workers. All library call sites go through this
  /// instance so the whole program shares one set of threads.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  bool stop_ = false;
};

/// parallel_for on the shared pool (the call sites' entry point).
void parallel_for(std::size_t begin, std::size_t end, std::size_t max_threads,
                  const std::function<void(std::size_t)>& work);

}  // namespace qhdl::util
