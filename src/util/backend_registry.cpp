#include "util/backend_registry.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "util/logging.hpp"

namespace qhdl::util::simd {

namespace detail {
// Registrar hooks defined in the backend TUs (src/util/simd/). Explicit
// calls instead of static-init registration: self-registering objects in a
// static library get dropped by the linker when nothing references their
// translation unit, and the call list also fixes the registration order so
// backends() is deterministic.
void register_generic_backends();
void register_avx2_backend();
void register_avx512_backend();
}  // namespace detail

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<const Backend*> entries;  // insertion order; sorted on read
  const Backend* active = nullptr;      // resolved selection (guarded)
  const char* source = "auto";
  std::string override_name;  // empty = no runtime override
};

Registry& registry() {
  static Registry instance;
  return instance;
}

// Lock-free fast path for ops(): the resolved descriptor, null until the
// first resolution and after set_backend invalidates it.
std::atomic<const Backend*> g_active{nullptr};

void ensure_registered() {
  static const bool once = [] {
    detail::register_generic_backends();
    detail::register_avx2_backend();
    detail::register_avx512_backend();
    return true;
  }();
  (void)once;
}

bool env_flag_set(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

std::string registered_names_locked(const Registry& reg) {
  std::string names;
  for (const Backend* backend : reg.entries) {
    if (!names.empty()) names += ", ";
    names += backend->name;
  }
  return names;
}

const Backend* find_locked(const Registry& reg, std::string_view name) {
  for (const Backend* backend : reg.entries) {
    if (name == backend->name) return backend;
  }
  return nullptr;
}

/// Highest-priority supported non-reference backend. The generic backend
/// always registers with supported() == true, so auto-detect cannot fail —
/// this is the graceful fallback on CPUs without AVX.
const Backend* auto_detect_locked(const Registry& reg) {
  const Backend* best = nullptr;
  for (const Backend* backend : reg.entries) {
    if (backend->reference || !backend->supported()) continue;
    if (best == nullptr || backend->priority > best->priority) best = backend;
  }
  if (best == nullptr) {
    throw std::runtime_error(
        "qhdl backend registry: no supported backend registered");
  }
  return best;
}

#ifdef QHDL_BACKEND_DEFAULT
constexpr const char* kBuildDefault = QHDL_BACKEND_DEFAULT;
#else
constexpr const char* kBuildDefault = "";
#endif

/// Resolves the active backend under the registry lock; throws on a
/// misconfigured env/build selection (unknown or unsupported name).
void resolve_locked(Registry& reg) {
  const char* source = "auto";
  const std::string name = resolve_backend_name(
      reg.override_name.empty() ? nullptr : reg.override_name.c_str(),
      std::getenv("QHDL_BACKEND"), std::getenv("QHDL_FORCE_GENERIC_KERNELS"),
      std::getenv("QHDL_FORCE_REFERENCE_NN"), kBuildDefault, &source);
  if (name.empty()) {
    reg.active = auto_detect_locked(reg);
  } else {
    const Backend* chosen = find_locked(reg, name);
    if (chosen == nullptr) {
      throw std::runtime_error(
          "qhdl backend registry: unknown backend '" + name + "' (from " +
          source + " selection); registered: " + registered_names_locked(reg));
    }
    if (!chosen->supported()) {
      throw std::runtime_error(
          "qhdl backend registry: backend '" + name + "' (from " + source +
          " selection) is not supported on this CPU; use QHDL_BACKEND=generic "
          "or unset it for auto-detection");
    }
    reg.active = chosen;
  }
  reg.source = source;
  g_active.store(reg.active, std::memory_order_release);
}

}  // namespace

std::string resolve_backend_name(const char* override_name,
                                 const char* backend_env,
                                 const char* legacy_generic_env,
                                 const char* legacy_reference_env,
                                 const char* build_default,
                                 const char** source) {
  if (override_name != nullptr && override_name[0] != '\0') {
    *source = "override";
    return override_name;
  }
  if (backend_env != nullptr && backend_env[0] != '\0') {
    *source = "env";
    return backend_env;
  }
  // Deprecated aliases: the pre-registry escape hatches forced the scalar
  // reference paths, which is exactly what the reference backend selects.
  if (env_flag_set(legacy_generic_env) || env_flag_set(legacy_reference_env)) {
    *source = "alias";
    return "reference";
  }
  if (build_default != nullptr && build_default[0] != '\0') {
    *source = "build";
    return build_default;
  }
  *source = "auto";
  return "";
}

void register_backend(const Backend* backend) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  if (find_locked(reg, backend->name) != nullptr) return;
  reg.entries.push_back(backend);
}

std::vector<const Backend*> backends() {
  ensure_registered();
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  std::vector<const Backend*> sorted = reg.entries;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Backend* a, const Backend* b) {
                     return a->priority > b->priority;
                   });
  return sorted;
}

const Backend* find_backend(std::string_view name) {
  ensure_registered();
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  return find_locked(reg, name);
}

const Backend& active_backend() {
  const Backend* cached = g_active.load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;
  ensure_registered();
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  if (reg.active == nullptr) {
    resolve_locked(reg);
    if (std::strcmp(reg.source, "alias") == 0) {
      log_warn(
          "QHDL_FORCE_GENERIC_KERNELS / QHDL_FORCE_REFERENCE_NN are "
          "deprecated aliases; use QHDL_BACKEND=reference");
    }
  }
  return *reg.active;
}

const char* active_source() {
  active_backend();  // force resolution
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  return reg.source;
}

void set_backend(std::optional<std::string_view> name) {
  ensure_registered();
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  if (name.has_value()) {
    const Backend* chosen = find_locked(reg, *name);
    if (chosen == nullptr) {
      throw std::invalid_argument(
          "qhdl backend registry: unknown backend '" + std::string{*name} +
          "'; registered: " + registered_names_locked(reg));
    }
    if (!chosen->supported()) {
      throw std::invalid_argument("qhdl backend registry: backend '" +
                                  std::string{*name} +
                                  "' is not supported on this CPU");
    }
    reg.override_name = *name;
  } else {
    reg.override_name.clear();
  }
  // Invalidate and re-resolve so the env/build/auto layers are re-read.
  reg.active = nullptr;
  g_active.store(nullptr, std::memory_order_release);
  resolve_locked(reg);
}

}  // namespace qhdl::util::simd
