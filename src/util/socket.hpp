// Minimal POSIX TCP sockets for the serving layer (serve/server.hpp).
//
// The serve protocol reuses the worker-pool's length-prefixed JSON framing,
// which operates on plain file descriptors — this header only has to supply
// the descriptors: a listener with deadline-aware accept and a connected
// stream socket with an EPIPE-safe bulk writer. Reads go through
// search::read_frame (worker_protocol.hpp), which polls with a
// util::Deadline so a hung peer cannot wedge the server.
//
// Fault injection: accept() observes the `accept` site (an `accept=fail`
// trigger closes the freshly accepted connection, emulating a transient
// accept-path failure). Read-side faults (`sock=short/drop/slow`) live in
// the frame-read loop, not here.
//
// On platforms without BSD sockets the API compiles but
// sockets_supported() is false and listen/connect throw — callers degrade
// the same way Subprocess does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/deadline.hpp"

namespace qhdl::util {

/// True when this build can open TCP sockets.
bool sockets_supported();

/// A connected TCP stream. Move-only; the destructor closes the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes the whole buffer. Returns false when the peer is gone
  /// (EPIPE/ECONNRESET — a clean disconnect, logged at debug) or on any
  /// other error (logged at warn); never raises SIGPIPE.
  bool write_all(const char* data, std::size_t size);
  bool write_all(const std::string& data) {
    return write_all(data.data(), data.size());
  }

  /// Half-close: signals EOF to the peer while reads stay open.
  void shutdown_write();

  void close();

 private:
  int fd_ = -1;
};

/// Connects to host:port (numeric IPv4 such as "127.0.0.1"). Throws
/// std::runtime_error when the connection cannot be established. With
/// timeout_ms == 0 the connect blocks on the OS default (minutes against a
/// black-holed host); a positive timeout runs the connect non-blocking and
/// bounds the wait. Either way the returned socket is blocking again, with
/// TCP_NODELAY (framed request/reply traffic) and SO_KEEPALIVE (long-lived
/// worker connections must eventually notice a silently dead peer) set.
/// Observes the `conn=refuse` fault site before dialing.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::uint64_t timeout_ms = 0);

/// A bound, listening TCP socket. Move-only.
class ListenSocket {
 public:
  /// Binds and listens on host:port; port 0 picks an ephemeral port (read
  /// it back with port()). Throws std::runtime_error on failure.
  static ListenSocket listen_tcp(const std::string& host, std::uint16_t port,
                                 int backlog = 64);

  ListenSocket() = default;
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;
  ~ListenSocket();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }

  /// Waits up to `deadline` for one connection. Returns nullopt on timeout,
  /// on a transient accept error, or when an injected `accept=fail` fires
  /// (sets *injected_failure so the server can count it). Polls in short
  /// slices, so close() from another thread unblocks it promptly.
  std::optional<Socket> accept(const Deadline& deadline,
                               bool* injected_failure = nullptr);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace qhdl::util
