// JSON value, serializer, and parser. The study emits machine-readable
// result manifests (per-search winners, ablation breakdowns) alongside CSVs,
// and the nn serialization module round-trips model weights through it.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace qhdl::util {

/// Immutable-ish JSON tree with value semantics.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double n) : type_(Type::Number), number_(n) {}
  Json(int n) : type_(Type::Number), number_(n) {}
  Json(long n) : type_(Type::Number), number_(static_cast<double>(n)) {}
  Json(unsigned long n) : type_(Type::Number), number_(static_cast<double>(n)) {}
  Json(long long n) : type_(Type::Number), number_(static_cast<double>(n)) {}
  Json(unsigned long long n)
      : type_(Type::Number), number_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::String), string_(s) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), string_(s) {}

  static Json array();
  static Json object();

  template <typename T>
  static Json array_of(const std::vector<T>& values) {
    Json a = array();
    for (const auto& v : values) a.push_back(Json(v));
    return a;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }

  /// Array ops (throws std::logic_error if not an array).
  void push_back(Json value);
  std::size_t size() const;

  /// Object ops (throws std::logic_error if not an object).
  Json& operator[](const std::string& key);
  bool contains(const std::string& key) const;

  // --- read accessors (throw std::logic_error on type mismatch) ----------
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  /// Array element (checked).
  const Json& at(std::size_t index) const;
  /// Object member (checked; throws std::out_of_range if missing).
  const Json& at(const std::string& key) const;
  /// Object members in sorted key order (throws std::logic_error if not an
  /// object) — for consumers that enumerate keys, e.g. checkpoint manifests.
  const std::map<std::string, Json>& object_items() const;

  /// Parses JSON text; throws std::invalid_argument with position info on
  /// malformed input.
  static Json parse(std::string_view text);

  /// Reads and parses a file; throws std::runtime_error on I/O failure.
  static Json parse_file(const std::string& path);

  /// Serializes; indent > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Writes to a file via atomic temp+flush+rename (util/atomic_file.hpp);
  /// throws std::runtime_error on I/O failure with the target untouched.
  void write_file(const std::string& path, int indent = 2) const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  // std::map keeps keys sorted -> deterministic output.
  std::map<std::string, Json> object_;
};

}  // namespace qhdl::util
