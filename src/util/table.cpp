#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace qhdl::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must be non-empty");
  }
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
           " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace qhdl::util
