#include "util/deadline.hpp"

#include <chrono>
#include <limits>

namespace qhdl::util {

std::uint64_t monotonic_now_ms() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
}

Deadline Deadline::after_ms(std::uint64_t ms) {
  Deadline deadline;
  deadline.infinite_ = false;
  deadline.expires_at_ms_ = monotonic_now_ms() + ms;
  return deadline;
}

bool Deadline::expired() const {
  if (infinite_) return false;
  return monotonic_now_ms() >= expires_at_ms_;
}

std::uint64_t Deadline::remaining_ms() const {
  if (infinite_) return std::numeric_limits<std::uint64_t>::max() / 2;
  const std::uint64_t now = monotonic_now_ms();
  return now >= expires_at_ms_ ? 0 : expires_at_ms_ - now;
}

}  // namespace qhdl::util
