#include "util/fault_injection.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace qhdl::util {

namespace {

enum class FaultAction { Crash, Fail, Nan, Hang, Garbage, Evict, Short, Drop,
                         Slow, Refuse, Reset, Partition };

struct Trigger {
  FaultSite site = FaultSite::UnitBoundary;
  FaultAction action = FaultAction::Crash;
  std::uint64_t arrival = 1;  ///< 1-based arrival count
  bool open_ended = false;    ///< '+' suffix: fires from `arrival` onward
};

const char* site_name(FaultSite site) {
  switch (site) {
    case FaultSite::UnitBoundary: return "unit";
    case FaultSite::IoWrite: return "io";
    case FaultSite::Loss: return "loss";
    case FaultSite::Worker: return "worker";
    case FaultSite::DirSync: return "dir";
    case FaultSite::PlanCache: return "plan";
    case FaultSite::SocketAccept: return "accept";
    case FaultSite::SocketRead: return "sock";
    case FaultSite::Connection: return "conn";
  }
  return "?";
}

FaultSite parse_site(const std::string& token, const std::string& spec) {
  if (token == "unit") return FaultSite::UnitBoundary;
  if (token == "io") return FaultSite::IoWrite;
  if (token == "loss") return FaultSite::Loss;
  if (token == "worker") return FaultSite::Worker;
  if (token == "dir") return FaultSite::DirSync;
  if (token == "plan") return FaultSite::PlanCache;
  if (token == "accept") return FaultSite::SocketAccept;
  if (token == "sock") return FaultSite::SocketRead;
  if (token == "conn") return FaultSite::Connection;
  throw std::invalid_argument("QHDL_FAULT_SPEC: unknown site '" + token +
                              "' in '" + spec + "'");
}

FaultAction parse_action(const std::string& token, FaultSite site,
                         const std::string& spec) {
  if (token == "crash") {
    if (site != FaultSite::UnitBoundary && site != FaultSite::IoWrite &&
        site != FaultSite::Worker) {
      throw std::invalid_argument(
          "QHDL_FAULT_SPEC: 'crash' is not valid for the " +
          std::string{site_name(site)} + " site");
    }
    return FaultAction::Crash;
  }
  if (token == "fail") {
    if (site != FaultSite::IoWrite && site != FaultSite::DirSync &&
        site != FaultSite::SocketAccept) {
      throw std::invalid_argument(
          "QHDL_FAULT_SPEC: 'fail' is only valid for the io, dir, and "
          "accept sites");
    }
    return FaultAction::Fail;
  }
  if (token == "short" || token == "drop" || token == "slow") {
    if (token == "slow" && site == FaultSite::Connection) {
      return FaultAction::Slow;
    }
    if (site != FaultSite::SocketRead) {
      throw std::invalid_argument("QHDL_FAULT_SPEC: '" + token +
                                  "' is only valid for the sock site"
                                  " ('slow' also for conn)");
    }
    if (token == "short") return FaultAction::Short;
    if (token == "drop") return FaultAction::Drop;
    return FaultAction::Slow;
  }
  if (token == "refuse" || token == "reset" || token == "partition") {
    if (site != FaultSite::Connection) {
      throw std::invalid_argument("QHDL_FAULT_SPEC: '" + token +
                                  "' is only valid for the conn site");
    }
    if (token == "refuse") return FaultAction::Refuse;
    if (token == "reset") return FaultAction::Reset;
    return FaultAction::Partition;
  }
  if (token == "nan") {
    if (site != FaultSite::Loss) {
      throw std::invalid_argument(
          "QHDL_FAULT_SPEC: 'nan' is only valid for the loss site");
    }
    return FaultAction::Nan;
  }
  if (token == "hang") {
    if (site != FaultSite::Worker) {
      throw std::invalid_argument(
          "QHDL_FAULT_SPEC: 'hang' is only valid for the worker site");
    }
    return FaultAction::Hang;
  }
  if (token == "garbage") {
    if (site != FaultSite::Worker) {
      throw std::invalid_argument(
          "QHDL_FAULT_SPEC: 'garbage' is only valid for the worker site");
    }
    return FaultAction::Garbage;
  }
  if (token == "evict") {
    if (site != FaultSite::PlanCache) {
      throw std::invalid_argument(
          "QHDL_FAULT_SPEC: 'evict' is only valid for the plan site");
    }
    return FaultAction::Evict;
  }
  throw std::invalid_argument("QHDL_FAULT_SPEC: unknown action '" + token +
                              "' in '" + spec + "'");
}

std::vector<Trigger> parse_spec(const std::string& spec) {
  std::vector<Trigger> triggers;
  for (const std::string& entry : split(spec, ';')) {
    const std::string trimmed = trim(entry);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    const auto at = trimmed.find('@');
    if (eq == std::string::npos || at == std::string::npos || at < eq) {
      throw std::invalid_argument(
          "QHDL_FAULT_SPEC: expected <site>=<action>@<n>[,..] got '" +
          trimmed + "'");
    }
    const FaultSite site = parse_site(trim(trimmed.substr(0, eq)), spec);
    const FaultAction action =
        parse_action(trim(trimmed.substr(eq + 1, at - eq - 1)), site, spec);
    for (const std::string& count : split(trimmed.substr(at + 1), ',')) {
      Trigger trigger;
      trigger.site = site;
      trigger.action = action;
      std::string number = trim(count);
      if (!number.empty() && number.back() == '+') {
        trigger.open_ended = true;
        number.pop_back();
      }
      // Full-match digits only: std::stoll would silently accept trailing
      // junk ("1x", "1++"), turning a typo into a different fault schedule.
      const bool all_digits =
          !number.empty() &&
          number.find_first_not_of("0123456789") == std::string::npos;
      try {
        if (!all_digits) throw std::invalid_argument("not a count");
        const long long value = std::stoll(number);
        if (value < 1) throw std::invalid_argument("non-positive");
        trigger.arrival = static_cast<std::uint64_t>(value);
      } catch (const std::exception&) {
        throw std::invalid_argument(
            "QHDL_FAULT_SPEC: bad trigger count '" + count + "' in '" +
            trimmed + "'");
      }
      triggers.push_back(trigger);
    }
  }
  return triggers;
}

}  // namespace

struct FaultInjector::Impl {
  mutable std::mutex mutex;
  std::vector<Trigger> triggers;
  /// Lock-free disarmed check: the loss site sits on the per-batch training
  /// hot path, so the common (no injection) case must cost one relaxed load.
  std::atomic<bool> any_armed{false};
  std::atomic<std::uint64_t> counters[9] = {{0}, {0}, {0}, {0}, {0},
                                            {0}, {0}, {0}, {0}};

  /// Counts the arrival and returns the action that fires for it, if any.
  /// The counter bump and trigger match happen under the mutex so that two
  /// threads arriving concurrently observe distinct arrival numbers and at
  /// most one of them claims any given trigger.
  bool fire(FaultSite site, FaultAction* action) {
    if (!any_armed.load(std::memory_order_relaxed)) return false;
    std::lock_guard<std::mutex> lock(mutex);
    const std::uint64_t arrival =
        counters[static_cast<int>(site)].fetch_add(
            1, std::memory_order_relaxed) +
        1;
    for (const Trigger& trigger : triggers) {
      if (trigger.site != site) continue;
      if (arrival == trigger.arrival ||
          (trigger.open_ended && arrival >= trigger.arrival)) {
        if (action != nullptr) *action = trigger.action;
        return true;
      }
    }
    return false;
  }
};

FaultInjector::FaultInjector() : impl_(new Impl) {
  const char* env = std::getenv("QHDL_FAULT_SPEC");
  if (env != nullptr && env[0] != '\0') {
    configure(env);
    log_warn(std::string{"fault injection armed: QHDL_FAULT_SPEC="} + env);
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const std::string& spec) {
  // Parse outside the lock so a malformed spec leaves the old state intact.
  std::vector<Trigger> triggers = parse_spec(spec);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->triggers = std::move(triggers);
  impl_->any_armed.store(!impl_->triggers.empty(),
                         std::memory_order_relaxed);
  for (auto& counter : impl_->counters) {
    counter.store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::armed() const {
  return impl_->any_armed.load(std::memory_order_relaxed);
}

bool FaultInjector::fires(FaultSite site) {
  return impl_->fire(site, nullptr);
}

std::uint64_t FaultInjector::arrivals(FaultSite site) const {
  return impl_->counters[static_cast<int>(site)].load(
      std::memory_order_relaxed);
}

void FaultInjector::on_unit_boundary(const std::string& where) {
  FaultAction action;
  if (!impl_->fire(FaultSite::UnitBoundary, &action)) return;
  throw InjectedCrash("injected crash at unit boundary: " + where);
}

void FaultInjector::on_io_write(const std::string& path) {
  FaultAction action;
  if (!impl_->fire(FaultSite::IoWrite, &action)) return;
  if (action == FaultAction::Crash) {
    throw InjectedCrash("injected crash during write: " + path);
  }
  throw std::runtime_error("injected IO failure (disk full?) writing " +
                           path);
}

bool FaultInjector::poison_loss() {
  FaultAction action;
  if (!impl_->fire(FaultSite::Loss, &action)) return false;
  log_warn(std::string{"fault injection: poisoning loss (arrival "} +
           std::to_string(arrivals(FaultSite::Loss)) + " at site " +
           site_name(FaultSite::Loss) + ")");
  return true;
}

void FaultInjector::on_io_dir_sync(const std::string& path) {
  FaultAction action;
  if (!impl_->fire(FaultSite::DirSync, &action)) return;
  throw std::runtime_error(
      "injected directory fsync failure after renaming " + path);
}

bool FaultInjector::plan_cache_evict() {
  FaultAction action;
  if (!impl_->fire(FaultSite::PlanCache, &action)) return false;
  log_warn(std::string{"fault injection: evicting compiled-plan cache "
                       "(arrival "} +
           std::to_string(arrivals(FaultSite::PlanCache)) + ")");
  return true;
}

bool FaultInjector::on_socket_accept() {
  FaultAction action;
  if (!impl_->fire(FaultSite::SocketAccept, &action)) return false;
  log_warn(std::string{"fault injection: dropping accepted connection "
                       "(arrival "} +
           std::to_string(arrivals(FaultSite::SocketAccept)) + ")");
  return true;
}

SocketFaultMode FaultInjector::on_socket_read() {
  FaultAction action;
  if (!impl_->fire(FaultSite::SocketRead, &action)) {
    return SocketFaultMode::None;
  }
  switch (action) {
    case FaultAction::Short: return SocketFaultMode::ShortRead;
    case FaultAction::Drop:
      log_warn("fault injection: socket read observes disconnect");
      return SocketFaultMode::Disconnect;
    case FaultAction::Slow:
      return SocketFaultMode::Slow;
    default: return SocketFaultMode::None;
  }
}

bool FaultInjector::on_connect_attempt(const std::string& target) {
  FaultAction action;
  if (!impl_->fire(FaultSite::Connection, &action)) return false;
  if (action != FaultAction::Refuse) return false;
  log_warn("fault injection: refusing outbound connection to " + target +
           " (arrival " + std::to_string(arrivals(FaultSite::Connection)) +
           ")");
  return true;
}

ConnFaultMode FaultInjector::on_connection(const std::string& where) {
  FaultAction action;
  if (!impl_->fire(FaultSite::Connection, &action)) {
    return ConnFaultMode::None;
  }
  switch (action) {
    case FaultAction::Reset:
      log_warn("fault injection: resetting worker connection (" + where +
               ")");
      return ConnFaultMode::Reset;
    case FaultAction::Partition:
      log_warn("fault injection: partitioning worker connection (" + where +
               ")");
      return ConnFaultMode::Partition;
    case FaultAction::Slow: return ConnFaultMode::Slow;
    default: return ConnFaultMode::None;
  }
}

WorkerFaultMode FaultInjector::on_worker_unit(const std::string& key) {
  FaultAction action;
  if (!impl_->fire(FaultSite::Worker, &action)) return WorkerFaultMode::None;
  log_warn("fault injection: worker fault on unit " + key);
  switch (action) {
    case FaultAction::Crash: return WorkerFaultMode::Crash;
    case FaultAction::Hang: return WorkerFaultMode::Hang;
    case FaultAction::Garbage: return WorkerFaultMode::Garbage;
    default: return WorkerFaultMode::None;
  }
}

}  // namespace qhdl::util
