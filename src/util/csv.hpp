// Minimal CSV writer/reader used to persist experiment series (bench drivers
// emit one CSV per figure/table so results can be plotted externally).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qhdl::util {

/// Builds CSV content row by row with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `format_double`.
  void add_row_values(const std::vector<double>& row);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Renders the full document (header + rows) as text.
  std::string to_string() const;

  /// Writes to a file via atomic temp+flush+rename (util/atomic_file.hpp);
  /// throws std::runtime_error on I/O failure with the target untouched.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parsed CSV document (header + string cells).
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text (quoted fields, embedded commas/quotes/newlines).
CsvDocument parse_csv(std::string_view text);

/// Reads and parses a CSV file; throws std::runtime_error on I/O failure.
CsvDocument read_csv_file(const std::string& path);

}  // namespace qhdl::util
