// String helpers shared by the CSV/CLI/table utilities.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qhdl::util {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Trims ASCII whitespace from both ends.
std::string trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

/// Fixed-precision formatting (std::to_string prints 6 digits always;
/// this trims trailing zeros for readable tables).
std::string format_double(double value, int precision = 6);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view text);

}  // namespace qhdl::util
