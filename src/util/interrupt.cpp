#include "util/interrupt.hpp"

#include <atomic>
#include <csignal>

namespace qhdl::util {

namespace {

std::atomic<bool> g_interrupted{false};

extern "C" void interrupt_signal_handler(int) {
  // Async-signal-safe: a lock-free atomic store and nothing else.
  g_interrupted.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_interrupt_handler() {
  std::signal(SIGINT, interrupt_signal_handler);
  std::signal(SIGTERM, interrupt_signal_handler);
}

bool interrupt_requested() {
  return g_interrupted.load(std::memory_order_relaxed);
}

void request_interrupt() {
  g_interrupted.store(true, std::memory_order_relaxed);
}

void clear_interrupt() {
  g_interrupted.store(false, std::memory_order_relaxed);
}

void throw_if_interrupted() {
  if (interrupt_requested()) throw Interrupted{};
}

}  // namespace qhdl::util
