#include "util/interrupt.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace qhdl::util {

namespace {

std::atomic<bool> g_interrupted{false};

extern "C" void interrupt_signal_handler(int sig) {
  // Async-signal-safe: an atomic exchange, and for the escalation path an
  // immediate process exit. The first signal requests cooperative shutdown
  // (the search saves at the next unit boundary); a SECOND Ctrl-C means the
  // cooperative path is wedged — e.g. a hung worker the supervisor is still
  // draining — and the user must not be trapped, so exit hard right here.
  if (g_interrupted.exchange(true, std::memory_order_relaxed) &&
      sig == SIGINT) {
#if defined(__unix__) || defined(__APPLE__)
    _exit(130);
#else
    std::_Exit(130);
#endif
  }
}

}  // namespace

void install_interrupt_handler() {
  std::signal(SIGINT, interrupt_signal_handler);
  std::signal(SIGTERM, interrupt_signal_handler);
}

bool interrupt_requested() {
  return g_interrupted.load(std::memory_order_relaxed);
}

void request_interrupt() {
  g_interrupted.store(true, std::memory_order_relaxed);
}

void clear_interrupt() {
  g_interrupted.store(false, std::memory_order_relaxed);
}

void throw_if_interrupted() {
  if (interrupt_requested()) throw Interrupted{};
}

}  // namespace qhdl::util
