// Cooperative per-job cancellation for the serving layer.
//
// util/interrupt.hpp carries exactly one process-global flag (Ctrl-C); a
// server needs one cancellation channel *per job* so that a client
// disconnect or an expired per-job deadline aborts that job alone while the
// rest of the queue keeps executing. A CancelToken is that channel: the
// connection/admission side calls cancel() or set_deadline(), and the
// compute side polls throw_if_cancelled() at its unit-window boundaries
// (search::search_once), which is the same granularity the global interrupt
// uses. Cancellation is therefore prompt to within one unit window, and a
// partially executed job leaves its completed units in the result cache —
// a retry resumes instead of recomputing.
#pragma once

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/deadline.hpp"

namespace qhdl::util {

/// Thrown by throw_if_cancelled(). Derives from std::runtime_error so
/// generic error handling may absorb it, but the serving layer catches it
/// explicitly to distinguish "cancelled" replies from "failed" ones.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& reason)
      : std::runtime_error("cancelled: " + reason) {}
};

/// One job's cancellation channel: an explicit flag (first cancel() wins)
/// plus an optional wall-clock deadline. All methods are thread-safe; the
/// not-cancelled fast path is one relaxed atomic load.
class CancelToken {
 public:
  /// Requests cancellation. Idempotent; the first reason is kept.
  void cancel(const std::string& reason);

  /// Arms (or replaces) the wall-clock deadline; expiry counts as
  /// cancellation with reason "deadline exceeded".
  void set_deadline(Deadline deadline);

  bool cancelled() const;

  /// Why the token is cancelled ("" when it is not).
  std::string reason() const;

  /// Throws Cancelled{reason()} when cancelled; otherwise a no-op.
  void throw_if_cancelled() const;

  /// True when cancellation was caused by the deadline rather than an
  /// explicit cancel() call.
  bool deadline_expired() const;

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> flag_{false};
  Deadline deadline_{};  // never expires by default
  std::string reason_;
};

/// Null-tolerant helper for call sites that thread an optional token.
inline void throw_if_cancelled(const CancelToken* token) {
  if (token != nullptr) token->throw_if_cancelled();
}

}  // namespace qhdl::util
