#include "util/cpuid.hpp"

#include <sstream>

namespace qhdl::util::cpuid {

namespace {

#if defined(__x86_64__) || defined(__i386__)

// __builtin_cpu_supports consults the dynamic feature mask the compiler
// runtime fills in (CPUID leaves plus XGETBV, so "supported" means the OS
// context-switches the wide registers too). __builtin_cpu_init() is
// idempotent and makes the mask valid even when queried before the
// runtime's own initializer has run (static-init-time queries).
bool query_avx2() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2");
}
bool query_fma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("fma");
}
bool query_avx512f() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f");
}

#else

bool query_avx2() { return false; }
bool query_fma() { return false; }
bool query_avx512f() { return false; }

#endif

}  // namespace

bool has_avx2() {
  static const bool value = query_avx2();
  return value;
}

bool has_fma() {
  static const bool value = query_fma();
  return value;
}

bool has_avx512f() {
  static const bool value = query_avx512f();
  return value;
}

std::string summary() {
  std::ostringstream oss;
  oss << "avx2=" << (has_avx2() ? 1 : 0) << " fma=" << (has_fma() ? 1 : 0)
      << " avx512f=" << (has_avx512f() ? 1 : 0);
  return oss.str();
}

}  // namespace qhdl::util::cpuid
