// Scalar kernel backends: `generic` (the portable default and the
// bit-identity anchor every SIMD backend is compared against) and
// `reference` (the legacy escape hatch: same scalar loops, but the seed's
// sequential expval reduction, and selecting it flips the force_generic /
// force_reference_nn / force_uncompiled legacy paths on via its descriptor
// flag).
//
// This TU compiles with no -m arch flags and -ffp-contract=off, so the
// scalar loops here — which double as the SIMD backends' small-shape
// fallbacks — generate exactly the baseline code the pre-registry
// statevector.cpp/gemm.cpp loops did.
#include "util/simd/kernels_internal.hpp"

namespace qhdl::util::simd::detail {

void scalar_apply_single_qubit(Complex* amps, std::size_t n,
                               std::size_t stride, const Complex* m) {
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      const std::size_t i0 = block + offset;
      const std::size_t i1 = i0 + stride;
      const Complex a0 = amps[i0];
      const Complex a1 = amps[i1];
      amps[i0] = m[0] * a0 + m[1] * a1;
      amps[i1] = m[2] * a0 + m[3] * a1;
    }
  }
}

void scalar_apply_diagonal(Complex* amps, std::size_t n, std::size_t stride,
                           Complex d0, Complex d1) {
  if (d0 == Complex{1.0, 0.0}) {
    // Phase-type gates (PhaseShift, S, T): only the wire=1 half moves.
    for (std::size_t block = 0; block < n; block += 2 * stride) {
      for (std::size_t offset = 0; offset < stride; ++offset) {
        amps[block + stride + offset] *= d1;
      }
    }
    return;
  }
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      amps[block + offset] *= d0;
      amps[block + stride + offset] *= d1;
    }
  }
}

void scalar_apply_cnot_pairs(Complex* amps, std::size_t quarter,
                             std::size_t lo, std::size_t hi, std::size_t cmask,
                             std::size_t tmask) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
    const std::size_t j = i | tmask;
    const Complex tmp = amps[i];
    amps[i] = amps[j];
    amps[j] = tmp;
  }
}

double scalar_expval_z_sequential(const Complex* amps, std::size_t n,
                                  std::size_t mask) {
  double expectation = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = std::norm(amps[i]);
    expectation += (i & mask) == 0 ? p : -p;
  }
  return expectation;
}

double scalar_expval_z_lanes(const Complex* amps, std::size_t n,
                             std::size_t mask) {
  if (n < 8) return scalar_expval_z_sequential(amps, n, mask);
  // Eight mod-8 residue accumulators; n is a power of two >= 8, so there is
  // no tail. Breaking the single dependent add chain is also why this beats
  // the sequential loop in scalar code.
  double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; i += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      const double p = std::norm(amps[i + l]);
      if (((i + l) & mask) == 0) {
        acc[l] += p;
      } else {
        acc[l] -= p;
      }
    }
  }
  // Canonical combine: pairwise across the 4-lane halves, then a balanced
  // tree — the exact sequence the AVX2/AVX-512 reductions perform.
  const double b0 = acc[0] + acc[4];
  const double b1 = acc[1] + acc[5];
  const double b2 = acc[2] + acc[6];
  const double b3 = acc[3] + acc[7];
  return (b0 + b1) + (b2 + b3);
}

void scalar_apply_single_qubit_batch(Complex* amps, std::size_t n,
                                     std::size_t stride, std::size_t batch,
                                     const Complex* m) {
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Complex* a0 = amps + (block + offset) * batch;
      Complex* a1 = a0 + stride * batch;
      for (std::size_t b = 0; b < batch; ++b) {
        const Complex v0 = a0[b];
        const Complex v1 = a1[b];
        a0[b] = m[0] * v0 + m[1] * v1;
        a1[b] = m[2] * v0 + m[3] * v1;
      }
    }
  }
}

void scalar_apply_diagonal_batch(Complex* amps, std::size_t n,
                                 std::size_t stride, std::size_t batch,
                                 Complex d0, Complex d1) {
  if (d0 == Complex{1.0, 0.0}) {
    for (std::size_t block = 0; block < n; block += 2 * stride) {
      Complex* a1 = amps + (block + stride) * batch;
      for (std::size_t b = 0; b < stride * batch; ++b) a1[b] *= d1;
    }
    return;
  }
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    Complex* a0 = amps + block * batch;
    Complex* a1 = a0 + stride * batch;
    for (std::size_t b = 0; b < stride * batch; ++b) {
      a0[b] *= d0;
      a1[b] *= d1;
    }
  }
}

void scalar_apply_cnot_pairs_batch(Complex* amps, std::size_t quarter,
                                   std::size_t lo, std::size_t hi,
                                   std::size_t cmask, std::size_t tmask,
                                   std::size_t batch) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
    Complex* a = amps + i * batch;
    Complex* b = amps + (i | tmask) * batch;
    for (std::size_t lane = 0; lane < batch; ++lane) {
      const Complex tmp = a[lane];
      a[lane] = b[lane];
      b[lane] = tmp;
    }
  }
}

void scalar_apply_two_qubit_batch(Complex* amps, std::size_t quarter,
                                  std::size_t lo, std::size_t hi,
                                  std::size_t amask, std::size_t bmask,
                                  std::size_t batch, const Complex* m16) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t base = expand_two_zero_bits(k, lo, hi);
    Complex* rows[4] = {
        amps + base * batch,
        amps + (base | bmask) * batch,
        amps + (base | amask) * batch,
        amps + (base | amask | bmask) * batch,
    };
    for (std::size_t b = 0; b < batch; ++b) {
      const Complex a0 = rows[0][b];
      const Complex a1 = rows[1][b];
      const Complex a2 = rows[2][b];
      const Complex a3 = rows[3][b];
      for (std::size_t r = 0; r < 4; ++r) {
        rows[r][b] = m16[4 * r + 0] * a0 + m16[4 * r + 1] * a1 +
                     m16[4 * r + 2] * a2 + m16[4 * r + 3] * a3;
      }
    }
  }
}

void scalar_expval_z_batch(const Complex* amps, std::size_t n,
                           std::size_t mask, std::size_t batch, double* out) {
  // One sequential running sum per row in ascending i — the batched
  // reduction canon (each lane is an independent scalar chain).
  for (std::size_t b = 0; b < batch; ++b) out[b] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Complex* row = amps + i * batch;
    if ((i & mask) == 0) {
      for (std::size_t b = 0; b < batch; ++b) out[b] += std::norm(row[b]);
    } else {
      for (std::size_t b = 0; b < batch; ++b) out[b] -= std::norm(row[b]);
    }
  }
}

void scalar_inner_products_real_batch(const Complex* lhs, const Complex* rhs,
                                      std::size_t n, std::size_t batch,
                                      double* out) {
  for (std::size_t b = 0; b < batch; ++b) out[b] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Complex* l = lhs + i * batch;
    const Complex* r = rhs + i * batch;
    for (std::size_t b = 0; b < batch; ++b) {
      out[b] += l[b].real() * r[b].real() + l[b].imag() * r[b].imag();
    }
  }
}

void scalar_gemm_micro_4x4(std::size_t kc, const double* pa, const double* pb,
                           std::size_t pb_stride, double acc[4][4]) {
  for (std::size_t p = 0; p < kc; ++p) {
    const double* arow = pa + p * 4;
    const double* brow = pb + p * pb_stride;
    for (std::size_t ii = 0; ii < 4; ++ii) {
      const double aval = arow[ii];
      for (std::size_t jj = 0; jj < 4; ++jj) {
        acc[ii][jj] += aval * brow[jj];
      }
    }
  }
}

}  // namespace qhdl::util::simd::detail

namespace qhdl::util::simd {

namespace {

bool always_supported() { return true; }

const Backend kGeneric{
    "generic",
    /*priority=*/0,
    always_supported,
    /*reference=*/false,
    KernelOps{
        detail::scalar_apply_single_qubit,
        detail::scalar_apply_diagonal,
        detail::scalar_apply_cnot_pairs,
        detail::scalar_expval_z_lanes,
        detail::scalar_gemm_micro_4x4,
        detail::scalar_apply_single_qubit_batch,
        detail::scalar_apply_diagonal_batch,
        detail::scalar_apply_cnot_pairs_batch,
        detail::scalar_apply_two_qubit_batch,
        detail::scalar_expval_z_batch,
        detail::scalar_inner_products_real_batch,
    },
};

const Backend kReference{
    "reference",
    /*priority=*/-1,  // never auto-detected; explicit selection only
    always_supported,
    /*reference=*/true,
    KernelOps{
        detail::scalar_apply_single_qubit,
        detail::scalar_apply_diagonal,
        detail::scalar_apply_cnot_pairs,
        detail::scalar_expval_z_sequential,
        detail::scalar_gemm_micro_4x4,
        // The batched ops' per-row sequential sums ARE the seed's order, so
        // the reference backend shares the scalar batched kernels.
        detail::scalar_apply_single_qubit_batch,
        detail::scalar_apply_diagonal_batch,
        detail::scalar_apply_cnot_pairs_batch,
        detail::scalar_apply_two_qubit_batch,
        detail::scalar_expval_z_batch,
        detail::scalar_inner_products_real_batch,
    },
};

}  // namespace

namespace detail {

void register_generic_backends() {
  register_backend(&kGeneric);
  register_backend(&kReference);
}

}  // namespace detail
}  // namespace qhdl::util::simd
