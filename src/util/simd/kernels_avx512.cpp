// AVX-512 kernel backend ("avx512fma"). The capability gate is
// AVX-512F + FMA (the feature pair every AVX-512 server part ships), but no
// value-producing math uses fused multiply-add — FMA skips the intermediate
// rounding and would break the cross-backend bit-identity contract
// (backend_registry.hpp). 512-bit vectors are only used where widening
// cannot change a rounding: the elementwise single-qubit and diagonal
// kernels (independent amplitude pairs per lane). Kernels whose order is
// pinned by the canonical reduction (expval-Z) or the 4-lane packing
// contract (GEMM micro-kernel), and the arithmetic-free CNOT, reuse the
// AVX2 implementations.
#include "util/simd/kernels_internal.hpp"

#if defined(QHDL_SIMD_AVX512) && defined(__x86_64__)

#include <immintrin.h>

#include "util/cpuid.hpp"

namespace qhdl::util::simd::detail {

namespace {

/// Sign mask with -0.0 in the even (real-component) lanes: XOR-negating t2
/// there turns a plain add into AVX2's addsub (a - b == a + (-b) bitwise).
inline __m512d real_lane_sign() {
  return _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
}

/// 512-bit constant complex multiply with the scalar formula's roundings
/// (see kernels_avx2.cpp; AVX-512 has no addsub, so XOR + add). The sign
/// flip goes through the integer domain: _mm512_xor_pd needs AVX-512DQ,
/// which the avx512fma capability gate does not require.
inline __m512d cmul_const(__m512d v, __m512d mr, __m512d mi, __m512d rsign) {
  const __m512d t1 = _mm512_mul_pd(v, mr);
  const __m512d swapped = _mm512_permute_pd(v, 0x55);  // [im, re] per complex
  const __m512d t2 = _mm512_mul_pd(swapped, mi);
  const __m512d t2_signed = _mm512_castsi512_pd(_mm512_xor_epi64(
      _mm512_castpd_si512(t2), _mm512_castpd_si512(rsign)));
  return _mm512_add_pd(t1, t2_signed);
}

void avx512_apply_single_qubit(Complex* amps, std::size_t n,
                               std::size_t stride, const Complex* m) {
  if (stride < 4) {
    avx2_apply_single_qubit(amps, n, stride, m);
    return;
  }
  double* base = reinterpret_cast<double*>(amps);
  const __m512d rsign = real_lane_sign();
  const __m512d m00r = _mm512_set1_pd(m[0].real());
  const __m512d m00i = _mm512_set1_pd(m[0].imag());
  const __m512d m01r = _mm512_set1_pd(m[1].real());
  const __m512d m01i = _mm512_set1_pd(m[1].imag());
  const __m512d m10r = _mm512_set1_pd(m[2].real());
  const __m512d m10i = _mm512_set1_pd(m[2].imag());
  const __m512d m11r = _mm512_set1_pd(m[3].real());
  const __m512d m11i = _mm512_set1_pd(m[3].imag());
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; offset += 4) {
      double* p0 = base + 2 * (block + offset);
      double* p1 = base + 2 * (block + offset + stride);
      const __m512d a0 = _mm512_loadu_pd(p0);
      const __m512d a1 = _mm512_loadu_pd(p1);
      const __m512d r0 = _mm512_add_pd(cmul_const(a0, m00r, m00i, rsign),
                                       cmul_const(a1, m01r, m01i, rsign));
      const __m512d r1 = _mm512_add_pd(cmul_const(a0, m10r, m10i, rsign),
                                       cmul_const(a1, m11r, m11i, rsign));
      _mm512_storeu_pd(p0, r0);
      _mm512_storeu_pd(p1, r1);
    }
  }
}

void avx512_apply_diagonal(Complex* amps, std::size_t n, std::size_t stride,
                           Complex d0, Complex d1) {
  if (stride < 4) {
    avx2_apply_diagonal(amps, n, stride, d0, d1);
    return;
  }
  double* base = reinterpret_cast<double*>(amps);
  const __m512d rsign = real_lane_sign();
  const __m512d d1r = _mm512_set1_pd(d1.real());
  const __m512d d1i = _mm512_set1_pd(d1.imag());
  if (d0 == Complex{1.0, 0.0}) {
    for (std::size_t block = 0; block < n; block += 2 * stride) {
      for (std::size_t offset = 0; offset < stride; offset += 4) {
        double* p = base + 2 * (block + stride + offset);
        _mm512_storeu_pd(p,
                         cmul_const(_mm512_loadu_pd(p), d1r, d1i, rsign));
      }
    }
    return;
  }
  const __m512d d0r = _mm512_set1_pd(d0.real());
  const __m512d d0i = _mm512_set1_pd(d0.imag());
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; offset += 4) {
      double* p0 = base + 2 * (block + offset);
      double* p1 = base + 2 * (block + stride + offset);
      _mm512_storeu_pd(p0, cmul_const(_mm512_loadu_pd(p0), d0r, d0i, rsign));
      _mm512_storeu_pd(p1, cmul_const(_mm512_loadu_pd(p1), d1r, d1i, rsign));
    }
  }
}

// Batched-SoA kernels: 4 complexes (one zmm) per step across the batch
// lanes, falling through to the AVX2 2-lane kernels for short runs and to
// the scalar formula for the last <2 lanes. Lane independence keeps every
// rounding identical to the generic batched kernels regardless of vector
// width (backend_registry.hpp). The batched reductions reuse the AVX2
// implementations — their per-row sequential canon gains nothing from
// wider registers without changing group shape.

void avx512_apply_single_qubit_batch(Complex* amps, std::size_t n,
                                     std::size_t stride, std::size_t batch,
                                     const Complex* m) {
  const std::size_t run = stride * batch;
  if (run < 4) {
    avx2_apply_single_qubit_batch(amps, n, stride, batch, m);
    return;
  }
  double* base = reinterpret_cast<double*>(amps);
  const __m512d rsign = real_lane_sign();
  const __m512d m00r = _mm512_set1_pd(m[0].real());
  const __m512d m00i = _mm512_set1_pd(m[0].imag());
  const __m512d m01r = _mm512_set1_pd(m[1].real());
  const __m512d m01i = _mm512_set1_pd(m[1].imag());
  const __m512d m10r = _mm512_set1_pd(m[2].real());
  const __m512d m10i = _mm512_set1_pd(m[2].imag());
  const __m512d m11r = _mm512_set1_pd(m[3].real());
  const __m512d m11i = _mm512_set1_pd(m[3].imag());
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    double* p0 = base + 2 * block * batch;
    double* p1 = p0 + 2 * run;
    std::size_t j = 0;
    for (; j + 4 <= run; j += 4) {
      const __m512d a0 = _mm512_loadu_pd(p0 + 2 * j);
      const __m512d a1 = _mm512_loadu_pd(p1 + 2 * j);
      const __m512d r0 = _mm512_add_pd(cmul_const(a0, m00r, m00i, rsign),
                                       cmul_const(a1, m01r, m01i, rsign));
      const __m512d r1 = _mm512_add_pd(cmul_const(a0, m10r, m10i, rsign),
                                       cmul_const(a1, m11r, m11i, rsign));
      _mm512_storeu_pd(p0 + 2 * j, r0);
      _mm512_storeu_pd(p1 + 2 * j, r1);
    }
    for (; j < run; ++j) {
      Complex* c0 = amps + block * batch + j;
      Complex* c1 = c0 + run;
      const Complex v0 = *c0;
      const Complex v1 = *c1;
      *c0 = m[0] * v0 + m[1] * v1;
      *c1 = m[2] * v0 + m[3] * v1;
    }
  }
}

void avx512_apply_diagonal_batch(Complex* amps, std::size_t n,
                                 std::size_t stride, std::size_t batch,
                                 Complex d0, Complex d1) {
  const std::size_t run = stride * batch;
  if (run < 4) {
    avx2_apply_diagonal_batch(amps, n, stride, batch, d0, d1);
    return;
  }
  double* base = reinterpret_cast<double*>(amps);
  const __m512d rsign = real_lane_sign();
  const __m512d d1r = _mm512_set1_pd(d1.real());
  const __m512d d1i = _mm512_set1_pd(d1.imag());
  if (d0 == Complex{1.0, 0.0}) {
    for (std::size_t block = 0; block < n; block += 2 * stride) {
      double* p1 = base + 2 * (block + stride) * batch;
      std::size_t j = 0;
      for (; j + 4 <= run; j += 4) {
        _mm512_storeu_pd(
            p1 + 2 * j,
            cmul_const(_mm512_loadu_pd(p1 + 2 * j), d1r, d1i, rsign));
      }
      for (; j < run; ++j) amps[(block + stride) * batch + j] *= d1;
    }
    return;
  }
  const __m512d d0r = _mm512_set1_pd(d0.real());
  const __m512d d0i = _mm512_set1_pd(d0.imag());
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    double* p0 = base + 2 * block * batch;
    double* p1 = p0 + 2 * run;
    std::size_t j = 0;
    for (; j + 4 <= run; j += 4) {
      _mm512_storeu_pd(
          p0 + 2 * j, cmul_const(_mm512_loadu_pd(p0 + 2 * j), d0r, d0i,
                                 rsign));
      _mm512_storeu_pd(
          p1 + 2 * j, cmul_const(_mm512_loadu_pd(p1 + 2 * j), d1r, d1i,
                                 rsign));
    }
    for (; j < run; ++j) {
      amps[block * batch + j] *= d0;
      amps[(block + stride) * batch + j] *= d1;
    }
  }
}

void avx512_apply_two_qubit_batch(Complex* amps, std::size_t quarter,
                                  std::size_t lo, std::size_t hi,
                                  std::size_t amask, std::size_t bmask,
                                  std::size_t batch, const Complex* m16) {
  if (batch < 4) {
    avx2_apply_two_qubit_batch(amps, quarter, lo, hi, amask, bmask, batch,
                               m16);
    return;
  }
  double* base = reinterpret_cast<double*>(amps);
  const __m512d rsign = real_lane_sign();
  __m512d mr[16];
  __m512d mi[16];
  for (std::size_t t = 0; t < 16; ++t) {
    mr[t] = _mm512_set1_pd(m16[t].real());
    mi[t] = _mm512_set1_pd(m16[t].imag());
  }
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t idx = expand_two_zero_bits(k, lo, hi);
    const std::size_t rows[4] = {idx, idx | bmask, idx | amask,
                                 idx | amask | bmask};
    std::size_t j = 0;
    for (; j + 4 <= batch; j += 4) {
      __m512d a[4];
      for (std::size_t r = 0; r < 4; ++r) {
        a[r] = _mm512_loadu_pd(base + 2 * (rows[r] * batch + j));
      }
      for (std::size_t r = 0; r < 4; ++r) {
        __m512d acc = cmul_const(a[0], mr[4 * r], mi[4 * r], rsign);
        acc = _mm512_add_pd(
            acc, cmul_const(a[1], mr[4 * r + 1], mi[4 * r + 1], rsign));
        acc = _mm512_add_pd(
            acc, cmul_const(a[2], mr[4 * r + 2], mi[4 * r + 2], rsign));
        acc = _mm512_add_pd(
            acc, cmul_const(a[3], mr[4 * r + 3], mi[4 * r + 3], rsign));
        _mm512_storeu_pd(base + 2 * (rows[r] * batch + j), acc);
      }
    }
    for (; j < batch; ++j) {
      Complex a[4];
      for (std::size_t r = 0; r < 4; ++r) a[r] = amps[rows[r] * batch + j];
      for (std::size_t r = 0; r < 4; ++r) {
        amps[rows[r] * batch + j] = m16[4 * r + 0] * a[0] +
                                    m16[4 * r + 1] * a[1] +
                                    m16[4 * r + 2] * a[2] +
                                    m16[4 * r + 3] * a[3];
      }
    }
  }
}

bool avx512fma_supported() {
  return util::cpuid::has_avx512f() && util::cpuid::has_fma();
}

}  // namespace

}  // namespace qhdl::util::simd::detail

namespace qhdl::util::simd {

namespace {

const Backend kAvx512{
    "avx512fma",
    /*priority=*/100,
    detail::avx512fma_supported,
    /*reference=*/false,
    KernelOps{
        detail::avx512_apply_single_qubit,
        detail::avx512_apply_diagonal,
        detail::avx2_apply_cnot_pairs,
        detail::avx2_expval_z,
        detail::avx2_gemm_micro_4x4,
        detail::avx512_apply_single_qubit_batch,
        detail::avx512_apply_diagonal_batch,
        detail::avx2_apply_cnot_pairs_batch,
        detail::avx512_apply_two_qubit_batch,
        detail::avx2_expval_z_batch,
        detail::avx2_inner_products_real_batch,
    },
};

}  // namespace

namespace detail {

void register_avx512_backend() { register_backend(&kAvx512); }

}  // namespace detail
}  // namespace qhdl::util::simd

#else  // !QHDL_SIMD_AVX512: nothing to register on this target/toolchain

namespace qhdl::util::simd::detail {

void register_avx512_backend() {}

}  // namespace qhdl::util::simd::detail

#endif
