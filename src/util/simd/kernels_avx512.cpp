// AVX-512 kernel backend ("avx512fma"). The capability gate is
// AVX-512F + FMA (the feature pair every AVX-512 server part ships), but no
// value-producing math uses fused multiply-add — FMA skips the intermediate
// rounding and would break the cross-backend bit-identity contract
// (backend_registry.hpp). 512-bit vectors are only used where widening
// cannot change a rounding: the elementwise single-qubit and diagonal
// kernels (independent amplitude pairs per lane). Kernels whose order is
// pinned by the canonical reduction (expval-Z) or the 4-lane packing
// contract (GEMM micro-kernel), and the arithmetic-free CNOT, reuse the
// AVX2 implementations.
#include "util/simd/kernels_internal.hpp"

#if defined(QHDL_SIMD_AVX512) && defined(__x86_64__)

#include <immintrin.h>

#include "util/cpuid.hpp"

namespace qhdl::util::simd::detail {

namespace {

/// Sign mask with -0.0 in the even (real-component) lanes: XOR-negating t2
/// there turns a plain add into AVX2's addsub (a - b == a + (-b) bitwise).
inline __m512d real_lane_sign() {
  return _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
}

/// 512-bit constant complex multiply with the scalar formula's roundings
/// (see kernels_avx2.cpp; AVX-512 has no addsub, so XOR + add). The sign
/// flip goes through the integer domain: _mm512_xor_pd needs AVX-512DQ,
/// which the avx512fma capability gate does not require.
inline __m512d cmul_const(__m512d v, __m512d mr, __m512d mi, __m512d rsign) {
  const __m512d t1 = _mm512_mul_pd(v, mr);
  const __m512d swapped = _mm512_permute_pd(v, 0x55);  // [im, re] per complex
  const __m512d t2 = _mm512_mul_pd(swapped, mi);
  const __m512d t2_signed = _mm512_castsi512_pd(_mm512_xor_epi64(
      _mm512_castpd_si512(t2), _mm512_castpd_si512(rsign)));
  return _mm512_add_pd(t1, t2_signed);
}

void avx512_apply_single_qubit(Complex* amps, std::size_t n,
                               std::size_t stride, const Complex* m) {
  if (stride < 4) {
    avx2_apply_single_qubit(amps, n, stride, m);
    return;
  }
  double* base = reinterpret_cast<double*>(amps);
  const __m512d rsign = real_lane_sign();
  const __m512d m00r = _mm512_set1_pd(m[0].real());
  const __m512d m00i = _mm512_set1_pd(m[0].imag());
  const __m512d m01r = _mm512_set1_pd(m[1].real());
  const __m512d m01i = _mm512_set1_pd(m[1].imag());
  const __m512d m10r = _mm512_set1_pd(m[2].real());
  const __m512d m10i = _mm512_set1_pd(m[2].imag());
  const __m512d m11r = _mm512_set1_pd(m[3].real());
  const __m512d m11i = _mm512_set1_pd(m[3].imag());
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; offset += 4) {
      double* p0 = base + 2 * (block + offset);
      double* p1 = base + 2 * (block + offset + stride);
      const __m512d a0 = _mm512_loadu_pd(p0);
      const __m512d a1 = _mm512_loadu_pd(p1);
      const __m512d r0 = _mm512_add_pd(cmul_const(a0, m00r, m00i, rsign),
                                       cmul_const(a1, m01r, m01i, rsign));
      const __m512d r1 = _mm512_add_pd(cmul_const(a0, m10r, m10i, rsign),
                                       cmul_const(a1, m11r, m11i, rsign));
      _mm512_storeu_pd(p0, r0);
      _mm512_storeu_pd(p1, r1);
    }
  }
}

void avx512_apply_diagonal(Complex* amps, std::size_t n, std::size_t stride,
                           Complex d0, Complex d1) {
  if (stride < 4) {
    avx2_apply_diagonal(amps, n, stride, d0, d1);
    return;
  }
  double* base = reinterpret_cast<double*>(amps);
  const __m512d rsign = real_lane_sign();
  const __m512d d1r = _mm512_set1_pd(d1.real());
  const __m512d d1i = _mm512_set1_pd(d1.imag());
  if (d0 == Complex{1.0, 0.0}) {
    for (std::size_t block = 0; block < n; block += 2 * stride) {
      for (std::size_t offset = 0; offset < stride; offset += 4) {
        double* p = base + 2 * (block + stride + offset);
        _mm512_storeu_pd(p,
                         cmul_const(_mm512_loadu_pd(p), d1r, d1i, rsign));
      }
    }
    return;
  }
  const __m512d d0r = _mm512_set1_pd(d0.real());
  const __m512d d0i = _mm512_set1_pd(d0.imag());
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; offset += 4) {
      double* p0 = base + 2 * (block + offset);
      double* p1 = base + 2 * (block + stride + offset);
      _mm512_storeu_pd(p0, cmul_const(_mm512_loadu_pd(p0), d0r, d0i, rsign));
      _mm512_storeu_pd(p1, cmul_const(_mm512_loadu_pd(p1), d1r, d1i, rsign));
    }
  }
}

bool avx512fma_supported() {
  return util::cpuid::has_avx512f() && util::cpuid::has_fma();
}

}  // namespace

}  // namespace qhdl::util::simd::detail

namespace qhdl::util::simd {

namespace {

const Backend kAvx512{
    "avx512fma",
    /*priority=*/100,
    detail::avx512fma_supported,
    /*reference=*/false,
    KernelOps{
        detail::avx512_apply_single_qubit,
        detail::avx512_apply_diagonal,
        detail::avx2_apply_cnot_pairs,
        detail::avx2_expval_z,
        detail::avx2_gemm_micro_4x4,
    },
};

}  // namespace

namespace detail {

void register_avx512_backend() { register_backend(&kAvx512); }

}  // namespace detail
}  // namespace qhdl::util::simd

#else  // !QHDL_SIMD_AVX512: nothing to register on this target/toolchain

namespace qhdl::util::simd::detail {

void register_avx512_backend() {}

}  // namespace qhdl::util::simd::detail

#endif
