// AVX2 kernel backend. Every kernel is bit-identical to the generic scalar
// backend (EXPECT_EQ-enforced by the BackendEquivalence / GemmBackend
// suites):
//   * complex multiplies use mul / in-lane shuffle / mul / addsub — the
//     same two roundings per component as the scalar (a.re*c.re - a.im*c.im,
//     a.im*c.re + a.re*c.im) formula;
//   * no FMA anywhere (it would skip a rounding), and the TU compiles with
//     -ffp-contract=off so the compiler cannot contract the scalar tails;
//   * expval-Z implements the canonical mod-8 lane reduction with two
//     4-lane accumulators, sign flips done by XORing the sign bit (exact);
//   * CNOT is a pure permutation (wide loads/stores, no arithmetic);
//   * the GEMM micro-kernel broadcasts A and keeps each accumulator
//     element's ascending-p multiply/add order.
// Shapes the vector paths cannot cover (tiny states, awkward strides) fall
// back to the scalar kernels compiled in kernels_generic.cpp — the exact
// generic code, not a re-compilation under -mavx2.
#include "util/simd/kernels_internal.hpp"

#if defined(QHDL_SIMD_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "util/cpuid.hpp"

namespace qhdl::util::simd::detail {

namespace {

/// Multiplies the two packed complex doubles in `v` by the constant
/// (mr + i*mi) broadcast across `mr` / `mi`: re' = re*mr - im*mi,
/// im' = im*mr + re*mi — exactly the scalar complex-multiply roundings.
inline __m256d cmul_const(__m256d v, __m256d mr, __m256d mi) {
  const __m256d t1 = _mm256_mul_pd(v, mr);
  const __m256d swapped = _mm256_permute_pd(v, 0x5);  // [im, re] per complex
  const __m256d t2 = _mm256_mul_pd(swapped, mi);
  // addsub: even lanes t1 - t2 (real), odd lanes t1 + t2 (imag).
  return _mm256_addsub_pd(t1, t2);
}

}  // namespace

void avx2_apply_single_qubit(Complex* amps, std::size_t n, std::size_t stride,
                             const Complex* m) {
  double* base = reinterpret_cast<double*>(amps);
  const __m256d m00r = _mm256_set1_pd(m[0].real());
  const __m256d m00i = _mm256_set1_pd(m[0].imag());
  const __m256d m01r = _mm256_set1_pd(m[1].real());
  const __m256d m01i = _mm256_set1_pd(m[1].imag());
  const __m256d m10r = _mm256_set1_pd(m[2].real());
  const __m256d m10i = _mm256_set1_pd(m[2].imag());
  const __m256d m11r = _mm256_set1_pd(m[3].real());
  const __m256d m11i = _mm256_set1_pd(m[3].imag());
  if (stride >= 2) {
    // The a0 and a1 runs are contiguous: two complexes (one ymm) per step.
    for (std::size_t block = 0; block < n; block += 2 * stride) {
      for (std::size_t offset = 0; offset < stride; offset += 2) {
        double* p0 = base + 2 * (block + offset);
        double* p1 = base + 2 * (block + offset + stride);
        const __m256d a0 = _mm256_loadu_pd(p0);
        const __m256d a1 = _mm256_loadu_pd(p1);
        const __m256d r0 = _mm256_add_pd(cmul_const(a0, m00r, m00i),
                                         cmul_const(a1, m01r, m01i));
        const __m256d r1 = _mm256_add_pd(cmul_const(a0, m10r, m10i),
                                         cmul_const(a1, m11r, m11i));
        _mm256_storeu_pd(p0, r0);
        _mm256_storeu_pd(p1, r1);
      }
    }
    return;
  }
  if (n < 4) {  // one amplitude pair: plain scalar
    scalar_apply_single_qubit(amps, n, stride, m);
    return;
  }
  // stride == 1: pairs are adjacent. Load two pairs (four complexes),
  // regroup a0s/a1s across the 128-bit halves (pure moves), compute, and
  // regroup back.
  for (std::size_t i = 0; i < n; i += 4) {
    double* p = base + 2 * i;
    const __m256d v01 = _mm256_loadu_pd(p);      // pair 0: [a0, a1]
    const __m256d v23 = _mm256_loadu_pd(p + 4);  // pair 1: [a0, a1]
    const __m256d a0 = _mm256_permute2f128_pd(v01, v23, 0x20);
    const __m256d a1 = _mm256_permute2f128_pd(v01, v23, 0x31);
    const __m256d r0 = _mm256_add_pd(cmul_const(a0, m00r, m00i),
                                     cmul_const(a1, m01r, m01i));
    const __m256d r1 = _mm256_add_pd(cmul_const(a0, m10r, m10i),
                                     cmul_const(a1, m11r, m11i));
    _mm256_storeu_pd(p, _mm256_permute2f128_pd(r0, r1, 0x20));
    _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(r0, r1, 0x31));
  }
}

void avx2_apply_diagonal(Complex* amps, std::size_t n, std::size_t stride,
                         Complex d0, Complex d1) {
  double* base = reinterpret_cast<double*>(amps);
  const __m256d d1r = _mm256_set1_pd(d1.real());
  const __m256d d1i = _mm256_set1_pd(d1.imag());
  if (d0 == Complex{1.0, 0.0}) {
    // Phase-type fast path: only the wire=1 half moves.
    if (stride >= 2) {
      for (std::size_t block = 0; block < n; block += 2 * stride) {
        for (std::size_t offset = 0; offset < stride; offset += 2) {
          double* p = base + 2 * (block + stride + offset);
          _mm256_storeu_pd(p, cmul_const(_mm256_loadu_pd(p), d1r, d1i));
        }
      }
      return;
    }
    // stride == 1: odd-index complexes move; keep the even complex of each
    // ymm via a blend (untouched lanes pass through bit-exactly).
    for (std::size_t i = 0; i < n; i += 2) {
      double* p = base + 2 * i;
      const __m256d v = _mm256_loadu_pd(p);
      const __m256d r = cmul_const(v, d1r, d1i);
      _mm256_storeu_pd(p, _mm256_blend_pd(v, r, 0xC));
    }
    return;
  }
  const __m256d d0r = _mm256_set1_pd(d0.real());
  const __m256d d0i = _mm256_set1_pd(d0.imag());
  if (stride >= 2) {
    for (std::size_t block = 0; block < n; block += 2 * stride) {
      for (std::size_t offset = 0; offset < stride; offset += 2) {
        double* p0 = base + 2 * (block + offset);
        double* p1 = base + 2 * (block + stride + offset);
        _mm256_storeu_pd(p0, cmul_const(_mm256_loadu_pd(p0), d0r, d0i));
        _mm256_storeu_pd(p1, cmul_const(_mm256_loadu_pd(p1), d1r, d1i));
      }
    }
    return;
  }
  // stride == 1: lanes alternate d0 (even complex) / d1 (odd complex).
  const __m256d dr = _mm256_set_pd(d1.real(), d1.real(), d0.real(), d0.real());
  const __m256d di = _mm256_set_pd(d1.imag(), d1.imag(), d0.imag(), d0.imag());
  for (std::size_t i = 0; i < n; i += 2) {
    double* p = base + 2 * i;
    _mm256_storeu_pd(p, cmul_const(_mm256_loadu_pd(p), dr, di));
  }
}

void avx2_apply_cnot_pairs(Complex* amps, std::size_t quarter, std::size_t lo,
                           std::size_t hi, std::size_t cmask,
                           std::size_t tmask) {
  double* base = reinterpret_cast<double*>(amps);
  if (tmask == 1) {
    // Target is the last qubit: each swap pair is adjacent and
    // 32-byte-spanning — swap the 128-bit halves of one ymm.
    for (std::size_t k = 0; k < quarter; ++k) {
      const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
      double* p = base + 2 * i;
      const __m256d v = _mm256_loadu_pd(p);
      _mm256_storeu_pd(p, _mm256_permute2f128_pd(v, v, 0x1));
    }
    return;
  }
  if (lo >= 2) {
    // Compact indices below the lo bit map to contiguous amplitudes, so
    // adjacent k share one expansion: two complexes per side per step.
    for (std::size_t k = 0; k < quarter; k += 2) {
      const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
      double* p = base + 2 * i;
      double* q = base + 2 * (i | tmask);
      const __m256d a = _mm256_loadu_pd(p);
      const __m256d b = _mm256_loadu_pd(q);
      _mm256_storeu_pd(p, b);
      _mm256_storeu_pd(q, a);
    }
    return;
  }
  // lo == 1 with the control on the last qubit: strided single swaps.
  scalar_apply_cnot_pairs(amps, quarter, lo, hi, cmask, tmask);
}

double avx2_expval_z(const Complex* amps, std::size_t n, std::size_t mask) {
  if (n < 8) return scalar_expval_z_sequential(amps, n, mask);
  const double* base = reinterpret_cast<const double*>(amps);
  const __m256d neg = _mm256_set1_pd(-0.0);
  const __m256d none = _mm256_setzero_pd();
  // hadd interleaves the residues: the `a` accumulator lanes hold residue
  // sums [0, 2, 1, 3] of each 8-block, the `b` lanes [4, 6, 5, 7]. Sign
  // vectors follow that layout; XOR with -0.0 flips the sign exactly, and
  // acc + (-p) is bit-identical to acc - p.
  __m256d sign_a = none;
  __m256d sign_b = none;
  if (mask == 4) {
    sign_b = neg;
  } else if (mask == 2) {
    sign_a = sign_b = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  } else if (mask == 1) {
    sign_a = sign_b = _mm256_set_pd(-0.0, -0.0, 0.0, 0.0);
  }
  __m256d acc_a = none;
  __m256d acc_b = none;
  for (std::size_t i = 0; i < n; i += 8) {
    if (mask >= 8) {
      const __m256d blocksign = (i & mask) != 0 ? neg : none;
      sign_a = blocksign;
      sign_b = blocksign;
    }
    const double* p = base + 2 * i;
    const __m256d s0 = _mm256_mul_pd(_mm256_loadu_pd(p), _mm256_loadu_pd(p));
    const __m256d s1 =
        _mm256_mul_pd(_mm256_loadu_pd(p + 4), _mm256_loadu_pd(p + 4));
    const __m256d s2 =
        _mm256_mul_pd(_mm256_loadu_pd(p + 8), _mm256_loadu_pd(p + 8));
    const __m256d s3 =
        _mm256_mul_pd(_mm256_loadu_pd(p + 12), _mm256_loadu_pd(p + 12));
    // hadd(re², im²) = one rounding per norm, same as the scalar formula.
    const __m256d na = _mm256_hadd_pd(s0, s1);  // norms [0, 2, 1, 3]
    const __m256d nb = _mm256_hadd_pd(s2, s3);  // norms [4, 6, 5, 7]
    acc_a = _mm256_add_pd(acc_a, _mm256_xor_pd(na, sign_a));
    acc_b = _mm256_add_pd(acc_b, _mm256_xor_pd(nb, sign_b));
  }
  // c holds [b0, b2, b1, b3] of the canonical combine b_l = acc_l +
  // acc_{l+4}; finish with the canonical tree (b0 + b1) + (b2 + b3).
  const __m256d c = _mm256_add_pd(acc_a, acc_b);
  alignas(32) double lane[4];
  _mm256_store_pd(lane, c);
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

// Batched-SoA kernels. Amplitude row i is a contiguous run of `batch`
// complexes; vectorization is ACROSS those lanes (2 complexes per ymm,
// unit-stride, no shuffles), so each lane executes the scalar per-row
// formula unchanged — the bit-identity argument is lane independence, not
// a reduction-order proof. Odd trailing lanes run the scalar formula
// directly (this TU has -ffp-contract=off, so the tail code is exact).

void avx2_apply_single_qubit_batch(Complex* amps, std::size_t n,
                                   std::size_t stride, std::size_t batch,
                                   const Complex* m) {
  double* base = reinterpret_cast<double*>(amps);
  const __m256d m00r = _mm256_set1_pd(m[0].real());
  const __m256d m00i = _mm256_set1_pd(m[0].imag());
  const __m256d m01r = _mm256_set1_pd(m[1].real());
  const __m256d m01i = _mm256_set1_pd(m[1].imag());
  const __m256d m10r = _mm256_set1_pd(m[2].real());
  const __m256d m10i = _mm256_set1_pd(m[2].imag());
  const __m256d m11r = _mm256_set1_pd(m[3].real());
  const __m256d m11i = _mm256_set1_pd(m[3].imag());
  // Rows block+offset for offset in [0, stride) are contiguous in SoA, so
  // the offset and lane loops collapse into one run of stride*batch
  // complexes per half.
  const std::size_t run = stride * batch;
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    double* p0 = base + 2 * block * batch;
    double* p1 = p0 + 2 * run;
    std::size_t j = 0;
    for (; j + 2 <= run; j += 2) {
      const __m256d a0 = _mm256_loadu_pd(p0 + 2 * j);
      const __m256d a1 = _mm256_loadu_pd(p1 + 2 * j);
      const __m256d r0 = _mm256_add_pd(cmul_const(a0, m00r, m00i),
                                       cmul_const(a1, m01r, m01i));
      const __m256d r1 = _mm256_add_pd(cmul_const(a0, m10r, m10i),
                                       cmul_const(a1, m11r, m11i));
      _mm256_storeu_pd(p0 + 2 * j, r0);
      _mm256_storeu_pd(p1 + 2 * j, r1);
    }
    for (; j < run; ++j) {
      Complex* c0 = amps + block * batch + j;
      Complex* c1 = c0 + run;
      const Complex v0 = *c0;
      const Complex v1 = *c1;
      *c0 = m[0] * v0 + m[1] * v1;
      *c1 = m[2] * v0 + m[3] * v1;
    }
  }
}

void avx2_apply_diagonal_batch(Complex* amps, std::size_t n,
                               std::size_t stride, std::size_t batch,
                               Complex d0, Complex d1) {
  double* base = reinterpret_cast<double*>(amps);
  const __m256d d1r = _mm256_set1_pd(d1.real());
  const __m256d d1i = _mm256_set1_pd(d1.imag());
  const std::size_t run = stride * batch;
  if (d0 == Complex{1.0, 0.0}) {
    for (std::size_t block = 0; block < n; block += 2 * stride) {
      double* p1 = base + 2 * (block + stride) * batch;
      std::size_t j = 0;
      for (; j + 2 <= run; j += 2) {
        _mm256_storeu_pd(p1 + 2 * j,
                         cmul_const(_mm256_loadu_pd(p1 + 2 * j), d1r, d1i));
      }
      for (; j < run; ++j) amps[(block + stride) * batch + j] *= d1;
    }
    return;
  }
  const __m256d d0r = _mm256_set1_pd(d0.real());
  const __m256d d0i = _mm256_set1_pd(d0.imag());
  for (std::size_t block = 0; block < n; block += 2 * stride) {
    double* p0 = base + 2 * block * batch;
    double* p1 = p0 + 2 * run;
    std::size_t j = 0;
    for (; j + 2 <= run; j += 2) {
      _mm256_storeu_pd(p0 + 2 * j,
                       cmul_const(_mm256_loadu_pd(p0 + 2 * j), d0r, d0i));
      _mm256_storeu_pd(p1 + 2 * j,
                       cmul_const(_mm256_loadu_pd(p1 + 2 * j), d1r, d1i));
    }
    for (; j < run; ++j) {
      amps[block * batch + j] *= d0;
      amps[(block + stride) * batch + j] *= d1;
    }
  }
}

void avx2_apply_cnot_pairs_batch(Complex* amps, std::size_t quarter,
                                 std::size_t lo, std::size_t hi,
                                 std::size_t cmask, std::size_t tmask,
                                 std::size_t batch) {
  double* base = reinterpret_cast<double*>(amps);
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
    double* p = base + 2 * i * batch;
    double* q = base + 2 * (i | tmask) * batch;
    std::size_t j = 0;
    for (; j + 2 <= batch; j += 2) {
      const __m256d a = _mm256_loadu_pd(p + 2 * j);
      const __m256d b = _mm256_loadu_pd(q + 2 * j);
      _mm256_storeu_pd(p + 2 * j, b);
      _mm256_storeu_pd(q + 2 * j, a);
    }
    for (; j < batch; ++j) {
      const Complex tmp = amps[i * batch + j];
      amps[i * batch + j] = amps[(i | tmask) * batch + j];
      amps[(i | tmask) * batch + j] = tmp;
    }
  }
}

void avx2_apply_two_qubit_batch(Complex* amps, std::size_t quarter,
                                std::size_t lo, std::size_t hi,
                                std::size_t amask, std::size_t bmask,
                                std::size_t batch, const Complex* m16) {
  double* base = reinterpret_cast<double*>(amps);
  __m256d mr[16];
  __m256d mi[16];
  for (std::size_t t = 0; t < 16; ++t) {
    mr[t] = _mm256_set1_pd(m16[t].real());
    mi[t] = _mm256_set1_pd(m16[t].imag());
  }
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t idx = expand_two_zero_bits(k, lo, hi);
    const std::size_t rows[4] = {idx, idx | bmask, idx | amask,
                                 idx | amask | bmask};
    std::size_t j = 0;
    for (; j + 2 <= batch; j += 2) {
      __m256d a[4];
      for (std::size_t r = 0; r < 4; ++r) {
        a[r] = _mm256_loadu_pd(base + 2 * (rows[r] * batch + j));
      }
      for (std::size_t r = 0; r < 4; ++r) {
        // Left-to-right association, matching the scalar 4x4 row formula.
        __m256d acc = cmul_const(a[0], mr[4 * r], mi[4 * r]);
        acc = _mm256_add_pd(acc, cmul_const(a[1], mr[4 * r + 1],
                                            mi[4 * r + 1]));
        acc = _mm256_add_pd(acc, cmul_const(a[2], mr[4 * r + 2],
                                            mi[4 * r + 2]));
        acc = _mm256_add_pd(acc, cmul_const(a[3], mr[4 * r + 3],
                                            mi[4 * r + 3]));
        _mm256_storeu_pd(base + 2 * (rows[r] * batch + j), acc);
      }
    }
    for (; j < batch; ++j) {
      Complex a[4];
      for (std::size_t r = 0; r < 4; ++r) a[r] = amps[rows[r] * batch + j];
      for (std::size_t r = 0; r < 4; ++r) {
        amps[rows[r] * batch + j] = m16[4 * r + 0] * a[0] +
                                    m16[4 * r + 1] * a[1] +
                                    m16[4 * r + 2] * a[2] +
                                    m16[4 * r + 3] * a[3];
      }
    }
  }
}

void avx2_expval_z_batch(const Complex* amps, std::size_t n, std::size_t mask,
                         std::size_t batch, double* out) {
  const double* base = reinterpret_cast<const double*>(amps);
  const __m256d neg = _mm256_set1_pd(-0.0);
  const __m256d none = _mm256_setzero_pd();
  std::size_t b = 0;
  // 4-lane groups; the accumulator stays in hadd's interleaved lane order
  // [b, b+2, b+1, b+3] through the whole i loop (each lane is an
  // independent chain, so register position is irrelevant to rounding) and
  // is unpermuted only at the final scalar store.
  for (; b + 4 <= batch; b += 4) {
    __m256d acc = none;
    for (std::size_t i = 0; i < n; ++i) {
      const double* p = base + 2 * (i * batch + b);
      const __m256d v0 = _mm256_loadu_pd(p);
      const __m256d v1 = _mm256_loadu_pd(p + 4);
      const __m256d norms = _mm256_hadd_pd(_mm256_mul_pd(v0, v0),
                                           _mm256_mul_pd(v1, v1));
      // acc + (-p) is bit-identical to acc - p.
      const __m256d sign = (i & mask) != 0 ? neg : none;
      acc = _mm256_add_pd(acc, _mm256_xor_pd(norms, sign));
    }
    alignas(32) double lane[4];
    _mm256_store_pd(lane, acc);
    out[b] = lane[0];
    out[b + 1] = lane[2];
    out[b + 2] = lane[1];
    out[b + 3] = lane[3];
  }
  for (; b < batch; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = std::norm(amps[i * batch + b]);
      if ((i & mask) == 0) {
        sum += p;
      } else {
        sum -= p;
      }
    }
    out[b] = sum;
  }
}

void avx2_inner_products_real_batch(const Complex* lhs, const Complex* rhs,
                                    std::size_t n, std::size_t batch,
                                    double* out) {
  const double* lbase = reinterpret_cast<const double*>(lhs);
  const double* rbase = reinterpret_cast<const double*>(rhs);
  std::size_t b = 0;
  for (; b + 4 <= batch; b += 4) {
    __m256d acc = _mm256_setzero_pd();  // lane order [b, b+2, b+1, b+3]
    for (std::size_t i = 0; i < n; ++i) {
      const double* lp = lbase + 2 * (i * batch + b);
      const double* rp = rbase + 2 * (i * batch + b);
      const __m256d t0 =
          _mm256_mul_pd(_mm256_loadu_pd(lp), _mm256_loadu_pd(rp));
      const __m256d t1 =
          _mm256_mul_pd(_mm256_loadu_pd(lp + 4), _mm256_loadu_pd(rp + 4));
      // hadd(re*re, im*im): the one add rounding the scalar formula does.
      acc = _mm256_add_pd(acc, _mm256_hadd_pd(t0, t1));
    }
    alignas(32) double lane[4];
    _mm256_store_pd(lane, acc);
    out[b] = lane[0];
    out[b + 1] = lane[2];
    out[b + 2] = lane[1];
    out[b + 3] = lane[3];
  }
  for (; b < batch; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Complex l = lhs[i * batch + b];
      const Complex r = rhs[i * batch + b];
      sum += l.real() * r.real() + l.imag() * r.imag();
    }
    out[b] = sum;
  }
}

void avx2_gemm_micro_4x4(std::size_t kc, const double* pa, const double* pb,
                         std::size_t pb_stride, double acc[4][4]) {
  __m256d c0 = _mm256_loadu_pd(acc[0]);
  __m256d c1 = _mm256_loadu_pd(acc[1]);
  __m256d c2 = _mm256_loadu_pd(acc[2]);
  __m256d c3 = _mm256_loadu_pd(acc[3]);
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256d b = _mm256_loadu_pd(pb + p * pb_stride);
    const double* arow = pa + p * 4;
    // Explicit mul then add (no FMA): per element the exact ascending-p
    // multiply/add sequence of the scalar tile loop.
    c0 = _mm256_add_pd(c0, _mm256_mul_pd(_mm256_set1_pd(arow[0]), b));
    c1 = _mm256_add_pd(c1, _mm256_mul_pd(_mm256_set1_pd(arow[1]), b));
    c2 = _mm256_add_pd(c2, _mm256_mul_pd(_mm256_set1_pd(arow[2]), b));
    c3 = _mm256_add_pd(c3, _mm256_mul_pd(_mm256_set1_pd(arow[3]), b));
  }
  _mm256_storeu_pd(acc[0], c0);
  _mm256_storeu_pd(acc[1], c1);
  _mm256_storeu_pd(acc[2], c2);
  _mm256_storeu_pd(acc[3], c3);
}

}  // namespace qhdl::util::simd::detail

namespace qhdl::util::simd {

namespace {

const Backend kAvx2{
    "avx2",
    /*priority=*/50,
    util::cpuid::has_avx2,
    /*reference=*/false,
    KernelOps{
        detail::avx2_apply_single_qubit,
        detail::avx2_apply_diagonal,
        detail::avx2_apply_cnot_pairs,
        detail::avx2_expval_z,
        detail::avx2_gemm_micro_4x4,
        detail::avx2_apply_single_qubit_batch,
        detail::avx2_apply_diagonal_batch,
        detail::avx2_apply_cnot_pairs_batch,
        detail::avx2_apply_two_qubit_batch,
        detail::avx2_expval_z_batch,
        detail::avx2_inner_products_real_batch,
    },
};

}  // namespace

namespace detail {

void register_avx2_backend() { register_backend(&kAvx2); }

}  // namespace detail
}  // namespace qhdl::util::simd

#else  // !QHDL_SIMD_AVX2: nothing to register on this target/toolchain

namespace qhdl::util::simd::detail {

void register_avx2_backend() {}

}  // namespace qhdl::util::simd::detail

#endif
