// AVX2 kernel backend. Every kernel is bit-identical to the generic scalar
// backend (EXPECT_EQ-enforced by the BackendEquivalence / GemmBackend
// suites):
//   * complex multiplies use mul / in-lane shuffle / mul / addsub — the
//     same two roundings per component as the scalar (a.re*c.re - a.im*c.im,
//     a.im*c.re + a.re*c.im) formula;
//   * no FMA anywhere (it would skip a rounding), and the TU compiles with
//     -ffp-contract=off so the compiler cannot contract the scalar tails;
//   * expval-Z implements the canonical mod-8 lane reduction with two
//     4-lane accumulators, sign flips done by XORing the sign bit (exact);
//   * CNOT is a pure permutation (wide loads/stores, no arithmetic);
//   * the GEMM micro-kernel broadcasts A and keeps each accumulator
//     element's ascending-p multiply/add order.
// Shapes the vector paths cannot cover (tiny states, awkward strides) fall
// back to the scalar kernels compiled in kernels_generic.cpp — the exact
// generic code, not a re-compilation under -mavx2.
#include "util/simd/kernels_internal.hpp"

#if defined(QHDL_SIMD_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "util/cpuid.hpp"

namespace qhdl::util::simd::detail {

namespace {

/// Multiplies the two packed complex doubles in `v` by the constant
/// (mr + i*mi) broadcast across `mr` / `mi`: re' = re*mr - im*mi,
/// im' = im*mr + re*mi — exactly the scalar complex-multiply roundings.
inline __m256d cmul_const(__m256d v, __m256d mr, __m256d mi) {
  const __m256d t1 = _mm256_mul_pd(v, mr);
  const __m256d swapped = _mm256_permute_pd(v, 0x5);  // [im, re] per complex
  const __m256d t2 = _mm256_mul_pd(swapped, mi);
  // addsub: even lanes t1 - t2 (real), odd lanes t1 + t2 (imag).
  return _mm256_addsub_pd(t1, t2);
}

}  // namespace

void avx2_apply_single_qubit(Complex* amps, std::size_t n, std::size_t stride,
                             const Complex* m) {
  double* base = reinterpret_cast<double*>(amps);
  const __m256d m00r = _mm256_set1_pd(m[0].real());
  const __m256d m00i = _mm256_set1_pd(m[0].imag());
  const __m256d m01r = _mm256_set1_pd(m[1].real());
  const __m256d m01i = _mm256_set1_pd(m[1].imag());
  const __m256d m10r = _mm256_set1_pd(m[2].real());
  const __m256d m10i = _mm256_set1_pd(m[2].imag());
  const __m256d m11r = _mm256_set1_pd(m[3].real());
  const __m256d m11i = _mm256_set1_pd(m[3].imag());
  if (stride >= 2) {
    // The a0 and a1 runs are contiguous: two complexes (one ymm) per step.
    for (std::size_t block = 0; block < n; block += 2 * stride) {
      for (std::size_t offset = 0; offset < stride; offset += 2) {
        double* p0 = base + 2 * (block + offset);
        double* p1 = base + 2 * (block + offset + stride);
        const __m256d a0 = _mm256_loadu_pd(p0);
        const __m256d a1 = _mm256_loadu_pd(p1);
        const __m256d r0 = _mm256_add_pd(cmul_const(a0, m00r, m00i),
                                         cmul_const(a1, m01r, m01i));
        const __m256d r1 = _mm256_add_pd(cmul_const(a0, m10r, m10i),
                                         cmul_const(a1, m11r, m11i));
        _mm256_storeu_pd(p0, r0);
        _mm256_storeu_pd(p1, r1);
      }
    }
    return;
  }
  if (n < 4) {  // one amplitude pair: plain scalar
    scalar_apply_single_qubit(amps, n, stride, m);
    return;
  }
  // stride == 1: pairs are adjacent. Load two pairs (four complexes),
  // regroup a0s/a1s across the 128-bit halves (pure moves), compute, and
  // regroup back.
  for (std::size_t i = 0; i < n; i += 4) {
    double* p = base + 2 * i;
    const __m256d v01 = _mm256_loadu_pd(p);      // pair 0: [a0, a1]
    const __m256d v23 = _mm256_loadu_pd(p + 4);  // pair 1: [a0, a1]
    const __m256d a0 = _mm256_permute2f128_pd(v01, v23, 0x20);
    const __m256d a1 = _mm256_permute2f128_pd(v01, v23, 0x31);
    const __m256d r0 = _mm256_add_pd(cmul_const(a0, m00r, m00i),
                                     cmul_const(a1, m01r, m01i));
    const __m256d r1 = _mm256_add_pd(cmul_const(a0, m10r, m10i),
                                     cmul_const(a1, m11r, m11i));
    _mm256_storeu_pd(p, _mm256_permute2f128_pd(r0, r1, 0x20));
    _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(r0, r1, 0x31));
  }
}

void avx2_apply_diagonal(Complex* amps, std::size_t n, std::size_t stride,
                         Complex d0, Complex d1) {
  double* base = reinterpret_cast<double*>(amps);
  const __m256d d1r = _mm256_set1_pd(d1.real());
  const __m256d d1i = _mm256_set1_pd(d1.imag());
  if (d0 == Complex{1.0, 0.0}) {
    // Phase-type fast path: only the wire=1 half moves.
    if (stride >= 2) {
      for (std::size_t block = 0; block < n; block += 2 * stride) {
        for (std::size_t offset = 0; offset < stride; offset += 2) {
          double* p = base + 2 * (block + stride + offset);
          _mm256_storeu_pd(p, cmul_const(_mm256_loadu_pd(p), d1r, d1i));
        }
      }
      return;
    }
    // stride == 1: odd-index complexes move; keep the even complex of each
    // ymm via a blend (untouched lanes pass through bit-exactly).
    for (std::size_t i = 0; i < n; i += 2) {
      double* p = base + 2 * i;
      const __m256d v = _mm256_loadu_pd(p);
      const __m256d r = cmul_const(v, d1r, d1i);
      _mm256_storeu_pd(p, _mm256_blend_pd(v, r, 0xC));
    }
    return;
  }
  const __m256d d0r = _mm256_set1_pd(d0.real());
  const __m256d d0i = _mm256_set1_pd(d0.imag());
  if (stride >= 2) {
    for (std::size_t block = 0; block < n; block += 2 * stride) {
      for (std::size_t offset = 0; offset < stride; offset += 2) {
        double* p0 = base + 2 * (block + offset);
        double* p1 = base + 2 * (block + stride + offset);
        _mm256_storeu_pd(p0, cmul_const(_mm256_loadu_pd(p0), d0r, d0i));
        _mm256_storeu_pd(p1, cmul_const(_mm256_loadu_pd(p1), d1r, d1i));
      }
    }
    return;
  }
  // stride == 1: lanes alternate d0 (even complex) / d1 (odd complex).
  const __m256d dr = _mm256_set_pd(d1.real(), d1.real(), d0.real(), d0.real());
  const __m256d di = _mm256_set_pd(d1.imag(), d1.imag(), d0.imag(), d0.imag());
  for (std::size_t i = 0; i < n; i += 2) {
    double* p = base + 2 * i;
    _mm256_storeu_pd(p, cmul_const(_mm256_loadu_pd(p), dr, di));
  }
}

void avx2_apply_cnot_pairs(Complex* amps, std::size_t quarter, std::size_t lo,
                           std::size_t hi, std::size_t cmask,
                           std::size_t tmask) {
  double* base = reinterpret_cast<double*>(amps);
  if (tmask == 1) {
    // Target is the last qubit: each swap pair is adjacent and
    // 32-byte-spanning — swap the 128-bit halves of one ymm.
    for (std::size_t k = 0; k < quarter; ++k) {
      const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
      double* p = base + 2 * i;
      const __m256d v = _mm256_loadu_pd(p);
      _mm256_storeu_pd(p, _mm256_permute2f128_pd(v, v, 0x1));
    }
    return;
  }
  if (lo >= 2) {
    // Compact indices below the lo bit map to contiguous amplitudes, so
    // adjacent k share one expansion: two complexes per side per step.
    for (std::size_t k = 0; k < quarter; k += 2) {
      const std::size_t i = expand_two_zero_bits(k, lo, hi) | cmask;
      double* p = base + 2 * i;
      double* q = base + 2 * (i | tmask);
      const __m256d a = _mm256_loadu_pd(p);
      const __m256d b = _mm256_loadu_pd(q);
      _mm256_storeu_pd(p, b);
      _mm256_storeu_pd(q, a);
    }
    return;
  }
  // lo == 1 with the control on the last qubit: strided single swaps.
  scalar_apply_cnot_pairs(amps, quarter, lo, hi, cmask, tmask);
}

double avx2_expval_z(const Complex* amps, std::size_t n, std::size_t mask) {
  if (n < 8) return scalar_expval_z_sequential(amps, n, mask);
  const double* base = reinterpret_cast<const double*>(amps);
  const __m256d neg = _mm256_set1_pd(-0.0);
  const __m256d none = _mm256_setzero_pd();
  // hadd interleaves the residues: the `a` accumulator lanes hold residue
  // sums [0, 2, 1, 3] of each 8-block, the `b` lanes [4, 6, 5, 7]. Sign
  // vectors follow that layout; XOR with -0.0 flips the sign exactly, and
  // acc + (-p) is bit-identical to acc - p.
  __m256d sign_a = none;
  __m256d sign_b = none;
  if (mask == 4) {
    sign_b = neg;
  } else if (mask == 2) {
    sign_a = sign_b = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  } else if (mask == 1) {
    sign_a = sign_b = _mm256_set_pd(-0.0, -0.0, 0.0, 0.0);
  }
  __m256d acc_a = none;
  __m256d acc_b = none;
  for (std::size_t i = 0; i < n; i += 8) {
    if (mask >= 8) {
      const __m256d blocksign = (i & mask) != 0 ? neg : none;
      sign_a = blocksign;
      sign_b = blocksign;
    }
    const double* p = base + 2 * i;
    const __m256d s0 = _mm256_mul_pd(_mm256_loadu_pd(p), _mm256_loadu_pd(p));
    const __m256d s1 =
        _mm256_mul_pd(_mm256_loadu_pd(p + 4), _mm256_loadu_pd(p + 4));
    const __m256d s2 =
        _mm256_mul_pd(_mm256_loadu_pd(p + 8), _mm256_loadu_pd(p + 8));
    const __m256d s3 =
        _mm256_mul_pd(_mm256_loadu_pd(p + 12), _mm256_loadu_pd(p + 12));
    // hadd(re², im²) = one rounding per norm, same as the scalar formula.
    const __m256d na = _mm256_hadd_pd(s0, s1);  // norms [0, 2, 1, 3]
    const __m256d nb = _mm256_hadd_pd(s2, s3);  // norms [4, 6, 5, 7]
    acc_a = _mm256_add_pd(acc_a, _mm256_xor_pd(na, sign_a));
    acc_b = _mm256_add_pd(acc_b, _mm256_xor_pd(nb, sign_b));
  }
  // c holds [b0, b2, b1, b3] of the canonical combine b_l = acc_l +
  // acc_{l+4}; finish with the canonical tree (b0 + b1) + (b2 + b3).
  const __m256d c = _mm256_add_pd(acc_a, acc_b);
  alignas(32) double lane[4];
  _mm256_store_pd(lane, c);
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

void avx2_gemm_micro_4x4(std::size_t kc, const double* pa, const double* pb,
                         std::size_t pb_stride, double acc[4][4]) {
  __m256d c0 = _mm256_loadu_pd(acc[0]);
  __m256d c1 = _mm256_loadu_pd(acc[1]);
  __m256d c2 = _mm256_loadu_pd(acc[2]);
  __m256d c3 = _mm256_loadu_pd(acc[3]);
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256d b = _mm256_loadu_pd(pb + p * pb_stride);
    const double* arow = pa + p * 4;
    // Explicit mul then add (no FMA): per element the exact ascending-p
    // multiply/add sequence of the scalar tile loop.
    c0 = _mm256_add_pd(c0, _mm256_mul_pd(_mm256_set1_pd(arow[0]), b));
    c1 = _mm256_add_pd(c1, _mm256_mul_pd(_mm256_set1_pd(arow[1]), b));
    c2 = _mm256_add_pd(c2, _mm256_mul_pd(_mm256_set1_pd(arow[2]), b));
    c3 = _mm256_add_pd(c3, _mm256_mul_pd(_mm256_set1_pd(arow[3]), b));
  }
  _mm256_storeu_pd(acc[0], c0);
  _mm256_storeu_pd(acc[1], c1);
  _mm256_storeu_pd(acc[2], c2);
  _mm256_storeu_pd(acc[3], c3);
}

}  // namespace qhdl::util::simd::detail

namespace qhdl::util::simd {

namespace {

const Backend kAvx2{
    "avx2",
    /*priority=*/50,
    util::cpuid::has_avx2,
    /*reference=*/false,
    KernelOps{
        detail::avx2_apply_single_qubit,
        detail::avx2_apply_diagonal,
        detail::avx2_apply_cnot_pairs,
        detail::avx2_expval_z,
        detail::avx2_gemm_micro_4x4,
    },
};

}  // namespace

namespace detail {

void register_avx2_backend() { register_backend(&kAvx2); }

}  // namespace detail
}  // namespace qhdl::util::simd

#else  // !QHDL_SIMD_AVX2: nothing to register on this target/toolchain

namespace qhdl::util::simd::detail {

void register_avx2_backend() {}

}  // namespace qhdl::util::simd::detail

#endif
