// Internal declarations shared by the backend kernel translation units
// (src/util/simd/kernels_*.cpp). Not installed API — everything here lives
// in a detail namespace and exists so that
//   * the SIMD backends can fall back to the scalar kernels (compiled in
//     kernels_generic.cpp without any -m arch flags, so the fallback code
//     generation is exactly the generic backend's) for shapes too small or
//     too awkward to vectorize, and
//   * the avx512fma backend can reuse the avx2 kernels where 512-bit
//     widening would change a reduction order or buys nothing (expval-Z,
//     CNOT, the GEMM micro-kernel, and sub-512-bit gate strides).
#pragma once

#include <cstddef>

#include "util/backend_registry.hpp"

namespace qhdl::util::simd::detail {

using Complex = KernelOps::Complex;

/// Spreads compact index `i` into a basis index with a 0 bit at both mask
/// positions (lo_mask < hi_mask, both powers of two). Mirrors the helper in
/// quantum/statevector.cpp — the CNOT kernels walk the same index stream.
inline std::size_t expand_two_zero_bits(std::size_t i, std::size_t lo_mask,
                                        std::size_t hi_mask) {
  const std::size_t j = ((i & ~(lo_mask - 1)) << 1) | (i & (lo_mask - 1));
  return ((j & ~(hi_mask - 1)) << 1) | (j & (hi_mask - 1));
}

// Scalar kernels (generic backend ops; also the SIMD backends' tails).
void scalar_apply_single_qubit(Complex* amps, std::size_t n,
                               std::size_t stride, const Complex* m);
void scalar_apply_diagonal(Complex* amps, std::size_t n, std::size_t stride,
                           Complex d0, Complex d1);
void scalar_apply_cnot_pairs(Complex* amps, std::size_t quarter,
                             std::size_t lo, std::size_t hi, std::size_t cmask,
                             std::size_t tmask);
/// Canonical mod-8 lane reduction (backend_registry.hpp header comment);
/// n < 8 reduces sequentially.
double scalar_expval_z_lanes(const Complex* amps, std::size_t n,
                             std::size_t mask);
/// The seed's strictly sequential reduction (reference backend only).
double scalar_expval_z_sequential(const Complex* amps, std::size_t n,
                                  std::size_t mask);
void scalar_gemm_micro_4x4(std::size_t kc, const double* pa, const double* pb,
                           std::size_t pb_stride, double acc[4][4]);

// Scalar batched-SoA kernels (generic backend ops; the SIMD backends fall
// back to them for tiny batches). Per-row arithmetic and reduction order
// are the batched canon from backend_registry.hpp.
void scalar_apply_single_qubit_batch(Complex* amps, std::size_t n,
                                     std::size_t stride, std::size_t batch,
                                     const Complex* m);
void scalar_apply_diagonal_batch(Complex* amps, std::size_t n,
                                 std::size_t stride, std::size_t batch,
                                 Complex d0, Complex d1);
void scalar_apply_cnot_pairs_batch(Complex* amps, std::size_t quarter,
                                   std::size_t lo, std::size_t hi,
                                   std::size_t cmask, std::size_t tmask,
                                   std::size_t batch);
void scalar_apply_two_qubit_batch(Complex* amps, std::size_t quarter,
                                  std::size_t lo, std::size_t hi,
                                  std::size_t amask, std::size_t bmask,
                                  std::size_t batch, const Complex* m16);
void scalar_expval_z_batch(const Complex* amps, std::size_t n,
                           std::size_t mask, std::size_t batch, double* out);
void scalar_inner_products_real_batch(const Complex* lhs, const Complex* rhs,
                                      std::size_t n, std::size_t batch,
                                      double* out);

// AVX2 kernels, exported for reuse by the avx512fma backend. Only defined
// when the avx2 TU is compiled in (QHDL_SIMD_AVX2); the avx512 TU is only
// compiled when avx2 is too, so the references always resolve.
void avx2_apply_single_qubit(Complex* amps, std::size_t n, std::size_t stride,
                             const Complex* m);
void avx2_apply_diagonal(Complex* amps, std::size_t n, std::size_t stride,
                         Complex d0, Complex d1);
void avx2_apply_cnot_pairs(Complex* amps, std::size_t quarter, std::size_t lo,
                           std::size_t hi, std::size_t cmask,
                           std::size_t tmask);
double avx2_expval_z(const Complex* amps, std::size_t n, std::size_t mask);
void avx2_gemm_micro_4x4(std::size_t kc, const double* pa, const double* pb,
                         std::size_t pb_stride, double acc[4][4]);

// AVX2 batched-SoA kernels (2 lanes per ymm step, scalar tails).
void avx2_apply_single_qubit_batch(Complex* amps, std::size_t n,
                                   std::size_t stride, std::size_t batch,
                                   const Complex* m);
void avx2_apply_diagonal_batch(Complex* amps, std::size_t n,
                               std::size_t stride, std::size_t batch,
                               Complex d0, Complex d1);
void avx2_apply_cnot_pairs_batch(Complex* amps, std::size_t quarter,
                                 std::size_t lo, std::size_t hi,
                                 std::size_t cmask, std::size_t tmask,
                                 std::size_t batch);
void avx2_apply_two_qubit_batch(Complex* amps, std::size_t quarter,
                                std::size_t lo, std::size_t hi,
                                std::size_t amask, std::size_t bmask,
                                std::size_t batch, const Complex* m16);
void avx2_expval_z_batch(const Complex* amps, std::size_t n, std::size_t mask,
                         std::size_t batch, double* out);
void avx2_inner_products_real_batch(const Complex* lhs, const Complex* rhs,
                                    std::size_t n, std::size_t batch,
                                    double* out);

}  // namespace qhdl::util::simd::detail
