#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace qhdl::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && is_space(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string{text.substr(begin, end - begin)};
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

std::string format_double(double value, int precision) {
  std::ostringstream oss;
  oss.precision(precision);
  oss << std::fixed << value;
  std::string s = oss.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string to_lower(std::string_view text) {
  std::string out{text};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace qhdl::util
