// Leveled logging with a global threshold. The grid search emits progress
// lines (which model is training, accuracies) that benches silence by
// default and examples enable with --verbose.
#pragma once

#include <string>

namespace qhdl::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Core logging call; prefixes level and writes to stderr.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace qhdl::util
