// Leveled logging with a global threshold. The grid search emits progress
// lines (which model is training, accuracies) that benches silence by
// default and examples enable with --verbose.
//
// Every line is prefixed with a wall-clock timestamp and the emitting PID:
// once the worker pool is active, supervisor and worker processes interleave
// on the same stderr, and the prefix is what makes the merged stream
// attributable. The QHDL_LOG_LEVEL environment variable
// (debug|info|warn|error|silent) pins the threshold for the whole process
// tree — workers inherit it — and takes precedence over programmatic
// set_log_level calls.
#pragma once

#include <optional>
#include <string>

namespace qhdl::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/// Sets the global threshold; messages below it are dropped. Ignored when
/// QHDL_LOG_LEVEL is set in the environment — the env threshold wins, so an
/// operator can silence (or open up) a driver without editing its flags.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when QHDL_LOG_LEVEL pinned the threshold for this process.
bool log_level_env_pinned();

/// Parses a threshold name ("debug", "info", "warn", "error", "silent",
/// case-insensitive); nullopt on anything else.
std::optional<LogLevel> log_level_from_name(const std::string& name);

/// The exact line log() would emit (sans trailing newline):
/// "[YYYY-MM-DD HH:MM:SS.mmm] [pid N] [LEVEL] message". Exposed so tests
/// can pin the prefix format without capturing stderr.
std::string format_log_line(LogLevel level, const std::string& message);

/// Core logging call; prefixes timestamp, PID, and level, writes to stderr.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace qhdl::util
