// Atomic, durable file persistence: write-temp + flush + rename.
//
// Every result/checkpoint writer (util::Json::write_file,
// util::CsvWriter::write_file, search::StudyCheckpoint::flush) goes through
// atomic_write_file so that a crash, kill, or IO failure at ANY point can
// never leave a truncated or partially written artifact behind: readers see
// either the previous complete file or the new complete file, nothing in
// between. The invariant is the classic one — the content is staged in a
// uniquely named temp file in the destination directory, flushed (fsync on
// POSIX), and only then moved over the destination with a rename, which the
// filesystem performs atomically.
#pragma once

#include <string>
#include <string_view>

namespace qhdl::util {

/// Atomically replaces `path` with `content`. Throws std::runtime_error
/// with a descriptive message on any IO failure (open, short write, flush,
/// or rename — disk-full and unwritable-path are real on long sweeps); the
/// destination is untouched and the temp file is cleaned up best-effort.
/// Observes the FaultInjector's `io` site.
void atomic_write_file(const std::string& path, std::string_view content);

}  // namespace qhdl::util
