// Atomic, durable file persistence: write-temp + flush + rename.
//
// Every result/checkpoint writer (util::Json::write_file,
// util::CsvWriter::write_file, search::StudyCheckpoint::flush) goes through
// atomic_write_file so that a crash, kill, or IO failure at ANY point can
// never leave a truncated or partially written artifact behind: readers see
// either the previous complete file or the new complete file, nothing in
// between. The invariant is the classic one — the content is staged in a
// uniquely named temp file in the destination directory, flushed (fsync on
// POSIX), and only then moved over the destination with a rename, which the
// filesystem performs atomically. On POSIX the parent directory is fsynced
// after the rename as well: without it the file's content is durable but the
// directory entry pointing at it may not be, and a power loss could make the
// just-committed checkpoint manifest vanish.
#pragma once

#include <string>
#include <string_view>

namespace qhdl::util {

/// Atomically replaces `path` with `content`. Throws std::runtime_error
/// with a descriptive message on any IO failure (open, short write, flush,
/// rename, or post-rename directory fsync — disk-full and unwritable-path
/// are real on long sweeps); on a pre-rename failure the destination is
/// untouched and the temp file is cleaned up best-effort, while a
/// directory-fsync failure leaves the new content visible but reports that
/// its durability is unproven. Observes the FaultInjector's `io` and `dir`
/// sites.
void atomic_write_file(const std::string& path, std::string_view content);

}  // namespace qhdl::util
