// Tiny declarative command-line parser for the bench drivers and examples.
// Supports `--flag`, `--key value`, and `--key=value`; generates --help text.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace qhdl::util {

/// Declarative CLI: register options, then parse(argc, argv).
class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Boolean switch, default false.
  void add_flag(const std::string& name, const std::string& help);

  /// Valued options with defaults.
  void add_int(const std::string& name, long default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, std::string default_value,
                  const std::string& help);

  /// Parses argv. Returns false (after printing help) if --help was given.
  /// Throws std::invalid_argument on unknown options / malformed values.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  std::string help_text() const;

 private:
  enum class Kind { Flag, Int, Double, String };
  struct Option {
    Kind kind;
    std::string help;
    bool flag_value = false;
    long int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  const Option& require(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;  // registration order for help text
};

}  // namespace qhdl::util
