// Minimal POSIX subprocess wrapper for the supervised worker pool
// (search/worker_pool.hpp): spawn a child with piped stdin/stdout (stderr
// inherited, so worker logs interleave with the supervisor's), write to it,
// poll/read its output fd, and kill/reap it.
//
// Spawn failures are detected synchronously via the classic CLOEXEC
// status-pipe trick, so "the binary does not exist" surfaces as an exception
// from spawn(), not as an instantly-dead child. On platforms without
// fork/exec the API compiles but subprocess_supported() is false and
// spawn() throws — callers degrade to in-process execution.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace qhdl::util {

/// True when this build can spawn supervised child processes.
bool subprocess_supported();

/// Ignores SIGPIPE process-wide (idempotent; no-op on platforms without
/// it). A peer — worker child, serve client — that dies mid-write must
/// surface as an EPIPE error code from write(), never as a process-killing
/// signal. Installed automatically by Subprocess::spawn, the worker-pool
/// supervisor, and the serve layer; long-running entry points that write to
/// pipes or sockets should call it once during init.
void install_sigpipe_guard();

/// Absolute path of the currently running executable, for self-re-exec
/// ("" when it cannot be determined on this platform).
std::string current_executable_path();

/// How a child ended: normal exit (exit_code) or signal (term_signal).
struct ExitStatus {
  bool exited = false;
  int exit_code = 0;
  bool signaled = false;
  int term_signal = 0;

  /// "exit 0" / "killed by signal 9".
  std::string to_string() const;
};

/// A spawned child with piped stdin/stdout. Move-only; the destructor
/// SIGKILLs and reaps a child that is still running (no zombies, ever).
class Subprocess {
 public:
  /// Spawns argv (argv[0] must be an absolute or cwd-relative path; PATH is
  /// not searched). `extra_env` entries of the form "KEY=value" override or
  /// extend the inherited environment. The child's stdout read fd is set
  /// non-blocking for poll()-based multiplexing. Throws std::runtime_error
  /// when the process cannot be created or the binary cannot be executed.
  static Subprocess spawn(const std::vector<std::string>& argv,
                          const std::vector<std::string>& extra_env = {});

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();

  long pid() const { return pid_; }
  /// Write end of the child's stdin (-1 after close_stdin()).
  int stdin_fd() const { return stdin_fd_; }
  /// Read end of the child's stdout (non-blocking).
  int stdout_fd() const { return stdout_fd_; }

  /// Writes the whole buffer to the child's stdin. Returns false when the
  /// pipe is broken (child died) — never raises SIGPIPE.
  bool write_all(const char* data, std::size_t size);

  /// Closes the child's stdin (EOF is the cooperative shutdown signal).
  void close_stdin();

  /// SIGTERM (cooperative) / SIGKILL (hard). Both are no-ops once reaped.
  void terminate();
  void kill_hard();

  /// Non-blocking reap: the exit status once the child has ended, nullopt
  /// while it is still running. Idempotent after the child is reaped.
  std::optional<ExitStatus> try_wait();

  /// Blocking reap.
  ExitStatus wait();

 private:
  Subprocess() = default;
  void close_fds();

  long pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::optional<ExitStatus> status_;
};

}  // namespace qhdl::util
