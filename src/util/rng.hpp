// Deterministic pseudo-random number generation for reproducible experiments.
//
// The study trains thousands of models across repeated searches; every result
// in EXPERIMENTS.md must be reproducible bit-for-bit from a seed. We therefore
// avoid std::default_random_engine (implementation-defined) and implement
// xoshiro256** with SplitMix64 seeding, plus the distributions the library
// needs (uniform, normal, integer ranges, shuffling).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace qhdl::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Deterministic across platforms; passes BigCrush; 2^256-1 period.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value for determinism).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t integer(std::int64_t lo, std::int64_t hi);

  /// Fisher-Yates shuffle (deterministic given the RNG state).
  template <typename T>
  void shuffle(std::span<T> values) {
    if (values.size() < 2) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      const std::size_t j = index(i + 1);
      std::swap(values[i], values[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& values) {
    shuffle(std::span<T>{values});
  }

  /// Vector of n standard-normal draws.
  std::vector<double> normal_vector(std::size_t n);

  /// Vector of n uniform draws in [lo, hi).
  std::vector<double> uniform_vector(std::size_t n, double lo, double hi);

  /// Derives an independent child stream; used to give each training run /
  /// search repetition its own stream without coupling their sequences.
  Rng split();

  /// Serializable image of the full generator state: the four xoshiro words
  /// plus the Box-Muller cache. A restored generator resumes the exact
  /// sequence, which is how the worker protocol ships pre-split run streams
  /// across process boundaries (search/worker_protocol.hpp) while keeping
  /// multi-process results bit-identical to in-process ones.
  struct Snapshot {
    std::array<std::uint64_t, 4> state{};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  Snapshot snapshot() const;
  static Rng restore(const Snapshot& snapshot);

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace qhdl::util
