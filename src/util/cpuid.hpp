// Runtime CPU feature detection for the SIMD kernel backend registry
// (DESIGN.md §13). Thin wrapper over the compiler's CPUID support so the
// registry can ask "is AVX2 actually usable on this machine?" — which
// includes the OS-saves-the-wide-registers check, not just the CPUID bit.
// On non-x86 targets every query returns false and the registry falls back
// to the generic backend.
#pragma once

#include <string>

namespace qhdl::util::cpuid {

/// AVX2 usable (CPUID bit + OS xsave support).
bool has_avx2();

/// FMA3 usable. The avx512fma backend requires it as a capability gate even
/// though no value-producing kernel math uses fused multiply-add (FMA
/// changes rounding and would break cross-backend bit-identity).
bool has_fma();

/// AVX-512 Foundation usable.
bool has_avx512f();

/// One-line human-readable summary ("avx2=1 fma=1 avx512f=0").
std::string summary();

}  // namespace qhdl::util::cpuid
