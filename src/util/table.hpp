// ASCII table renderer: the bench drivers print paper-style tables (e.g.
// Table I) to stdout in aligned monospace form.
#pragma once

#include <string>
#include <vector>

namespace qhdl::util {

/// Accumulates rows and renders an aligned ASCII table with a header rule.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with column padding and +---+ rules.
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qhdl::util
