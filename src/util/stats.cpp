#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qhdl::util {

double mean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("mean: empty sample");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("stddev: empty sample");
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double min_value(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("min_value: empty sample");
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("max_value: empty sample");
  return *std::max_element(values.begin(), values.end());
}

double median(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("median: empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = min_value(values);
  s.max = max_value(values);
  return s;
}

double percent_increase(double from, double to) {
  if (from == 0.0) {
    throw std::invalid_argument("percent_increase: baseline is zero");
  }
  return 100.0 * (to - from) / from;
}

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Summary RunningStats::summary() const {
  Summary s;
  s.count = count_;
  s.mean = mean_;
  s.stddev = stddev();
  s.min = min_;
  s.max = max_;
  return s;
}

}  // namespace qhdl::util
