// Monotonic deadline timers for the worker-pool supervisor.
//
// Every liveness decision the supervisor makes — unit deadlines, heartbeat
// timeouts, respawn backoff gates — must survive wall-clock adjustments
// (NTP slew, suspend/resume), so they are all expressed against
// std::chrono::steady_clock through this one helper instead of ad-hoc
// time arithmetic at each site.
#pragma once

#include <cstdint>

namespace qhdl::util {

/// Milliseconds on the monotonic (steady) clock. Only differences are
/// meaningful; the epoch is unspecified.
std::uint64_t monotonic_now_ms();

/// A point on the monotonic clock after which something is overdue.
/// Deadline{} (or never()) never expires.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;
  static Deadline never() { return Deadline{}; }

  /// Expires `ms` milliseconds from now. after_ms(0) is already expired —
  /// use never() for "no deadline".
  static Deadline after_ms(std::uint64_t ms);

  bool infinite() const { return infinite_; }
  bool expired() const;

  /// Milliseconds until expiry (0 when expired; huge when infinite) —
  /// suitable as a poll() timeout bound.
  std::uint64_t remaining_ms() const;

 private:
  bool infinite_ = true;
  std::uint64_t expires_at_ms_ = 0;
};

}  // namespace qhdl::util
