#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace qhdl::util {

namespace {

/// Shared between the issuing thread and its queued helpers. Held by
/// shared_ptr because a helper may still sit in the queue after the loop
/// has completed (every index drained by other threads); it must find the
/// state alive, observe `next >= count`, and return without touching the
/// caller's stack.
struct LoopState {
  std::size_t begin = 0;
  std::size_t count = 0;
  std::function<void(std::size_t)> work;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> cancelled{false};

  std::mutex mutex;
  std::condition_variable all_done;
  std::exception_ptr error;

  /// Claims indices until exhausted. Every claimed index is counted as
  /// completed even when skipped after a failure, so `completed == count`
  /// is always eventually true and the caller's wait terminates.
  void drain() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          work(begin + i);
        } catch (...) {
          cancelled.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
        }
      }
      const std::size_t done =
          completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (done == count) {
        // Lock pairs with the caller's predicate check so the final
        // notification cannot slip between its check and its wait.
        std::lock_guard<std::mutex> lock(mutex);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t max_threads,
                              const std::function<void(std::size_t)>& work) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (max_threads <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) work(i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->begin = begin;
  state->count = count;
  state->work = work;

  // The caller is one lane; enqueue up to max_threads - 1 helpers, capped
  // by the loop size and the pool width (extra helpers would only ever
  // no-op).
  const std::size_t helpers =
      std::min({max_threads - 1, count - 1, worker_count()});
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      tasks_.emplace_back([state] { state->drain(); });
    }
  }
  if (helpers == 1) {
    task_ready_.notify_one();
  } else {
    task_ready_.notify_all();
  }

  state->drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->completed.load(std::memory_order_acquire) == state->count;
  });
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool{std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()))};
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t max_threads,
                  const std::function<void(std::size_t)>& work) {
  ThreadPool::shared().parallel_for(begin, end, max_threads, work);
}

}  // namespace qhdl::util
