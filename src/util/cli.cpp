#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace qhdl::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_flag(const std::string& name, const std::string& help) {
  Option opt;
  opt.kind = Kind::Flag;
  opt.help = help;
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void Cli::add_int(const std::string& name, long default_value,
                  const std::string& help) {
  Option opt;
  opt.kind = Kind::Int;
  opt.help = help;
  opt.int_value = default_value;
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void Cli::add_double(const std::string& name, double default_value,
                     const std::string& help) {
  Option opt;
  opt.kind = Kind::Double;
  opt.help = help;
  opt.double_value = default_value;
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void Cli::add_string(const std::string& name, std::string default_value,
                     const std::string& help) {
  Option opt;
  opt.kind = Kind::String;
  opt.help = help;
  opt.string_value = std::move(default_value);
  options_[name] = std::move(opt);
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown option: --" + name);
    }
    Option& opt = it->second;
    if (opt.kind == Kind::Flag) {
      if (inline_value.has_value()) {
        throw std::invalid_argument("flag --" + name + " takes no value");
      }
      opt.flag_value = true;
      continue;
    }
    std::string value;
    if (inline_value.has_value()) {
      value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("option --" + name + " needs a value");
      }
      value = argv[++i];
    }
    try {
      switch (opt.kind) {
        case Kind::Int:
          opt.int_value = std::stol(value);
          break;
        case Kind::Double:
          opt.double_value = std::stod(value);
          break;
        case Kind::String:
          opt.string_value = value;
          break;
        case Kind::Flag:
          break;  // handled above
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad value for --" + name + ": " + value);
    }
  }
  return true;
}

const Cli::Option& Cli::require(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind) {
    throw std::logic_error("Cli: option not registered with this type: " +
                           name);
  }
  return it->second;
}

bool Cli::flag(const std::string& name) const {
  return require(name, Kind::Flag).flag_value;
}

long Cli::get_int(const std::string& name) const {
  return require(name, Kind::Int).int_value;
}

double Cli::get_double(const std::string& name) const {
  return require(name, Kind::Double).double_value;
}

const std::string& Cli::get_string(const std::string& name) const {
  return require(name, Kind::String).string_value;
}

std::string Cli::help_text() const {
  std::ostringstream oss;
  oss << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    oss << "  --" << name;
    switch (opt.kind) {
      case Kind::Flag:
        break;
      case Kind::Int:
        oss << " <int=" << opt.int_value << ">";
        break;
      case Kind::Double:
        oss << " <float=" << format_double(opt.double_value) << ">";
        break;
      case Kind::String:
        oss << " <str=" << opt.string_value << ">";
        break;
    }
    oss << "\n      " << opt.help << "\n";
  }
  oss << "  --help\n      Show this message.\n";
  return oss.str();
}

}  // namespace qhdl::util
