#include "util/cancel.hpp"

namespace qhdl::util {

void CancelToken::cancel(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (flag_.load(std::memory_order_relaxed)) return;
  reason_ = reason;
  flag_.store(true, std::memory_order_release);
}

void CancelToken::set_deadline(Deadline deadline) {
  std::lock_guard<std::mutex> lock(mutex_);
  deadline_ = deadline;
}

bool CancelToken::cancelled() const {
  if (flag_.load(std::memory_order_acquire)) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  return deadline_.expired();
}

bool CancelToken::deadline_expired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !flag_.load(std::memory_order_relaxed) && deadline_.expired();
}

std::string CancelToken::reason() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (flag_.load(std::memory_order_relaxed)) return reason_;
  if (deadline_.expired()) return "deadline exceeded";
  return "";
}

void CancelToken::throw_if_cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (flag_.load(std::memory_order_relaxed)) throw Cancelled(reason_);
  if (deadline_.expired()) throw Cancelled("deadline exceeded");
}

}  // namespace qhdl::util
