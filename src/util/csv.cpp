#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/string_util.hpp"

namespace qhdl::util {

namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view field) {
  if (!needs_quoting(field)) return std::string{field};
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("CsvWriter: header must be non-empty");
  }
}

void CsvWriter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row width " +
                                std::to_string(row.size()) +
                                " != header width " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

void CsvWriter::add_row_values(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_double(v));
  add_row(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) oss << ',';
    oss << quote(header_[i]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) oss << ',';
      oss << quote(row[i]);
    }
    oss << '\n';
  }
  return oss.str();
}

void CsvWriter::write_file(const std::string& path) const {
  // Atomic temp+flush+rename: a crash or IO fault mid-write can never leave
  // a truncated CSV where a complete one (or nothing) used to be.
  atomic_write_file(path, to_string());
}

CsvDocument parse_csv(std::string_view text) {
  CsvDocument doc;
  std::vector<std::string> current_row;
  std::string current_field;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto end_field = [&] {
    current_row.push_back(std::move(current_field));
    current_field.clear();
  };
  const auto end_row = [&] {
    end_field();
    if (doc.header.empty()) {
      doc.header = std::move(current_row);
    } else {
      doc.rows.push_back(std::move(current_row));
    }
    current_row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current_field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current_field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        current_field += c;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !current_field.empty() || !current_row.empty()) {
    end_row();
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return parse_csv(oss.str());
}

}  // namespace qhdl::util
