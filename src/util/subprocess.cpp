#include "util/subprocess.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define QHDL_HAVE_SUBPROCESS 1
#include <csignal>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
extern char** environ;
#endif

namespace qhdl::util {

std::string ExitStatus::to_string() const {
  if (signaled) return "killed by signal " + std::to_string(term_signal);
  if (exited) return "exit " + std::to_string(exit_code);
  return "unknown status";
}

#ifdef QHDL_HAVE_SUBPROCESS

namespace {

[[noreturn]] void spawn_fail(const std::string& stage, int saved_errno) {
  throw std::runtime_error("Subprocess::spawn: " + stage + " failed: " +
                           std::strerror(saved_errno));
}

ExitStatus decode_status(int raw) {
  ExitStatus status;
  if (WIFEXITED(raw)) {
    status.exited = true;
    status.exit_code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    status.signaled = true;
    status.term_signal = WTERMSIG(raw);
  }
  return status;
}

/// Inherited environment with `extra_env` ("KEY=value") overriding matching
/// keys. Built pre-fork: between fork and exec only async-signal-safe calls
/// are allowed, so all allocation happens here.
std::vector<std::string> merged_environment(
    const std::vector<std::string>& extra_env) {
  std::vector<std::string> merged;
  for (char** entry = environ; entry != nullptr && *entry != nullptr;
       ++entry) {
    const std::string current{*entry};
    const std::size_t eq = current.find('=');
    const std::string key = current.substr(0, eq);
    bool overridden = false;
    for (const std::string& extra : extra_env) {
      if (extra.compare(0, key.size(), key) == 0 &&
          extra.size() > key.size() && extra[key.size()] == '=') {
        overridden = true;
        break;
      }
    }
    if (!overridden) merged.push_back(current);
  }
  merged.insert(merged.end(), extra_env.begin(), extra_env.end());
  return merged;
}

}  // namespace

bool subprocess_supported() { return true; }

void install_sigpipe_guard() {
  // A peer that died mid-write must surface as EPIPE from write(), not as a
  // process-killing signal; guarded so repeated init paths install it once.
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

std::string current_executable_path() {
#if defined(__linux__)
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "";
  buffer[n] = '\0';
  return buffer;
#else
  return "";
#endif
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const std::vector<std::string>& extra_env) {
  if (argv.empty() || argv[0].empty()) {
    throw std::runtime_error("Subprocess::spawn: empty command");
  }
  install_sigpipe_guard();

  // [0] = read end, [1] = write end.
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  int status_pipe[2] = {-1, -1};  // CLOEXEC: closes on successful exec
  if (::pipe(to_child) != 0) spawn_fail("pipe", errno);
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    spawn_fail("pipe", errno);
  }
  if (::pipe(status_pipe) != 0) {
    const int saved = errno;
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      ::close(fd);
    }
    spawn_fail("pipe", saved);
  }
  ::fcntl(status_pipe[1], F_SETFD, FD_CLOEXEC);

  // Pre-build exec arguments: no allocation is allowed after fork().
  std::vector<std::string> env = merged_environment(extra_env);
  std::vector<char*> argv_ptrs;
  argv_ptrs.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    argv_ptrs.push_back(const_cast<char*>(arg.c_str()));
  }
  argv_ptrs.push_back(nullptr);
  std::vector<char*> env_ptrs;
  env_ptrs.reserve(env.size() + 1);
  for (const std::string& entry : env) {
    env_ptrs.push_back(const_cast<char*>(entry.c_str()));
  }
  env_ptrs.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1],
                   status_pipe[0], status_pipe[1]}) {
      ::close(fd);
    }
    spawn_fail("fork", saved);
  }

  if (pid == 0) {
    // Child: wire pipes to stdin/stdout, restore default SIGPIPE, exec.
    ::signal(SIGPIPE, SIG_DFL);
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1],
                   status_pipe[0]}) {
      ::close(fd);
    }
    ::execve(argv_ptrs[0], argv_ptrs.data(), env_ptrs.data());
    // exec failed: report errno through the CLOEXEC pipe and vanish.
    const int exec_errno = errno;
    ssize_t ignored =
        ::write(status_pipe[1], &exec_errno, sizeof(exec_errno));
    (void)ignored;
    ::_exit(127);
  }

  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  ::close(status_pipe[1]);

  int exec_errno = 0;
  const ssize_t n =
      ::read(status_pipe[0], &exec_errno, sizeof(exec_errno));
  ::close(status_pipe[0]);
  if (n > 0) {
    // exec failed; reap the stillborn child and report why.
    int raw = 0;
    ::waitpid(pid, &raw, 0);
    ::close(to_child[1]);
    ::close(from_child[0]);
    throw std::runtime_error("Subprocess::spawn: cannot execute " + argv[0] +
                             ": " + std::strerror(exec_errno));
  }

  ::fcntl(from_child[0], F_SETFL,
          ::fcntl(from_child[0], F_GETFL) | O_NONBLOCK);

  Subprocess child;
  child.pid_ = pid;
  child.stdin_fd_ = to_child[1];
  child.stdout_fd_ = from_child[0];
  return child;
}

bool Subprocess::write_all(const char* data, std::size_t size) {
  if (stdin_fd_ < 0) return false;
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(stdin_fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE) {
        // Clean peer disconnect: the child closed its stdin end (most
        // likely it died). The supervisor's reap/respawn path owns the
        // recovery, so this is expected traffic, not an anomaly.
        log_debug("Subprocess::write_all: EPIPE (child closed its stdin)");
      } else {
        log_warn(std::string{"Subprocess::write_all: write failed: "} +
                 std::strerror(errno));
      }
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void Subprocess::close_stdin() {
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
}

void Subprocess::terminate() {
  if (pid_ > 0 && !status_.has_value()) ::kill(static_cast<pid_t>(pid_),
                                               SIGTERM);
}

void Subprocess::kill_hard() {
  if (pid_ > 0 && !status_.has_value()) ::kill(static_cast<pid_t>(pid_),
                                               SIGKILL);
}

std::optional<ExitStatus> Subprocess::try_wait() {
  if (status_.has_value()) return status_;
  if (pid_ <= 0) return std::nullopt;
  int raw = 0;
  const pid_t reaped = ::waitpid(static_cast<pid_t>(pid_), &raw, WNOHANG);
  if (reaped == static_cast<pid_t>(pid_)) status_ = decode_status(raw);
  return status_;
}

ExitStatus Subprocess::wait() {
  if (status_.has_value()) return *status_;
  int raw = 0;
  pid_t reaped = -1;
  do {
    reaped = ::waitpid(static_cast<pid_t>(pid_), &raw, 0);
  } while (reaped < 0 && errno == EINTR);
  status_ = decode_status(raw);
  return *status_;
}

void Subprocess::close_fds() {
  close_stdin();
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      stdin_fd_(std::exchange(other.stdin_fd_, -1)),
      stdout_fd_(std::exchange(other.stdout_fd_, -1)),
      status_(std::move(other.status_)) {
  other.status_.reset();
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (pid_ > 0 && !status_.has_value()) {
      kill_hard();
      wait();
    }
    close_fds();
    pid_ = std::exchange(other.pid_, -1);
    stdin_fd_ = std::exchange(other.stdin_fd_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
    status_ = std::move(other.status_);
    other.status_.reset();
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (pid_ > 0 && !status_.has_value()) {
    kill_hard();
    wait();
  }
  close_fds();
}

#else  // !QHDL_HAVE_SUBPROCESS

bool subprocess_supported() { return false; }

void install_sigpipe_guard() {}

std::string current_executable_path() { return ""; }

Subprocess Subprocess::spawn(const std::vector<std::string>&,
                             const std::vector<std::string>&) {
  throw std::runtime_error(
      "Subprocess::spawn: process supervision is not supported on this "
      "platform");
}

bool Subprocess::write_all(const char*, std::size_t) { return false; }
void Subprocess::close_stdin() {}
void Subprocess::terminate() {}
void Subprocess::kill_hard() {}
std::optional<ExitStatus> Subprocess::try_wait() { return status_; }
ExitStatus Subprocess::wait() { return ExitStatus{}; }
void Subprocess::close_fds() {}
Subprocess::Subprocess(Subprocess&&) noexcept {}
Subprocess& Subprocess::operator=(Subprocess&&) noexcept { return *this; }
Subprocess::~Subprocess() {}

#endif  // QHDL_HAVE_SUBPROCESS

}  // namespace qhdl::util
