#include "util/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/fault_injection.hpp"
#include "util/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define QHDL_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace qhdl::util {

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

ListenSocket::~ListenSocket() { close(); }

#ifdef QHDL_HAVE_SOCKETS

bool sockets_supported() { return true; }

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("socket: not a numeric IPv4 address: '" + host +
                             "'");
  }
  return addr;
}

}  // namespace

bool Socket::write_all(const char* data, std::size_t size) {
  if (fd_ < 0) return false;
  std::size_t written = 0;
  while (written < size) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd_, data + written, size - written, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd_, data + written, size - written);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        // Clean peer disconnect: the client went away mid-reply. The
        // connection handler treats this as the end of the conversation.
        log_debug("Socket::write_all: peer disconnected (EPIPE/ECONNRESET)");
      } else {
        log_warn(std::string{"Socket::write_all: send failed: "} +
                 std::strerror(errno));
      }
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::uint64_t timeout_ms) {
  const std::string target = host + ":" + std::to_string(port);
  if (FaultInjector::instance().on_connect_attempt(target)) {
    throw std::runtime_error("connect_tcp: injected connection refused (" +
                             target + ")");
  }
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string{"connect_tcp: socket failed: "} +
                             std::strerror(errno));
  }
  if (timeout_ms == 0) {
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      const int saved = errno;
      ::close(fd);
      throw std::runtime_error("connect_tcp: connect to " + target +
                               " failed: " + std::strerror(saved));
    }
  } else {
    // Deadline-bounded connect: a plain ::connect against a black-holed
    // host blocks for the OS default (often minutes). Flip the socket
    // non-blocking, poll for writability, and read the outcome back with
    // SO_ERROR before restoring blocking mode.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      const int saved = errno;
      ::close(fd);
      throw std::runtime_error(std::string{"connect_tcp: fcntl failed: "} +
                               std::strerror(saved));
    }
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0 && errno != EINPROGRESS) {
      const int saved = errno;
      ::close(fd);
      throw std::runtime_error("connect_tcp: connect to " + target +
                               " failed: " + std::strerror(saved));
    }
    if (rc < 0) {  // in progress: wait for the handshake or the deadline
      const Deadline deadline = Deadline::after_ms(timeout_ms);
      bool writable = false;
      while (!deadline.expired()) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        const std::uint64_t remaining = deadline.remaining_ms();
        const int slice = static_cast<int>(remaining < 100 ? remaining : 100);
        const int ready = ::poll(&pfd, 1, slice);
        if (ready < 0) {
          if (errno == EINTR) continue;
          const int saved = errno;
          ::close(fd);
          throw std::runtime_error(
              std::string{"connect_tcp: poll failed: "} +
              std::strerror(saved));
        }
        if (ready > 0) {
          writable = true;
          break;
        }
      }
      if (!writable) {
        ::close(fd);
        throw std::runtime_error("connect_tcp: connect to " + target +
                                 " timed out after " +
                                 std::to_string(timeout_ms) + " ms");
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
        err = errno;
      }
      if (err != 0) {
        ::close(fd);
        throw std::runtime_error("connect_tcp: connect to " + target +
                                 " failed: " + std::strerror(err));
      }
    }
    if (::fcntl(fd, F_SETFL, flags) < 0) {
      const int saved = errno;
      ::close(fd);
      throw std::runtime_error(std::string{"connect_tcp: fcntl failed: "} +
                               std::strerror(saved));
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
  return Socket{fd};
}

ListenSocket ListenSocket::listen_tcp(const std::string& host,
                                      std::uint16_t port, int backlog) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string{"listen_tcp: socket failed: "} +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("listen_tcp: bind to " + host + ":" +
                             std::to_string(port) + " failed: " +
                             std::strerror(saved));
  }
  if (::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(std::string{"listen_tcp: listen failed: "} +
                             std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(std::string{"listen_tcp: getsockname failed: "} +
                             std::strerror(saved));
  }
  ListenSocket listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<Socket> ListenSocket::accept(const Deadline& deadline,
                                           bool* injected_failure) {
  if (injected_failure != nullptr) *injected_failure = false;
  while (fd_ >= 0 && !deadline.expired()) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const std::uint64_t remaining = deadline.remaining_ms();
    const int timeout = static_cast<int>(remaining < 100 ? remaining : 100);
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      log_warn(std::string{"ListenSocket::accept: poll failed: "} +
               std::strerror(errno));
      return std::nullopt;
    }
    if (ready == 0) continue;  // slice elapsed; re-check deadline and fd
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      log_warn(std::string{"ListenSocket::accept: accept failed: "} +
               std::strerror(errno));
      return std::nullopt;
    }
    if (FaultInjector::instance().on_socket_accept()) {
      ::close(conn);
      if (injected_failure != nullptr) *injected_failure = true;
      return std::nullopt;
    }
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket{conn};
  }
  return std::nullopt;
}

void ListenSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

#else  // !QHDL_HAVE_SOCKETS

bool sockets_supported() { return false; }

bool Socket::write_all(const char*, std::size_t) { return false; }
void Socket::shutdown_write() {}
void Socket::close() { fd_ = -1; }

Socket connect_tcp(const std::string&, std::uint16_t, std::uint64_t) {
  throw std::runtime_error(
      "connect_tcp: TCP sockets are not supported on this platform");
}

ListenSocket ListenSocket::listen_tcp(const std::string&, std::uint16_t,
                                      int) {
  throw std::runtime_error(
      "listen_tcp: TCP sockets are not supported on this platform");
}

std::optional<Socket> ListenSocket::accept(const Deadline&, bool*) {
  return std::nullopt;
}

void ListenSocket::close() { fd_ = -1; }

#endif  // QHDL_HAVE_SOCKETS

}  // namespace qhdl::util
