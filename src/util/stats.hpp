// Small descriptive-statistics helpers used when aggregating repeated
// training runs and search repetitions (the paper averages over 5 runs and
// reports per-complexity-level means).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qhdl::util {

/// Summary of a sample: count, mean, (sample) standard deviation, extrema.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Arithmetic mean. Throws std::invalid_argument on an empty sample, like
/// every other point statistic here — a mean of nothing is a bug upstream,
/// not a 0.
double mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 for a singleton. Throws
/// std::invalid_argument on an empty sample.
double stddev(std::span<const double> values);

double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Median (average of middle two for even n). Copies and sorts internally.
double median(std::span<const double> values);

/// Empty input yields a count-0 Summary (callers branch on `count`); all
/// scalar statistics above throw on empty instead.
Summary summarize(std::span<const double> values);

/// Percentage increase from `from` to `to`: 100*(to-from)/from.
/// This is the paper's "rate of increase" metric (Fig. 10).
double percent_increase(double from, double to);

/// Online accumulator (Welford) for streaming summaries.
class RunningStats {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  ///< Sample variance; 0 for n < 2.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  Summary summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace qhdl::util
