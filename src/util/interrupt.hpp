// Cooperative SIGINT/SIGTERM handling for the long-running drivers.
//
// The study is an hours-long sweep; a Ctrl-C or a scheduler's SIGTERM must
// not lose work. The async-signal handler only sets a flag; the search loop
// polls it at work-unit boundaries (search_once's commit loop) and raises
// Interrupted, which unwinds through the parallel_for layers (cancelling
// unclaimed work), past the checkpoint — already flushed at every unit
// boundary — and up to the driver, which reports the resume command and
// exits cleanly with status 130. When a worker pool is active, the
// supervisor observes the flag and forwards SIGTERM to every live worker so
// in-flight training stops promptly (search/worker_pool.cpp).
//
// A SECOND SIGINT escalates: the handler calls _exit(130) immediately, so a
// wedged cooperative path (e.g. a hung worker still being drained) can never
// trap the user at the terminal.
#pragma once

#include <stdexcept>

namespace qhdl::util {

/// Raised by throw_if_interrupted() once a handled signal has arrived.
class Interrupted : public std::runtime_error {
 public:
  Interrupted() : std::runtime_error("interrupted (SIGINT/SIGTERM)") {}
};

/// Installs the flag-setting handler for SIGINT and SIGTERM. Idempotent.
/// Only drivers call this; the library and tests never take over signals.
void install_interrupt_handler();

/// True once a handled signal has arrived.
bool interrupt_requested();

/// Requests cooperative shutdown programmatically (what the signal handler
/// does); exists for tests.
void request_interrupt();

/// Clears the flag (tests).
void clear_interrupt();

/// Throws Interrupted when the flag is set. Called at unit boundaries.
void throw_if_interrupted();

}  // namespace qhdl::util
