// Runtime-dispatched SIMD kernel backend registry (DESIGN.md §13).
//
// The simulator's hottest inner loops — dense single-qubit application,
// diagonal phase multiplies, CNOT pair swaps, expval-Z reduction, and the
// blocked-GEMM 4x4 micro-kernel — are function pointers resolved through
// this registry instead of fixed scalar code. Each backend translation unit
// (src/util/simd/kernels_*.cpp) self-registers a capability descriptor:
// a name, an auto-detect priority, a supported() predicate backed by
// util::cpuid, and its KernelOps table. A CPUID-based dispatcher picks the
// highest-priority supported backend at first use; `QHDL_BACKEND=<name>`
// (env var, CMake default, or runtime override) pins the choice.
//
// Bit-identity contract: `generic`, `avx2`, and `avx512fma` must produce
// byte-for-byte identical doubles for every op on every input (enforced by
// the BackendEquivalence / GemmBackend golden suites with EXPECT_EQ, and by
// the per-backend CI matrix). The rules that make that possible:
//   * no fused multiply-add in value-producing math — FMA skips the
//     intermediate rounding, so vectorized kernels use explicit mul/add
//     intrinsics and their translation units compile with -ffp-contract=off
//     (the avx512fma backend requires the FMA CPUID bit as a capability
//     gate only);
//   * reductions follow one canonical order: expval-Z accumulates into
//     eight mod-8 lane sums combined as b_l = acc_l + acc_{l+4}, then
//     (b0+b1) + (b2+b3) — expressible as scalar code, two 4-lane AVX2
//     accumulators, or one 8-lane AVX-512 accumulator without changing a
//     single rounding (states smaller than 8 amplitudes reduce
//     sequentially in every backend);
//   * elementwise complex multiplies vectorize via mul/shuffle/addsub,
//     which performs exactly the two roundings per component the scalar
//     formula does;
//   * the GEMM micro-kernel keeps each accumulator element's ascending-p
//     order (broadcast A, vector multiply, vector add), so AVX lanes see
//     the same add sequence the scalar tile loop performs;
//   * the *_batch ops vectorize ACROSS the batch lanes of the SoA layout
//     (amps[i * batch + b], unit-stride loads, no shuffles): each lane's
//     arithmetic is the independent per-row scalar formula, so lane-wise
//     SIMD cannot change a single rounding regardless of vector width —
//     scalar tails for odd batch sizes are bit-safe by the same argument;
//   * batched reductions (expval_z_batch, inner_products_real_batch) keep
//     one sequential running sum per row in ascending amplitude order —
//     the per-row canon that Observable::expectation and the scalar
//     adjoint sweep use — NOT the single-state mod-8 lane order; the two
//     canons are never mixed because the batched and single-state ops are
//     distinct registry entries.
//
// The `reference` backend preserves the pre-registry escape hatch: scalar
// ops with the seed's sequential expval reduction, and selecting it flips
// quantum::kernels::force_generic() and nn::fastpath::force_reference() on
// (which in turn imply uncompiled execution) — the legacy
// QHDL_FORCE_GENERIC_KERNELS / QHDL_FORCE_REFERENCE_NN env flags map here
// as deprecated aliases.
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qhdl::util::simd {

/// Function-pointer table of the registry-dispatched kernels. Signatures
/// are domain-neutral (raw arrays) so quantum and tensor code share one
/// registry without layering inversions; wire checks, dispatch counters,
/// and index math stay with the callers.
struct KernelOps {
  using Complex = std::complex<double>;

  /// Dense 2x2 on every (i, i+stride) amplitude pair; m = {m00,m01,m10,m11}.
  /// `n` is the amplitude count, `stride` a power of two in [1, n/2].
  void (*apply_single_qubit)(Complex* amps, std::size_t n, std::size_t stride,
                             const Complex* m);

  /// Diagonal phase multiply: a_i *= d0 (bit clear) / d1 (bit set). The
  /// d0 == 1 phase-gate fast path (only the set half moves) lives inside
  /// the op so backends can vectorize it separately.
  void (*apply_diagonal)(Complex* amps, std::size_t n, std::size_t stride,
                         Complex d0, Complex d1);

  /// CNOT pair swap: for each compact k in [0, quarter), swap the
  /// amplitudes at i = expand_two_zero_bits(k, lo, hi) | cmask and
  /// i | tmask. Pure permutation — trivially bit-exact.
  void (*apply_cnot_pairs)(Complex* amps, std::size_t quarter, std::size_t lo,
                           std::size_t hi, std::size_t cmask,
                           std::size_t tmask);

  /// Σ ±|a_i|² with sign from (i & mask). Canonical mod-8 lane reduction
  /// (header comment) for the SIMD-identical backends; the reference
  /// backend keeps the seed's sequential sum.
  double (*expval_z)(const Complex* amps, std::size_t n, std::size_t mask);

  /// Blocked-GEMM register tile: acc[ii][jj] += Σ_p pa[p*4+ii] *
  /// pb[p*pb_stride+jj], ascending p per element (tensor/gemm.cpp packs
  /// operands; MR = NR = 4 is fixed by the packing layout).
  void (*gemm_micro_4x4)(std::size_t kc, const double* pa, const double* pb,
                         std::size_t pb_stride, double acc[4][4]);

  // Batched SoA ops. `amps` holds a StateVectorBatch: amplitude i of row b
  // at amps[i * batch + b], so every (i0, i1) gate pair touches two
  // contiguous runs of `batch` complexes — the lanes SIMD vectorizes
  // across. All index parameters (n, stride, quarter, masks) are in
  // AMPLITUDE units, exactly as for the single-state ops; the kernels scale
  // by `batch` internally.

  /// Dense 2x2 on every (i, i+stride) pair of amplitude ROWS: for each lane
  /// b, a0 = m0*v0 + m1*v1 and a1 = m2*v0 + m3*v1 with the scalar
  /// formula's rounding order per lane.
  void (*apply_single_qubit_batch)(Complex* amps, std::size_t n,
                                   std::size_t stride, std::size_t batch,
                                   const Complex* m);

  /// Batched diagonal phase multiply; the d0 == 1 fast path (only the set
  /// half moves) lives inside the op, mirroring apply_diagonal.
  void (*apply_diagonal_batch)(Complex* amps, std::size_t n,
                               std::size_t stride, std::size_t batch,
                               Complex d0, Complex d1);

  /// Batched CNOT pair swap: same index stream as apply_cnot_pairs, each
  /// swap moves a run of `batch` complexes. Pure permutation.
  void (*apply_cnot_pairs_batch)(Complex* amps, std::size_t quarter,
                                 std::size_t lo, std::size_t hi,
                                 std::size_t cmask, std::size_t tmask,
                                 std::size_t batch);

  /// Batched dense 4x4 (fused-pair / two-qubit unitary): for each compact
  /// k in [0, quarter), base = expand_two_zero_bits(k, lo, hi) and the four
  /// amplitude rows {base, base|bmask, base|amask, base|amask|bmask} mix as
  /// out_r = m16[4r]*a0 + m16[4r+1]*a1 + m16[4r+2]*a2 + m16[4r+3]*a3
  /// (left-to-right association, matching StateVector::apply_two_qubit).
  void (*apply_two_qubit_batch)(Complex* amps, std::size_t quarter,
                                std::size_t lo, std::size_t hi,
                                std::size_t amask, std::size_t bmask,
                                std::size_t batch, const Complex* m16);

  /// Per-row Σ ±|a_i|²: out[b] accumulates sequentially in ascending i
  /// (the batched reduction canon — see header comment), sign from
  /// (i & mask). `out` is overwritten.
  void (*expval_z_batch)(const Complex* amps, std::size_t n, std::size_t mask,
                         std::size_t batch, double* out);

  /// Per-row real part of <lhs_b|rhs_b>: out[b] accumulates
  /// l.re*r.re + l.im*r.im sequentially in ascending i (batched reduction
  /// canon). `out` is overwritten.
  void (*inner_products_real_batch)(const Complex* lhs, const Complex* rhs,
                                    std::size_t n, std::size_t batch,
                                    double* out);
};

/// Capability descriptor one backend TU registers.
struct Backend {
  const char* name;       ///< selection key ("generic", "avx2", ...)
  int priority;           ///< auto-detect picks the highest supported one
  bool (*supported)();    ///< CPUID gate (util::cpuid); constant per process
  bool reference;         ///< selecting it forces the legacy reference paths
  KernelOps ops;
};

/// Adds a descriptor (idempotent per name; later registrations of an
/// existing name are ignored). Called by the backend TUs' registrars and by
/// tests injecting fake descriptors.
void register_backend(const Backend* backend);

/// All registered descriptors, highest priority first.
std::vector<const Backend*> backends();

/// Descriptor by name, nullptr when unknown.
const Backend* find_backend(std::string_view name);

/// The active backend after selection-precedence resolution:
/// runtime override > QHDL_BACKEND env > CMake default (QHDL_BACKEND
/// option) > CPUID auto-detect. Throws std::runtime_error when the env or
/// build default names an unknown or unsupported backend.
const Backend& active_backend();

/// Where the active selection came from: "override", "env", "build",
/// "alias" (deprecated QHDL_FORCE_* env flag), or "auto".
const char* active_source();

/// Hot accessor for kernel call sites: the active ops table.
inline const KernelOps& ops() { return active_backend().ops; }

/// Runtime override (strongest precedence). Throws std::invalid_argument —
/// listing the registered names — on an unknown name, and when the named
/// backend's supported() is false on this CPU. nullopt clears the override
/// AND the cached resolution, so the env/build/auto layers are re-read
/// (tests use this to exercise the env layer via setenv).
void set_backend(std::optional<std::string_view> name);

/// One selection-precedence resolution, pure in its inputs (unit-testable
/// without process env mutation). Returns the chosen backend name ("" =
/// auto-detect) and reports the deciding layer through `source`.
std::string resolve_backend_name(const char* override_name,
                                 const char* backend_env,
                                 const char* legacy_generic_env,
                                 const char* legacy_reference_env,
                                 const char* build_default,
                                 const char** source);

}  // namespace qhdl::util::simd
