// Deterministic fault injection for the durability layer.
//
// Crash-safe execution (search/checkpoint.hpp), atomic result persistence
// (util/atomic_file.hpp), and the training loop's non-finite guards
// (nn/trainer.cpp) all have failure paths that would otherwise only run when
// real hardware misbehaves. This injector makes those paths testable: named
// sites count their arrivals with process-global counters, and a spec —
// taken from the QHDL_FAULT_SPEC environment variable or set directly by
// tests — declares at which arrivals a site fires and what failure it
// emulates.
//
// Spec grammar (sites separated by ';'):
//   <site>=<action>@<trigger>[,<trigger>...]
// where
//   site    = unit | io | dir | loss | worker | plan | accept | sock | conn
//   action  = crash (unit/io: throw InjectedCrash; worker: std::abort(),
//                    so the worker process dies by signal mid-unit)
//           | fail  (io/dir: throw std::runtime_error, like a full disk /
//                    a directory fsync error after rename;
//                    accept: the accepted connection is closed immediately,
//                    as if the listener hit a transient accept failure)
//           | nan   (loss: the guarded loss value becomes quiet NaN)
//           | hang  (worker: wedge silently without emitting frames, so the
//                    supervisor's deadline/heartbeat reaper must act)
//           | garbage (worker: emit a corrupt protocol frame and exit)
//           | evict (plan: flush the compiled-plan cache before the lookup,
//                    forcing a rehash + recompile — results must not change)
//           | short (sock: the framed read delivers at most one byte, so
//                    frames arrive maximally fragmented — reassembly must
//                    still produce identical results)
//           | drop  (sock: the framed read observes EOF, emulating a peer
//                    that disconnected; mid-frame this must surface as a
//                    descriptive truncated-frame error)
//           | slow  (sock: the framed read stalls without consuming data,
//                    emulating a slow-loris peer — the read deadline, not
//                    the peer, must bound the wait;
//                    conn: the supervisor stalls reading a worker connection
//                    this arrival — a slow registration handshake must be
//                    bounded by the handshake deadline)
//           | refuse (conn: an outbound connect_tcp throws as if the peer
//                    refused — reconnect/backoff must retry)
//           | reset (conn: an established remote-worker connection is torn
//                    down as if the peer sent RST — the unit it was running
//                    must be re-dispatched without losing determinism)
//           | partition (conn: the supervisor stops reading a remote-worker
//                    connection without closing it — heartbeat liveness, not
//                    the transport, must detect the split; the daemon's
//                    reconnect is the heal)
// and trigger = 1-based arrival count, with an optional '+' suffix meaning
// "this arrival and every one after it".
// Examples:
//   QHDL_FAULT_SPEC="unit=crash@3"      crash at the 3rd unit boundary
//   QHDL_FAULT_SPEC="io=fail@2"         2nd atomic file write fails
//   QHDL_FAULT_SPEC="dir=fail@1"        1st post-rename directory fsync fails
//   QHDL_FAULT_SPEC="loss=nan@5,8"      losses 5 and 8 become NaN
//   QHDL_FAULT_SPEC="loss=nan@1+"       every loss becomes NaN
//   QHDL_FAULT_SPEC="worker=crash@2"    worker aborts on its 2nd unit
//   QHDL_FAULT_SPEC="accept=fail@1"     1st accepted connection is dropped
//   QHDL_FAULT_SPEC="sock=short@1+"     every socket read is 1 byte
//   QHDL_FAULT_SPEC="sock=short@1;sock=drop@2"  disconnect mid-frame
//   QHDL_FAULT_SPEC="conn=refuse@1"     1st outbound connect is refused
//   QHDL_FAULT_SPEC="conn=reset@1"      1st worker-connection event resets
//
// The worker site only arrives inside --worker-mode processes (each with its
// own fresh counters), so "worker=crash@2" means "every worker instance dies
// on the second unit it receives" — the supervisor retries the unit on a
// respawned worker whose counter starts over.
//
// Counters are deterministic whenever the arrivals are (serial execution, or
// sites placed in serialized sections such as the search's commit loop).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace qhdl::util {

enum class FaultSite {
  UnitBoundary = 0,
  IoWrite = 1,
  Loss = 2,
  Worker = 3,
  DirSync = 4,
  PlanCache = 5,
  SocketAccept = 6,
  SocketRead = 7,
  Connection = 8,
};

/// What a worker process should do with the unit it just received.
enum class WorkerFaultMode { None, Crash, Hang, Garbage };

/// What a framed socket read should emulate for this read attempt.
enum class SocketFaultMode { None, ShortRead, Disconnect, Slow };

/// What a remote-worker connection event should emulate (supervisor side).
enum class ConnFaultMode { None, Refuse, Reset, Partition, Slow };

/// Emulates a process kill at an injection site. Deliberately NOT derived
/// from std::runtime_error: ordinary error handling must not absorb it, so
/// a crash propagates out of the study exactly like a real SIGKILL would
/// erase it — only the fault tests catch this type.
class InjectedCrash : public std::exception {
 public:
  explicit InjectedCrash(std::string message) : message_(std::move(message)) {}
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  std::string message_;
};

class FaultInjector {
 public:
  /// Process-wide instance; reads QHDL_FAULT_SPEC once on first access.
  static FaultInjector& instance();

  /// Replaces the active spec and zeroes all arrival counters. Empty spec
  /// disables injection. Throws std::invalid_argument on a malformed spec.
  void configure(const std::string& spec);

  /// True when any trigger is armed.
  bool armed() const;

  /// Counts one arrival at `site`; true when a trigger fires for it.
  bool fires(FaultSite site);

  /// Arrivals counted at `site` since the last configure().
  std::uint64_t arrivals(FaultSite site) const;

  // --- site helpers (count an arrival, then act) --------------------------

  /// Work-unit boundary: throws InjectedCrash when a `unit=crash` fires.
  void on_unit_boundary(const std::string& where);

  /// Durable write: throws InjectedCrash (`io=crash`) or std::runtime_error
  /// (`io=fail`) when a trigger fires.
  void on_io_write(const std::string& path);

  /// Loss computation: true when a `loss=nan` trigger fires and the guarded
  /// loss value should be replaced with quiet NaN.
  bool poison_loss();

  /// Post-rename parent-directory fsync: throws std::runtime_error when a
  /// `dir=fail` trigger fires (the content is committed but its durability
  /// is not provable — see util/atomic_file.cpp).
  void on_io_dir_sync(const std::string& path);

  /// Worker-process unit receipt: which failure the worker should emulate
  /// for this unit (None when no trigger fires). The caller acts on it —
  /// crash/hang/garbage happen in search::worker_main, not here, because
  /// they are process-level behaviours.
  WorkerFaultMode on_worker_unit(const std::string& key);

  /// Compiled-plan cache lookup: true when a `plan=evict` trigger fires and
  /// the cache should be flushed before serving the lookup (exercises the
  /// eviction + recompile path; see quantum/exec_plan.cpp).
  bool plan_cache_evict();

  /// Listener accept: true when an `accept=fail` trigger fires and the
  /// freshly accepted connection should be closed immediately, emulating a
  /// transient accept-path failure (see util/socket.cpp).
  bool on_socket_accept();

  /// Framed socket read attempt: which peer misbehaviour to emulate for
  /// this read (None when no trigger fires). The caller acts on it —
  /// short/drop/slow happen in the frame-read loop, not here (see
  /// search::read_frame in worker_protocol.cpp).
  SocketFaultMode on_socket_read();

  /// Outbound TCP connect attempt: true when a `conn=refuse` trigger fires
  /// and connect_tcp should throw as if the peer refused the connection.
  /// Other conn actions do not fire here (the arrival is still counted).
  bool on_connect_attempt(const std::string& target);

  /// Remote-worker connection event on the supervisor (one arrival per
  /// handshaking or busy connection per dispatcher tick): which network
  /// misbehaviour to emulate (None when no trigger fires). Reset/partition/
  /// slow are acted on by the worker pool; `conn=refuse` does not fire here.
  ConnFaultMode on_connection(const std::string& where);

 private:
  FaultInjector();

  struct Impl;
  Impl* impl_;  // leaked singleton state; never destroyed
};

}  // namespace qhdl::util
