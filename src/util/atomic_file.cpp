#include "util/atomic_file.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define QHDL_HAVE_FSYNC 1
#endif

#include "util/fault_injection.hpp"

namespace qhdl::util {

namespace {

/// Process-unique temp suffix: concurrent writers (parallel sweep levels
/// flushing the same checkpoint is serialized upstream, but distinct files
/// may be written from different threads) must never collide on temp names.
std::string temp_path_for(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  return path + ".tmp." + std::to_string(id);
}

[[noreturn]] void fail(const std::string& stage, const std::string& path,
                       const std::string& temp) {
  const int saved_errno = errno;
  std::error_code ec;
  if (!temp.empty()) std::filesystem::remove(temp, ec);  // best-effort
  std::string message = "atomic_write_file: " + stage + " failed for " + path;
  if (saved_errno != 0) {
    message += ": ";
    message += std::strerror(saved_errno);
  }
  throw std::runtime_error(message);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view content) {
  const std::string temp = temp_path_for(path);

  errno = 0;
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) fail("open", path, "");

  const std::size_t written =
      content.empty() ? 0
                      : std::fwrite(content.data(), 1, content.size(), file);
  if (written != content.size()) {
    std::fclose(file);
    fail("write", path, temp);
  }
  if (std::fflush(file) != 0) {
    std::fclose(file);
    fail("flush", path, temp);
  }
#ifdef QHDL_HAVE_FSYNC
  if (fsync(fileno(file)) != 0) {
    std::fclose(file);
    fail("fsync", path, temp);
  }
#endif
  if (std::fclose(file) != 0) fail("close", path, temp);

  // The staged content is complete and on disk; the injected IO fault fires
  // here, at the worst possible moment — after the work, before the commit —
  // to prove the destination is never left partial.
  try {
    FaultInjector::instance().on_io_write(path);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(temp, ec);
    throw;
  }

  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    errno = 0;
    std::error_code cleanup;
    std::filesystem::remove(temp, cleanup);
    throw std::runtime_error("atomic_write_file: rename failed for " + path +
                             ": " + ec.message());
  }

#ifdef QHDL_HAVE_FSYNC
  // The rename is only durable once the parent directory's entry for it is
  // on disk; without this fsync a power loss can roll the directory back to
  // a state where the just-committed file never existed. A failure here
  // leaves the new content visible but its durability unproven, so it is
  // reported like every other stage (the injectable `dir=fail` site tests
  // this path).
  FaultInjector::instance().on_io_dir_sync(path);
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  errno = 0;
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd < 0) fail("open-dir", path, "");
  if (::fsync(dir_fd) != 0) {
    const int saved_errno = errno;
    ::close(dir_fd);
    errno = saved_errno;
    fail("fsync-dir", path, "");
  }
  ::close(dir_fd);
#endif
}

}  // namespace qhdl::util
