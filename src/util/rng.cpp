#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qhdl::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = static_cast<std::uint64_t>(n);
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t draw = 0;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return static_cast<std::size_t>(draw % bound);
}

std::int64_t Rng::integer(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::integer: lo > hi");
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(index(static_cast<std::size_t>(span)));
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> out(n);
  for (auto& v : out) v = normal();
  return out;
}

std::vector<double> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<double> out(n);
  for (auto& v : out) v = uniform(lo, hi);
  return out;
}

Rng Rng::split() { return Rng{next_u64() ^ 0xa5a5a5a5deadbeefULL}; }

Rng::Snapshot Rng::snapshot() const {
  Snapshot snap;
  snap.state = state_;
  snap.has_cached_normal = has_cached_normal_;
  snap.cached_normal = cached_normal_;
  return snap;
}

Rng Rng::restore(const Snapshot& snapshot) {
  Rng rng;
  rng.state_ = snapshot.state;
  rng.has_cached_normal_ = snapshot.has_cached_normal;
  rng.cached_normal_ = snapshot.cached_normal;
  return rng;
}

}  // namespace qhdl::util
