// qhdl_serve: a long-running study/train service over TCP (DESIGN.md §15).
//
// Architecture: one accept thread, one detached-lifetime connection thread
// per client, and a small pool of executor threads draining a *bounded*
// admission queue. Robustness is structural, not incidental:
//
//   * Load shedding — a full queue (or connection table) answers
//     {"type":"rejected","reason":"overloaded"} immediately instead of
//     queueing without bound; the shed is counted and visible in `stats`.
//   * Per-job deadlines — `job_timeout_ms` arms a util::Deadline on the
//     job's CancelToken; the compute layer polls it at unit-window
//     boundaries and the client receives {"type":"cancelled"}.
//   * Client-disconnect detection — the connection thread polls its socket
//     while the job is pending; EOF cancels the orphaned job so executor
//     slots are never burned for an absent client.
//   * Graceful drain — request_drain() (wired to SIGTERM in qhdl_serve)
//     stops accepting, lets in-flight jobs finish, rejects queued-but-
//     unstarted ones with reason "draining", and flushes the result cache.
//   * Worker-crash tolerance — study jobs with `pool_workers > 0` run on a
//     PR-5 WorkerPool (kill/respawn, retry, quarantine, backoff); pool
//     stats aggregate into the server's.
//
// Results are memoized in a content-addressed ResultCache keyed by the
// sweep-config hash: a repeated study replays its units byte-identically,
// and a cancelled job's completed units survive for the retry.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "search/worker_pool.hpp"
#include "serve/result_cache.hpp"
#include "util/json.hpp"

namespace qhdl::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back with port()
  /// Executor threads (concurrent jobs).
  std::size_t executors = 1;
  /// Jobs allowed to wait beyond the executing ones; admission beyond this
  /// is shed with "rejected: overloaded".
  std::size_t max_queue = 8;
  /// Concurrent connections; beyond this new clients are shed immediately.
  std::size_t max_connections = 64;
  /// Per-job wall-clock budget in ms (0 = none).
  std::uint64_t job_timeout_ms = 0;
  /// Budget for reading one request frame off a connection.
  std::uint64_t read_timeout_ms = 5000;
  /// Result cache: spill directory ("" = memory-only) and LRU capacity.
  std::string cache_dir;
  std::size_t cache_capacity = 8;
  /// Worker processes per study job (0 = in-process execution). Knobs for
  /// the spawned pools (deadlines, retries, backoff) ride in `pool`;
  /// its `workers` field is overridden by pool_workers when > 0.
  /// `pool.remote_workers > 0` makes each study job's pool listen on
  /// `pool.listen_port` for qhdl_worker daemons (which should run with
  /// --persist, since each job binds the port afresh); with concurrent
  /// executors only one job holds the port at a time and the others fall
  /// back to local workers.
  std::size_t pool_workers = 0;
  search::WorkerPoolConfig pool;
};

/// Counters behind the `stats` request. Monotonic since server start.
struct ServerStats {
  std::size_t accepted = 0;
  std::size_t accept_failures = 0;
  std::size_t rejected_overloaded = 0;
  std::size_t rejected_draining = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_failed = 0;
  std::size_t jobs_cancelled = 0;
  std::size_t deadlines_expired = 0;
  std::size_t client_disconnects = 0;
  std::size_t protocol_errors = 0;
  std::size_t read_timeouts = 0;
  std::size_t progress_frames = 0;  ///< streaming progress frames written
  // Aggregated over every per-job worker pool this server has run.
  std::size_t pool_restarts = 0;
  std::size_t pool_retried_units = 0;
  std::size_t pool_quarantined_units = 0;
  std::size_t pool_steals = 0;
  ResultCacheStats cache;

  util::Json to_json() const;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();  ///< stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept/executor threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// The bound port (valid after start(); resolves port 0).
  std::uint16_t port() const;

  /// Stops accepting and rejects jobs that have not started yet;
  /// in-flight jobs keep running. Idempotent, async-signal-unsafe (call
  /// from a signal *watcher*, not a handler).
  void request_drain();

  /// Full graceful shutdown: request_drain(), join all threads (in-flight
  /// jobs finish first), flush the result cache. Idempotent.
  void stop();

  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qhdl::serve
