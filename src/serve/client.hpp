// Blocking qhdl_serve client: one connection, one request, one reply.
//
// Used by the qhdl_client tool, the load bench, and the serve tests. Reads
// ride search::read_frame, so they are deadline-bounded — a wedged or
// slow-loris server surfaces as a timeout error, never a hang.
#pragma once

#include <cstdint>
#include <string>

#include "util/json.hpp"

namespace qhdl::serve {

/// Connects to host:port, sends `request` as one frame, and returns the
/// reply frame. Throws std::runtime_error when the connection fails, the
/// server closes without replying, or no reply arrives within
/// `reply_timeout_ms` (0 = wait forever); search::ProtocolError on a
/// corrupt reply stream.
util::Json round_trip(const std::string& host, std::uint16_t port,
                      const util::Json& request,
                      std::uint64_t reply_timeout_ms = 0);

}  // namespace qhdl::serve
