// Blocking qhdl_serve client: one connection, one request, one reply.
//
// Used by the qhdl_client tool, the load bench, and the serve tests. Reads
// ride search::read_frame, so they are deadline-bounded — a wedged or
// slow-loris server surfaces as a timeout error, never a hang.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/json.hpp"

namespace qhdl::serve {

/// Connects to host:port, sends `request` as one frame, and returns the
/// reply frame. Throws std::runtime_error when the connection fails, the
/// server closes without replying, or no reply arrives within
/// `reply_timeout_ms` (0 = wait forever); search::ProtocolError on a
/// corrupt reply stream.
util::Json round_trip(const std::string& host, std::uint16_t port,
                      const util::Json& request,
                      std::uint64_t reply_timeout_ms = 0);

/// Streaming variant: frames with "type":"progress" are handed to
/// `on_progress` (when non-null) and reading continues; the first
/// non-progress frame is the terminal reply and is returned. The reply
/// timeout re-arms per frame, so a long study stays alive as long as
/// progress keeps flowing. Pair with a request that sets "progress": true
/// (see protocol.hpp).
util::Json round_trip(const std::string& host, std::uint16_t port,
                      const util::Json& request,
                      const std::function<void(const util::Json&)>& on_progress,
                      std::uint64_t reply_timeout_ms = 0);

}  // namespace qhdl::serve
