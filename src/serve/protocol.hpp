// Request/reply vocabulary of the qhdl_serve wire protocol (DESIGN.md §15).
//
// Transport: TCP, one length-prefixed JSON frame per message — the exact
// framing the worker pool speaks over pipes (search/worker_protocol.hpp),
// including the 16MB cap and the truncation/oversize error behaviour. A
// connection carries one request and receives exactly one *terminal* reply
// frame, then the server closes it. A study request that sets
// "progress": true additionally receives zero or more {"type":"progress"}
// frames before the terminal reply — one per committed unit window, with
// family/features/repetition/units_done/total_units and the last evaluated
// spec; clients must keep reading until a non-progress frame arrives.
//
// Requests:
//   {"type":"ping"}
//   {"type":"stats"}
//   {"type":"study","family":<name>,"config":<sweep_config_to_json>}
//   {"type":"train","config":<sweep config>,"features":F,
//    "repetition":R,"spec":<model_spec_to_json>}
//   {"type":"sleep","ms":N}   (diagnostic job that occupies an executor
//                              slot; used by the admission-control tests
//                              and the load bench)
// Replies:
//   {"type":"pong","version":1}
//   {"type":"stats", ...counters...}           (serve/server.hpp)
//   {"type":"result", ...}                     (study: "sweep" + "cache";
//                                               train: "unit"; sleep: {})
//   {"type":"rejected","reason":"overloaded"|"draining"}
//   {"type":"cancelled","reason":<why>}
//   {"type":"error","message":<what>}
#pragma once

#include <string>

#include "search/experiment.hpp"
#include "util/json.hpp"

namespace qhdl::serve {

inline constexpr int kServeProtocolVersion = 1;

/// Inverse of search::family_name. Throws std::invalid_argument naming the
/// valid spellings on an unknown family.
search::Family family_from_name(const std::string& name);

util::Json make_error(const std::string& message);
util::Json make_rejected(const std::string& reason);
util::Json make_cancelled(const std::string& reason);

/// Builds a study request for `family` with the given sweep config.
util::Json make_study_request(search::Family family,
                              const search::SweepConfig& config);

}  // namespace qhdl::serve
