#include "serve/result_cache.hpp"

#include <algorithm>
#include <filesystem>

#include "util/logging.hpp"

namespace qhdl::serve {

ResultCache::ResultCache(std::string dir, std::size_t capacity)
    : dir_(std::move(dir)), capacity_(std::max<std::size_t>(1, capacity)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      util::log_warn("result cache: cannot create " + dir_ + ": " +
                     ec.message() + " (falling back to memory-only)");
      dir_.clear();
    }
  }
}

std::shared_ptr<search::StudyCheckpoint> ResultCache::checkpoint_for(
    const search::SweepConfig& config) {
  const std::string hash = search::sweep_config_hash(config);
  std::lock_guard<std::mutex> lock(mutex_);

  const auto it = entries_.find(hash);
  if (it != entries_.end()) {
    order_.erase(it->second.order_it);
    order_.push_front(hash);
    it->second.order_it = order_.begin();
    return it->second.checkpoint;
  }

  const std::string path =
      dir_.empty() ? "" : dir_ + "/" + hash + ".units.json";
  auto checkpoint = std::make_shared<search::StudyCheckpoint>(path, hash);
  if (!path.empty()) {
    try {
      const std::size_t restored = checkpoint->load();
      if (restored > 0) {
        ++disk_loads_;
        util::log_info("result cache: restored " + std::to_string(restored) +
                       " units for " + hash + " from disk");
      }
    } catch (const std::exception& e) {
      // A stale or corrupt spill file must not fail the request — the
      // entry simply starts cold and overwrites the file on next flush.
      util::log_warn(std::string{"result cache: discarding spill file: "} +
                     e.what());
      checkpoint = std::make_shared<search::StudyCheckpoint>(path, hash);
    }
  }

  order_.push_front(hash);
  entries_.emplace(hash, Entry{checkpoint, order_.begin()});
  if (entries_.size() > capacity_) evict_locked();
  return checkpoint;
}

void ResultCache::evict_locked() {
  const std::string victim = order_.back();
  order_.pop_back();
  const auto it = entries_.find(victim);
  if (it == entries_.end()) return;
  retired_hits_ += it->second.checkpoint->replay_hits();
  retired_misses_ += it->second.checkpoint->replay_misses();
  if (!dir_.empty()) {
    try {
      it->second.checkpoint->flush();
    } catch (const std::exception& e) {
      util::log_warn(std::string{"result cache: evicted entry lost "
                                 "(flush failed): "} +
                     e.what());
    }
  }
  // A job still holding the shared_ptr keeps its checkpoint alive; the
  // cache just stops tracking it.
  entries_.erase(it);
  ++evictions_;
}

void ResultCache::flush_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dir_.empty()) return;
  for (auto& [hash, entry] : entries_) {
    try {
      entry.checkpoint->flush();
    } catch (const std::exception& e) {
      util::log_warn(std::string{"result cache: flush of "} + hash +
                     " failed: " + e.what());
    }
  }
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ResultCacheStats stats;
  stats.entries = entries_.size();
  stats.unit_hits = retired_hits_;
  stats.unit_misses = retired_misses_;
  for (const auto& [hash, entry] : entries_) {
    stats.unit_hits += entry.checkpoint->replay_hits();
    stats.unit_misses += entry.checkpoint->replay_misses();
  }
  stats.evictions = evictions_;
  stats.disk_loads = disk_loads_;
  return stats;
}

}  // namespace qhdl::serve
