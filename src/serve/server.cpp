#include "serve/server.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <poll.h>
#include <unistd.h>
#endif

#include "search/results.hpp"
#include "search/worker_protocol.hpp"
#include "serve/protocol.hpp"
#include "util/cancel.hpp"
#include "util/deadline.hpp"
#include "util/logging.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace qhdl::serve {

using search::FrameReader;
using search::FrameReadStatus;
using search::ProtocolError;

util::Json ServerStats::to_json() const {
  util::Json json = util::Json::object();
  json["type"] = "stats";
  json["accepted"] = accepted;
  json["accept_failures"] = accept_failures;
  json["rejected_overloaded"] = rejected_overloaded;
  json["rejected_draining"] = rejected_draining;
  json["jobs_completed"] = jobs_completed;
  json["jobs_failed"] = jobs_failed;
  json["jobs_cancelled"] = jobs_cancelled;
  json["deadlines_expired"] = deadlines_expired;
  json["client_disconnects"] = client_disconnects;
  json["protocol_errors"] = protocol_errors;
  json["read_timeouts"] = read_timeouts;
  json["progress_frames"] = progress_frames;
  json["pool_restarts"] = pool_restarts;
  json["pool_retried_units"] = pool_retried_units;
  json["pool_quarantined_units"] = pool_quarantined_units;
  json["pool_steals"] = pool_steals;
  util::Json cache_json = util::Json::object();
  cache_json["entries"] = cache.entries;
  cache_json["unit_hits"] = cache.unit_hits;
  cache_json["unit_misses"] = cache.unit_misses;
  cache_json["evictions"] = cache.evictions;
  cache_json["disk_loads"] = cache.disk_loads;
  json["cache"] = std::move(cache_json);
  return json;
}

namespace {

/// One admitted job: the request, its cancellation channel, and the
/// promise the executor resolves with the reply frame. shared_ptr-owned so
/// a connection thread may abandon it (client gone) while the executor
/// still holds it.
struct Job {
  util::Json request;
  util::CancelToken cancel;
  std::promise<util::Json> promise;
  std::shared_future<util::Json> reply;

  /// Streaming progress (study requests with "progress": true): the
  /// executor enqueues frames here and the connection thread drains them
  /// to the socket while waiting for the reply. Bounded — progress is
  /// advisory, so under backpressure the oldest frames are dropped.
  bool wants_progress = false;
  std::mutex progress_mutex;
  std::deque<util::Json> progress_frames;

  Job() : reply(promise.get_future().share()) {}
};

constexpr std::size_t kMaxQueuedProgressFrames = 256;

}  // namespace

struct Server::Impl {
  ServerConfig cfg;
  ResultCache cache;

  util::ListenSocket listener;
  std::thread accept_thread;
  std::vector<std::thread> executors;

  /// Connection threads plus a done flag so the accept loop can reap
  /// finished ones (join is instant once done is set) instead of letting
  /// handles accumulate for the life of the server.
  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex conn_mutex;
  std::vector<Conn> connections;
  std::size_t active_connections = 0;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<std::shared_ptr<Job>> queue;

  std::atomic<bool> draining{false};
  std::atomic<bool> stop_executors{false};
  bool started = false;
  bool stopped = false;

  mutable std::mutex stats_mutex;
  ServerStats counters;

  explicit Impl(ServerConfig config)
      : cfg(std::move(config)), cache(cfg.cache_dir, cfg.cache_capacity) {}

  // --- stats ---------------------------------------------------------------

  template <typename F>
  void bump(F&& update) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    update(counters);
  }

  ServerStats snapshot() const {
    ServerStats stats;
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats = counters;
    }
    stats.cache = cache.stats();
    return stats;
  }

  // --- accept / connection side -------------------------------------------

  void reap_finished_locked() {
    for (auto it = connections.begin(); it != connections.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  }

  void accept_loop() {
    while (!draining.load(std::memory_order_acquire)) {
      bool injected = false;
      auto socket =
          listener.accept(util::Deadline::after_ms(100), &injected);
      {
        std::lock_guard<std::mutex> lock(conn_mutex);
        reap_finished_locked();
      }
      if (injected) {
        bump([](ServerStats& s) { ++s.accept_failures; });
        continue;
      }
      if (!socket.has_value()) continue;  // slice elapsed; re-check drain
      bump([](ServerStats& s) { ++s.accepted; });

      std::lock_guard<std::mutex> lock(conn_mutex);
      if (active_connections >= cfg.max_connections) {
        bump([](ServerStats& s) { ++s.rejected_overloaded; });
        socket->write_all(
            search::frame_wire(make_rejected("overloaded").dump()));
        continue;  // Socket destructor closes the connection
      }
      ++active_connections;
      auto done = std::make_shared<std::atomic<bool>>(false);
      Conn conn;
      conn.done = done;
      conn.thread = std::thread(
          [this, done, sock = std::move(*socket)]() mutable {
            handle_connection(std::move(sock));
            std::lock_guard<std::mutex> inner(conn_mutex);
            --active_connections;
            done->store(true, std::memory_order_release);
          });
      connections.push_back(std::move(conn));
    }
    listener.close();
  }

  void reply_and_close(util::Socket& socket, const util::Json& reply) {
    socket.write_all(search::frame_wire(reply.dump()));
  }

  void handle_connection(util::Socket socket) {
    FrameReader reader;
    std::string payload;
    try {
      const auto status =
          search::read_frame(socket.fd(), reader,
                             util::Deadline::after_ms(cfg.read_timeout_ms),
                             &payload);
      if (status == FrameReadStatus::Eof) return;  // connected and left
      if (status == FrameReadStatus::Timeout) {
        bump([](ServerStats& s) { ++s.read_timeouts; });
        reply_and_close(socket, make_error("request read timed out"));
        return;
      }
    } catch (const ProtocolError& e) {
      bump([](ServerStats& s) { ++s.protocol_errors; });
      util::log_warn(std::string{"serve: bad request stream: "} + e.what());
      reply_and_close(socket, make_error(e.what()));
      return;
    }

    util::Json request;
    std::string type;
    try {
      request = util::Json::parse(payload);
      type = request.at("type").as_string();
    } catch (const std::exception& e) {
      bump([](ServerStats& s) { ++s.protocol_errors; });
      reply_and_close(socket,
                      make_error(std::string{"bad request: "} + e.what()));
      return;
    }

    if (type == "ping") {
      util::Json pong = util::Json::object();
      pong["type"] = "pong";
      pong["version"] = kServeProtocolVersion;
      reply_and_close(socket, pong);
      return;
    }
    if (type == "stats") {
      reply_and_close(socket, snapshot().to_json());
      return;
    }
    if (type != "study" && type != "train" && type != "sleep") {
      bump([](ServerStats& s) { ++s.protocol_errors; });
      reply_and_close(socket,
                      make_error("unknown request type '" + type + "'"));
      return;
    }

    // Admission control for compute jobs.
    if (draining.load(std::memory_order_acquire)) {
      bump([](ServerStats& s) { ++s.rejected_draining; });
      reply_and_close(socket, make_rejected("draining"));
      return;
    }
    auto job = std::make_shared<Job>();
    job->request = std::move(request);
    job->wants_progress = type == "study" &&
                          job->request.contains("progress") &&
                          job->request.at("progress").as_bool();
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      if (queue.size() >= cfg.max_queue) {
        bump([](ServerStats& s) { ++s.rejected_overloaded; });
        reply_and_close(socket, make_rejected("overloaded"));
        return;
      }
      queue.push_back(job);
    }
    queue_cv.notify_one();

    // Monitor the socket while the job is pending: EOF means the client
    // went away, and an orphaned job must not burn an executor slot any
    // longer than one unit window.
    if (!wait_with_disconnect_watch(socket, *job)) {
      bump([](ServerStats& s) { ++s.client_disconnects; });
      job->cancel.cancel("client disconnected");
      return;  // nobody left to reply to
    }
    reply_and_close(socket, job->reply.get());
  }

  /// Drains queued progress frames for `job` onto the socket. Returns
  /// false when a write fails (client gone). No-op unless the job asked
  /// for progress.
  bool flush_progress(util::Socket& socket, Job& job) {
    if (!job.wants_progress) return true;
    std::deque<util::Json> frames;
    {
      std::lock_guard<std::mutex> lock(job.progress_mutex);
      frames.swap(job.progress_frames);
    }
    for (const util::Json& frame : frames) {
      if (!socket.write_all(search::frame_wire(frame.dump()))) return false;
      bump([](ServerStats& s) { ++s.progress_frames; });
    }
    return true;
  }

  /// True when the reply became ready; false when the client disconnected
  /// first. Streams queued progress frames to the client while waiting.
  bool wait_with_disconnect_watch(util::Socket& socket, Job& job) {
#if defined(__unix__) || defined(__APPLE__)
    while (job.reply.wait_for(std::chrono::milliseconds(0)) !=
           std::future_status::ready) {
      if (!flush_progress(socket, job)) return false;
      pollfd pfd{};
      pfd.fd = socket.fd();
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, 50);
      if (ready < 0 && errno != EINTR) return false;
      if (ready > 0) {
        char scratch[256];
        const ssize_t n = ::read(socket.fd(), scratch, sizeof(scratch));
        if (n == 0) return false;  // clean EOF: client gone
        if (n < 0 && errno != EINTR && errno != EAGAIN) return false;
        // Extra bytes on a one-request connection are ignored (the reply
        // is still owed for the request already admitted).
      }
    }
    // Frames enqueued between the last flush and reply-readiness must land
    // before the terminal reply frame.
    return flush_progress(socket, job);
#else
    job.reply.wait();
    return flush_progress(socket, job);
#endif
  }

  // --- executor side -------------------------------------------------------

  void executor_loop() {
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] {
          return stop_executors.load(std::memory_order_acquire) ||
                 !queue.empty();
        });
        if (queue.empty()) {
          if (stop_executors.load(std::memory_order_acquire)) return;
          continue;
        }
        job = std::move(queue.front());
        queue.pop_front();
      }
      // Queued-but-unstarted jobs are shed on drain; only jobs already
      // executing count as "in flight".
      if (draining.load(std::memory_order_acquire)) {
        bump([](ServerStats& s) { ++s.rejected_draining; });
        job->promise.set_value(make_rejected("draining"));
        continue;
      }
      if (cfg.job_timeout_ms > 0) {
        job->cancel.set_deadline(
            util::Deadline::after_ms(cfg.job_timeout_ms));
      }
      job->promise.set_value(run_job(*job));
    }
  }

  util::Json run_job(Job& job) {
    const std::string type = job.request.at("type").as_string();
    try {
      util::Json result;
      if (type == "study") {
        result = run_study(job);
      } else if (type == "train") {
        result = run_train(job);
      } else {
        result = run_sleep(job);
      }
      bump([](ServerStats& s) { ++s.jobs_completed; });
      return result;
    } catch (const util::Cancelled& e) {
      const bool deadline = job.cancel.deadline_expired();
      bump([deadline](ServerStats& s) {
        ++s.jobs_cancelled;
        if (deadline) ++s.deadlines_expired;
      });
      util::log_info(std::string{"serve: job cancelled: "} + e.what());
      return make_cancelled(job.cancel.reason());
    } catch (const std::exception& e) {
      bump([](ServerStats& s) { ++s.jobs_failed; });
      util::log_warn(std::string{"serve: job failed: "} + e.what());
      return make_error(e.what());
    }
  }

  util::Json run_study(Job& job) {
    const search::Family family =
        family_from_name(job.request.at("family").as_string());
    const search::SweepConfig config =
        search::sweep_config_from_json(job.request.at("config"));

    auto checkpoint = cache.checkpoint_for(config);
    const std::size_t hits_before = checkpoint->replay_hits();
    const std::size_t misses_before = checkpoint->replay_misses();

    std::unique_ptr<search::WorkerPool> pool;
    // Remote fleets don't need local subprocess support: the pool's own
    // fallback chain (remote -> local pipes -> in-process) handles the
    // degenerate cases.
    const bool want_pool = cfg.pool_workers > 0 || cfg.pool.remote_workers > 0;
    if (want_pool &&
        (cfg.pool.remote_workers > 0 || util::subprocess_supported())) {
      search::WorkerPoolConfig pool_cfg = cfg.pool;
      if (cfg.pool_workers > 0) pool_cfg.workers = cfg.pool_workers;
      pool = std::make_unique<search::WorkerPool>(config, pool_cfg);
    }

    // Progress streaming: fires from concurrent level threads after each
    // committed unit window; frames queue on the job (bounded, oldest
    // dropped) and the connection thread drains them to the socket.
    search::ProgressFn progress_fn;
    if (job.wants_progress) {
      Job* job_ptr = &job;
      progress_fn = [job_ptr](const search::ProgressEvent& event) {
        util::Json frame = util::Json::object();
        frame["type"] = "progress";
        frame["family"] = event.family;
        frame["features"] = event.features;
        frame["repetition"] = event.repetition;
        frame["units_done"] = event.units_done;
        frame["total_units"] = event.total_units;
        frame["last_spec"] = event.last_spec;
        frame["last_val_accuracy"] = event.last_val_accuracy;
        frame["winner_found"] = event.winner_found;
        std::lock_guard<std::mutex> lock(job_ptr->progress_mutex);
        if (job_ptr->progress_frames.size() >= kMaxQueuedProgressFrames) {
          job_ptr->progress_frames.pop_front();
        }
        job_ptr->progress_frames.push_back(std::move(frame));
      };
    }

    const search::SweepResult sweep = search::run_complexity_sweep(
        family, config, checkpoint.get(), pool.get(), &job.cancel,
        progress_fn ? &progress_fn : nullptr);
    if (pool != nullptr) {
      const search::WorkerPoolStats pool_stats = pool->stats();
      bump([&pool_stats](ServerStats& s) {
        s.pool_restarts += pool_stats.restarts;
        s.pool_retried_units += pool_stats.retried_units;
        s.pool_quarantined_units += pool_stats.quarantined_units;
        s.pool_steals += pool_stats.steals;
      });
    }
    checkpoint->flush();

    util::Json reply = util::Json::object();
    reply["type"] = "result";
    reply["family"] = search::family_name(family);
    reply["config_hash"] = checkpoint->config_hash();
    reply["sweep"] = search::sweep_to_json(sweep);
    util::Json cache_json = util::Json::object();
    cache_json["unit_hits"] = checkpoint->replay_hits() - hits_before;
    cache_json["unit_misses"] = checkpoint->replay_misses() - misses_before;
    reply["cache"] = std::move(cache_json);
    return reply;
  }

  util::Json run_train(Job& job) {
    const search::SweepConfig config =
        search::sweep_config_from_json(job.request.at("config"));
    const auto features =
        static_cast<std::size_t>(job.request.at("features").as_number());
    const std::size_t repetition =
        job.request.contains("repetition")
            ? static_cast<std::size_t>(
                  job.request.at("repetition").as_number())
            : 0;
    const search::ModelSpec spec =
        search::model_spec_from_json(job.request.at("spec"));

    search::WorkUnit unit;
    // The unit family carries the spec identity so distinct specs at the
    // same (features, repetition) occupy distinct cache slots.
    unit.key.family =
        "train:" + search::model_spec_to_json(spec).dump();
    unit.key.features = features;
    unit.key.repetition = repetition;
    unit.key.candidate = 0;
    unit.spec = spec;

    auto checkpoint = cache.checkpoint_for(config);
    bool cached = true;
    std::optional<search::CandidateResult> result =
        checkpoint->find(unit.key);
    if (!result.has_value()) {
      cached = false;
      util::throw_if_cancelled(&job.cancel);
      // Stream derivation replays the sweep's: root seed -> the
      // (repetition+1)-th split is the repetition stream, from which the
      // run streams for this one candidate are drawn.
      util::Rng root{config.search.seed};
      util::Rng rep_rng = root;
      for (std::size_t r = 0; r <= repetition; ++r) rep_rng = root.split();
      unit.streams.reserve(config.search.runs_per_model);
      for (std::size_t r = 0; r < config.search.runs_per_model; ++r) {
        unit.streams.push_back(rep_rng.split());
      }
      search::UnitDataCache data_cache;
      result = search::evaluate_unit(config, unit, data_cache);
      checkpoint->record(unit.key, *result);
      checkpoint->flush();
    }

    util::Json reply = util::Json::object();
    reply["type"] = "result";
    reply["cached"] = cached;
    reply["unit"] = search::candidate_result_to_json(*result);
    return reply;
  }

  util::Json run_sleep(Job& job) {
    const auto total_ms =
        static_cast<std::uint64_t>(job.request.at("ms").as_number());
    const util::Deadline done = util::Deadline::after_ms(
        total_ms == 0 ? 1 : total_ms);
    while (!done.expired()) {
      job.cancel.throw_if_cancelled();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    util::Json reply = util::Json::object();
    reply["type"] = "result";
    reply["slept_ms"] = total_ms;
    return reply;
  }
};

Server::Server(ServerConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Server::~Server() { stop(); }

void Server::start() {
  if (impl_->started) return;
  if (!util::sockets_supported()) {
    throw std::runtime_error(
        "qhdl_serve: TCP sockets are not supported on this platform");
  }
  // A client that disconnects mid-reply must surface as EPIPE from the
  // socket writer, never as a process-killing signal.
  util::install_sigpipe_guard();
  impl_->listener = util::ListenSocket::listen_tcp(
      impl_->cfg.host, impl_->cfg.port,
      static_cast<int>(impl_->cfg.max_connections));
  impl_->started = true;
  impl_->stopped = false;
  const std::size_t executors =
      std::max<std::size_t>(1, impl_->cfg.executors);
  impl_->executors.reserve(executors);
  for (std::size_t i = 0; i < executors; ++i) {
    impl_->executors.emplace_back([this] { impl_->executor_loop(); });
  }
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  util::log_info("qhdl_serve: listening on " + impl_->cfg.host + ":" +
                 std::to_string(impl_->listener.port()));
}

std::uint16_t Server::port() const { return impl_->listener.port(); }

void Server::request_drain() {
  impl_->draining.store(true, std::memory_order_release);
  impl_->queue_cv.notify_all();
}

void Server::stop() {
  if (!impl_->started || impl_->stopped) return;
  request_drain();
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  // Executors shed everything still queued (reason "draining"), finish
  // the jobs they are executing, then exit.
  impl_->stop_executors.store(true, std::memory_order_release);
  impl_->queue_cv.notify_all();
  for (std::thread& t : impl_->executors) {
    if (t.joinable()) t.join();
  }
  impl_->executors.clear();
  // Every job future is resolved now, so connection threads are writing
  // their replies and exiting.
  std::vector<Impl::Conn> connections;
  {
    std::lock_guard<std::mutex> lock(impl_->conn_mutex);
    connections.swap(impl_->connections);
  }
  for (Impl::Conn& conn : connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }
  impl_->cache.flush_all();
  impl_->stopped = true;
  util::log_info("qhdl_serve: drained and stopped");
}

ServerStats Server::stats() const { return impl_->snapshot(); }

}  // namespace qhdl::serve
