// Content-addressed result cache for the serving layer (DESIGN.md §15).
//
// The cache key is the PR-4 FNV-1a sweep-config hash
// (search::sweep_config_hash): two requests whose configs agree on every
// result-affecting field — and only those fields; threads/lookahead are
// excluded by construction — share one entry. An entry is a
// search::StudyCheckpoint, the same durable unit manifest the resume path
// uses, so "cache hit" and "bit-identical resume replay" are one mechanism:
// a repeated study replays every completed unit (byte-identical by the §10
// guarantee), and a cancelled or crashed job's completed units are already
// in the entry when the client retries.
//
// Memory is a bounded LRU of live checkpoints; when `dir` is set, an entry
// evicted from memory survives as `<dir>/<hash>.units.json` (written with
// util::atomic_write_file via the checkpoint's own flush) and is reloaded
// on the next request for that hash. With no dir the cache is memory-only
// and eviction discards results.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "search/checkpoint.hpp"
#include "search/experiment.hpp"

namespace qhdl::serve {

/// Counters exposed over the `stats` request. Hits/misses are unit-level
/// replay counters summed across all entries the cache has ever owned
/// (evicted entries keep contributing their totals).
struct ResultCacheStats {
  std::size_t entries = 0;      ///< live in-memory entries
  std::size_t unit_hits = 0;    ///< unit lookups served from a manifest
  std::size_t unit_misses = 0;  ///< unit lookups that had to train
  std::size_t evictions = 0;    ///< entries pushed out of the memory LRU
  std::size_t disk_loads = 0;   ///< entries restored from disk spill
};

/// Thread-safe get-or-create LRU of per-config-hash checkpoints.
class ResultCache {
 public:
  /// `dir` enables disk spill ("" = memory-only); `capacity` bounds the
  /// number of in-memory entries (min 1).
  ResultCache(std::string dir, std::size_t capacity);

  /// The checkpoint for this config's hash: returns the live entry,
  /// reloads a spilled manifest from disk, or creates a fresh entry.
  /// Touches the entry in the LRU; may evict (and flush) the
  /// least-recently-used other entry. A stale or corrupt spill file is
  /// discarded with a warning, never an error.
  std::shared_ptr<search::StudyCheckpoint> checkpoint_for(
      const search::SweepConfig& config);

  /// Flushes every live entry to disk (no-op when memory-only). Called on
  /// graceful drain.
  void flush_all();

  ResultCacheStats stats() const;

 private:
  void evict_locked();

  std::string dir_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  /// LRU order, most recent first; the map points into the list.
  std::list<std::string> order_;
  struct Entry {
    std::shared_ptr<search::StudyCheckpoint> checkpoint;
    std::list<std::string>::iterator order_it;
  };
  std::unordered_map<std::string, Entry> entries_;
  /// Replay totals of evicted entries, so stats() never regresses.
  std::size_t retired_hits_ = 0;
  std::size_t retired_misses_ = 0;
  std::size_t evictions_ = 0;
  std::size_t disk_loads_ = 0;
};

}  // namespace qhdl::serve
