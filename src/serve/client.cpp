#include "serve/client.hpp"

#include <stdexcept>

#include "search/worker_protocol.hpp"
#include "util/deadline.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace qhdl::serve {

util::Json round_trip(const std::string& host, std::uint16_t port,
                      const util::Json& request,
                      std::uint64_t reply_timeout_ms) {
  return round_trip(host, port, request, nullptr, reply_timeout_ms);
}

util::Json round_trip(
    const std::string& host, std::uint16_t port, const util::Json& request,
    const std::function<void(const util::Json&)>& on_progress,
    std::uint64_t reply_timeout_ms) {
  util::install_sigpipe_guard();
  util::Socket socket = util::connect_tcp(host, port);
  if (!socket.write_all(search::frame_wire(request.dump()))) {
    throw std::runtime_error("qhdl_serve client: request write failed "
                             "(server closed the connection)");
  }
  // NOTE: no shutdown_write() here — the server reads EOF on this socket
  // as "client disconnected" and cancels the pending job, so the write
  // side stays open until the reply arrives.
  search::FrameReader reader;
  while (true) {
    // The timeout re-arms per frame: a streaming study is healthy as long
    // as *something* (progress or the reply) arrives within the window.
    const util::Deadline deadline =
        reply_timeout_ms == 0 ? util::Deadline::never()
                              : util::Deadline::after_ms(reply_timeout_ms);
    std::string payload;
    const auto status =
        search::read_frame(socket.fd(), reader, deadline, &payload);
    if (status == search::FrameReadStatus::Timeout) {
      throw std::runtime_error("qhdl_serve client: no reply within " +
                               std::to_string(reply_timeout_ms) + " ms");
    }
    if (status == search::FrameReadStatus::Eof) {
      throw std::runtime_error("qhdl_serve client: server closed the "
                               "connection without a reply");
    }
    util::Json frame = util::Json::parse(payload);
    const bool is_progress = frame.contains("type") &&
                             frame.at("type").as_string() == "progress";
    if (!is_progress) return frame;
    if (on_progress) on_progress(frame);
  }
}

}  // namespace qhdl::serve
