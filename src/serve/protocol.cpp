#include "serve/protocol.hpp"

#include <stdexcept>

#include "search/worker_protocol.hpp"

namespace qhdl::serve {

search::Family family_from_name(const std::string& name) {
  if (name == "classical") return search::Family::Classical;
  if (name == "hybrid-bel") return search::Family::HybridBel;
  if (name == "hybrid-sel") return search::Family::HybridSel;
  throw std::invalid_argument(
      "unknown family '" + name +
      "' (expected classical, hybrid-bel, or hybrid-sel)");
}

util::Json make_error(const std::string& message) {
  util::Json reply = util::Json::object();
  reply["type"] = "error";
  reply["message"] = message;
  return reply;
}

util::Json make_rejected(const std::string& reason) {
  util::Json reply = util::Json::object();
  reply["type"] = "rejected";
  reply["reason"] = reason;
  return reply;
}

util::Json make_cancelled(const std::string& reason) {
  util::Json reply = util::Json::object();
  reply["type"] = "cancelled";
  reply["reason"] = reason;
  return reply;
}

util::Json make_study_request(search::Family family,
                              const search::SweepConfig& config) {
  util::Json request = util::Json::object();
  request["type"] = "study";
  request["family"] = search::family_name(family);
  request["config"] = search::sweep_config_to_json(config);
  return request;
}

}  // namespace qhdl::serve
