#include "search/candidate.hpp"

#include <sstream>

#include "util/string_util.hpp"
#include <stdexcept>

namespace qhdl::search {

ModelSpec ModelSpec::make_classical(std::vector<std::size_t> hidden) {
  ModelSpec spec;
  spec.family = Family::Classical;
  spec.classical.hidden = std::move(hidden);
  return spec;
}

ModelSpec ModelSpec::make_hybrid(std::size_t qubits, std::size_t depth,
                                 qnn::AnsatzKind ansatz) {
  ModelSpec spec;
  spec.family = Family::Hybrid;
  spec.hybrid = HybridSpec{qubits, depth, ansatz};
  return spec;
}

std::string ModelSpec::to_string() const {
  std::ostringstream oss;
  if (family == Family::Classical) {
    oss << "[";
    for (std::size_t i = 0; i < classical.hidden.size(); ++i) {
      if (i > 0) oss << ",";
      oss << classical.hidden[i];
    }
    oss << "]";
  } else {
    oss << qnn::ansatz_name(hybrid.ansatz) << "(q=" << hybrid.qubits
        << ",d=" << hybrid.depth << ")";
  }
  return oss.str();
}

namespace {

const char* activation_kind(qnn::Activation activation) {
  switch (activation) {
    case qnn::Activation::Tanh: return "tanh";
    case qnn::Activation::ReLU: return "relu";
  }
  throw std::logic_error("activation_kind: unknown activation");
}

nn::LayerInfo dense_info(std::size_t inputs, std::size_t outputs) {
  nn::LayerInfo li;
  li.kind = "dense";
  li.inputs = inputs;
  li.outputs = outputs;
  li.parameter_count = inputs * outputs + outputs;
  return li;
}

nn::LayerInfo activation_info(const char* kind, std::size_t width) {
  nn::LayerInfo li;
  li.kind = kind;
  li.inputs = width;
  li.outputs = width;
  return li;
}

nn::LayerInfo quantum_info(const HybridSpec& spec) {
  nn::LayerInfo li;
  li.kind = "quantum";
  li.inputs = spec.qubits;
  li.outputs = spec.qubits;
  li.parameter_count =
      qnn::ansatz_weight_count(spec.ansatz, spec.qubits, spec.depth);
  li.qubits = spec.qubits;
  li.depth = spec.depth;
  li.ansatz = util::to_lower(qnn::ansatz_name(spec.ansatz));
  const auto counts =
      qnn::ansatz_op_counts(spec.ansatz, spec.qubits, spec.depth);
  li.encoding_gate_count = spec.qubits;
  li.gate_count =
      li.encoding_gate_count + counts.rotation_ops + counts.entangling_ops;
  li.param_gate_count = li.encoding_gate_count + counts.rotation_ops;
  return li;
}

}  // namespace

std::vector<nn::LayerInfo> spec_layer_infos(const ModelSpec& spec,
                                            std::size_t features,
                                            std::size_t classes,
                                            qnn::Activation activation) {
  std::vector<nn::LayerInfo> infos;
  if (spec.family == ModelSpec::Family::Classical) {
    std::size_t width = features;
    for (std::size_t hidden : spec.classical.hidden) {
      infos.push_back(dense_info(width, hidden));
      infos.push_back(activation_info(activation_kind(activation), hidden));
      width = hidden;
    }
    infos.push_back(dense_info(width, classes));
  } else {
    infos.push_back(dense_info(features, spec.hybrid.qubits));
    infos.push_back(activation_info("tanh", spec.hybrid.qubits));
    infos.push_back(quantum_info(spec.hybrid));
    infos.push_back(dense_info(spec.hybrid.qubits, classes));
  }
  return infos;
}

std::size_t spec_parameter_count(const ModelSpec& spec, std::size_t features,
                                 std::size_t classes) {
  std::size_t total = 0;
  for (const auto& info :
       spec_layer_infos(spec, features, classes, qnn::Activation::Tanh)) {
    total += info.parameter_count;
  }
  return total;
}

std::unique_ptr<nn::Sequential> build_from_spec(const ModelSpec& spec,
                                                std::size_t features,
                                                std::size_t classes,
                                                qnn::Activation activation,
                                                util::Rng& rng) {
  if (spec.family == ModelSpec::Family::Classical) {
    qnn::ClassicalConfig config;
    config.features = features;
    config.hidden = spec.classical.hidden;
    config.classes = classes;
    config.activation = activation;
    return qnn::build_classical_model(config, rng);
  }
  qnn::HybridConfig config;
  config.features = features;
  config.qubits = spec.hybrid.qubits;
  config.depth = spec.hybrid.depth;
  config.ansatz = spec.hybrid.ansatz;
  config.classes = classes;
  return qnn::build_hybrid_model(config, rng);
}

}  // namespace qhdl::search
