// Model candidates for the grid searches (paper Sections III-B / III-C).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flops/cost_model.hpp"
#include "nn/sequential.hpp"
#include "qnn/hybrid_model.hpp"

namespace qhdl::search {

/// Classical candidate: hidden-layer widths, e.g. {2, 10, 4}.
struct ClassicalSpec {
  std::vector<std::size_t> hidden;
};

/// Hybrid candidate: (qubits, depth, ansatz).
struct HybridSpec {
  std::size_t qubits = 3;
  std::size_t depth = 1;
  qnn::AnsatzKind ansatz = qnn::AnsatzKind::BasicEntangler;
};

/// Tagged union over the two candidate families.
struct ModelSpec {
  enum class Family { Classical, Hybrid };

  Family family = Family::Classical;
  ClassicalSpec classical;
  HybridSpec hybrid;

  static ModelSpec make_classical(std::vector<std::size_t> hidden);
  static ModelSpec make_hybrid(std::size_t qubits, std::size_t depth,
                               qnn::AnsatzKind ansatz);

  /// "[2,10]" or "BEL(q=3,d=2)".
  std::string to_string() const;
};

/// Analytic per-layer descriptors for a spec — used to FLOPs-sort the search
/// space without constructing (and randomly initializing) any model.
std::vector<nn::LayerInfo> spec_layer_infos(const ModelSpec& spec,
                                            std::size_t features,
                                            std::size_t classes,
                                            qnn::Activation activation);

/// Trainable-parameter count for a spec.
std::size_t spec_parameter_count(const ModelSpec& spec, std::size_t features,
                                 std::size_t classes);

/// Builds the trainable model for a spec.
std::unique_ptr<nn::Sequential> build_from_spec(const ModelSpec& spec,
                                                std::size_t features,
                                                std::size_t classes,
                                                qnn::Activation activation,
                                                util::Rng& rng);

}  // namespace qhdl::search
