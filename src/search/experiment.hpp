// Complexity sweeps: a repeated grid search at each feature size
// (10..110 step 10 in the paper), per model family.
#pragma once

#include "data/spiral.hpp"
#include "search/grid_search.hpp"
#include "search/search_space.hpp"

namespace qhdl::search {

enum class Family { Classical, HybridBel, HybridSel };

std::string family_name(Family family);

/// The paper's search space for a family (155 classical / 30 hybrid).
std::vector<ModelSpec> family_search_space(Family family);

/// Base 2-D geometry the complexity datasets are grown from. The paper uses
/// the spiral; Rings is provided as a robustness check (see
/// bench_robustness_rings).
enum class BaseGeometry { Spiral, Rings };

struct SweepConfig {
  /// Paper: {10, 20, ..., 110}.
  std::vector<std::size_t> feature_sizes = {10, 20, 30, 40,  50,  60,
                                            70, 80, 90, 100, 110};
  data::SpiralConfig spiral{};
  BaseGeometry geometry = BaseGeometry::Spiral;
  SearchConfig search{};
  /// Base seed; each feature size derives its own dataset seed from it.
  std::uint64_t dataset_seed = 7;
};

/// Result at one complexity level.
struct LevelResult {
  std::size_t features = 0;
  RepeatedSearchResult search;
};

struct SweepResult {
  Family family = Family::Classical;
  std::vector<LevelResult> levels;
};

class StudyCheckpoint;
class WorkerPool;

/// Runs the full complexity sweep for one family. Levels run concurrently
/// (config.search.threads wide, shared util::ThreadPool) with results
/// identical to the sequential walk. When `checkpoint` is non-null, each
/// completed candidate evaluation is recorded there and flushed atomically,
/// and previously completed units are replayed instead of retrained — a
/// resumed sweep is bit-identical to an uninterrupted one (DESIGN.md §10).
/// When `pool` is non-null, fresh units execute on its crash-isolated worker
/// processes (DESIGN.md §11) — still bit-identical, because each unit ships
/// the exact RNG streams the in-process search would consume.
/// When `cancel` is non-null, the sweep aborts with util::Cancelled at the
/// next unit-window boundary after the token fires (per-job cancellation
/// for the serve layer); completed units stay in the checkpoint, so a
/// retried job resumes instead of recomputing.
/// When `progress` is non-null, it fires after every committed unit window
/// (see ProgressEvent) — from concurrent level threads, so the handler must
/// be thread-safe. The serve layer uses this for streaming progress frames.
SweepResult run_complexity_sweep(Family family, const SweepConfig& config,
                                 StudyCheckpoint* checkpoint = nullptr,
                                 WorkerPool* pool = nullptr,
                                 const util::CancelToken* cancel = nullptr,
                                 const ProgressFn* progress = nullptr);

/// Convenience: the standard per-level dataset (shared across families so
/// the comparison is apples-to-apples).
data::Dataset level_dataset(std::size_t features, const SweepConfig& config);

}  // namespace qhdl::search
