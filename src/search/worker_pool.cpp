#include "search/worker_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <unistd.h>
#endif

#include "util/deadline.hpp"
#include "util/interrupt.hpp"
#include "util/logging.hpp"
#include "util/subprocess.hpp"
#include "util/thread_pool.hpp"

namespace qhdl::search {

struct WorkerPool::Impl {
  /// A unit somewhere between submission and resolution. `attempts` counts
  /// failed attempts; the promise is set exactly once (result, quarantine,
  /// or exception).
  struct PendingUnit {
    WorkUnit unit;
    std::size_t attempts = 0;
    std::vector<std::string> causes;
    std::promise<CandidateResult> promise;
    bool resolved = false;
  };

  /// One worker process slot. Slots are touched only by the constructor and
  /// the dispatcher thread.
  struct Slot {
    std::optional<util::Subprocess> process;
    FrameReader reader;
    bool ready = false;
    std::shared_ptr<PendingUnit> current;
    util::Deadline unit_deadline;
    std::uint64_t last_heard_ms = 0;
    std::size_t consecutive_failures = 0;
    util::Deadline respawn_gate = util::Deadline::after_ms(0);
  };

  SweepConfig worker_config;  ///< sweep config as shipped (worker threads)
  WorkerPoolConfig cfg;
  std::vector<std::string> command;
  std::string init_wire;

  mutable std::mutex mutex;
  std::deque<std::shared_ptr<PendingUnit>> queue;
  std::vector<Slot> slots;
  bool degraded = false;
  std::string degraded_reason;
  bool dispatcher_running = false;
  bool interrupt_forwarded = false;
  std::size_t spawn_failure_streak = 0;
  WorkerPoolStats stat;

  std::atomic<bool> stop{false};
  std::thread dispatcher;
  UnitDataCache cache;  ///< degraded-mode dataset/split derivation

  // --- promise resolution (mutex held) ------------------------------------

  void resolve_result(PendingUnit& unit, CandidateResult result) {
    if (unit.resolved) return;
    unit.resolved = true;
    unit.promise.set_value(std::move(result));
  }

  void resolve_exception(PendingUnit& unit, std::exception_ptr error) {
    if (unit.resolved) return;
    unit.resolved = true;
    unit.promise.set_exception(std::move(error));
  }

  /// Books one failed attempt: requeues (front, so the retry preempts new
  /// work) while the retry budget lasts, else quarantines through the PR-4
  /// failure path. The unit's RNG streams are untouched, so a successful
  /// retry is bit-identical to a never-failed attempt.
  void fail_attempt(const std::shared_ptr<PendingUnit>& unit,
                    const std::string& cause) {
    unit->causes.push_back(cause);
    unit->attempts += 1;
    const std::string key = unit->unit.key.to_string();
    if (unit->attempts > cfg.unit_retries) {
      stat.quarantined_units += 1;
      std::string all;
      for (const std::string& c : unit->causes) {
        if (!all.empty()) all += "; ";
        all += c;
      }
      util::log_error("worker pool: quarantining " + key + " after " +
                      std::to_string(unit->attempts) +
                      " failed attempts (" + all + ")");
      resolve_result(*unit,
                     quarantined_unit_result(worker_config, unit->unit,
                                             unit->causes));
    } else {
      if (unit->attempts == 1) stat.retried_units += 1;
      util::log_warn("worker pool: retrying " + key + " (attempt " +
                     std::to_string(unit->attempts + 1) + "): " + cause);
      queue.push_front(unit);
    }
  }

  // --- worker lifecycle (mutex held) ---------------------------------------

  std::uint64_t backoff_ms(std::size_t failures) const {
    std::uint64_t ms = cfg.backoff_initial_ms;
    for (std::size_t i = 1; i < failures && ms < cfg.backoff_max_ms; ++i) {
      ms *= 2;
    }
    return std::min(ms, cfg.backoff_max_ms);
  }

  /// Spawns a worker into `slot` and sends the init frame. Returns false
  /// (with the slot left empty and its backoff gate armed) on failure.
  bool spawn_slot(Slot& slot) {
    try {
      slot.process = util::Subprocess::spawn(command, cfg.worker_env);
      if (!slot.process->write_all(init_wire.data(), init_wire.size())) {
        throw std::runtime_error("worker died before the init frame");
      }
    } catch (const std::exception& error) {
      slot.process.reset();
      slot.consecutive_failures += 1;
      slot.respawn_gate =
          util::Deadline::after_ms(backoff_ms(slot.consecutive_failures));
      spawn_failure_streak += 1;
      util::log_warn(std::string{"worker pool: spawn failed: "} +
                     error.what() + " (backoff " +
                     std::to_string(backoff_ms(slot.consecutive_failures)) +
                     " ms)");
      return false;
    }
    slot.reader = FrameReader{};
    slot.ready = false;
    slot.current.reset();
    slot.last_heard_ms = util::monotonic_now_ms();
    spawn_failure_streak = 0;
    return true;
  }

  /// Kills (if asked), reaps, and clears a slot whose worker is done for;
  /// fails the in-flight attempt with `cause` and arms the respawn gate.
  void retire_slot(Slot& slot, const std::string& cause, bool kill) {
    if (slot.process.has_value()) {
      if (kill) slot.process->kill_hard();
      slot.process->wait();
      slot.process.reset();
    }
    slot.ready = false;
    if (slot.current != nullptr) {
      fail_attempt(slot.current, cause);
      slot.current.reset();
    }
    slot.consecutive_failures += 1;
    slot.respawn_gate =
        util::Deadline::after_ms(backoff_ms(slot.consecutive_failures));
  }

  bool any_live_worker() const {
    for (const Slot& slot : slots) {
      if (slot.process.has_value()) return true;
    }
    return false;
  }

  void enter_degraded(const std::string& reason) {
    degraded = true;
    degraded_reason = reason;
    util::log_error("worker pool: degrading to in-process execution: " +
                    reason);
  }

  // --- dispatcher phases ----------------------------------------------------

  /// Forwards SIGTERM to live workers once and fails every pending unit
  /// with util::Interrupted, so evaluate() unwinds to the search loop's own
  /// interrupt poll (the checkpoint holds only committed units, hence a
  /// resume retrains this window identically).
  void handle_interrupt_locked() {
    if (!util::interrupt_requested()) return;
    if (!interrupt_forwarded) {
      interrupt_forwarded = true;
      std::size_t live = 0;
      for (Slot& slot : slots) {
        if (slot.process.has_value()) {
          slot.process->terminate();
          ++live;
        }
      }
      util::log_warn("worker pool: interrupt — forwarded SIGTERM to " +
                     std::to_string(live) + " worker(s)");
    }
    const auto interrupted = std::make_exception_ptr(util::Interrupted{});
    for (const std::shared_ptr<PendingUnit>& unit : queue) {
      resolve_exception(*unit, interrupted);
    }
    queue.clear();
    for (Slot& slot : slots) {
      if (slot.current != nullptr) {
        resolve_exception(*slot.current, interrupted);
        slot.current.reset();
      }
    }
  }

  void respawn_slots_locked() {
    for (Slot& slot : slots) {
      if (slot.process.has_value()) continue;
      if (!slot.respawn_gate.expired()) continue;
      if (spawn_slot(slot)) {
        stat.restarts += 1;
      } else if (spawn_failure_streak >= 2 * slots.size() &&
                 !any_live_worker()) {
        // Every slot has failed to come (back) up repeatedly and nothing is
        // running: give up on processes, keep the study going in-process.
        enter_degraded("cannot spawn workers (" +
                       std::to_string(spawn_failure_streak) +
                       " consecutive failures)");
        return;
      }
    }
  }

  void dispatch_locked() {
    for (Slot& slot : slots) {
      if (queue.empty()) return;
      if (!slot.process.has_value() || !slot.ready ||
          slot.current != nullptr) {
        continue;
      }
      std::shared_ptr<PendingUnit> unit = queue.front();
      queue.pop_front();
      util::Json frame = util::Json::object();
      frame["type"] = "unit";
      frame["unit"] = work_unit_to_json(unit->unit);
      const std::string wire = frame_wire(frame.dump());
      if (!slot.process->write_all(wire.data(), wire.size())) {
        // The worker died between units; the unit never reached it, so no
        // attempt is consumed — requeue and retire the slot.
        queue.push_front(unit);
        retire_slot(slot, "", /*kill=*/true);
        continue;
      }
      slot.current = std::move(unit);
      slot.unit_deadline = cfg.unit_timeout_ms > 0
                               ? util::Deadline::after_ms(cfg.unit_timeout_ms)
                               : util::Deadline::never();
      slot.last_heard_ms = util::monotonic_now_ms();
    }
  }

  /// Consumes every complete frame a worker has produced. Returns false when
  /// the worker must be retired (corrupt stream).
  bool process_frames_locked(Slot& slot) {
    while (true) {
      std::optional<std::string> payload;
      try {
        payload = slot.reader.next();
      } catch (const ProtocolError& error) {
        retire_slot(slot, std::string{"corrupt frame: "} + error.what(),
                    /*kill=*/true);
        return false;
      }
      if (!payload.has_value()) return true;

      util::Json frame;
      std::string type;
      try {
        frame = util::Json::parse(*payload);
        type = frame.at("type").as_string();
      } catch (const std::exception& error) {
        retire_slot(slot, std::string{"corrupt frame: "} + error.what(),
                    /*kill=*/true);
        return false;
      }

      slot.last_heard_ms = util::monotonic_now_ms();
      if (type == "ready") {
        slot.ready = true;
      } else if (type == "heartbeat") {
        // liveness timestamp already updated
      } else if (type == "result") {
        if (slot.current == nullptr) {
          util::log_warn("worker pool: stray result frame ignored");
          continue;
        }
        CandidateResult result;
        try {
          result = candidate_result_from_json(frame.at("result"));
        } catch (const std::exception& error) {
          retire_slot(slot, std::string{"corrupt result: "} + error.what(),
                      /*kill=*/true);
          return false;
        }
        resolve_result(*slot.current, std::move(result));
        slot.current.reset();
        slot.consecutive_failures = 0;
      } else if (type == "error") {
        // The worker survived but the unit failed cleanly in-process.
        std::string message = "unknown error";
        if (frame.contains("message")) {
          message = frame.at("message").as_string();
        }
        if (slot.current != nullptr) {
          fail_attempt(slot.current, "worker error: " + message);
          slot.current.reset();
        }
      } else {
        retire_slot(slot, "unknown frame type '" + type + "'",
                    /*kill=*/true);
        return false;
      }
    }
  }

#if defined(__unix__) || defined(__APPLE__)
  void read_workers_locked() {
    char buffer[8192];
    for (Slot& slot : slots) {
      if (!slot.process.has_value()) continue;
      bool eof = false;
      while (true) {
        const ssize_t n =
            ::read(slot.process->stdout_fd(), buffer, sizeof(buffer));
        if (n > 0) {
          slot.reader.feed(buffer, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        eof = true;  // unexpected read error: treat as a dead worker
        break;
      }
      if (!process_frames_locked(slot)) continue;  // slot already retired
      if (eof) {
        const util::ExitStatus status = slot.process->wait();
        retire_slot(slot, "worker " + status.to_string(), /*kill=*/false);
      }
    }
  }
#else
  void read_workers_locked() {}
#endif

  void check_liveness_locked() {
    const std::uint64_t now = util::monotonic_now_ms();
    for (Slot& slot : slots) {
      if (!slot.process.has_value()) continue;
      const bool busy = slot.current != nullptr;
      if (busy && slot.unit_deadline.expired()) {
        retire_slot(slot,
                    "deadline exceeded after " +
                        std::to_string(cfg.unit_timeout_ms) + " ms",
                    /*kill=*/true);
        continue;
      }
      // An idle ready worker is legitimately silent; a busy one must tick,
      // and a fresh one must answer the init frame.
      if ((busy || !slot.ready) &&
          now - slot.last_heard_ms > cfg.heartbeat_timeout_ms) {
        retire_slot(slot,
                    std::string{busy ? "no heartbeat for "
                                     : "worker failed to initialize within "} +
                        std::to_string(cfg.heartbeat_timeout_ms) + " ms",
                    /*kill=*/true);
      }
    }
  }

#if defined(__unix__) || defined(__APPLE__)
  void wait_for_io() {
    std::vector<pollfd> fds;
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (const Slot& slot : slots) {
        if (!slot.process.has_value()) continue;
        fds.push_back(pollfd{slot.process->stdout_fd(), POLLIN, 0});
      }
    }
    if (fds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return;
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
  }
#else
  void wait_for_io() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
#endif

  /// In-process execution of a batch (degraded mode), same arithmetic as a
  /// worker: evaluate_unit on the shipped streams.
  void run_inline(std::vector<std::shared_ptr<PendingUnit>>& units) {
    util::parallel_for(
        0, units.size(), std::max<std::size_t>(1, cfg.workers),
        [&](std::size_t i) {
          std::exception_ptr error;
          CandidateResult result;
          try {
            result = evaluate_unit(worker_config, units[i]->unit, cache);
          } catch (...) {
            error = std::current_exception();
          }
          std::lock_guard<std::mutex> lock(mutex);
          if (error != nullptr) {
            resolve_exception(*units[i], error);
          } else {
            resolve_result(*units[i], std::move(result));
          }
        });
  }

  void dispatcher_loop() {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::shared_ptr<PendingUnit>> inline_batch;
      {
        std::lock_guard<std::mutex> lock(mutex);
        handle_interrupt_locked();
        if (degraded) {
          inline_batch.assign(queue.begin(), queue.end());
          queue.clear();
        } else {
          respawn_slots_locked();
          dispatch_locked();
        }
      }
      if (!inline_batch.empty()) {
        run_inline(inline_batch);
        continue;
      }
      wait_for_io();
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (!degraded) {
          read_workers_locked();
          check_liveness_locked();
        }
      }
    }
  }
};

WorkerPool::WorkerPool(SweepConfig config, WorkerPoolConfig pool_config)
    : impl_(std::make_unique<Impl>()) {
  // A worker dying mid-write must come back as EPIPE from write_all, never
  // as a supervisor-killing signal (spawn() also installs this, but the
  // guard must exist even when the pool degrades before the first spawn).
  util::install_sigpipe_guard();
  impl_->cfg = pool_config;
  impl_->cfg.workers = std::max<std::size_t>(1, impl_->cfg.workers);
  impl_->worker_config = std::move(config);
  // Inside a worker the only parallelism is a unit's runs_per_model.
  impl_->worker_config.search.threads =
      std::max<std::size_t>(1, pool_config.worker_threads);
  impl_->worker_config.search.lookahead = 0;

  if (pool_config.worker_command.empty()) {
    const std::string self = util::current_executable_path();
    if (!util::subprocess_supported() || self.empty()) {
      impl_->enter_degraded(
          "subprocess spawning is unavailable on this platform");
      return;
    }
    impl_->command = {self, "--worker-mode"};
  } else {
    impl_->command = pool_config.worker_command;
  }

  util::Json init = util::Json::object();
  init["type"] = "init";
  init["version"] = kWorkerProtocolVersion;
  init["heartbeat_interval_ms"] = impl_->cfg.heartbeat_interval_ms;
  init["config"] = sweep_config_to_json(impl_->worker_config);
  impl_->init_wire = frame_wire(init.dump());

  impl_->slots.resize(impl_->cfg.workers);
  // Spawn validation happens here, synchronously: if the very first worker
  // cannot be created (missing binary, fork failure, exec failure via the
  // status pipe), the pool degrades before any unit is submitted.
  if (!impl_->spawn_slot(impl_->slots[0])) {
    impl_->enter_degraded("cannot spawn worker process (" +
                          impl_->command[0] + ")");
    impl_->slots.clear();
    return;
  }
  for (std::size_t i = 1; i < impl_->slots.size(); ++i) {
    // Later failures are not fatal: the dispatcher keeps retrying them with
    // backoff while the first worker carries the load.
    impl_->spawn_slot(impl_->slots[i]);
  }
  impl_->dispatcher_running = true;
  impl_->dispatcher = std::thread([this] { impl_->dispatcher_loop(); });
  util::log_info("worker pool: " + std::to_string(impl_->cfg.workers) +
                 " worker(s), command " + impl_->command[0]);
}

WorkerPool::~WorkerPool() {
  if (impl_ == nullptr) return;
  impl_->stop.store(true, std::memory_order_relaxed);
  if (impl_->dispatcher.joinable()) impl_->dispatcher.join();
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto destroyed = std::make_exception_ptr(
        std::runtime_error("worker pool destroyed with units pending"));
    for (const auto& unit : impl_->queue) {
      impl_->resolve_exception(*unit, destroyed);
    }
    impl_->queue.clear();
    for (Impl::Slot& slot : impl_->slots) {
      if (slot.current != nullptr) {
        impl_->resolve_exception(*slot.current, destroyed);
        slot.current.reset();
      }
      // EOF on stdin asks the worker to exit; the Subprocess destructor
      // SIGKILLs and reaps whatever does not comply.
      if (slot.process.has_value()) slot.process->close_stdin();
    }
  }
}

std::vector<CandidateResult> WorkerPool::evaluate(
    std::vector<WorkUnit> units) {
  util::throw_if_interrupted();
  if (units.empty()) return {};

  bool inline_now = false;
  std::vector<std::shared_ptr<Impl::PendingUnit>> pending;
  std::vector<std::future<CandidateResult>> futures;
  pending.reserve(units.size());
  futures.reserve(units.size());
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    inline_now = impl_->degraded && !impl_->dispatcher_running;
    for (WorkUnit& unit : units) {
      auto p = std::make_shared<Impl::PendingUnit>();
      p->unit = std::move(unit);
      futures.push_back(p->promise.get_future());
      pending.push_back(std::move(p));
    }
    if (!inline_now) {
      for (const auto& p : pending) impl_->queue.push_back(p);
    }
  }
  // A pool that never came up has no dispatcher; evaluate on the caller.
  if (inline_now) impl_->run_inline(pending);

  std::vector<CandidateResult> results;
  results.reserve(futures.size());
  for (std::future<CandidateResult>& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

bool WorkerPool::degraded() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->degraded;
}

std::string WorkerPool::degraded_reason() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->degraded_reason;
}

std::size_t WorkerPool::worker_count() const { return impl_->cfg.workers; }

WorkerPoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stat;
}

}  // namespace qhdl::search
