#include "search/worker_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>
#endif

#include "search/worker_transport.hpp"
#include "util/backend_registry.hpp"
#include "util/deadline.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/logging.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"
#include "util/thread_pool.hpp"

namespace qhdl::search {

struct WorkerPool::Impl {
  /// A transport loss may re-dispatch a unit without charging a retry
  /// attempt; this cap stops a unit that somehow kills every transport it
  /// touches from cycling forever.
  static constexpr std::size_t kMaxOrphanRedispatch = 8;

  /// A unit somewhere between submission and resolution. `attempts` counts
  /// failed attempts; the promise is set exactly once (result, quarantine,
  /// or exception).
  struct PendingUnit {
    WorkUnit unit;
    std::size_t attempts = 0;
    std::size_t replicas = 0;    ///< dispatched copies currently in flight
    std::size_t orphanings = 0;  ///< uncharged re-dispatches (transport loss)
    std::uint64_t first_dispatch_ms = 0;  ///< straggler clock, per dispatch
    std::vector<std::string> causes;
    std::promise<CandidateResult> promise;
    bool resolved = false;
  };

  /// One worker slot — a pipe child (respawned in place on failure) or a
  /// registered remote connection (erased on loss; the daemon's reconnect
  /// shows up as a fresh registration). Slots are touched only by the
  /// constructor and the dispatcher thread.
  struct Slot {
    std::unique_ptr<WorkerTransport> transport;
    bool remote = false;
    bool partitioned = false;  ///< injected partition: reads blackholed
    std::size_t index = 0;     ///< stable salt for jittered backoff draws
    FrameReader reader;
    bool ready = false;
    std::shared_ptr<PendingUnit> current;
    util::Deadline unit_deadline;
    std::uint64_t last_heard_ms = 0;
    std::size_t consecutive_failures = 0;
    util::Deadline respawn_gate = util::Deadline::after_ms(0);
  };

  /// An accepted connection that has not sent its register frame yet.
  struct PendingConn {
    util::Socket socket;
    FrameReader reader;
    util::Deadline deadline;
  };

  SweepConfig worker_config;  ///< sweep config as shipped (worker threads)
  WorkerPoolConfig cfg;
  std::vector<std::string> command;
  std::string init_wire;
  std::string shutdown_wire;
  std::string local_backend;

  mutable std::mutex mutex;
  std::deque<std::shared_ptr<PendingUnit>> queue;
  std::vector<Slot> slots;
  std::vector<PendingConn> pending_conns;
  util::ListenSocket listener;
  bool remote_mode = false;    ///< listening for remote registrations
  bool local_spawned = false;  ///< local pipe slots exist (or were tried)
  util::Deadline remote_gate;  ///< first-registration deadline
  std::optional<util::Deadline> lost_fleet_gate;  ///< all-remote-lost timer
  std::size_t next_slot_index = 0;
  bool degraded = false;
  std::string degraded_reason;
  bool dispatcher_running = false;
  bool interrupt_forwarded = false;
  std::size_t spawn_failure_streak = 0;
  WorkerPoolStats stat;

  std::atomic<bool> stop{false};
  std::thread dispatcher;
  UnitDataCache cache;  ///< degraded-mode dataset/split derivation

  // --- promise resolution (mutex held) ------------------------------------

  void resolve_result(PendingUnit& unit, CandidateResult result) {
    if (unit.resolved) return;
    unit.resolved = true;
    unit.promise.set_value(std::move(result));
  }

  void resolve_exception(PendingUnit& unit, std::exception_ptr error) {
    if (unit.resolved) return;
    unit.resolved = true;
    unit.promise.set_exception(std::move(error));
  }

  void requeue_front(const std::shared_ptr<PendingUnit>& unit) {
    // With straggler replicas a unit can fail on two slots in one tick;
    // never let it occupy two queue positions.
    if (std::find(queue.begin(), queue.end(), unit) == queue.end()) {
      queue.push_front(unit);
    }
  }

  /// Books one failed attempt: requeues (front, so the retry preempts new
  /// work) while the retry budget lasts, else quarantines through the PR-4
  /// failure path. The unit's RNG streams are untouched, so a successful
  /// retry is bit-identical to a never-failed attempt.
  void fail_attempt(const std::shared_ptr<PendingUnit>& unit,
                    const std::string& cause) {
    unit->causes.push_back(cause);
    unit->attempts += 1;
    const std::string key = unit->unit.key.to_string();
    if (unit->attempts > cfg.unit_retries) {
      stat.quarantined_units += 1;
      std::string all;
      for (const std::string& c : unit->causes) {
        if (!all.empty()) all += "; ";
        all += c;
      }
      util::log_error("worker pool: quarantining " + key + " after " +
                      std::to_string(unit->attempts) +
                      " failed attempts (" + all + ")");
      resolve_result(*unit,
                     quarantined_unit_result(worker_config, unit->unit,
                                             unit->causes));
    } else {
      if (unit->attempts == 1) stat.retried_units += 1;
      util::log_warn("worker pool: retrying " + key + " (attempt " +
                     std::to_string(unit->attempts + 1) + "): " + cause);
      requeue_front(unit);
    }
  }

  /// Requeues a unit whose worker's TRANSPORT died (daemon crash, connection
  /// reset, heartbeat-silent partition). The unit itself is not implicated,
  /// so no retry attempt is charged — the same shipped streams go straight
  /// back to the queue front and a lost host never stalls the sweep.
  void orphan_requeue(const std::shared_ptr<PendingUnit>& unit,
                      const std::string& cause) {
    const std::string key = unit->unit.key.to_string();
    if (unit->replicas > 0) {
      util::log_info("worker pool: lost one replica of " + key + " (" +
                     cause + "); " + std::to_string(unit->replicas) +
                     " still in flight");
      return;
    }
    unit->orphanings += 1;
    if (unit->orphanings > kMaxOrphanRedispatch) {
      fail_attempt(unit, cause + " (after " +
                             std::to_string(unit->orphanings - 1) +
                             " uncharged re-dispatches)");
      return;
    }
    stat.steals += 1;
    util::log_warn("worker pool: re-dispatching orphaned " + key + " (" +
                   cause + "); no retry attempt charged");
    requeue_front(unit);
  }

  // --- worker lifecycle (mutex held) ---------------------------------------

  std::uint64_t backoff_ms(const Slot& slot) const {
    return backoff_with_jitter_ms(cfg.backoff_initial_ms, cfg.backoff_max_ms,
                                  slot.consecutive_failures,
                                  cfg.backoff_jitter_seed, slot.index);
  }

  /// Spawns a pipe worker into `slot` and sends the init frame. Returns
  /// false (with the slot left empty and its backoff gate armed) on failure.
  bool spawn_slot(Slot& slot) {
    try {
      util::Subprocess process =
          util::Subprocess::spawn(command, cfg.worker_env);
      if (!process.write_all(init_wire.data(), init_wire.size())) {
        throw std::runtime_error("worker died before the init frame");
      }
      slot.transport = make_pipe_transport(std::move(process));
    } catch (const std::exception& error) {
      slot.transport.reset();
      slot.consecutive_failures += 1;
      const std::uint64_t wait = backoff_ms(slot);
      slot.respawn_gate = util::Deadline::after_ms(wait);
      spawn_failure_streak += 1;
      util::log_warn(std::string{"worker pool: spawn failed: "} +
                     error.what() + " (backoff " + std::to_string(wait) +
                     " ms)");
      return false;
    }
    slot.reader = FrameReader{};
    slot.ready = false;
    slot.partitioned = false;
    slot.current.reset();
    slot.last_heard_ms = util::monotonic_now_ms();
    spawn_failure_streak = 0;
    return true;
  }

  /// Tears down a slot whose worker is done for. `charge_attempt` separates
  /// unit failures (deadline, worker error — the unit burns a retry) from
  /// transport losses (remote EOF/reset/partition — the unit is orphaned
  /// and re-dispatched for free).
  void retire_slot(Slot& slot, std::string cause, bool kill,
                   bool charge_attempt = true) {
    if (slot.transport != nullptr) {
      const std::string ending = slot.transport->finish(kill);
      if (cause.empty()) cause = ending;
      if (slot.remote) stat.remote_lost += 1;
      slot.transport.reset();
    }
    slot.ready = false;
    slot.partitioned = false;
    if (slot.current != nullptr) {
      std::shared_ptr<PendingUnit> unit = std::move(slot.current);
      slot.current.reset();
      if (unit->replicas > 0) unit->replicas -= 1;
      if (!unit->resolved) {
        if (charge_attempt) {
          fail_attempt(unit, cause);
        } else {
          orphan_requeue(unit, cause);
        }
      }
    }
    slot.consecutive_failures += 1;
    slot.respawn_gate = util::Deadline::after_ms(backoff_ms(slot));
  }

  bool any_live_worker() const {
    for (const Slot& slot : slots) {
      if (slot.transport != nullptr) return true;
    }
    return false;
  }

  void enter_degraded(const std::string& reason) {
    degraded = true;
    degraded_reason = reason;
    util::log_error("worker pool: degrading to in-process execution: " +
                    reason);
  }

  // --- dispatcher phases ----------------------------------------------------

  /// Forwards the interrupt to live workers once (SIGTERM to pipe children,
  /// a shutdown frame to remote daemons) and fails every pending unit with
  /// util::Interrupted, so evaluate() unwinds to the search loop's own
  /// interrupt poll (the checkpoint holds only committed units, hence a
  /// resume retrains this window identically).
  void handle_interrupt_locked() {
    if (!util::interrupt_requested()) return;
    if (!interrupt_forwarded) {
      interrupt_forwarded = true;
      std::size_t live = 0;
      for (Slot& slot : slots) {
        if (slot.transport != nullptr) {
          slot.transport->interrupt(shutdown_wire);
          ++live;
        }
      }
      util::log_warn("worker pool: interrupt — forwarded stop to " +
                     std::to_string(live) + " worker(s)");
    }
    const auto interrupted = std::make_exception_ptr(util::Interrupted{});
    for (const std::shared_ptr<PendingUnit>& unit : queue) {
      resolve_exception(*unit, interrupted);
    }
    queue.clear();
    for (Slot& slot : slots) {
      if (slot.current != nullptr) {
        resolve_exception(*slot.current, interrupted);
        slot.current.reset();
      }
    }
  }

#if defined(__unix__) || defined(__APPLE__)
  /// Drains the listener backlog (bounded per tick) into pending_conns,
  /// where each connection gets one handshake deadline to register.
  void accept_remote_locked() {
    if (!listener.valid()) return;
    for (int i = 0; i < 4; ++i) {
      pollfd pfd{listener.fd(), POLLIN, 0};
      if (::poll(&pfd, 1, 0) <= 0 || (pfd.revents & POLLIN) == 0) return;
      std::optional<util::Socket> conn =
          listener.accept(util::Deadline::after_ms(1));
      if (!conn.has_value()) return;
      const int flags = ::fcntl(conn->fd(), F_GETFL, 0);
      if (flags >= 0) ::fcntl(conn->fd(), F_SETFL, flags | O_NONBLOCK);
      PendingConn pending;
      pending.socket = std::move(*conn);
      pending.deadline = util::Deadline::after_ms(cfg.handshake_timeout_ms);
      pending_conns.push_back(std::move(pending));
    }
  }

  /// Reads pending connections until each yields a register frame (promoted
  /// to a slot), dies, misbehaves, or times out. Observes the `conn` fault
  /// site at the handshake: reset drops the connection, partition/slow
  /// withhold reads so the handshake deadline does the dropping.
  void read_pending_conns_locked() {
    char buffer[4096];
    for (std::size_t i = 0; i < pending_conns.size();) {
      PendingConn& conn = pending_conns[i];
      std::string drop_reason;
      bool stalled = false;
      switch (util::FaultInjector::instance().on_connection("handshake")) {
        case util::ConnFaultMode::Reset:
          drop_reason = "injected reset during handshake";
          break;
        case util::ConnFaultMode::Partition:
        case util::ConnFaultMode::Slow:
          stalled = true;
          break;
        default:
          break;
      }
      if (drop_reason.empty() && !stalled) {
        while (true) {
          const ssize_t n = ::read(conn.socket.fd(), buffer, sizeof(buffer));
          if (n > 0) {
            conn.reader.feed(buffer, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) {
            drop_reason = "peer closed before registering";
          } else {
            if (errno == EINTR) continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK) {
              drop_reason = "read failed during handshake";
            }
          }
          break;
        }
      }
      if (drop_reason.empty()) {
        try {
          std::optional<std::string> payload = conn.reader.next();
          if (payload.has_value()) {
            if (try_register_locked(conn, *payload)) {
              pending_conns.erase(pending_conns.begin() +
                                  static_cast<std::ptrdiff_t>(i));
              continue;
            }
            drop_reason = "registration rejected";
          }
        } catch (const std::exception& error) {
          drop_reason = std::string{"bad handshake: "} + error.what();
        }
      }
      if (drop_reason.empty() && conn.deadline.expired()) {
        drop_reason = "no register frame within " +
                      std::to_string(cfg.handshake_timeout_ms) + " ms";
      }
      if (!drop_reason.empty()) {
        stat.handshake_rejects += 1;
        util::log_warn("worker pool: dropping worker connection (" +
                       drop_reason + ")");
        pending_conns.erase(pending_conns.begin() +
                            static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ++i;
    }
  }
#else
  void accept_remote_locked() {}
  void read_pending_conns_locked() {}
#endif

  /// Validates a register frame and promotes the connection to a live slot
  /// (init frame sent). Returns false when the worker must be dropped.
  bool try_register_locked(PendingConn& conn, const std::string& payload) {
    util::Json frame = util::Json::parse(payload);
    const WorkerRegistration reg = registration_from_json(frame);
    if (reg.version != kWorkerProtocolVersion) {
      util::Json reply = util::Json::object();
      reply["type"] = "error";
      reply["message"] = "protocol version mismatch: supervisor speaks " +
                         std::to_string(kWorkerProtocolVersion) +
                         ", worker speaks " + std::to_string(reg.version);
      (void)conn.socket.write_all(frame_wire(reply.dump()));
      util::log_warn("worker pool: rejecting worker with protocol version " +
                     std::to_string(reg.version));
      return false;
    }
    if (reg.backend != local_backend) {
      // Production SIMD backends are bit-identical by contract (DESIGN.md
      // §14); the reference backend is only ~1e-12 close, so a mixed fleet
      // involving it can lose byte-identity with a local run.
      const std::string note = "worker pool: remote backend '" + reg.backend +
                               "' differs from supervisor backend '" +
                               local_backend + "'";
      if (reg.backend == "reference" || local_backend == "reference") {
        util::log_warn(note +
                       " — reference arithmetic is not bit-identical; sweep "
                       "bytes may differ from a single-host run");
      } else {
        util::log_info(note + " (production backends are bit-identical)");
      }
    }
    Slot slot;
    slot.remote = true;
    slot.index = next_slot_index++;
    slot.reader = std::move(conn.reader);
    slot.transport = make_tcp_transport(std::move(conn.socket));
    slot.respawn_gate = util::Deadline::never();
    slot.last_heard_ms = util::monotonic_now_ms();
    const std::string who = slot.transport->describe();
    if (!slot.transport->write_wire(init_wire)) {
      util::log_warn("worker pool: worker " + who +
                     " vanished before the init frame");
      return false;
    }
    stat.remote_registered += 1;
    util::log_info("worker pool: registered remote worker " + who +
                   " (pid " + std::to_string(reg.pid) + ", slot " +
                   std::to_string(reg.slot + 1) + "/" +
                   std::to_string(reg.slots) + ", backend " + reg.backend +
                   ")");
    slots.push_back(std::move(slot));
    return true;
  }

  /// Remote slots are not respawned in place — the daemon reconnects and
  /// registers afresh — so dead ones are simply removed.
  void reap_dead_remote_locked() {
    slots.erase(std::remove_if(slots.begin(), slots.end(),
                               [](const Slot& slot) {
                                 return slot.remote &&
                                        slot.transport == nullptr;
                               }),
                slots.end());
  }

  /// The degradation chain of distributed mode: if no remote worker
  /// registers within the handshake deadline — or a once-live fleet is
  /// entirely lost with work pending and stays gone for another deadline —
  /// local pipe workers take over. The listener stays open either way, so
  /// late or reconnecting daemons still add capacity.
  void maybe_fallback_locked() {
    if (!remote_mode || local_spawned || degraded) return;
    if (!slots.empty() || !pending_conns.empty()) {
      lost_fleet_gate.reset();
      return;
    }
    if (stat.remote_registered == 0) {
      if (!remote_gate.expired()) return;
      util::log_warn("worker pool: no remote workers registered within " +
                     std::to_string(cfg.handshake_timeout_ms) +
                     " ms; falling back to local pipe workers");
    } else {
      if (queue.empty()) return;
      if (!lost_fleet_gate.has_value()) {
        lost_fleet_gate = util::Deadline::after_ms(cfg.handshake_timeout_ms);
        return;
      }
      if (!lost_fleet_gate->expired()) return;
      util::log_warn("worker pool: all remote workers lost for " +
                     std::to_string(cfg.handshake_timeout_ms) +
                     " ms with work pending; falling back to local pipe "
                     "workers");
    }
    spawn_local_locked();
  }

  void spawn_local_locked() {
    local_spawned = true;
    if (command.empty()) {
      enter_degraded("no remote workers and subprocess spawning is "
                     "unavailable on this platform");
      return;
    }
    const std::size_t base = slots.size();
    for (std::size_t i = 0; i < cfg.workers; ++i) {
      Slot slot;
      slot.index = next_slot_index++;
      slots.push_back(std::move(slot));
    }
    std::size_t live = 0;
    for (std::size_t i = base; i < slots.size(); ++i) {
      if (spawn_slot(slots[i])) live += 1;
    }
    if (live == 0) {
      // respawn_slots_locked keeps retrying with backoff and degrades the
      // pool if nothing ever comes up.
      util::log_warn("worker pool: local fallback spawn failed; retrying");
    } else {
      util::log_info("worker pool: " + std::to_string(live) +
                     " local pipe worker(s) spawned as fallback");
    }
  }

  void respawn_slots_locked() {
    for (Slot& slot : slots) {
      if (slot.remote || slot.transport != nullptr) continue;
      if (!slot.respawn_gate.expired()) continue;
      if (spawn_slot(slot)) {
        stat.restarts += 1;
      } else if (spawn_failure_streak >= 2 * slots.size() &&
                 !any_live_worker()) {
        // Every slot has failed to come (back) up repeatedly and nothing is
        // running: give up on processes, keep the study going in-process.
        enter_degraded("cannot spawn workers (" +
                       std::to_string(spawn_failure_streak) +
                       " consecutive failures)");
        return;
      }
    }
  }

  std::string unit_wire(const PendingUnit& unit) const {
    util::Json frame = util::Json::object();
    frame["type"] = "unit";
    frame["unit"] = work_unit_to_json(unit.unit);
    return frame_wire(frame.dump());
  }

  void dispatch_locked() {
    for (Slot& slot : slots) {
      // Units resolved while queued (e.g. quarantined through a replica's
      // failure chain) are dropped, not dispatched.
      while (!queue.empty() && queue.front()->resolved) queue.pop_front();
      if (queue.empty()) return;
      if (slot.transport == nullptr || !slot.ready || slot.partitioned ||
          slot.current != nullptr) {
        continue;
      }
      std::shared_ptr<PendingUnit> unit = queue.front();
      queue.pop_front();
      if (!slot.transport->write_wire(unit_wire(*unit))) {
        // The worker died between units; the unit never reached it, so no
        // attempt is consumed — requeue and retire the slot.
        queue.push_front(unit);
        retire_slot(slot, "", /*kill=*/true);
        continue;
      }
      unit->replicas += 1;
      unit->first_dispatch_ms = util::monotonic_now_ms();
      slot.current = std::move(unit);
      slot.unit_deadline = cfg.unit_timeout_ms > 0
                               ? util::Deadline::after_ms(cfg.unit_timeout_ms)
                               : util::Deadline::never();
      slot.last_heard_ms = util::monotonic_now_ms();
    }
  }

  /// Straggler work-stealing: when the queue is dry, an idle worker
  /// duplicates the oldest single-replica unit that has been in flight
  /// longer than steal_after_ms. Both replicas compute the same
  /// deterministic function of the same shipped streams, and resolution is
  /// idempotent — first result wins, bytes unchanged.
  void steal_stragglers_locked() {
    if (cfg.steal_after_ms == 0 || !queue.empty()) return;
    const std::uint64_t now = util::monotonic_now_ms();
    for (Slot& idle : slots) {
      if (idle.transport == nullptr || !idle.ready || idle.partitioned ||
          idle.current != nullptr) {
        continue;
      }
      Slot* victim = nullptr;
      for (Slot& busy : slots) {
        if (busy.current == nullptr || busy.current->resolved) continue;
        if (busy.current->replicas >= 2) continue;
        if (now - busy.current->first_dispatch_ms < cfg.steal_after_ms) {
          continue;
        }
        if (victim == nullptr || busy.current->first_dispatch_ms <
                                     victim->current->first_dispatch_ms) {
          victim = &busy;
        }
      }
      if (victim == nullptr) return;
      std::shared_ptr<PendingUnit> unit = victim->current;
      if (!idle.transport->write_wire(unit_wire(*unit))) {
        retire_slot(idle, "", /*kill=*/true);
        continue;
      }
      unit->replicas += 1;
      stat.steals += 1;
      util::log_warn("worker pool: stealing straggler " +
                     unit->unit.key.to_string() + " from " +
                     victim->transport->describe() + " onto " +
                     idle.transport->describe() + " (in flight " +
                     std::to_string(now - unit->first_dispatch_ms) + " ms)");
      idle.current = std::move(unit);
      idle.unit_deadline = cfg.unit_timeout_ms > 0
                               ? util::Deadline::after_ms(cfg.unit_timeout_ms)
                               : util::Deadline::never();
      idle.last_heard_ms = now;
    }
  }

  /// Consumes every complete frame a worker has produced. Returns false when
  /// the worker must be retired (corrupt stream).
  bool process_frames_locked(Slot& slot) {
    while (true) {
      std::optional<std::string> payload;
      try {
        payload = slot.reader.next();
      } catch (const ProtocolError& error) {
        retire_slot(slot, std::string{"corrupt frame: "} + error.what(),
                    /*kill=*/true);
        return false;
      }
      if (!payload.has_value()) return true;

      util::Json frame;
      std::string type;
      try {
        frame = util::Json::parse(*payload);
        type = frame.at("type").as_string();
      } catch (const std::exception& error) {
        retire_slot(slot, std::string{"corrupt frame: "} + error.what(),
                    /*kill=*/true);
        return false;
      }

      slot.last_heard_ms = util::monotonic_now_ms();
      if (type == "ready") {
        slot.ready = true;
      } else if (type == "heartbeat") {
        // liveness timestamp already updated
      } else if (type == "result") {
        if (slot.current == nullptr) {
          util::log_warn("worker pool: stray result frame ignored");
          continue;
        }
        CandidateResult result;
        try {
          result = candidate_result_from_json(frame.at("result"));
        } catch (const std::exception& error) {
          retire_slot(slot, std::string{"corrupt result: "} + error.what(),
                      /*kill=*/true);
          return false;
        }
        // First result wins: with straggler stealing a twin may already
        // have resolved this unit, in which case this is a no-op.
        resolve_result(*slot.current, std::move(result));
        if (slot.current->replicas > 0) slot.current->replicas -= 1;
        slot.current.reset();
        slot.consecutive_failures = 0;
      } else if (type == "error") {
        // The worker survived but the unit failed cleanly in-process.
        std::string message = "unknown error";
        if (frame.contains("message")) {
          message = frame.at("message").as_string();
        }
        if (slot.current != nullptr) {
          std::shared_ptr<PendingUnit> unit = std::move(slot.current);
          slot.current.reset();
          if (unit->replicas > 0) unit->replicas -= 1;
          if (!unit->resolved) fail_attempt(unit, "worker error: " + message);
        }
      } else {
        retire_slot(slot, "unknown frame type '" + type + "'",
                    /*kill=*/true);
        return false;
      }
    }
  }

#if defined(__unix__) || defined(__APPLE__)
  void read_workers_locked() {
    char buffer[8192];
    for (Slot& slot : slots) {
      if (slot.transport == nullptr) continue;
      if (slot.remote && slot.current != nullptr) {
        // Mid-unit connection faults (`conn=reset/partition/slow`).
        const std::string where =
            "unit " + slot.current->unit.key.to_string();
        switch (util::FaultInjector::instance().on_connection(where)) {
          case util::ConnFaultMode::Reset:
            retire_slot(slot, "injected connection reset", /*kill=*/true,
                        /*charge_attempt=*/false);
            continue;
          case util::ConnFaultMode::Partition:
            slot.partitioned = true;
            break;
          case util::ConnFaultMode::Slow:
            continue;  // drop this read tick; frames arrive next round
          default:
            break;
        }
      }
      // A partitioned connection blackholes reads; the heartbeat reaper
      // retires it and the daemon's reconnect is the heal.
      if (slot.partitioned) continue;
      bool eof = false;
      while (true) {
        const ssize_t n =
            ::read(slot.transport->read_fd(), buffer, sizeof(buffer));
        if (n > 0) {
          slot.reader.feed(buffer, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        eof = true;  // unexpected read error (e.g. ECONNRESET): worker gone
        break;
      }
      if (!process_frames_locked(slot)) continue;  // slot already retired
      if (eof) {
        // A vanished pipe child failed its unit (the process owning the
        // computation died — charge the attempt, as always); a vanished
        // connection merely orphans it.
        retire_slot(slot, "", /*kill=*/false,
                    /*charge_attempt=*/!slot.remote);
      }
    }
  }
#else
  void read_workers_locked() {}
#endif

  void check_liveness_locked() {
    const std::uint64_t now = util::monotonic_now_ms();
    for (Slot& slot : slots) {
      if (slot.transport == nullptr) continue;
      const bool busy = slot.current != nullptr;
      if (busy && slot.unit_deadline.expired()) {
        // The unit itself is slow — charge the attempt on either transport.
        retire_slot(slot,
                    "deadline exceeded after " +
                        std::to_string(cfg.unit_timeout_ms) + " ms",
                    /*kill=*/true);
        continue;
      }
      // An idle ready worker is legitimately silent; a busy one must tick,
      // and a fresh one must answer the init frame. For a remote worker
      // silence means the HOST or network is gone, not the unit — orphan it.
      if ((busy || !slot.ready) &&
          now - slot.last_heard_ms > cfg.heartbeat_timeout_ms) {
        retire_slot(slot,
                    std::string{busy ? "no heartbeat for "
                                     : "worker failed to initialize within "} +
                        std::to_string(cfg.heartbeat_timeout_ms) + " ms",
                    /*kill=*/true, /*charge_attempt=*/!slot.remote);
      }
    }
  }

#if defined(__unix__) || defined(__APPLE__)
  void wait_for_io() {
    std::vector<pollfd> fds;
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (const Slot& slot : slots) {
        // Partitioned fds are excluded: their buffered bytes would turn
        // poll() into a busy loop while reads are withheld.
        if (slot.transport == nullptr || slot.partitioned) continue;
        fds.push_back(pollfd{slot.transport->read_fd(), POLLIN, 0});
      }
      for (const PendingConn& conn : pending_conns) {
        fds.push_back(pollfd{conn.socket.fd(), POLLIN, 0});
      }
      if (listener.valid()) {
        fds.push_back(pollfd{listener.fd(), POLLIN, 0});
      }
    }
    if (fds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return;
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
  }
#else
  void wait_for_io() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
#endif

  /// In-process execution of a batch (degraded mode), same arithmetic as a
  /// worker: evaluate_unit on the shipped streams.
  void run_inline(std::vector<std::shared_ptr<PendingUnit>>& units) {
    util::parallel_for(
        0, units.size(), std::max<std::size_t>(1, cfg.workers),
        [&](std::size_t i) {
          std::exception_ptr error;
          CandidateResult result;
          try {
            result = evaluate_unit(worker_config, units[i]->unit, cache);
          } catch (...) {
            error = std::current_exception();
          }
          std::lock_guard<std::mutex> lock(mutex);
          if (error != nullptr) {
            resolve_exception(*units[i], error);
          } else {
            resolve_result(*units[i], std::move(result));
          }
        });
  }

  void dispatcher_loop() {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::shared_ptr<PendingUnit>> inline_batch;
      {
        std::lock_guard<std::mutex> lock(mutex);
        handle_interrupt_locked();
        if (degraded) {
          inline_batch.assign(queue.begin(), queue.end());
          queue.clear();
        } else {
          accept_remote_locked();
          read_pending_conns_locked();
          maybe_fallback_locked();
          respawn_slots_locked();
          dispatch_locked();
          steal_stragglers_locked();
        }
      }
      if (!inline_batch.empty()) {
        run_inline(inline_batch);
        continue;
      }
      wait_for_io();
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (!degraded) {
          read_workers_locked();
          check_liveness_locked();
          reap_dead_remote_locked();
        }
      }
    }
  }
};

WorkerPool::WorkerPool(SweepConfig config, WorkerPoolConfig pool_config)
    : impl_(std::make_unique<Impl>()) {
  // A worker dying mid-write must come back as EPIPE from write_all, never
  // as a supervisor-killing signal (spawn() also installs this, but the
  // guard must exist even when the pool degrades before the first spawn).
  util::install_sigpipe_guard();
  impl_->cfg = pool_config;
  impl_->cfg.workers = std::max<std::size_t>(1, impl_->cfg.workers);
  impl_->worker_config = std::move(config);
  // Inside a worker the only parallelism is a unit's runs_per_model.
  impl_->worker_config.search.threads =
      std::max<std::size_t>(1, pool_config.worker_threads);
  impl_->worker_config.search.lookahead = 0;
  impl_->local_backend = util::simd::active_backend().name;

  bool local_available = true;
  if (pool_config.worker_command.empty()) {
    const std::string self = util::current_executable_path();
    if (!util::subprocess_supported() || self.empty()) {
      local_available = false;
    } else {
      impl_->command = {self, "--worker-mode"};
    }
  } else {
    impl_->command = pool_config.worker_command;
  }

  util::Json init = util::Json::object();
  init["type"] = "init";
  init["version"] = kWorkerProtocolVersion;
  init["heartbeat_interval_ms"] = impl_->cfg.heartbeat_interval_ms;
  init["config"] = sweep_config_to_json(impl_->worker_config);
  impl_->init_wire = frame_wire(init.dump());
  util::Json shutdown = util::Json::object();
  shutdown["type"] = "shutdown";
  impl_->shutdown_wire = frame_wire(shutdown.dump());

  if (impl_->cfg.remote_workers > 0) {
    if (util::sockets_supported()) {
      try {
        impl_->listener = util::ListenSocket::listen_tcp(
            impl_->cfg.listen_host, impl_->cfg.listen_port);
        impl_->remote_mode = true;
        impl_->remote_gate =
            util::Deadline::after_ms(impl_->cfg.handshake_timeout_ms);
        util::log_info(
            "worker pool: listening on " + impl_->cfg.listen_host + ":" +
            std::to_string(impl_->listener.port()) + " for " +
            std::to_string(impl_->cfg.remote_workers) +
            " remote worker(s), handshake deadline " +
            std::to_string(impl_->cfg.handshake_timeout_ms) + " ms");
      } catch (const std::exception& error) {
        util::log_warn(
            std::string{"worker pool: cannot listen for remote workers: "} +
            error.what() + "; using local workers");
      }
    } else {
      util::log_warn(
          "worker pool: TCP sockets unavailable on this platform; using "
          "local workers");
    }
  }

  if (!impl_->remote_mode) {
    if (!local_available) {
      impl_->enter_degraded(
          "subprocess spawning is unavailable on this platform");
      return;
    }
    impl_->local_spawned = true;
    impl_->slots.resize(impl_->cfg.workers);
    for (std::size_t i = 0; i < impl_->slots.size(); ++i) {
      impl_->slots[i].index = i;
    }
    impl_->next_slot_index = impl_->slots.size();
    // Spawn validation happens here, synchronously: if the very first worker
    // cannot be created (missing binary, fork failure, exec failure via the
    // status pipe), the pool degrades before any unit is submitted.
    if (!impl_->spawn_slot(impl_->slots[0])) {
      impl_->enter_degraded("cannot spawn worker process (" +
                            impl_->command[0] + ")");
      impl_->slots.clear();
      return;
    }
    for (std::size_t i = 1; i < impl_->slots.size(); ++i) {
      // Later failures are not fatal: the dispatcher keeps retrying them
      // with backoff while the first worker carries the load.
      impl_->spawn_slot(impl_->slots[i]);
    }
    util::log_info("worker pool: " + std::to_string(impl_->cfg.workers) +
                   " worker(s), command " + impl_->command[0]);
  }
  impl_->dispatcher_running = true;
  impl_->dispatcher = std::thread([this] { impl_->dispatcher_loop(); });
}

WorkerPool::~WorkerPool() {
  if (impl_ == nullptr) return;
  impl_->stop.store(true, std::memory_order_relaxed);
  if (impl_->dispatcher.joinable()) impl_->dispatcher.join();
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto destroyed = std::make_exception_ptr(
        std::runtime_error("worker pool destroyed with units pending"));
    for (const auto& unit : impl_->queue) {
      impl_->resolve_exception(*unit, destroyed);
    }
    impl_->queue.clear();
    for (Impl::Slot& slot : impl_->slots) {
      if (slot.current != nullptr) {
        impl_->resolve_exception(*slot.current, destroyed);
        slot.current.reset();
      }
      // Pipe children get stdin EOF (the Subprocess destructor SIGKILLs and
      // reaps whatever does not comply); remote daemons get a shutdown
      // frame so a non-persistent one exits instead of reconnect-looping.
      if (slot.transport != nullptr) {
        slot.transport->request_shutdown(impl_->shutdown_wire);
      }
    }
    impl_->pending_conns.clear();
    impl_->listener.close();
  }
}

std::vector<CandidateResult> WorkerPool::evaluate(
    std::vector<WorkUnit> units) {
  util::throw_if_interrupted();
  if (units.empty()) return {};

  bool inline_now = false;
  std::vector<std::shared_ptr<Impl::PendingUnit>> pending;
  std::vector<std::future<CandidateResult>> futures;
  pending.reserve(units.size());
  futures.reserve(units.size());
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    inline_now = impl_->degraded && !impl_->dispatcher_running;
    for (WorkUnit& unit : units) {
      auto p = std::make_shared<Impl::PendingUnit>();
      p->unit = std::move(unit);
      futures.push_back(p->promise.get_future());
      pending.push_back(std::move(p));
    }
    if (!inline_now) {
      for (const auto& p : pending) impl_->queue.push_back(p);
    }
  }
  // A pool that never came up has no dispatcher; evaluate on the caller.
  if (inline_now) impl_->run_inline(pending);

  std::vector<CandidateResult> results;
  results.reserve(futures.size());
  for (std::future<CandidateResult>& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

bool WorkerPool::degraded() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->degraded;
}

std::string WorkerPool::degraded_reason() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->degraded_reason;
}

std::size_t WorkerPool::worker_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::size_t target =
      impl_->remote_mode ? impl_->cfg.remote_workers : impl_->cfg.workers;
  return std::max<std::size_t>(1, std::max(impl_->slots.size(), target));
}

std::uint16_t WorkerPool::listen_port() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->listener.valid() ? impl_->listener.port() : 0;
}

WorkerPoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stat;
}

}  // namespace qhdl::search
