#include "search/worker_transport.hpp"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#endif

namespace qhdl::search {

namespace {

class PipeTransport final : public WorkerTransport {
 public:
  explicit PipeTransport(util::Subprocess process)
      : process_(std::move(process)) {}

  bool write_wire(const std::string& wire) override {
    return process_.write_all(wire.data(), wire.size());
  }

  int read_fd() const override { return process_.stdout_fd(); }

  bool remote() const override { return false; }

  void interrupt(const std::string&) override { process_.terminate(); }

  void request_shutdown(const std::string&) override {
    process_.close_stdin();
  }

  std::string finish(bool kill) override {
    if (kill) process_.kill_hard();
    return "worker " + process_.wait().to_string();
  }

  std::string describe() const override {
    return "pid " + std::to_string(process_.pid());
  }

 private:
  util::Subprocess process_;
};

class TcpTransport final : public WorkerTransport {
 public:
  TcpTransport(util::Socket socket, std::string peer)
      : socket_(std::move(socket)), peer_(std::move(peer)) {}

  bool write_wire(const std::string& wire) override {
    return socket_.write_all(wire);
  }

  int read_fd() const override { return socket_.fd(); }

  bool remote() const override { return true; }

  void interrupt(const std::string& shutdown_wire) override {
    // The daemon's process is out of signal reach; a shutdown frame is the
    // cooperative stop. It finishes its in-flight unit first — exactly what
    // SIGTERM forwarding achieves for pipe children.
    (void)socket_.write_all(shutdown_wire);
  }

  void request_shutdown(const std::string& shutdown_wire) override {
    (void)socket_.write_all(shutdown_wire);
    socket_.shutdown_write();
  }

  std::string finish(bool) override {
    // Closing is all the "kill" a connection supports; the daemon notices
    // and reconnects as a fresh registration.
    socket_.close();
    return "connection to " + peer_ + " closed";
  }

  std::string describe() const override { return peer_; }

 private:
  util::Socket socket_;
  std::string peer_;
};

std::string peer_of(const util::Socket& socket) {
#if defined(__unix__) || defined(__APPLE__)
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (socket.valid() &&
      ::getpeername(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) ==
          0 &&
      addr.sin_family == AF_INET) {
    char host[INET_ADDRSTRLEN] = {0};
    if (::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host)) != nullptr) {
      return std::string{host} + ":" + std::to_string(ntohs(addr.sin_port));
    }
  }
#endif
  return "remote worker";
}

}  // namespace

std::unique_ptr<WorkerTransport> make_pipe_transport(
    util::Subprocess process) {
  return std::make_unique<PipeTransport>(std::move(process));
}

std::unique_ptr<WorkerTransport> make_tcp_transport(util::Socket socket) {
  std::string peer = peer_of(socket);
#if defined(__unix__) || defined(__APPLE__)
  // The dispatcher multiplexes reads with poll(); a blocking fd would let
  // one chatty worker starve the others.
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  if (flags >= 0) ::fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK);
#endif
  return std::make_unique<TcpTransport>(std::move(socket), std::move(peer));
}

}  // namespace qhdl::search
