#include "search/search_space.hpp"

#include <stdexcept>

namespace qhdl::search {

std::size_t classical_combination_count(std::size_t m, std::size_t n) {
  if (m < 2) {
    // Degenerate: the geometric-series formula needs m != 1.
    return m * n;
  }
  std::size_t m_pow_n = 1;
  for (std::size_t i = 0; i < n; ++i) m_pow_n *= m;
  return m * (m_pow_n - 1) / (m - 1);
}

std::vector<ModelSpec> classical_search_space(
    const std::vector<std::size_t>& neuron_options, std::size_t max_layers) {
  if (neuron_options.empty() || max_layers == 0) {
    throw std::invalid_argument("classical_search_space: empty space");
  }
  std::vector<ModelSpec> specs;
  // Enumerate length-L tuples as base-m counters, shortest lengths first.
  const auto increment = [&](std::vector<std::size_t>& digits) {
    for (std::size_t pos = digits.size(); pos-- > 0;) {
      if (++digits[pos] < neuron_options.size()) return true;
      digits[pos] = 0;
    }
    return false;  // counter wrapped: length exhausted
  };
  for (std::size_t length = 1; length <= max_layers; ++length) {
    std::vector<std::size_t> digits(length, 0);
    do {
      std::vector<std::size_t> hidden(length);
      for (std::size_t i = 0; i < length; ++i) {
        hidden[i] = neuron_options[digits[i]];
      }
      specs.push_back(ModelSpec::make_classical(std::move(hidden)));
    } while (increment(digits));
  }
  return specs;
}

std::vector<ModelSpec> hybrid_search_space(
    const std::vector<std::size_t>& qubit_options, std::size_t max_depth,
    qnn::AnsatzKind ansatz) {
  if (qubit_options.empty() || max_depth == 0) {
    throw std::invalid_argument("hybrid_search_space: empty space");
  }
  std::vector<ModelSpec> specs;
  specs.reserve(qubit_options.size() * max_depth);
  for (std::size_t qubits : qubit_options) {
    for (std::size_t depth = 1; depth <= max_depth; ++depth) {
      specs.push_back(ModelSpec::make_hybrid(qubits, depth, ansatz));
    }
  }
  return specs;
}

std::vector<ModelSpec> paper_classical_space() {
  return classical_search_space({2, 4, 6, 8, 10}, 3);
}

std::vector<ModelSpec> paper_hybrid_space(qnn::AnsatzKind ansatz) {
  return hybrid_search_space({3, 4, 5}, 10, ansatz);
}

}  // namespace qhdl::search
