#include "search/experiment.hpp"

#include <stdexcept>

#include "data/synthetic.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qhdl::search {

std::string family_name(Family family) {
  switch (family) {
    case Family::Classical: return "classical";
    case Family::HybridBel: return "hybrid-bel";
    case Family::HybridSel: return "hybrid-sel";
  }
  return "?";
}

std::vector<ModelSpec> family_search_space(Family family) {
  switch (family) {
    case Family::Classical:
      return paper_classical_space();
    case Family::HybridBel:
      return paper_hybrid_space(qnn::AnsatzKind::BasicEntangler);
    case Family::HybridSel:
      return paper_hybrid_space(qnn::AnsatzKind::StronglyEntangling);
  }
  throw std::logic_error("family_search_space: unknown family");
}

data::Dataset level_dataset(std::size_t features, const SweepConfig& config) {
  // Mix the feature size into the seed so levels differ but remain
  // reproducible; families share the seed and therefore the dataset.
  const std::uint64_t seed =
      config.dataset_seed * 0x100000001b3ULL + features;
  if (config.geometry == BaseGeometry::Spiral) {
    return data::make_complexity_dataset(features, config.spiral, seed);
  }
  // Rings: same augmentation + noise schedule on a different base geometry.
  util::Rng rng{seed};
  const double noise = data::noise_for_features(features);
  const data::Dataset base =
      data::make_rings(config.spiral.points, config.spiral.classes,
                       noise * data::kAngleNoiseFactor, rng);
  return data::augment_features(base, features,
                                noise * data::kDerivedNoiseFactor, rng);
}

SweepResult run_complexity_sweep(Family family, const SweepConfig& config,
                                 StudyCheckpoint* checkpoint,
                                 WorkerPool* pool,
                                 const util::CancelToken* cancel,
                                 const ProgressFn* progress) {
  if (config.feature_sizes.empty()) {
    throw std::invalid_argument("run_complexity_sweep: no feature sizes");
  }
  const std::vector<ModelSpec> specs = family_search_space(family);

  SweepResult result;
  result.family = family;
  // Levels are fully independent (each derives its dataset seed from its
  // feature size and re-seeds its search from config.search.seed), so they
  // parallelize with bit-identical results; slots are pre-sized and filled
  // by index to keep the output order fixed.
  result.levels.resize(config.feature_sizes.size());
  util::parallel_for(
      0, config.feature_sizes.size(), config.search.threads,
      [&](std::size_t i) {
        const std::size_t features = config.feature_sizes[i];
        util::throw_if_cancelled(cancel);
        util::log_info("sweep[" + family_name(family) +
                       "]: features=" + std::to_string(features));
        LevelResult level;
        level.features = features;
        const data::Dataset dataset = level_dataset(features, config);
        ResumeContext resume;
        resume.checkpoint = checkpoint;
        resume.family = family_name(family);
        resume.features = features;
        resume.pool = pool;
        resume.cancel = cancel;
        resume.progress = progress;
        level.search =
            run_repeated_search(specs, dataset, config.search, resume);
        result.levels[i] = std::move(level);
      });
  return result;
}

}  // namespace qhdl::search
