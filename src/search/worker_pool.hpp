// Supervised multi-process study execution (DESIGN.md §11, §16).
//
// WorkerPool shards candidate evaluations across crash-isolated workers
// speaking the length-prefixed JSON protocol of worker_protocol.hpp over
// one of two transports: stdin/stdout pipes to re-exec'd instances of the
// current binary in --worker-mode, or TCP connections from remote
// qhdl_worker daemons that register themselves against the pool's listener
// (remote_workers > 0). The supervisor:
//
//   * enforces a per-unit wall-clock deadline and heartbeat liveness, and
//     SIGKILLs a worker that exceeds either;
//   * reaps workers killed by signals (segfault, OOM killer, external
//     kill -9) and workers that emit corrupt frames;
//   * retries the failed unit — with the SAME shipped RNG streams, so a
//     successful retry is bit-identical to a never-failed run — up to
//     `unit_retries` times, respawning workers with exponential backoff;
//   * quarantines a unit whose every attempt failed through the same
//     failure path PR 4 uses for non-finite training runs (runs = 0,
//     cause "worker:<reason>"), so one poisoned unit can never abort or
//     bias the sweep;
//   * degrades gracefully to in-process execution — at construction when
//     workers cannot be spawned at all, or mid-run when respawns keep
//     failing — with the reason logged and queryable.
//
// Determinism: the supervisor pre-splits every unit's RNG streams in FLOPs
// order (grid_search.cpp) and ships them in the unit frame; workers
// re-derive datasets/splits from the sweep config; results merge back in
// submission order. A multi-process sweep is therefore byte-identical to an
// in-process one (pinned by the worker-pool golden test), regardless of
// worker count, scheduling, crashes, or retries that eventually succeed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "search/worker_protocol.hpp"

namespace qhdl::search {

struct WorkerPoolConfig {
  /// Number of worker processes (>= 1).
  std::size_t workers = 2;
  /// Worker argv; empty means re-exec the current binary with
  /// `--worker-mode` appended (util::current_executable_path()).
  std::vector<std::string> worker_command;
  /// Extra "KEY=value" environment entries for workers (override inherited
  /// values). Tests use this to arm fault injection in workers only.
  std::vector<std::string> worker_env;
  /// Thread width inside each worker (its runs_per_model parallelism).
  std::size_t worker_threads = 1;
  /// Wall-clock budget per unit attempt in ms; 0 = no deadline.
  std::uint64_t unit_timeout_ms = 0;
  /// Cadence at which a busy worker emits heartbeat frames.
  std::uint64_t heartbeat_interval_ms = 250;
  /// A busy worker silent for this long is presumed wedged and killed.
  std::uint64_t heartbeat_timeout_ms = 10000;
  /// Failed attempts allowed per unit beyond the first; a unit is
  /// quarantined after 1 + unit_retries failed attempts.
  std::size_t unit_retries = 2;
  /// Respawn backoff after consecutive failures of one worker slot:
  /// jittered exponential, initial * 2^(failures-1) capped at max, then
  /// drawn from [base/2, base] with backoff_with_jitter_ms (seeded — the
  /// schedule is reproducible under the fault matrix).
  std::uint64_t backoff_initial_ms = 100;
  std::uint64_t backoff_max_ms = 5000;
  /// Seed for the jittered backoff draw (worker slot index is the salt).
  std::uint64_t backoff_jitter_seed = 0x71686a69ULL;

  // --- distributed mode (DESIGN.md §16) ---------------------------------
  /// Expected remote worker registrations. 0 keeps the pool purely local;
  /// > 0 makes it listen on listen_host:listen_port for qhdl_worker
  /// daemons and widens the dispatch window to this count. Local pipe
  /// workers are only spawned as a fallback when no daemon registers (or
  /// the whole fleet is lost) within handshake_timeout_ms.
  std::size_t remote_workers = 0;
  std::string listen_host = "127.0.0.1";
  /// 0 binds an ephemeral port; query it with WorkerPool::listen_port().
  std::uint16_t listen_port = 0;
  /// Registration deadline: per accepted connection (register frame must
  /// arrive within it) and for the fleet as a whole before the pool falls
  /// back to local pipe workers.
  std::uint64_t handshake_timeout_ms = 5000;
  /// Straggler work-stealing: an idle worker duplicates a unit that has
  /// been in flight longer than this (first result wins; replicas are
  /// byte-identical by construction). 0 disables stealing — orphaned-unit
  /// re-dispatch on transport loss is always on.
  std::uint64_t steal_after_ms = 0;
};

/// Supervisor health counters (monotonic over the pool's lifetime).
struct WorkerPoolStats {
  std::size_t restarts = 0;           ///< worker processes respawned
  std::size_t retried_units = 0;      ///< units that needed >= 1 retry
  std::size_t quarantined_units = 0;  ///< units that exhausted all retries
  std::size_t steals = 0;             ///< units re-dispatched or duplicated
  std::size_t remote_registered = 0;  ///< remote registrations accepted
  std::size_t remote_lost = 0;        ///< remote connections lost
  std::size_t handshake_rejects = 0;  ///< connections dropped pre-register
};

class WorkerPool {
 public:
  /// Local mode validates spawning immediately: one worker is started (then
  /// the rest) before the constructor returns. If no worker can be spawned
  /// the pool comes up degraded — evaluate() runs in-process — with the
  /// reason in degraded_reason(); construction never throws for spawn
  /// problems. Distributed mode (remote_workers > 0) binds the listener in
  /// the constructor and degrades along the chain remote -> local pipes ->
  /// in-process as deadlines expire, each step logged.
  WorkerPool(SweepConfig config, WorkerPoolConfig pool_config);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Evaluates the units, blocking until all have a result (in submission
  /// order). Thread-safe: concurrent sweep levels share the pool, and their
  /// units interleave on the workers. Throws util::Interrupted when a
  /// cooperative shutdown arrives while units are pending (after forwarding
  /// SIGTERM to live workers).
  std::vector<CandidateResult> evaluate(std::vector<WorkUnit> units);

  /// True when the pool executes in-process (spawn failure at construction
  /// or persistent respawn failure mid-run).
  bool degraded() const;
  std::string degraded_reason() const;

  /// Current dispatch width: the wider of the live slot count and the
  /// configured worker target (remote_workers when listening, workers
  /// otherwise). Also the dispatch width in degraded mode.
  std::size_t worker_count() const;

  /// Bound port when listening for remote workers, 0 otherwise. Lets a
  /// caller bind an ephemeral port and then tell daemons where to connect.
  std::uint16_t listen_port() const;

  WorkerPoolStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qhdl::search
