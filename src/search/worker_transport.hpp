// Transport abstraction for the supervised worker pool (DESIGN.md §16).
//
// The pool speaks one framed protocol (worker_protocol.hpp) over two kinds
// of stream: CLOEXEC pipes to re-exec'd local children and TCP connections
// from remote qhdl_worker daemons. Everything the supervisor's dispatcher
// needs from either is the same four operations — write a frame, expose a
// pollable read descriptor, interrupt cooperatively, and tear down with a
// human-readable account of how the worker ended — so both live behind this
// interface and the dispatcher stays transport-blind.
#pragma once

#include <memory>
#include <string>

#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace qhdl::search {

class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;

  /// Writes pre-framed wire bytes (frame_wire output). False when the
  /// worker is gone; never raises SIGPIPE.
  virtual bool write_wire(const std::string& wire) = 0;

  /// Non-blocking descriptor carrying worker->supervisor frames, for the
  /// dispatcher's poll loop.
  virtual int read_fd() const = 0;

  /// True for TCP workers. Remote workers are never respawned by the
  /// supervisor — the daemon's reconnect loop re-registers them — and
  /// losing one is a transport event, not a unit failure.
  virtual bool remote() const = 0;

  /// Forwards a cooperative stop: SIGTERM to a pipe child, a shutdown frame
  /// to a TCP worker (whose process the supervisor cannot signal).
  virtual void interrupt(const std::string& shutdown_wire) = 0;

  /// Asks for a clean end of the session (pool destruction): pipe children
  /// get stdin EOF, TCP workers get a shutdown frame so a non-persistent
  /// daemon exits instead of reconnect-looping.
  virtual void request_shutdown(const std::string& shutdown_wire) = 0;

  /// Hard-stops (when `kill`) and reaps the worker. Returns how it ended —
  /// "worker exit 0", "worker killed by signal 9", "connection to
  /// 127.0.0.1:43210 closed" — for retry/quarantine attribution.
  virtual std::string finish(bool kill) = 0;

  /// Short identity for logs ("pid 12345", "127.0.0.1:43210").
  virtual std::string describe() const = 0;
};

/// Wraps a spawned --worker-mode child (stdin frames in, stdout frames out).
std::unique_ptr<WorkerTransport> make_pipe_transport(
    util::Subprocess process);

/// Wraps an accepted, registered daemon connection. Flips the socket
/// non-blocking for the dispatcher's multiplexed reads and records the peer
/// address for logs.
std::unique_ptr<WorkerTransport> make_tcp_transport(util::Socket socket);

}  // namespace qhdl::search
