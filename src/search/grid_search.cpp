#include "search/grid_search.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <stdexcept>

#include "data/preprocess.hpp"
#include "flops/profiler.hpp"
#include "util/logging.hpp"

namespace qhdl::search {

namespace {

flops::FlopsReport spec_report(const ModelSpec& spec, std::size_t features,
                               std::size_t classes,
                               const SearchConfig& config) {
  return flops::profile_layers(
      spec_layer_infos(spec, features, classes, config.classical_activation),
      config.cost_model);
}

}  // namespace

std::vector<ModelSpec> sort_by_flops(std::vector<ModelSpec> specs,
                                     std::size_t features,
                                     std::size_t classes,
                                     const SearchConfig& config) {
  std::vector<std::pair<double, std::size_t>> keyed;
  keyed.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    keyed.emplace_back(
        spec_report(specs[i], features, classes, config).total(), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<ModelSpec> sorted;
  sorted.reserve(specs.size());
  for (const auto& [flops_total, index] : keyed) {
    sorted.push_back(std::move(specs[index]));
  }
  return sorted;
}

CandidateResult evaluate_candidate(const ModelSpec& spec,
                                   const data::TrainValSplit& split,
                                   const SearchConfig& config,
                                   util::Rng& rng) {
  const std::size_t features = split.train.features();
  const std::size_t classes = split.train.classes;

  CandidateResult result;
  result.spec = spec;
  const auto report = spec_report(spec, features, classes, config);
  result.flops = report.total();
  result.flops_forward = report.forward_total;
  result.parameter_count = report.parameter_count;

  nn::TrainConfig train_config = config.train;
  train_config.early_stop_accuracy = config.accuracy_threshold;

  // One RNG stream per run, split up front so results do not depend on the
  // execution order / thread count.
  std::vector<util::Rng> run_rngs;
  run_rngs.reserve(config.runs_per_model);
  for (std::size_t run = 0; run < config.runs_per_model; ++run) {
    run_rngs.push_back(rng.split());
  }

  const auto execute_run = [&](util::Rng& run_rng) {
    auto model = build_from_spec(spec, features, classes,
                                 config.classical_activation, run_rng);
    nn::Adam optimizer{train_config.learning_rate};
    return nn::train_classifier(*model, optimizer, split.train.x,
                                split.train.y, split.val.x, split.val.y,
                                train_config, run_rng);
  };

  double train_sum = 0.0;
  double val_sum = 0.0;
  std::size_t runs = 0;
  if (config.threads > 1 && config.runs_per_model > 1) {
    // Parallel: all runs complete; pruning does not apply.
    std::vector<nn::TrainHistory> histories(config.runs_per_model);
    std::vector<std::thread> workers;
    std::atomic<std::size_t> next_run{0};
    const std::size_t worker_count =
        std::min(config.threads, config.runs_per_model);
    for (std::size_t w = 0; w < worker_count; ++w) {
      workers.emplace_back([&] {
        while (true) {
          const std::size_t run = next_run.fetch_add(1);
          if (run >= config.runs_per_model) return;
          histories[run] = execute_run(run_rngs[run]);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    for (const nn::TrainHistory& history : histories) {
      train_sum += history.best_train_accuracy;
      val_sum += history.best_val_accuracy;
      ++runs;
    }
  } else {
    for (std::size_t run = 0; run < config.runs_per_model; ++run) {
      const nn::TrainHistory history = execute_run(run_rngs[run]);
      train_sum += history.best_train_accuracy;
      val_sum += history.best_val_accuracy;
      ++runs;

      if (config.prune_margin > 0.0 && run == 0 &&
          history.best_val_accuracy <
              config.accuracy_threshold - config.prune_margin) {
        // Far below threshold after a full budget: averaging more runs
        // cannot rescue this candidate at bench scale.
        break;
      }
    }
  }

  result.runs = runs;
  result.avg_best_train_accuracy = train_sum / static_cast<double>(runs);
  result.avg_best_val_accuracy = val_sum / static_cast<double>(runs);
  result.meets_threshold =
      runs == config.runs_per_model &&
      result.avg_best_train_accuracy >= config.accuracy_threshold &&
      result.avg_best_val_accuracy >= config.accuracy_threshold;
  return result;
}

SearchOutcome search_once(const std::vector<ModelSpec>& sorted_specs,
                          const data::TrainValSplit& split,
                          const SearchConfig& config, util::Rng& rng) {
  SearchOutcome outcome;
  std::size_t examined = 0;
  for (const ModelSpec& spec : sorted_specs) {
    if (config.max_candidates > 0 && examined >= config.max_candidates) {
      break;
    }
    ++examined;
    CandidateResult result = evaluate_candidate(spec, split, config, rng);
    util::log_info("search: " + spec.to_string() + " flops=" +
                   std::to_string(result.flops) + " train_acc=" +
                   std::to_string(result.avg_best_train_accuracy) +
                   " val_acc=" +
                   std::to_string(result.avg_best_val_accuracy) +
                   (result.meets_threshold ? "  <- winner" : ""));
    outcome.evaluated.push_back(result);
    if (result.meets_threshold) {
      outcome.winner = result;
      break;
    }
  }
  outcome.candidates_trained = outcome.evaluated.size();
  return outcome;
}

RepeatedSearchResult run_repeated_search(const std::vector<ModelSpec>& specs,
                                         const data::Dataset& dataset,
                                         const SearchConfig& config) {
  dataset.validate();
  if (specs.empty()) {
    throw std::invalid_argument("run_repeated_search: empty search space");
  }

  const std::vector<ModelSpec> sorted =
      sort_by_flops(specs, dataset.features(), dataset.classes, config);

  RepeatedSearchResult result;
  util::Rng rng{config.seed};
  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    util::Rng rep_rng = rng.split();
    data::TrainValSplit split =
        data::stratified_split(dataset, config.validation_fraction, rep_rng);
    data::standardize_split(split);
    result.repetitions.push_back(
        search_once(sorted, split, config, rep_rng));
  }

  double flops_sum = 0.0;
  double param_sum = 0.0;
  for (const SearchOutcome& outcome : result.repetitions) {
    if (!outcome.winner.has_value()) continue;
    ++result.successful_repetitions;
    flops_sum += outcome.winner->flops;
    param_sum += static_cast<double>(outcome.winner->parameter_count);
    if (!result.smallest_winner.has_value() ||
        outcome.winner->flops < result.smallest_winner->flops) {
      result.smallest_winner = outcome.winner;
    }
  }
  if (result.successful_repetitions > 0) {
    const double n = static_cast<double>(result.successful_repetitions);
    result.mean_winner_flops = flops_sum / n;
    result.mean_winner_parameters = param_sum / n;
  }
  return result;
}

}  // namespace qhdl::search
