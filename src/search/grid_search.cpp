#include "search/grid_search.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "data/preprocess.hpp"
#include "flops/profiler.hpp"
#include "nn/fastpath.hpp"
#include "quantum/exec_plan.hpp"
#include "search/checkpoint.hpp"
#include "search/worker_pool.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qhdl::search {

namespace {

flops::FlopsReport spec_report(const ModelSpec& spec, std::size_t features,
                               std::size_t classes,
                               const SearchConfig& config) {
  return flops::profile_layers(
      spec_layer_infos(spec, features, classes, config.classical_activation),
      config.cost_model);
}

}  // namespace

std::vector<ModelSpec> sort_by_flops(std::vector<ModelSpec> specs,
                                     std::size_t features,
                                     std::size_t classes,
                                     const SearchConfig& config) {
  std::vector<std::pair<double, std::size_t>> keyed;
  keyed.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    keyed.emplace_back(
        spec_report(specs[i], features, classes, config).total(), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<ModelSpec> sorted;
  sorted.reserve(specs.size());
  for (const auto& [flops_total, index] : keyed) {
    sorted.push_back(std::move(specs[index]));
  }
  return sorted;
}

namespace {

/// Pre-split run streams. Drawing all streams before any work is scheduled
/// is what makes results independent of the execution order / thread count.
std::vector<util::Rng> split_run_rngs(const SearchConfig& config,
                                      util::Rng& rng) {
  if (config.runs_per_model == 0) {
    throw std::invalid_argument(
        "evaluate_candidate: runs_per_model must be >= 1");
  }
  std::vector<util::Rng> run_rngs;
  run_rngs.reserve(config.runs_per_model);
  for (std::size_t run = 0; run < config.runs_per_model; ++run) {
    run_rngs.push_back(rng.split());
  }
  return run_rngs;
}

/// One run's quarantined outcome: a history when any attempt survived the
/// non-finite guard, plus a record of every guard trip along the way.
struct RunOutcome {
  std::optional<nn::TrainHistory> history;
  std::vector<RunFailure> failures;
};

/// Retry stream derivation: attempt 0 consumes the run's pre-split stream;
/// attempt k consumes the k-th chained child of it. Children are derived
/// from a copy, so retries never advance the repetition stream and never
/// perturb any other run — a neighbour's failure leaves healthy runs
/// bit-identical.
util::Rng attempt_stream(const util::Rng& base, std::size_t attempt) {
  util::Rng stream = base;
  for (std::size_t a = 0; a < attempt; ++a) stream = stream.split();
  return stream;
}

/// evaluate_candidate body on already-split run streams (one per run).
/// search_once pre-splits streams for a whole lookahead window through this
/// path so speculative training consumes exactly the stream sequence the
/// serial walk would.
CandidateResult evaluate_candidate_with_rngs(const ModelSpec& spec,
                                             const data::TrainValSplit& split,
                                             const SearchConfig& config,
                                             std::vector<util::Rng>& run_rngs) {
  const std::size_t features = split.train.features();
  const std::size_t classes = split.train.classes;

  CandidateResult result;
  result.spec = spec;
  const auto report = spec_report(spec, features, classes, config);
  result.flops = report.total();
  result.flops_forward = report.forward_total;
  result.parameter_count = report.parameter_count;

  nn::TrainConfig train_config = config.train;
  train_config.early_stop_accuracy = config.accuracy_threshold;

  // Each run builds its own model/optimizer/workspace, so concurrent runs
  // share no mutable state: train_classifier's workspace fast path keeps all
  // training buffers per-model and the GEMM packing scratch is thread_local.
  const auto execute_run = [&](util::Rng& run_rng) {
    auto model = build_from_spec(spec, features, classes,
                                 config.classical_activation, run_rng);
    nn::Adam optimizer{train_config.learning_rate};
    return nn::train_classifier(*model, optimizer, split.train.x,
                                split.train.y, split.val.x, split.val.y,
                                train_config, run_rng);
  };

  // A non-finite loss/gradient quarantines the attempt instead of aborting
  // the sweep: bounded retries on the next deterministic child stream, then
  // skip-and-record. The quarantined run is excluded from the means.
  const auto run_with_quarantine = [&](std::size_t run) {
    RunOutcome outcome;
    for (std::size_t attempt = 0; attempt <= config.run_retries; ++attempt) {
      util::Rng stream = attempt_stream(run_rngs[run], attempt);
      try {
        outcome.history = execute_run(stream);
        return outcome;
      } catch (const nn::NonFiniteError& error) {
        outcome.failures.push_back(
            RunFailure{run, attempt, error.epoch(), error.kind()});
        util::log_warn("search: " + spec.to_string() + " run " +
                       std::to_string(run) + " attempt " +
                       std::to_string(attempt) + ": " + error.what() +
                       (attempt < config.run_retries
                            ? " — retrying on next stream"
                            : " — quarantining run"));
      }
    }
    return outcome;
  };

  double train_sum = 0.0;
  double val_sum = 0.0;
  std::size_t successes = 0;
  // Commit in run order so the floating-point sums match the serial path
  // bit-for-bit (and exactly match the pre-quarantine arithmetic when every
  // run is healthy).
  const auto commit = [&](RunOutcome& outcome) {
    for (RunFailure& failure : outcome.failures) {
      result.failures.push_back(std::move(failure));
    }
    if (outcome.history.has_value()) {
      train_sum += outcome.history->best_train_accuracy;
      val_sum += outcome.history->best_val_accuracy;
      ++successes;
    } else {
      ++result.failed_runs;
    }
  };

  // Run 0 always executes first, on the calling thread, and the prune
  // decision is taken from it alone. This makes the serial and parallel
  // paths follow literally the same decision sequence: the thread count
  // changes only where runs 1..N-1 execute, never which runs execute.
  RunOutcome first = run_with_quarantine(0);
  // Far below threshold after a full budget: averaging more runs cannot
  // rescue this candidate at bench scale. A quarantined run 0 never prunes:
  // there is no accuracy to judge by.
  const bool pruned =
      config.prune_margin > 0.0 && first.history.has_value() &&
      first.history->best_val_accuracy <
          config.accuracy_threshold - config.prune_margin;
  commit(first);

  if (!pruned && config.runs_per_model > 1) {
    std::vector<RunOutcome> outcomes(config.runs_per_model);
    util::parallel_for(1, config.runs_per_model, config.threads,
                       [&](std::size_t run) {
                         outcomes[run] = run_with_quarantine(run);
                       });
    for (std::size_t run = 1; run < config.runs_per_model; ++run) {
      commit(outcomes[run]);
    }
  }

  result.runs = successes;
  if (successes > 0) {
    result.avg_best_train_accuracy =
        train_sum / static_cast<double>(successes);
    result.avg_best_val_accuracy = val_sum / static_cast<double>(successes);
  }
  result.meets_threshold =
      !pruned && successes > 0 &&
      result.avg_best_train_accuracy >= config.accuracy_threshold &&
      result.avg_best_val_accuracy >= config.accuracy_threshold;
  return result;
}

}  // namespace

CandidateResult evaluate_candidate(const ModelSpec& spec,
                                   const data::TrainValSplit& split,
                                   const SearchConfig& config,
                                   util::Rng& rng) {
  std::vector<util::Rng> run_rngs = split_run_rngs(config, rng);
  return evaluate_candidate_with_rngs(spec, split, config, run_rngs);
}

CandidateResult evaluate_candidate(const ModelSpec& spec,
                                   const data::TrainValSplit& split,
                                   const SearchConfig& config,
                                   std::vector<util::Rng>& run_rngs) {
  if (run_rngs.size() != config.runs_per_model) {
    throw std::invalid_argument(
        "evaluate_candidate: expected " +
        std::to_string(config.runs_per_model) + " run streams, got " +
        std::to_string(run_rngs.size()));
  }
  return evaluate_candidate_with_rngs(spec, split, config, run_rngs);
}

SearchOutcome search_once(const std::vector<ModelSpec>& sorted_specs,
                          const data::TrainValSplit& split,
                          const SearchConfig& config, util::Rng& rng) {
  return search_once(sorted_specs, split, config, rng, ResumeContext{}, 0);
}

SearchOutcome search_once(const std::vector<ModelSpec>& sorted_specs,
                          const data::TrainValSplit& split,
                          const SearchConfig& config, util::Rng& rng,
                          const ResumeContext& resume,
                          std::size_t repetition) {
  SearchOutcome outcome;
  std::size_t limit = sorted_specs.size();
  if (config.max_candidates > 0) {
    limit = std::min(limit, config.max_candidates);
  }
  // Speculative lookahead: train the next `window` FLOPs-ordered candidates
  // concurrently, then commit their results strictly in FLOPs order. The
  // committed sequence — including where the search stops — is identical to
  // the serial walk; candidates trained past the winner are discarded.
  std::size_t window = std::max<std::size_t>(
      1, config.lookahead > 0 ? config.lookahead : config.threads);
  // With a worker pool the window is the dispatch batch; widen it so every
  // worker process has a unit in flight. Window size never changes results
  // (streams are drawn in FLOPs order regardless), only scheduling.
  if (resume.pool != nullptr) {
    window = std::max(window, resume.pool->worker_count());
  }

  std::size_t next = 0;
  while (next < limit && !outcome.winner.has_value()) {
    util::throw_if_interrupted();
    util::throw_if_cancelled(resume.cancel);
    const std::size_t count = std::min(window, limit - next);

    // Each candidate's run streams are split from the repetition stream in
    // FLOPs order before any work is scheduled — the exact sequence the
    // serial walk draws — so training is independent of both the window
    // size and the thread count. Checkpointed candidates draw their splits
    // too: a resumed search consumes the stream sequence of an
    // uninterrupted one, which is what makes resume bit-identical.
    std::vector<std::vector<util::Rng>> window_rngs;
    window_rngs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      window_rngs.push_back(split_run_rngs(config, rng));
    }

    // Units already in the checkpoint replay their recorded results.
    std::vector<std::optional<CandidateResult>> replayed(count);
    if (resume.checkpoint != nullptr) {
      for (std::size_t i = 0; i < count; ++i) {
        replayed[i] = resume.checkpoint->find(UnitKey{
            resume.family, resume.features, repetition, next + i});
      }
    }

    std::vector<CandidateResult> results(count);
    if (resume.pool != nullptr) {
      // Crash-isolated path: ship every fresh unit (with its pre-drawn
      // streams) to the pool and scatter results back by window slot. The
      // pool returns results in submission order, so the commit loop below
      // is unchanged — and identical to the in-process path's.
      std::vector<WorkUnit> units;
      std::vector<std::size_t> slots;
      for (std::size_t i = 0; i < count; ++i) {
        if (replayed[i].has_value()) {
          results[i] = *replayed[i];
          continue;
        }
        WorkUnit unit;
        unit.key = UnitKey{resume.family, resume.features, repetition,
                           next + i};
        unit.spec = sorted_specs[next + i];
        unit.streams = window_rngs[i];
        units.push_back(std::move(unit));
        slots.push_back(i);
      }
      std::vector<CandidateResult> pooled =
          resume.pool->evaluate(std::move(units));
      for (std::size_t u = 0; u < pooled.size(); ++u) {
        results[slots[u]] = std::move(pooled[u]);
      }
    } else {
      util::parallel_for(0, count, config.threads, [&](std::size_t i) {
        if (replayed[i].has_value()) {
          results[i] = *replayed[i];
        } else {
          results[i] = evaluate_candidate_with_rngs(
              sorted_specs[next + i], split, config, window_rngs[i]);
        }
      });
    }

    for (std::size_t i = 0; i < count; ++i) {
      const CandidateResult& result = results[i];
      // Unit boundary: the injectable kill point. A crash here loses at
      // most this window's unflushed units; the resumed search retrains
      // them from the same streams and lands on the same bytes.
      util::FaultInjector::instance().on_unit_boundary(
          resume.family + "/f" + std::to_string(resume.features) + "/r" +
          std::to_string(repetition) + "/c" + std::to_string(next + i));
      if (resume.checkpoint != nullptr && !replayed[i].has_value()) {
        resume.checkpoint->record(
            UnitKey{resume.family, resume.features, repetition, next + i},
            result);
      }
      util::log_info("search: " + result.spec.to_string() + " flops=" +
                     std::to_string(result.flops) + " train_acc=" +
                     std::to_string(result.avg_best_train_accuracy) +
                     " val_acc=" +
                     std::to_string(result.avg_best_val_accuracy) +
                     (result.meets_threshold ? "  <- winner" : "") +
                     (replayed[i].has_value() ? "  (from checkpoint)" : ""));
      outcome.evaluated.push_back(result);
      if (result.meets_threshold) {
        outcome.winner = result;
        break;
      }
    }
    if (resume.checkpoint != nullptr) resume.checkpoint->flush();
    // Progress fires only after the window is committed AND flushed: every
    // unit a handler hears about is durable, so a consumer acting on the
    // event (UI, serve progress frame) can never observe work a crash
    // would take back.
    if (resume.progress != nullptr && *resume.progress != nullptr &&
        !outcome.evaluated.empty()) {
      ProgressEvent event;
      event.family = resume.family;
      event.features = resume.features;
      event.repetition = repetition;
      event.units_done = outcome.evaluated.size();
      event.total_units = limit;
      event.last_spec = outcome.evaluated.back().spec.to_string();
      event.last_val_accuracy =
          outcome.evaluated.back().avg_best_val_accuracy;
      event.winner_found = outcome.winner.has_value();
      (*resume.progress)(event);
    }
    next += count;
  }
  outcome.candidates_trained = outcome.evaluated.size();
  return outcome;
}

RepeatedSearchResult run_repeated_search(const std::vector<ModelSpec>& specs,
                                         const data::Dataset& dataset,
                                         const SearchConfig& config) {
  return run_repeated_search(specs, dataset, config, ResumeContext{});
}

RepeatedSearchResult run_repeated_search(const std::vector<ModelSpec>& specs,
                                         const data::Dataset& dataset,
                                         const SearchConfig& config,
                                         const ResumeContext& resume) {
  dataset.validate();
  if (specs.empty()) {
    throw std::invalid_argument("run_repeated_search: empty search space");
  }

  const std::vector<ModelSpec> sorted =
      sort_by_flops(specs, dataset.features(), dataset.classes, config);

  RepeatedSearchResult result;
  util::Rng rng{config.seed};
  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    util::throw_if_cancelled(resume.cancel);
    util::Rng rep_rng = rng.split();
    data::TrainValSplit split =
        data::stratified_split(dataset, config.validation_fraction, rep_rng);
    data::standardize_split(split);
    result.repetitions.push_back(
        search_once(sorted, split, config, rep_rng, resume, rep));
  }

  double flops_sum = 0.0;
  double param_sum = 0.0;
  for (const SearchOutcome& outcome : result.repetitions) {
    if (!outcome.winner.has_value()) continue;
    ++result.successful_repetitions;
    flops_sum += outcome.winner->flops;
    param_sum += static_cast<double>(outcome.winner->parameter_count);
    if (!result.smallest_winner.has_value() ||
        outcome.winner->flops < result.smallest_winner->flops) {
      result.smallest_winner = outcome.winner;
    }
  }
  if (result.successful_repetitions > 0) {
    const double n = static_cast<double>(result.successful_repetitions);
    result.mean_winner_flops = flops_sum / n;
    result.mean_winner_parameters = param_sum / n;
  }
  util::log_info(nn::fastpath::stats().to_string());
  util::log_info(quantum::plan_cache::stats().to_string());
  return result;
}

}  // namespace qhdl::search
