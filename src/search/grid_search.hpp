// FLOPs-sorted, threshold-gated grid search (paper Sections III-D..III-G).
//
// Protocol per repetition:
//   1. Compute per-sample forward+backward FLOPs for every candidate
//      analytically, sort ascending.
//   2. Train candidates in order; each candidate gets `runs_per_model`
//      independent runs (fresh initialization), recording the highest train
//      and validation accuracy over epochs per run, averaged across runs.
//   3. The first candidate whose averaged accuracies both reach the
//      threshold wins; cheaper-first ordering makes it the least-FLOPs
//      solution. The whole procedure repeats `repetitions` times with fresh
//      RNG streams to absorb training stochasticity.
//
// All parallelism (speculative candidate lookahead, per-candidate runs,
// quantum batch rows) runs on the shared util::ThreadPool and is
// result-invariant in the thread count: RNG streams are pre-split in a
// fixed order and results commit in that order.
//
// Classical candidates train on the zero-allocation workspace fast path
// (nn/workspace.hpp): per-run models own their workspaces, GEMM packing
// scratch is thread_local, and the workspace arithmetic is bit-identical to
// the reference Module path — so the thread-count invariance above holds
// unchanged, and QHDL_FORCE_REFERENCE_NN reproduces identical results on
// the reference path (see DESIGN.md §9).
#pragma once

#include <functional>
#include <optional>

#include "data/dataset.hpp"
#include "nn/trainer.hpp"
#include "search/candidate.hpp"
#include "util/cancel.hpp"

namespace qhdl::search {

struct SearchConfig {
  double accuracy_threshold = 0.90;
  std::size_t runs_per_model = 5;
  std::size_t repetitions = 5;
  nn::TrainConfig train{};  ///< epochs=100, batch=8, lr=1e-3 by default
  double validation_fraction = 0.2;
  qnn::Activation classical_activation = qnn::Activation::Tanh;
  flops::CostModel cost_model{};
  std::uint64_t seed = 42;
  /// If > 0: after the first run of a candidate, skip its remaining runs
  /// when best val accuracy < threshold − prune_margin (cheap reject).
  /// 0 reproduces the paper's full protocol. Run 0 always executes first
  /// and alone decides pruning, so the decision — and therefore the search
  /// outcome — is identical on the serial and parallel paths.
  double prune_margin = 0.0;
  /// Safety valve for bench drivers: examine at most this many candidates
  /// per repetition (0 = unlimited, the paper's setting).
  std::size_t max_candidates = 0;
  /// Concurrency width for every parallel stage (speculative candidate
  /// lookahead, a candidate's independent runs, quantum batch rows, sweep
  /// levels), all dispatched on the shared util::ThreadPool. 1 = fully
  /// sequential. Results are bit-identical for a given seed regardless of
  /// the thread count: every RNG stream is split up front in a fixed order
  /// and all results commit in that order.
  std::size_t threads = 1;
  /// Speculative candidate lookahead window for search_once: this many
  /// FLOPs-ordered candidates train concurrently, committing strictly in
  /// FLOPs order (candidates trained past the winner are discarded, so the
  /// "first winner" is the serial one). 0 = auto (= threads).
  std::size_t lookahead = 0;
  /// Graceful degradation budget: when a training run trips the non-finite
  /// guard (nn::NonFiniteError), retry it up to this many times on the next
  /// deterministic child stream before quarantining the run. Retries never
  /// touch other runs' pre-split streams, so healthy runs are bit-identical
  /// with or without a neighbour's failure.
  std::size_t run_retries = 1;
};

/// One guard trip during a candidate's training, recorded instead of
/// aborting the sweep. A run whose every attempt failed is quarantined: it
/// contributes nothing to the candidate's accuracy means.
struct RunFailure {
  std::size_t run = 0;      ///< run index within the candidate
  std::size_t attempt = 0;  ///< 0 = first attempt, 1.. = retries
  std::size_t epoch = 0;    ///< 0-based epoch where the guard tripped
  std::string cause;        ///< "loss" | "parameters" (NonFiniteError::kind)
};

/// Per-candidate training outcome. Accuracy means are taken over the
/// successful runs only; quarantined runs are excluded and listed in
/// `failures` so they can never poison the mean.
struct CandidateResult {
  ModelSpec spec;
  double avg_best_train_accuracy = 0.0;
  double avg_best_val_accuracy = 0.0;
  double flops = 0.0;            ///< per-sample fwd+bwd
  double flops_forward = 0.0;
  std::size_t parameter_count = 0;
  std::size_t runs = 0;          ///< successful runs (mean denominator)
  std::size_t failed_runs = 0;   ///< runs quarantined after all retries
  std::vector<RunFailure> failures;  ///< every guard trip, retried or not
  bool meets_threshold = false;
};

/// One repetition's outcome.
struct SearchOutcome {
  std::optional<CandidateResult> winner;  ///< empty if nothing met threshold
  std::vector<CandidateResult> evaluated;  ///< in training order
  std::size_t candidates_trained = 0;
};

/// All repetitions plus aggregates over the winners.
struct RepeatedSearchResult {
  std::vector<SearchOutcome> repetitions;
  /// Means over repetitions that produced a winner.
  double mean_winner_flops = 0.0;
  double mean_winner_parameters = 0.0;
  std::size_t successful_repetitions = 0;
  /// The least-FLOPs winner across repetitions (paper Section IV-E picks
  /// "the smallest model from the set of five best-performing configs").
  std::optional<CandidateResult> smallest_winner;
};

class StudyCheckpoint;
class WorkerPool;

/// Durable-execution context for a repeated search. When `checkpoint` is
/// non-null, every completed work unit — one candidate evaluation, keyed by
/// (family, features, repetition, candidate index in FLOPs order) — is
/// recorded and atomically flushed at unit boundaries, and units already in
/// the checkpoint are replayed instead of retrained. The resumed search
/// still draws every RNG split in the original order, so a resumed run is
/// bit-identical to an uninterrupted one (see DESIGN.md §10).
///
/// When `pool` is non-null, fresh units are dispatched to the crash-isolated
/// worker pool (DESIGN.md §11) instead of the in-process thread pool. Only
/// run_complexity_sweep sets this: pooled units must be reproducible from
/// the SweepConfig alone, which a standalone search's arbitrary dataset is
/// not. Results remain bit-identical to in-process execution because each
/// unit ships the pre-split run streams drawn below.
/// When `cancel` is non-null, search_once polls it at the same unit-window
/// boundaries where it polls the process interrupt flag, and throws
/// util::Cancelled when the token fires — per-job cancellation for the
/// serve layer (client disconnect, per-job deadline) without touching the
/// process-global interrupt. Completed units are already recorded and
/// flushed, so a retried job resumes from where cancellation landed.
/// Live progress notification, fired by the resume-aware search_once after
/// each unit window commits (and flushes to the checkpoint, when present).
/// Replayed checkpoint units count toward units_done, so a resumed search
/// reports absolute progress. Fired from whatever thread runs the level —
/// handlers must be thread-safe when sweep levels run concurrently.
struct ProgressEvent {
  std::string family;          ///< "" for a standalone search
  std::size_t features = 0;    ///< complexity level
  std::size_t repetition = 0;  ///< 0-based repetition index
  std::size_t units_done = 0;  ///< committed candidates this repetition
  std::size_t total_units = 0; ///< candidates this repetition will examine
  std::string last_spec;       ///< spec of the newest committed candidate
  double last_val_accuracy = 0.0;
  bool winner_found = false;   ///< the repetition already has its winner
};
using ProgressFn = std::function<void(const ProgressEvent&)>;

struct ResumeContext {
  StudyCheckpoint* checkpoint = nullptr;
  std::string family;        ///< family_name() of the sweep ("" standalone)
  std::size_t features = 0;  ///< complexity level
  WorkerPool* pool = nullptr;
  const util::CancelToken* cancel = nullptr;
  /// Optional progress sink (see ProgressEvent); not owned, may be null.
  const ProgressFn* progress = nullptr;
};

/// Sorts specs ascending by analytic FLOPs (stable, deterministic).
std::vector<ModelSpec> sort_by_flops(std::vector<ModelSpec> specs,
                                     std::size_t features,
                                     std::size_t classes,
                                     const SearchConfig& config);

/// Trains one candidate (`runs_per_model` runs) and reports averages.
CandidateResult evaluate_candidate(const ModelSpec& spec,
                                   const data::TrainValSplit& split,
                                   const SearchConfig& config,
                                   util::Rng& rng);

/// Same, but on pre-split run streams (one per runs_per_model, consumed in
/// order). This is the worker-pool entry point: the supervisor splits the
/// streams, ships them, and the worker calls this — making a worker's
/// arithmetic bit-identical to the in-process search's.
CandidateResult evaluate_candidate(const ModelSpec& spec,
                                   const data::TrainValSplit& split,
                                   const SearchConfig& config,
                                   std::vector<util::Rng>& run_rngs);

/// One search repetition over pre-sorted specs.
SearchOutcome search_once(const std::vector<ModelSpec>& sorted_specs,
                          const data::TrainValSplit& split,
                          const SearchConfig& config, util::Rng& rng);

/// Resume-aware repetition: replays checkpointed units, records and flushes
/// fresh ones at unit boundaries, and polls for SIGINT/SIGTERM between
/// units (util::Interrupted). `repetition` keys the checkpoint units.
SearchOutcome search_once(const std::vector<ModelSpec>& sorted_specs,
                          const data::TrainValSplit& split,
                          const SearchConfig& config, util::Rng& rng,
                          const ResumeContext& resume,
                          std::size_t repetition);

/// Full repeated search on a dataset (splits internally per repetition).
RepeatedSearchResult run_repeated_search(const std::vector<ModelSpec>& specs,
                                         const data::Dataset& dataset,
                                         const SearchConfig& config);

/// Resume-aware repeated search (see ResumeContext).
RepeatedSearchResult run_repeated_search(const std::vector<ModelSpec>& specs,
                                         const data::Dataset& dataset,
                                         const SearchConfig& config,
                                         const ResumeContext& resume);

}  // namespace qhdl::search
