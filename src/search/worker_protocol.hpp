// The supervisor <-> worker wire protocol and the worker-process entry
// point (DESIGN.md §11).
//
// A work unit is one candidate evaluation — the same (family, features,
// repetition, candidate) unit the PR-4 checkpoint keys — plus everything a
// fresh process needs to reproduce it bit-for-bit: the candidate's
// ModelSpec and the pre-split per-run RNG streams the in-process search
// would have consumed. The worker re-derives the level dataset and the
// repetition's train/val split from the sweep config it received at init
// (replaying exactly the derivation run_repeated_search performs), trains
// the unit with qhdl::search::evaluate_candidate on the shipped streams,
// and returns the CandidateResult in the checkpoint's own JSON encoding —
// so a multi-process sweep is byte-identical to an in-process one.
//
// Framing: every message is a 4-byte big-endian payload length followed by
// that many bytes of UTF-8 JSON. Frame types:
//   supervisor -> worker: init {version, config, heartbeat_interval_ms}
//                         unit {unit}
//                         shutdown {}
//   worker -> supervisor: ready {pid}
//                         heartbeat {key}        (ticks while training)
//                         result {key, result}
//                         error {key, message}   (unit failed cleanly)
// Anything else — oversized lengths, unparseable JSON, unknown types — is
// garbage; the supervisor kills the emitting worker and retries the unit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/preprocess.hpp"
#include "search/checkpoint.hpp"
#include "search/experiment.hpp"
#include "util/deadline.hpp"

namespace qhdl::search {

inline constexpr int kWorkerProtocolVersion = 1;

/// Upper bound on a frame payload; a length prefix beyond it means the
/// stream is garbage (a real unit/result frame is a few KB).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// A corrupt or malformed protocol stream (bad length, bad JSON, wrong
/// frame shape). The supervisor treats it as a worker failure.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& message)
      : std::runtime_error("worker protocol: " + message) {}
};

/// One shippable candidate evaluation.
struct WorkUnit {
  UnitKey key;
  ModelSpec spec;
  /// Pre-split per-run streams, exactly the ones the in-process search
  /// draws for this candidate (one per runs_per_model, consumed in order).
  std::vector<util::Rng> streams;
};

// --- framing --------------------------------------------------------------

/// Serializes `payload` as one length-prefixed frame. Returns false when
/// the descriptor is broken (peer died); never raises SIGPIPE.
bool write_frame(int fd, const std::string& payload);

/// The on-the-wire bytes of one frame (4-byte big-endian length + payload),
/// for callers that write through their own descriptor wrapper (the pool's
/// Subprocess stdin, the serve layer's Socket). Throws ProtocolError when
/// the payload exceeds kMaxFrameBytes.
std::string frame_wire(const std::string& payload);

/// Incremental frame decoder: feed() raw pipe/socket bytes, next() yields
/// complete payloads. Throws ProtocolError on a garbage length prefix
/// (anything beyond kMaxFrameBytes), naming the offending length.
class FrameReader {
 public:
  void feed(const char* data, std::size_t size);
  std::optional<std::string> next();

  /// True when a frame is partially buffered — EOF here means the peer
  /// disconnected mid-frame (a truncated frame), not a clean close.
  bool mid_frame() const { return !buffer_.empty(); }

  /// Human-readable description of the partial frame ("" at a frame
  /// boundary), used to build descriptive truncation errors.
  std::string pending_description() const;

 private:
  std::string buffer_;
};

/// Outcome of one read_frame() call that did not throw.
enum class FrameReadStatus {
  Frame,    ///< *payload holds one complete frame
  Eof,      ///< peer closed cleanly at a frame boundary
  Timeout,  ///< deadline expired before a full frame arrived
};

/// Deadline-aware framed read from a stream descriptor (pipe or socket).
/// Polls in short slices so a hung peer cannot wedge the caller forever: a
/// pending process interrupt throws util::Interrupted, deadline expiry
/// returns Timeout, and EOF mid-frame throws ProtocolError naming how many
/// bytes of the frame actually arrived. This is the serve layer's read
/// primitive, so it observes the `sock` fault-injection site
/// (short/drop/slow peer emulation).
FrameReadStatus read_frame(int fd, FrameReader& reader,
                           const util::Deadline& deadline,
                           std::string* payload);

// --- JSON codecs ----------------------------------------------------------

util::Json sweep_config_to_json(const SweepConfig& config);
SweepConfig sweep_config_from_json(const util::Json& json);

/// Exact Rng state round-trip (state words as hex strings — util::Json
/// numbers are doubles and cannot carry 64 bits).
util::Json rng_to_json(const util::Rng& rng);
util::Rng rng_from_json(const util::Json& json);

util::Json work_unit_to_json(const WorkUnit& unit);
WorkUnit work_unit_from_json(const util::Json& json);

// --- unit evaluation (shared with the pool's in-process degradation) ------

/// Re-derives level datasets and repetition splits from the sweep config,
/// caching a bounded number of recent splits (workers receive many units
/// for the same level/repetition in a row). Thread-safe; entries are
/// shared_ptr so an eviction cannot invalidate a split in use.
class UnitDataCache {
 public:
  UnitDataCache();

  std::shared_ptr<const data::TrainValSplit> split_for(
      const SweepConfig& config, std::size_t features,
      std::size_t repetition);

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Evaluates one unit exactly as the in-process search would: same split,
/// same streams, same arithmetic. Used by worker_main and by the pool when
/// it degrades to in-process execution.
CandidateResult evaluate_unit(const SweepConfig& config, const WorkUnit& unit,
                              UnitDataCache& cache);

/// The result recorded for a unit whose every supervised attempt failed
/// (crash/hang/garbage beyond the retry budget): analytic FLOPs/parameter
/// metadata is kept, runs = 0 so it can never contribute to accuracy means,
/// and one RunFailure per attempt (cause "worker:<reason>") documents what
/// happened — the same quarantine shape the PR-4 non-finite guard uses.
CandidateResult quarantined_unit_result(
    const SweepConfig& config, const WorkUnit& unit,
    const std::vector<std::string>& attempt_causes);

/// Worker-process entry point: drivers dispatch to this when invoked with
/// --worker-mode. Speaks the framed protocol on stdin/stdout until EOF or a
/// shutdown frame; stderr is ordinary logging. Returns the process exit
/// code. Observes the FaultInjector's `worker` site on each unit receipt.
int worker_main();

}  // namespace qhdl::search
