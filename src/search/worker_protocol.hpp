// The supervisor <-> worker wire protocol and the worker-process entry
// point (DESIGN.md §11).
//
// A work unit is one candidate evaluation — the same (family, features,
// repetition, candidate) unit the PR-4 checkpoint keys — plus everything a
// fresh process needs to reproduce it bit-for-bit: the candidate's
// ModelSpec and the pre-split per-run RNG streams the in-process search
// would have consumed. The worker re-derives the level dataset and the
// repetition's train/val split from the sweep config it received at init
// (replaying exactly the derivation run_repeated_search performs), trains
// the unit with qhdl::search::evaluate_candidate on the shipped streams,
// and returns the CandidateResult in the checkpoint's own JSON encoding —
// so a multi-process sweep is byte-identical to an in-process one.
//
// Framing: every message is a 4-byte big-endian payload length followed by
// that many bytes of UTF-8 JSON. Frame types:
//   supervisor -> worker: init {version, config, heartbeat_interval_ms}
//                         unit {unit}
//                         shutdown {}
//   worker -> supervisor: register {version, backend, slots, slot, pid}
//                         ready {pid}
//                         heartbeat {key}        (ticks while training)
//                         result {key, result}
//                         error {key, message}   (unit failed cleanly)
// Anything else — oversized lengths, unparseable JSON, unknown types — is
// garbage; the supervisor kills the emitting worker and retries the unit.
//
// The same protocol runs over two transports (DESIGN.md §16): CLOEXEC pipes
// to re-exec'd local children (`--workers N`) and TCP connections from
// remote worker daemons (`qhdl_worker --connect host:port`). Pipe workers
// are implicitly registered by being spawned; a TCP worker must open with a
// `register` frame (protocol version, kernel backend name, slot count) and
// only becomes schedulable once the supervisor answers with `init`.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/preprocess.hpp"
#include "search/checkpoint.hpp"
#include "search/experiment.hpp"
#include "util/deadline.hpp"

namespace qhdl::search {

// v2 added the TCP registration handshake (`register` frames); pipe framing
// and every other frame type are unchanged from v1.
inline constexpr int kWorkerProtocolVersion = 2;

/// Upper bound on a frame payload; a length prefix beyond it means the
/// stream is garbage (a real unit/result frame is a few KB).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// A corrupt or malformed protocol stream (bad length, bad JSON, wrong
/// frame shape). The supervisor treats it as a worker failure.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& message)
      : std::runtime_error("worker protocol: " + message) {}
};

/// One shippable candidate evaluation.
struct WorkUnit {
  UnitKey key;
  ModelSpec spec;
  /// Pre-split per-run streams, exactly the ones the in-process search
  /// draws for this candidate (one per runs_per_model, consumed in order).
  std::vector<util::Rng> streams;
};

// --- framing --------------------------------------------------------------

/// Serializes `payload` as one length-prefixed frame. Returns false when
/// the descriptor is broken (peer died); never raises SIGPIPE.
bool write_frame(int fd, const std::string& payload);

/// The on-the-wire bytes of one frame (4-byte big-endian length + payload),
/// for callers that write through their own descriptor wrapper (the pool's
/// Subprocess stdin, the serve layer's Socket). Throws ProtocolError when
/// the payload exceeds kMaxFrameBytes.
std::string frame_wire(const std::string& payload);

/// Incremental frame decoder: feed() raw pipe/socket bytes, next() yields
/// complete payloads. Throws ProtocolError on a garbage length prefix
/// (anything beyond kMaxFrameBytes), naming the offending length.
class FrameReader {
 public:
  void feed(const char* data, std::size_t size);
  std::optional<std::string> next();

  /// True when a frame is partially buffered — EOF here means the peer
  /// disconnected mid-frame (a truncated frame), not a clean close.
  bool mid_frame() const { return !buffer_.empty(); }

  /// Human-readable description of the partial frame ("" at a frame
  /// boundary), used to build descriptive truncation errors.
  std::string pending_description() const;

 private:
  std::string buffer_;
};

/// Outcome of one read_frame() call that did not throw.
enum class FrameReadStatus {
  Frame,    ///< *payload holds one complete frame
  Eof,      ///< peer closed cleanly at a frame boundary
  Timeout,  ///< deadline expired before a full frame arrived
};

/// Deadline-aware framed read from a stream descriptor (pipe or socket).
/// Polls in short slices so a hung peer cannot wedge the caller forever: a
/// pending process interrupt throws util::Interrupted, deadline expiry
/// returns Timeout, and EOF mid-frame throws ProtocolError naming how many
/// bytes of the frame actually arrived. This is the serve layer's read
/// primitive, so it observes the `sock` fault-injection site
/// (short/drop/slow peer emulation).
FrameReadStatus read_frame(int fd, FrameReader& reader,
                           const util::Deadline& deadline,
                           std::string* payload);

// --- JSON codecs ----------------------------------------------------------

util::Json sweep_config_to_json(const SweepConfig& config);
SweepConfig sweep_config_from_json(const util::Json& json);

/// Exact Rng state round-trip (state words as hex strings — util::Json
/// numbers are doubles and cannot carry 64 bits).
util::Json rng_to_json(const util::Rng& rng);
util::Rng rng_from_json(const util::Json& json);

util::Json work_unit_to_json(const WorkUnit& unit);
WorkUnit work_unit_from_json(const util::Json& json);

/// The opening frame a TCP worker sends after connecting: who it is and
/// what it brings. `backend` is the worker's active SIMD kernel backend
/// name — the supervisor warns when it differs from its own, because only
/// the production backends (generic/avx2/avx512fma) are bit-identical.
struct WorkerRegistration {
  int version = kWorkerProtocolVersion;
  std::string backend;
  std::size_t slots = 1;  ///< total evaluation slots the daemon offers
  std::size_t slot = 0;   ///< which of them this connection carries
  long pid = 0;
};

util::Json registration_to_json(const WorkerRegistration& registration);
WorkerRegistration registration_from_json(const util::Json& json);

/// Exponential backoff with deterministic jitter: the exponential base
/// (initial_ms doubled failures-1 times, capped at max_ms) plus a hash of
/// (seed, salt, failures) spread over [base/2, base]. Reconnecting daemons
/// salt with their slot index, so a healed partition does not produce a
/// synchronized reconnect storm — yet the schedule is a pure function of
/// its inputs and reproducible under the fault matrix.
std::uint64_t backoff_with_jitter_ms(std::uint64_t initial_ms,
                                     std::uint64_t max_ms,
                                     std::size_t failures, std::uint64_t seed,
                                     std::uint64_t salt);

/// Splits "host:port" ("127.0.0.1:7401"). Returns false on a malformed
/// string or an out-of-range port.
bool parse_host_port(const std::string& text, std::string* host,
                     std::uint16_t* port);

// --- unit evaluation (shared with the pool's in-process degradation) ------

/// Re-derives level datasets and repetition splits from the sweep config,
/// caching a bounded number of recent splits (workers receive many units
/// for the same level/repetition in a row). Thread-safe; entries are
/// shared_ptr so an eviction cannot invalidate a split in use.
class UnitDataCache {
 public:
  UnitDataCache();

  std::shared_ptr<const data::TrainValSplit> split_for(
      const SweepConfig& config, std::size_t features,
      std::size_t repetition);

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Evaluates one unit exactly as the in-process search would: same split,
/// same streams, same arithmetic. Used by worker_main and by the pool when
/// it degrades to in-process execution.
CandidateResult evaluate_unit(const SweepConfig& config, const WorkUnit& unit,
                              UnitDataCache& cache);

/// The result recorded for a unit whose every supervised attempt failed
/// (crash/hang/garbage beyond the retry budget): analytic FLOPs/parameter
/// metadata is kept, runs = 0 so it can never contribute to accuracy means,
/// and one RunFailure per attempt (cause "worker:<reason>") documents what
/// happened — the same quarantine shape the PR-4 non-finite guard uses.
CandidateResult quarantined_unit_result(
    const SweepConfig& config, const WorkUnit& unit,
    const std::vector<std::string>& attempt_causes);

/// Worker-process entry point: drivers dispatch to this when invoked with
/// --worker-mode. Speaks the framed protocol on stdin/stdout until EOF or a
/// shutdown frame; stderr is ordinary logging. Returns the process exit
/// code. Observes the FaultInjector's `worker` site on each unit receipt.
int worker_main();

/// Remote worker daemon (qhdl_worker --connect, or a test binary's
/// --worker-connect). One thread per slot dials the supervisor, sends a
/// `register` frame, then serves the same init/unit protocol over the
/// socket until the connection drops or a shutdown frame arrives.
struct RemoteWorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t slots = 1;
  std::uint64_t connect_timeout_ms = 5000;
  /// Jittered exponential backoff between reconnect attempts.
  std::uint64_t reconnect_initial_ms = 200;
  std::uint64_t reconnect_max_ms = 10000;
  std::uint64_t jitter_seed = 0x716864'6cULL;  // fixed default: reproducible
  /// Consecutive failed dial/serve attempts per slot before the slot gives
  /// up (0 = retry forever). A served session resets the count.
  std::size_t max_reconnect_failures = 0;
  /// false: a shutdown frame ends the slot (one supervisor run). true: the
  /// slot reconnects after shutdown too, so one daemon can serve a sequence
  /// of supervisors (qhdl_serve spawns a pool per study job).
  bool persist = false;
};

/// Runs the daemon until every slot has ended. Returns 0 when all slots
/// ended on a clean shutdown frame, 1 when any slot gave up reconnecting.
int remote_worker_main(const RemoteWorkerOptions& options);

}  // namespace qhdl::search
