#include "search/results.hpp"

#include "util/string_util.hpp"

namespace qhdl::search {

util::CsvWriter sweep_to_csv(const SweepResult& sweep) {
  util::CsvWriter csv({"family", "features", "repetition", "winner",
                       "flops", "flops_forward", "parameters",
                       "train_accuracy", "val_accuracy",
                       "candidates_trained"});
  for (const LevelResult& level : sweep.levels) {
    for (std::size_t rep = 0; rep < level.search.repetitions.size(); ++rep) {
      const SearchOutcome& outcome = level.search.repetitions[rep];
      std::vector<std::string> row;
      row.push_back(family_name(sweep.family));
      row.push_back(std::to_string(level.features));
      row.push_back(std::to_string(rep));
      if (outcome.winner.has_value()) {
        const CandidateResult& w = *outcome.winner;
        row.push_back(w.spec.to_string());
        row.push_back(util::format_double(w.flops, 1));
        row.push_back(util::format_double(w.flops_forward, 1));
        row.push_back(std::to_string(w.parameter_count));
        row.push_back(util::format_double(w.avg_best_train_accuracy, 4));
        row.push_back(util::format_double(w.avg_best_val_accuracy, 4));
      } else {
        row.insert(row.end(), {"", "", "", "", "", ""});
      }
      row.push_back(std::to_string(outcome.candidates_trained));
      csv.add_row(std::move(row));
    }
  }
  return csv;
}

util::Json sweep_to_json(const SweepResult& sweep) {
  util::Json root = util::Json::object();
  root["family"] = util::Json{family_name(sweep.family)};
  util::Json levels = util::Json::array();
  for (const LevelResult& level : sweep.levels) {
    util::Json level_json = util::Json::object();
    level_json["features"] = util::Json{level.features};
    level_json["mean_winner_flops"] =
        util::Json{level.search.mean_winner_flops};
    level_json["mean_winner_parameters"] =
        util::Json{level.search.mean_winner_parameters};
    level_json["successful_repetitions"] =
        util::Json{level.search.successful_repetitions};

    util::Json reps = util::Json::array();
    for (const SearchOutcome& outcome : level.search.repetitions) {
      util::Json rep = util::Json::object();
      rep["candidates_trained"] = util::Json{outcome.candidates_trained};
      if (outcome.winner.has_value()) {
        const CandidateResult& w = *outcome.winner;
        rep["winner"] = util::Json{w.spec.to_string()};
        rep["flops"] = util::Json{w.flops};
        rep["parameters"] = util::Json{w.parameter_count};
        rep["train_accuracy"] = util::Json{w.avg_best_train_accuracy};
        rep["val_accuracy"] = util::Json{w.avg_best_val_accuracy};
      }
      // Non-finite guard trips (retried or quarantined): surfaced per
      // repetition so a sweep that degraded gracefully says so in the
      // manifest instead of silently averaging over fewer runs.
      util::Json failures = util::Json::array();
      for (std::size_t c = 0; c < outcome.evaluated.size(); ++c) {
        const CandidateResult& candidate = outcome.evaluated[c];
        for (const RunFailure& failure : candidate.failures) {
          util::Json item = util::Json::object();
          item["candidate_index"] = util::Json{c};
          item["candidate"] = util::Json{candidate.spec.to_string()};
          item["run"] = util::Json{failure.run};
          item["attempt"] = util::Json{failure.attempt};
          item["epoch"] = util::Json{failure.epoch};
          item["cause"] = util::Json{failure.cause};
          failures.push_back(std::move(item));
        }
      }
      if (failures.size() > 0) rep["failures"] = std::move(failures);
      reps.push_back(std::move(rep));
    }
    level_json["repetitions"] = std::move(reps);
    levels.push_back(std::move(level_json));
  }
  root["levels"] = std::move(levels);
  return root;
}

util::CsvWriter sweep_means_to_csv(const SweepResult& sweep) {
  util::CsvWriter csv({"family", "features", "mean_flops",
                       "mean_parameters", "successful_repetitions"});
  for (const LevelResult& level : sweep.levels) {
    csv.add_row({family_name(sweep.family), std::to_string(level.features),
                 util::format_double(level.search.mean_winner_flops, 1),
                 util::format_double(level.search.mean_winner_parameters, 1),
                 std::to_string(level.search.successful_repetitions)});
  }
  return csv;
}

}  // namespace qhdl::search
